"""Unit & property tests for the linear expression / constraint layer."""

import pytest
from hypothesis import given, strategies as st

from repro.concolic.expr import (Constraint, LinearExpr, Var, constraint_vars,
                                 make_comparison)

coeff = st.integers(min_value=-50, max_value=50)
small_int = st.integers(min_value=-1000, max_value=1000)
linexprs = st.builds(
    LinearExpr,
    st.dictionaries(st.integers(min_value=0, max_value=5), coeff, max_size=4),
    small_int,
)
assignments = st.dictionaries(st.integers(min_value=0, max_value=5), small_int,
                              min_size=6, max_size=6)


def full_assignment():
    return st.fixed_dictionaries({v: small_int for v in range(6)})


def test_zero_coeffs_dropped():
    e = LinearExpr({0: 0, 1: 3}, 5)
    assert e.coeffs == {1: 3}
    assert e.vars() == frozenset({1})


def test_constant_and_variable_constructors():
    assert LinearExpr.constant(7).is_const
    assert LinearExpr.constant(7).const == 7
    v = LinearExpr.variable(3)
    assert v.coeffs == {3: 1} and v.const == 0 and not v.is_const


def test_add_sub_scale():
    a = LinearExpr({0: 2}, 1)
    b = LinearExpr({0: -2, 1: 4}, 3)
    s = a.add(b)
    assert s.coeffs == {1: 4} and s.const == 4
    d = a.sub(a)
    assert d.is_const and d.const == 0
    assert a.scale(3).coeffs == {0: 6} and a.scale(3).const == 3
    assert a.scale(0).is_const and a.scale(0).const == 0


@given(linexprs, linexprs, st.fixed_dictionaries({v: small_int for v in range(6)}))
def test_add_evaluates_pointwise(a, b, asg):
    assert a.add(b).evaluate(asg) == a.evaluate(asg) + b.evaluate(asg)


@given(linexprs, coeff, st.fixed_dictionaries({v: small_int for v in range(6)}))
def test_scale_evaluates_pointwise(a, k, asg):
    assert a.scale(k).evaluate(asg) == k * a.evaluate(asg)


@given(linexprs, linexprs, st.fixed_dictionaries({v: small_int for v in range(6)}))
def test_sub_evaluates_pointwise(a, b, asg):
    assert a.sub(b).evaluate(asg) == a.evaluate(asg) - b.evaluate(asg)


def test_linear_expr_equality_and_hash():
    a = LinearExpr({1: 2}, 3)
    b = LinearExpr({1: 2}, 3)
    assert a == b and hash(a) == hash(b)
    assert a != LinearExpr({1: 2}, 4)


@pytest.mark.parametrize("op,neg", [("<", ">="), ("<=", ">"), (">", "<="),
                                    (">=", "<"), ("==", "!="), ("!=", "==")])
def test_negation_table(op, neg):
    c = Constraint(LinearExpr({0: 1}, 0), op)
    assert c.negated().op == neg
    assert c.negated().negated().op == op


@given(linexprs, st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
       st.fixed_dictionaries({v: small_int for v in range(6)}))
def test_negation_flips_evaluation(lhs, op, asg):
    c = Constraint(lhs, op)
    assert c.evaluate(asg) != c.negated().evaluate(asg)


@given(linexprs, st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
       st.fixed_dictionaries({v: small_int for v in range(6)}))
def test_normalized_preserves_semantics(lhs, op, asg):
    c = Constraint(lhs, op)
    normalized = c.normalized()
    assert all(n.op in ("<=", "==", "!=") for n in normalized)
    assert all(n.evaluate(asg) for n in normalized) == c.evaluate(asg)


def test_make_comparison_builds_difference():
    a = LinearExpr({0: 1}, 0)
    b = LinearExpr({1: 1}, 5)
    c = make_comparison(a, "<", b)
    assert c.lhs.coeffs == {0: 1, 1: -1} and c.lhs.const == -5
    assert c.evaluate({0: 0, 1: 0})  # 0 < 5


def test_trivial_constraint_detection():
    assert Constraint(LinearExpr.constant(3), "<").is_trivial
    assert not Constraint(LinearExpr.variable(0), "<").is_trivial


def test_constraint_vars_union():
    cs = [Constraint(LinearExpr({0: 1, 2: 1}, 0), "<"),
          Constraint(LinearExpr({1: 1}, 0), "==")]
    assert constraint_vars(cs) == frozenset({0, 1, 2})


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        Constraint(LinearExpr.variable(0), "<>")


def test_var_repr_and_fields():
    v = Var(vid=2, name="n", kind="input", cap=100)
    assert v.cap == 100
    assert "n#2" in repr(v)
