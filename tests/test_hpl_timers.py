"""Tests for the HPL phase timers."""

import pytest

from repro.mpi import run_spmd
from repro.targets.hpl.timers import PHASES, PhaseTimers


def test_phase_accumulates_time_and_count():
    t = PhaseTimers()
    with t.phase("pfact"):
        pass
    with t.phase("pfact"):
        pass
    total, count = t.local_summary()["pfact"]
    assert count == 2 and total >= 0.0


def test_unknown_phase_rejected():
    t = PhaseTimers()
    with pytest.raises(KeyError):
        with t.phase("nope"):
            pass


def test_phase_records_even_on_exception():
    t = PhaseTimers()
    with pytest.raises(ValueError):
        with t.phase("swap"):
            raise ValueError("boom")
    assert t.local_summary()["swap"][1] == 1


def test_report_reduces_max_across_ranks():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = int(mpi.COMM_WORLD.Get_rank())
        t = PhaseTimers()
        t.totals["update"] = float(rank)      # synthetic per-rank values
        got[rank] = t.report(mpi.COMM_WORLD)
        mpi.Finalize()

    res = run_spmd(prog, size=3, timeout=15)
    assert res.ok
    assert all(v["update"] == 2.0 for v in got.values())


def test_factorize_populates_timers():
    from repro.targets.hpl.grid import grid_init
    from repro.targets.hpl.lu import LocalBlocks, factorize
    from repro.targets.hpl.main import INPUT_SPEC
    from repro.targets.hpl.params import HplParams

    captured = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        args = {k: v["default"] for k, v in INPUT_SPEC.items()}
        args.update(n=16, nb=4)
        params = HplParams(**{k: args[k] for k in HplParams.__slots__})
        grid = grid_init(mpi, rank, size, 2, 2, 0)
        local = LocalBlocks(16, 4, grid, 1)
        timers = PhaseTimers()
        factorize(mpi, grid, local, params, timers=timers)
        captured[int(rank)] = timers.local_summary()
        mpi.Finalize()

    res = run_spmd(prog, size=4, timeout=30)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    summary = captured[0]
    # 4 panels → 4 pfact/swap/bcast/update entries each
    for phase in ("pfact", "swap", "bcast", "update"):
        assert summary[phase][1] == 4, (phase, summary)
