"""Wait-for-graph deadlock detection: true deadlocks vs compute hangs."""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KIND_DEADLOCK, KIND_HANG, classify_run
from repro.mpi import run_spmd
from repro.mpi.waitgraph import find_cycle

#: generous watchdog — every deadlock test must finish long before it
TIMEOUT = 10.0


def test_send_send_cycle_two_ranks():
    """The classic: both ranks Recv before either Send."""
    def prog(mpi):
        mpi.Init()
        r = mpi.COMM_WORLD.Get_rank()
        peer = 1 - r
        mpi.COMM_WORLD.Recv(source=peer, tag=1)   # both block here
        mpi.COMM_WORLD.Send(r, dest=peer, tag=1)  # pragma: no cover

    t0 = time.monotonic()
    res = run_spmd(prog, size=2, timeout=TIMEOUT)
    wall = time.monotonic() - t0
    assert not res.timed_out
    assert res.deadlock is not None
    assert res.deadlock.cycle in ((0, 1, 0), (1, 0, 1))
    assert wall < TIMEOUT / 2, "detector should beat the watchdog easily"
    err = classify_run(res)
    assert err is not None and err.kind == KIND_DEADLOCK
    assert "cycle" in err.message


def test_three_rank_ring_cycle():
    def prog(mpi):
        mpi.Init()
        r = mpi.COMM_WORLD.Get_rank()
        mpi.COMM_WORLD.Recv(source=(r + 1) % 3, tag=0)

    res = run_spmd(prog, size=3, timeout=TIMEOUT)
    assert res.deadlock is not None
    cycle = res.deadlock.cycle
    assert cycle is not None and len(cycle) == 4 and cycle[0] == cycle[-1]
    assert set(cycle) == {0, 1, 2}


def test_collective_mismatch_is_deadlock():
    """Rank 0 enters Barrier, rank 1 waits in Recv: neither can progress."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            mpi.COMM_WORLD.Barrier()
        else:
            mpi.COMM_WORLD.Recv(source=0, tag=9)

    res = run_spmd(prog, size=2, timeout=TIMEOUT)
    assert not res.timed_out
    assert res.deadlock is not None
    assert res.deadlock.cycle in ((0, 1, 0), (1, 0, 1))
    waits = res.deadlock.waits
    assert any("Barrier" in w for w in waits.values())
    assert any("Recv" in w for w in waits.values())


def test_orphan_wait_recv_from_finished_rank():
    """No cycle, still permanent: the awaited peer already terminated."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 1:
            mpi.COMM_WORLD.Recv(source=0, tag=5)  # rank 0 exits immediately

    res = run_spmd(prog, size=2, timeout=TIMEOUT)
    assert not res.timed_out
    assert res.deadlock is not None
    assert res.deadlock.cycle is None
    assert "orphan" in res.deadlock.describe()


def test_compute_loop_stays_a_hang():
    """An uninstrumented busy loop is NOT a communication deadlock: only
    the watchdog catches it, and the thread is abandoned as a straggler."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            x = 0
            while True:       # no probes, no MPI: unkillable
                x += 1
                if x < 0:     # pragma: no cover
                    break

    res = run_spmd(prog, size=2, timeout=0.4)
    assert res.timed_out
    assert res.deadlock is None
    assert res.stragglers >= 1
    err = classify_run(res)
    assert err is not None and err.kind == KIND_HANG


def test_no_false_positive_on_staggered_send():
    """A receiver blocked while its peer computes must not be diagnosed."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            got, _ = mpi.COMM_WORLD.Recv(source=1, tag=3)
            assert got == "late"
        else:
            time.sleep(0.3)   # several monitor polls with rank 0 blocked
            mpi.COMM_WORLD.Send("late", dest=0, tag=3)

    res = run_spmd(prog, size=2, timeout=TIMEOUT)
    assert res.ok
    assert res.deadlock is None


def test_real_error_not_masked_by_detector():
    """A rank raising while its sibling is blocked must classify as the
    rank's error, not as a deadlock of the unwinding sibling."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            time.sleep(0.1)
            raise AssertionError("real bug")
        mpi.COMM_WORLD.Recv(source=0, tag=1)

    res = run_spmd(prog, size=2, timeout=TIMEOUT)
    assert res.deadlock is None
    err = classify_run(res)
    assert err is not None and err.kind == "assertion"


def test_detection_can_be_disabled():
    def prog(mpi):
        mpi.Init()
        r = mpi.COMM_WORLD.Get_rank()
        mpi.COMM_WORLD.Recv(source=1 - r, tag=1)

    res = run_spmd(prog, size=2, timeout=0.4, detect_deadlocks=False)
    assert res.timed_out
    assert res.deadlock is None


# ----------------------------------------------------------------------
# find_cycle against a brute-force oracle
# ----------------------------------------------------------------------
def _has_cycle_oracle(edges):
    """Reachability closure: a cycle exists iff some node reaches itself."""
    nodes = set(edges)
    reach = {n: set(t for t in edges[n] if t in nodes) for n in nodes}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            new = set()
            for m in reach[n]:
                new |= reach[m]
            if not new <= reach[n]:
                reach[n] |= new
                changed = True
    return any(n in reach[n] for n in nodes)


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(st.integers(0, 7),
                       st.sets(st.integers(0, 7), max_size=8),
                       max_size=8))
def test_find_cycle_matches_oracle(edges):
    cycle = find_cycle(edges)
    if _has_cycle_oracle(edges):
        assert cycle is not None
        # the returned walk must be a real closed path through the graph
        assert cycle[0] == cycle[-1] and len(cycle) >= 2
        for a, b in zip(cycle, cycle[1:]):
            assert b in edges[a]
    else:
        assert cycle is None
