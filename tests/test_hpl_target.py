"""Correctness tests for the HPL target: panel math, bcast variants,
swaps, full distributed solves across parameter combinations."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.targets.hpl.main import INPUT_SPEC, main as hpl_main
from repro.targets.hpl.panel import factor_panel, reconstruct
from repro.targets.hpl.sanity import check_params
from repro.targets.hpl.params import HplParams
from repro.targets.hpl.swap import net_permutation


def default_args(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return args


def params_from(args):
    return HplParams(**{k: args[k] for k in HplParams.__slots__})


def run_hpl(size=4, timeout=60, **overrides):
    args = default_args(**overrides)
    codes = {}

    def prog(mpi):
        codes[int(mpi.COMM_WORLD.Get_rank())] = hpl_main(mpi, dict(args))

    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    return codes


# ----------------------------------------------------------------------
# panel factorization math
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pfact", [0, 1, 2])
@pytest.mark.parametrize("rfact", [0, 1, 2])
def test_factor_panel_reconstructs_pa_equals_lu(pfact, rfact):
    rng = np.random.default_rng(pfact * 3 + rfact)
    a = rng.normal(size=(17, 6))
    orig = a.copy()
    pivots = factor_panel(a, pfact, rfact, nbmin=2, ndiv=2)
    assert len(pivots) == 6
    assert reconstruct(a, pivots, orig) < 1e-10


@pytest.mark.parametrize("nbmin,ndiv", [(1, 2), (2, 3), (8, 2), (3, 4)])
def test_factor_panel_recursion_parameters(nbmin, ndiv):
    rng = np.random.default_rng(nbmin * 10 + ndiv)
    a = rng.normal(size=(20, 8))
    orig = a.copy()
    pivots = factor_panel(a, 2, 1, nbmin=nbmin, ndiv=ndiv)
    assert reconstruct(a, pivots, orig) < 1e-10


def test_factor_panel_variants_agree_on_pivots():
    rng = np.random.default_rng(5)
    a = rng.normal(size=(12, 5))
    results = []
    for pfact in (0, 1, 2):
        b = a.copy()
        piv = factor_panel(b, pfact, 2, nbmin=8, ndiv=2)
        results.append((piv, b))
    for piv, b in results[1:]:
        assert piv == results[0][0]
        assert np.allclose(b, results[0][1])


def test_factor_panel_single_column_and_tiny_pivot():
    a = np.array([[0.0], [0.0]])
    pivots = factor_panel(a, 2, 2, 1, 2)
    assert pivots == [0]  # argmax of zeros → first row; TINY guard applied
    assert np.isfinite(a).all()


# ----------------------------------------------------------------------
# net row permutation (batched swap correctness)
# ----------------------------------------------------------------------
def test_net_permutation_matches_sequential_swaps():
    rng = np.random.default_rng(0)
    for trial in range(20):
        nb, k = 4, 2
        w = int(rng.integers(1, 5))
        m = 12
        pivots = [int(rng.integers(j, m - k * nb)) for j in range(w)]
        rows = list(range(40))
        seq = rows[:]
        for j, p in enumerate(pivots):
            r1, r2 = k * nb + j, k * nb + p
            seq[r1], seq[r2] = seq[r2], seq[r1]
        moves = net_permutation(nb, k, pivots)
        batched = rows[:]
        for dst, src in moves.items():
            batched[dst] = rows[src]
        assert batched == seq


# ----------------------------------------------------------------------
# sanity ladder
# ----------------------------------------------------------------------
def test_sanity_accepts_defaults():
    assert check_params(params_from(default_args()), size=4) == 0


@pytest.mark.parametrize("field,value", [
    ("ntests", 0), ("ntests", 9), ("n", -1), ("nb", 0), ("nb", 513),
    ("pmap", 2), ("p", 0), ("q", 0), ("threshold", -1), ("pfact", 3),
    ("nbmin", 0), ("ndiv", 1), ("rfact", -1), ("bcast", 6), ("depth", 2),
    ("swap", 3), ("l1form", 2), ("uform", -1), ("equil", 5), ("align", 0),
    ("verify", 2), ("frac", 101),
])
def test_sanity_rejects_each_bad_field(field, value):
    args = default_args(**{field: value})
    assert check_params(params_from(args), size=4) != 0


def test_sanity_rejects_grid_larger_than_world():
    args = default_args(p=3, q=3)
    assert check_params(params_from(args), size=4) != 0
    assert check_params(params_from(args), size=9) == 0


def test_sanity_rejects_nbmin_above_nb():
    args = default_args(nb=4, nbmin=8)
    assert check_params(params_from(args), size=4) != 0


# ----------------------------------------------------------------------
# full distributed solves
# ----------------------------------------------------------------------
def test_solve_default_configuration_passes_residual():
    codes = run_hpl(size=4, n=40, nb=8, p=2, q=2)
    assert all(c == 0 for c in codes.values())


@pytest.mark.parametrize("bcast", [0, 1, 2, 3, 4, 5])
def test_solve_all_bcast_variants(bcast):
    codes = run_hpl(size=6, n=30, nb=7, p=2, q=3, bcast=bcast)
    assert all(c == 0 for c in codes.values())


@pytest.mark.parametrize("pfact,rfact", [(0, 0), (1, 1), (2, 2), (0, 2)])
def test_solve_pfact_rfact_variants(pfact, rfact):
    codes = run_hpl(size=4, n=33, nb=5, p=2, q=2, pfact=pfact, rfact=rfact,
                    nbmin=2, ndiv=3)
    assert all(c == 0 for c in codes.values())


@pytest.mark.parametrize("swap,swap_threshold", [(0, 64), (1, 64), (2, 3),
                                                 (2, 1300)])
def test_solve_swap_variants(swap, swap_threshold):
    codes = run_hpl(size=4, n=29, nb=6, p=2, q=2, swap=swap,
                    swap_threshold=swap_threshold)
    assert all(c == 0 for c in codes.values())


@pytest.mark.parametrize("kw", [
    dict(l1form=1), dict(uform=1), dict(equil=0), dict(depth=1),
    dict(pmap=1), dict(verify=0),
])
def test_solve_form_and_mapping_variants(kw):
    codes = run_hpl(size=4, n=26, nb=5, p=2, q=2, **kw)
    assert all(c == 0 for c in codes.values())


def test_solve_nonsquare_grids_and_surplus_ranks():
    # 1×3 grid with one idle rank
    codes = run_hpl(size=4, n=24, nb=5, p=1, q=3)
    assert all(c == 0 for c in codes.values())
    # 3×1 grid
    codes = run_hpl(size=3, n=24, nb=5, p=3, q=1)
    assert all(c == 0 for c in codes.values())


def test_solve_single_process_grid():
    codes = run_hpl(size=1, n=20, nb=4, p=1, q=1)
    assert codes[0] == 0


def test_solve_block_size_larger_than_n():
    codes = run_hpl(size=4, n=6, nb=7, p=2, q=2)
    assert all(c == 0 for c in codes.values())


def test_solve_n_zero_is_trivial():
    codes = run_hpl(size=4, n=0, nb=4, p=2, q=2)
    assert all(c == 0 for c in codes.values())


def test_solve_multiple_tests_battery():
    codes = run_hpl(size=4, n=18, nb=4, p=2, q=2, ntests=3)
    assert all(c == 0 for c in codes.values())


def test_invalid_input_is_gracefully_rejected():
    codes = run_hpl(size=2, n=-5)
    assert all(c == 0 for c in codes.values())


def test_solution_matches_numpy_reference():
    """End-to-end numeric check against numpy.linalg.solve."""
    from repro.targets.hpl.lu import gen_block

    n, seed = 21, 42
    a = gen_block(0, n, 0, n, n, seed)
    b = gen_block(0, n, n, n + 1, n, seed)[:, 0]
    x_ref = np.linalg.solve(a, b)

    captured = {}

    def prog(mpi):
        from repro.targets.hpl.grid import grid_init
        from repro.targets.hpl.lu import (LocalBlocks, back_substitute,
                                          factorize, gather_matrix)
        from repro.targets.hpl.params import HplParams

        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        args = default_args(n=n, nb=4, p=2, q=2, seed=seed)
        params = HplParams(**{k: args[k] for k in HplParams.__slots__})
        grid = grid_init(mpi, rank, size, 2, 2, 0)
        local = LocalBlocks(n, 4, grid, seed)
        factorize(mpi, grid, local, params)
        full = gather_matrix(grid, local)
        if full is not None:
            captured["x"] = back_substitute(full, n)
        mpi.Finalize()

    res = run_spmd(prog, size=4, timeout=60)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    assert np.allclose(captured["x"], x_ref, atol=1e-8)
