"""Hot-path optimisations change *time*, never *results*.

Three optimisations share one determinism contract
(docs/PERFORMANCE.md):

* **batched coverage probes** (``probe_batching``) — concrete-only
  branch/function probes record into preallocated per-sink hit arrays
  flushed once per run, instead of a recorder call per evaluation.
  Contract: identical trace, coverage map, and serialized log sizes to
  per-call recording, on every target.
* **persistent incremental solving** (``persistent_solver``) — one
  stem frame + prefix ladder alive across iterations replaces per-solve
  re-simplification.  Contract: bit-for-bit the rebuild-every-time
  results — same committed stream, same cache hit/miss/store counters —
  including across a checkpoint/resume boundary.
* **depth-k speculation tree** (``speculation_depth``) — mid-batch
  refills keep the pool saturated.  Contract: ``--workers N`` still
  equals serial; depth 1 reproduces single-generation behaviour.
"""

import pytest

from repro.core import Compi, CompiConfig, TestSetup
from repro.core.persist import CampaignLog
from repro.core.runner import TestRunner
from repro.core.testcase import TestCase
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def race_program():
    prog = instrument_program(["repro.targets.race"])
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def seq_program():
    prog = instrument_program(["repro.targets.seq_demo"])
    yield prog
    prog.unload()


def _cfg(**kw):
    base = dict(seed=7, init_nprocs=3, nprocs_cap=4, test_timeout=10.0)
    base.update(kw)
    return CompiConfig(**base)


def _proj(result):
    """Per-iteration projection, including the per-rank log sizes the
    paper's Table IV measures — byte-level probe-path equivalence."""
    return [(r.iteration, r.origin, r.nprocs, r.path_len, r.event_count,
             r.covered_after, r.error_kind, r.negated_site,
             r.focus_log_size, r.nonfocus_log_avg)
            for r in result.iterations]


def _keys(result):
    return {b.dedup_key for b in result.bugs}


def _solver_counters(result):
    s = result.solver
    return (s.solves, s.cache_hits, s.unsat_hits, s.cache_misses,
            s.stale_hits, s.sat_solves, s.unsat_solves, s.stores,
            s.nodes, s.propagations, s.slice_constraints, s.max_slice)


# ----------------------------------------------------------------------
# batched probes ≡ per-call probes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target,inputs,nprocs", [
    ("repro.targets.demo", {"x": 500, "y": 200}, 3),
    ("repro.targets.race", {"x": 10, "y": 5}, 4),
])
def test_batched_run_matches_per_call_run(target, inputs, nprocs,
                                          request):
    fixture = {"repro.targets.demo": "demo_program",
               "repro.targets.race": "race_program"}[target]
    program = request.getfixturevalue(fixture)
    tc = TestCase(inputs=inputs, setup=TestSetup(nprocs, 0))

    recs = {}
    for batching in (False, True):
        runner = TestRunner(program, _cfg(probe_batching=batching))
        recs[batching] = runner.run(tc)

    per_call, batched = recs[False], recs[True]
    assert batched.trace.path == per_call.trace.path
    assert batched.trace.values == per_call.trace.values
    assert batched.trace.event_count == per_call.trace.event_count
    assert batched.coverage.branches == per_call.coverage.branches
    assert batched.coverage.functions == per_call.coverage.functions
    assert batched.focus_log_size == per_call.focus_log_size
    assert batched.nonfocus_log_sizes == per_call.nonfocus_log_sizes


@pytest.mark.parametrize("fixture", ["demo_program", "race_program"])
def test_batched_campaign_matches_per_call(fixture, request):
    program = request.getfixturevalue(fixture)
    results = {}
    for batching in (False, True):
        compi = Compi(program, _cfg(probe_batching=batching))
        try:
            results[batching] = compi.run(iterations=10)
        finally:
            compi.close()
    assert _proj(results[True]) == _proj(results[False])
    assert results[True].coverage.branches == results[False].coverage.branches
    assert _keys(results[True]) == _keys(results[False])


def test_sink_without_arrays_still_works(demo_program):
    """Directly-constructed sinks (no preallocate) keep the per-call
    path: probes must not assume the arrays exist."""
    runner = TestRunner(demo_program, _cfg(probe_batching=False))
    rec = runner.run(TestCase(inputs={"x": 5, "y": 7},
                              setup=TestSetup(2, 0)))
    assert rec.trace is not None
    assert rec.coverage.covered_branches > 0


# ----------------------------------------------------------------------
# persistent solve session ≡ rebuild every iteration
# ----------------------------------------------------------------------
def test_persistent_session_matches_rebuild(demo_program):
    results = {}
    for persistent in (False, True):
        compi = Compi(demo_program, _cfg(persistent_solver=persistent))
        try:
            results[persistent] = compi.run(iterations=12)
        finally:
            compi.close()
    assert _proj(results[True]) == _proj(results[False])
    assert results[True].coverage.branches == results[False].coverage.branches
    assert _keys(results[True]) == _keys(results[False])
    # the ladder must produce the *same queries*: every cache counter
    # (hits, misses, stores, even backtracking nodes) must agree
    assert _solver_counters(results[True]) == _solver_counters(
        results[False])


def test_persistent_session_across_resume(demo_program, tmp_path):
    """A resumed campaign rebuilds its stem frames from scratch; the
    committed stream must still match an uninterrupted rebuild-mode
    reference bit-for-bit."""
    reference = Compi(demo_program, _cfg(persistent_solver=False))
    try:
        ref = reference.run(iterations=12)
    finally:
        reference.close()

    part_log = tmp_path / "part.jsonl"
    first = Compi(demo_program, _cfg(persistent_solver=True))
    try:
        with CampaignLog(part_log) as log:
            first.run(iterations=5, log=log)
    finally:
        first.close()

    resumed_c = Compi.resume(demo_program, part_log)
    assert resumed_c._iteration == 5
    try:
        with CampaignLog(part_log, mode="a") as log:
            resumed = resumed_c.run(iterations=7, log=log)
    finally:
        resumed_c.close()

    assert _proj(resumed) == _proj(ref)
    assert resumed.coverage.branches == ref.coverage.branches
    assert _keys(resumed) == _keys(ref)


# ----------------------------------------------------------------------
# depth-k speculation tree ≡ serial
# ----------------------------------------------------------------------
def test_depth_k_speculation_matches_serial(seq_program):
    serial = Compi(seq_program, _cfg())
    try:
        rs = serial.run(iterations=12)
    finally:
        serial.close()

    par = Compi(seq_program, _cfg(workers=2, speculation_width=4,
                                  speculation_depth=4))
    try:
        rp = par.run(iterations=12)
        refills = par.engine.speculation_refills
    finally:
        par.close()

    assert _proj(rs) == _proj(rp)
    assert rs.coverage.branches == rp.coverage.branches
    assert _keys(rs) == _keys(rp)
    assert refills >= 0  # telemetry wired (value is target-dependent)


def test_depth_one_reproduces_single_generation(seq_program):
    """``speculation_depth=1`` must never refill mid-batch."""
    par = Compi(seq_program, _cfg(workers=2, speculation_width=4,
                                  speculation_depth=1))
    try:
        par.run(iterations=10)
        assert par.engine.speculation_refills == 0
    finally:
        par.close()


def test_all_three_optimisations_compose(demo_program):
    """Everything on vs everything off: the full hot-path stack is one
    committed stream."""
    off = Compi(demo_program, _cfg(probe_batching=False,
                                   persistent_solver=False,
                                   speculation_depth=1))
    try:
        r_off = off.run(iterations=10)
    finally:
        off.close()

    on = Compi(demo_program, _cfg(workers=2, speculation_width=3,
                                  speculation_depth=4))
    try:
        r_on = on.run(iterations=10)
    finally:
        on.close()

    assert _proj(r_on) == _proj(r_off)
    assert r_on.coverage.branches == r_off.coverage.branches
    assert _keys(r_on) == _keys(r_off)
