"""Crash-safe persistence: log modes, torn tails, checkpointed resume."""

import json

import pytest

from repro.core import Compi, CompiConfig
from repro.core.persist import (CampaignLog, checkpoint_path, load_campaign,
                                load_checkpoint, read_records,
                                write_checkpoint)
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def seq_program():
    prog = instrument_program(["repro.targets.seq_demo"])
    yield prog
    prog.unload()


CFG = CompiConfig(seed=3, init_nprocs=2, nprocs_cap=4, test_timeout=5.0)


def _keys(result):
    return {b.dedup_key for b in result.bugs}


# ----------------------------------------------------------------------
# CampaignLog modes
# ----------------------------------------------------------------------
def test_log_refuses_to_clobber_by_default(tmp_path):
    p = tmp_path / "c.jsonl"
    p.write_text('{"type": "meta"}\n')
    with pytest.raises(FileExistsError, match="already exists"):
        with CampaignLog(p):
            pass
    assert p.read_text() == '{"type": "meta"}\n'  # untouched


def test_log_mode_w_overwrites_and_a_appends(tmp_path):
    p = tmp_path / "c.jsonl"
    with CampaignLog(p, mode="w") as log:
        log._write({"type": "x", "n": 1})
    with CampaignLog(p, mode="a") as log:
        log._write({"type": "x", "n": 2})
    assert [r["n"] for r in read_records(p)] == [1, 2]
    with CampaignLog(p, mode="w") as log:
        log._write({"type": "x", "n": 3})
    assert [r["n"] for r in read_records(p)] == [3]


def test_log_rejects_bad_mode(tmp_path):
    with pytest.raises(ValueError, match="mode"):
        CampaignLog(tmp_path / "c.jsonl", mode="r")


# ----------------------------------------------------------------------
# torn-tail tolerance
# ----------------------------------------------------------------------
def test_truncated_final_line_is_skipped(tmp_path):
    p = tmp_path / "c.jsonl"
    p.write_text('{"type": "meta", "program": "x", "config": {}, '
                 '"total_branches": 1}\n'
                 '{"type": "iteration", "iteration": 0, "origin"')
    records = list(read_records(p))
    assert len(records) == 1 and records[0]["type"] == "meta"


def test_corruption_in_the_middle_still_raises(tmp_path):
    p = tmp_path / "c.jsonl"
    p.write_text('{"type": "meta"\n{"type": "coverage"}\n')
    with pytest.raises(json.JSONDecodeError):
        list(read_records(p))


def test_checkpoint_roundtrip_and_damage_tolerance(tmp_path):
    p = tmp_path / "c.jsonl"
    write_checkpoint(p, {"iteration": 7, "caps": {"x": 3}})
    assert load_checkpoint(p) == {"iteration": 7, "caps": {"x": 3}}
    checkpoint_path(p).write_bytes(b"\x80garbage")
    assert load_checkpoint(p) is None  # damaged sidecar, not an exception
    assert load_checkpoint(tmp_path / "absent.jsonl") is None


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------
def test_resume_matches_uninterrupted_run(seq_program, tmp_path):
    """Kill after 5 iterations, resume for 7: same coverage, same bugs,
    same iteration projections as 12 straight iterations."""
    full_log = tmp_path / "full.jsonl"
    with CampaignLog(full_log) as log:
        full = Compi(seq_program, CFG).run(iterations=12, log=log)

    part_log = tmp_path / "part.jsonl"
    with CampaignLog(part_log) as log:
        Compi(seq_program, CFG).run(iterations=5, log=log)

    resumed_c = Compi.resume(seq_program, part_log)
    assert resumed_c._iteration == 5
    with CampaignLog(part_log, mode="a") as log:
        resumed = resumed_c.run(iterations=7, log=log)

    assert resumed.coverage.branches == full.coverage.branches
    assert _keys(resumed) == _keys(full)
    assert len(resumed.iterations) == 12
    proj = lambda it: [(r.iteration, r.origin, r.nprocs, r.path_len,
                        r.covered_after, r.error_kind, r.negated_site)
                       for r in it]
    assert proj(resumed.iterations) == proj(full.iterations)
    # the appended log reloads as one coherent 12-iteration campaign
    data = load_campaign(part_log)
    assert len(data["iterations"]) == 12
    assert data["cov_branches"] == full.coverage.branches


def test_resume_without_checkpoint_falls_back_to_jsonl(seq_program, tmp_path):
    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        first = Compi(seq_program, CFG).run(iterations=6, log=log)
    checkpoint_path(p).unlink()

    resumed = Compi.resume(seq_program, p)
    # coverage, bugs and counters survive via the JSONL cov deltas
    assert resumed.coverage.branches == first.coverage.branches
    assert {b.dedup_key for b in resumed.bugs} == _keys(first)
    assert resumed._iteration == 6
    result = resumed.run(iterations=2)
    assert len(result.iterations) == 8


def test_jsonl_fallback_resume_is_not_a_restart(seq_program, tmp_path):
    """The degraded resume synthesizes a continuation test case: it must
    not inflate the restart counter or clear infeasible verdicts the way
    a genuine mid-campaign restart does."""
    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        Compi(seq_program, CFG).run(iterations=6, log=log)
    checkpoint_path(p).unlink()

    resumed = Compi.resume(seq_program, p)
    assert resumed._restarts == 0
    assert resumed._next.origin == "resume"
    # the synthesized continuation is runnable
    result = resumed.run(iterations=1)
    assert result.iterations[-1].origin == "resume"


def test_resume_tolerates_torn_tail(seq_program, tmp_path):
    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        Compi(seq_program, CFG).run(iterations=4, log=log)
    checkpoint_path(p).unlink()
    raw = p.read_bytes()
    p.write_bytes(raw[:-15])  # crash mid-record

    resumed = Compi.resume(seq_program, p)
    assert resumed._iteration >= 3
    assert resumed.coverage.covered_branches > 0


def test_pre_portfolio_checkpoint_defaults_to_single_arm(seq_program,
                                                         tmp_path):
    """Checkpoints written before the portfolio subsystem have no
    "portfolio" key; resume must fall back to a single-arm campaign
    (like the pre-cache tolerance) even when the requested config asks
    for a portfolio — there is no arm state to restore."""
    from repro.engine import Scheduler

    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        Compi(seq_program, CFG).run(iterations=4, log=log)
    state = load_checkpoint(p)
    del state["portfolio"]  # what an old-version checkpoint looks like
    write_checkpoint(p, state)

    wants_portfolio = CFG.with_(portfolio=("dfs2", "bounded"))
    resumed = Compi.resume(seq_program, p, config=wants_portfolio)
    assert resumed.config.portfolio == ()
    assert type(resumed.scheduler) is Scheduler
    assert resumed._iteration == 4
    result = resumed.run(iterations=2)
    assert len(result.iterations) == 6
    assert all(r.arm == "" for r in result.iterations)
    assert result.portfolio is None


def test_streamed_log_equals_batch_save(seq_program, tmp_path):
    """The incremental writer and save_campaign agree on content."""
    from repro.core.persist import save_campaign

    streamed = tmp_path / "s.jsonl"
    with CampaignLog(streamed) as log:
        result = Compi(seq_program, CFG).run(iterations=5, log=log)
    batch = save_campaign(result, tmp_path / "b.jsonl", config=CFG)

    a, b = load_campaign(streamed), load_campaign(batch)
    assert a["meta"] == b["meta"]
    assert [r.iteration for r in a["iterations"]] == \
        [r.iteration for r in b["iterations"]]
    assert {x.dedup_key for x in a["bugs"]} == {x.dedup_key for x in b["bugs"]}
    assert a["coverage"]["branches"] == b["coverage"]["branches"]
