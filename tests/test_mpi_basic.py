"""Unit tests for the virtual MPI runtime: lifecycle, rank/size, errors."""

import pytest

from repro.mpi import (MpiAbort, MpiContext, MpiInternalError, MpiInvalidRank,
                       ProcSet, mpiexec, run_spmd)


def test_single_rank_runs_and_returns_exit_code():
    def prog(mpi):
        mpi.Init()
        assert mpi.Comm_rank(mpi.COMM_WORLD) == 0
        assert mpi.Comm_size(mpi.COMM_WORLD) == 1
        mpi.Finalize()
        return 0

    res = run_spmd(prog, size=1)
    assert res.ok
    assert res.outcomes[0].exit_code == 0


def test_ranks_see_distinct_ids_and_shared_size():
    seen = {}

    def prog(mpi):
        mpi.Init()
        seen[mpi.Comm_rank(mpi.COMM_WORLD)] = mpi.Comm_size(mpi.COMM_WORLD)
        mpi.Finalize()

    res = run_spmd(prog, size=4)
    assert res.ok
    assert sorted(seen) == [0, 1, 2, 3]
    assert set(seen.values()) == {4}


def test_double_init_is_an_error():
    def prog(mpi):
        mpi.Init()
        mpi.Init()

    res = run_spmd(prog, size=1)
    assert not res.ok
    assert isinstance(res.outcomes[0].error, MpiInternalError)


def test_finalize_before_init_is_an_error():
    def prog(mpi):
        mpi.Finalize()

    res = run_spmd(prog, size=1)
    assert isinstance(res.outcomes[0].error, MpiInternalError)


def test_abort_tears_down_all_ranks():
    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 1:
            mpi.Abort(42)
        # everyone else blocks; the abort must unwind them
        mpi.COMM_WORLD.Recv(source=1, tag=9)

    res = run_spmd(prog, size=3, timeout=10)
    assert res.abort_code == 42
    assert res.abort_origin == 1
    assert isinstance(res.outcomes[1].error, MpiAbort)


def test_uncaught_exception_stops_job_and_is_reported():
    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            raise ZeroDivisionError("seeded")
        mpi.COMM_WORLD.Recv(source=0)

    res = run_spmd(prog, size=2, timeout=10)
    assert not res.ok
    err = res.first_error()
    assert err is not None and err.global_rank == 0
    assert isinstance(err.error, ZeroDivisionError)
    # rank 1 was unwound by the runtime, not by its own bug
    assert res.outcomes[1].interrupted


def test_timeout_flags_hang():
    def prog(mpi):
        mpi.Init()
        if mpi.Comm_rank(mpi.COMM_WORLD) == 0:
            mpi.COMM_WORLD.Recv(source=0, tag=77)  # nobody ever sends

    # deadlock detection off: exercise the watchdog fallback path
    res = run_spmd(prog, size=1, timeout=0.3, detect_deadlocks=False)
    assert res.timed_out
    assert res.deadlock is None


def test_invalid_dest_rank_raises():
    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Send(1, dest=5)

    res = run_spmd(prog, size=2, timeout=5)
    err = res.first_error()
    assert isinstance(err.error, MpiInvalidRank)


def test_mpmd_launch_blocks_assign_ranks_in_order():
    kinds = {}

    def prog_a(mpi):
        mpi.Init()
        kinds[mpi.Comm_rank(mpi.COMM_WORLD)] = "a"

    def prog_b(mpi):
        mpi.Init()
        kinds[mpi.Comm_rank(mpi.COMM_WORLD)] = "b"

    res = mpiexec([ProcSet(2, prog_a), ProcSet(1, prog_b), ProcSet(1, prog_a)])
    assert res.ok
    assert kinds == {0: "a", 1: "a", 2: "b", 3: "a"}


def test_empty_launch_rejected():
    with pytest.raises(ValueError):
        mpiexec([])


def test_wtime_monotonic():
    ticks = []

    def prog(mpi):
        mpi.Init()
        ticks.append(mpi.Wtime())
        ticks.append(mpi.Wtime())

    res = run_spmd(prog, size=1)
    assert res.ok
    assert ticks[1] >= ticks[0] >= 0.0
