"""Property-based tests across the concolic pipeline.

These tie the layers together: programs built from random linear
branch conditions are executed through real instrumentation, and the
engine's negated models must actually flip the targeted branch on
re-execution (no divergence possible for straight-line linear code).
"""

from hypothesis import given, settings, strategies as st

from repro.concolic import HeavySink, sink_scope
from repro.instrument import SiteRegistry, make_probes, instrument_source
from repro.solver import Solver, solve_incremental
from repro.core import CompiConfig
from repro.core.semantics import solver_domains


def build_program(conditions):
    """Compile an instrumented straight-line program with one `if` per
    (a, b, c) triple testing  a*x + b*y + c > 0."""
    lines = ["def f(x, y):", "    taken = []"]
    for (a, b, c) in conditions:
        lines.append(f"    if {a} * x + {b} * y + {c} > 0:")
        lines.append("        taken.append(True)")
        lines.append("    else:")
        lines.append("        taken.append(False)")
    lines.append("    return taken")
    src = "\n".join(lines) + "\n"
    registry = SiteRegistry()
    tree = instrument_source(src, "prog", registry)
    ns = dict(make_probes(registry))
    exec(compile(tree, "<prog>", "exec"), ns)
    return ns["f"], registry


def execute(f, x_val, y_val):
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", x_val)
        y = sink.mark_input("y", y_val)
        taken = f(x, y)
    return sink.result(), taken


coeff = st.integers(-5, 5)
conditions_strategy = st.lists(
    st.tuples(coeff, coeff, st.integers(-20, 20)), min_size=1, max_size=5)


@settings(max_examples=40, deadline=None)
@given(conditions_strategy, st.integers(-50, 50), st.integers(-50, 50),
       st.integers(0, 4))
def test_negated_model_flips_exactly_the_target_branch(conds, x0, y0, pos_seed):
    f, registry = build_program(conds)
    trace, taken = execute(f, x0, y0)
    # straight-line: every condition evaluated once, in order
    assert len(taken) == len(conds)
    symbolic_positions = list(range(len(trace.path)))
    if not symbolic_positions:
        return  # all conditions were concrete-trivial (zero coefficients)
    pos = symbolic_positions[pos_seed % len(symbolic_positions)]

    cfg = CompiConfig(input_min=-1000, input_max=1000)
    domains = solver_domains(trace, cfg)
    prefix = [pe.constraint for pe in trace.path[:pos]]
    negated = trace.path[pos].constraint.negated()
    res = solve_incremental(prefix, negated, domains, dict(trace.values),
                            solver=Solver())
    if res is None:
        return  # genuinely UNSAT under the prefix (e.g. contradictory)

    trace2, _ = execute(f, res.assignment[0], res.assignment[1])
    # the prefix is preserved and the target branch flipped
    for i in range(pos):
        assert trace2.path[i].site == trace.path[i].site
        assert trace2.path[i].outcome == trace.path[i].outcome
    assert trace2.path[pos].site == trace.path[pos].site
    assert trace2.path[pos].outcome == (not trace.path[pos].outcome)


@settings(max_examples=30, deadline=None)
@given(conditions_strategy, st.integers(-50, 50), st.integers(-50, 50))
def test_path_constraints_hold_under_their_own_model(conds, x0, y0):
    """Every recorded constraint is oriented to HOLD for the inputs that
    produced it — the invariant negation relies on."""
    f, _ = build_program(conds)
    trace, _ = execute(f, x0, y0)
    assignment = dict(trace.values)
    for pe in trace.path:
        assert pe.constraint.evaluate(assignment)


@settings(max_examples=30, deadline=None)
@given(conditions_strategy, st.integers(-50, 50), st.integers(-50, 50))
def test_execution_is_deterministic(conds, x0, y0):
    f, _ = build_program(conds)
    t1, taken1 = execute(f, x0, y0)
    t2, taken2 = execute(f, x0, y0)
    assert taken1 == taken2
    assert [(p.site, p.outcome) for p in t1.path] == \
           [(p.site, p.outcome) for p in t2.path]
