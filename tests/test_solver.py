"""Tests for interval propagation, the backtracking solver, and
incremental solving (previous-value preference, dependency slicing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.concolic.expr import Constraint, LinearExpr
from repro.solver import (Problem, Solver, check_assignment, dependent_slice,
                          propagate, solve_incremental)


def le(coeffs, const):
    """sum(coeffs*x) + const <= 0"""
    return Constraint(LinearExpr(coeffs, const), "<=")


def eq(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "==")


def ne(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "!=")


def lt(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "<")


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
def test_propagate_tightens_upper_bound():
    box = {0: (-100, 100)}
    assert propagate([le({0: 1}, -10)], box)      # x - 10 <= 0
    assert box[0] == (-100, 10)


def test_propagate_tightens_lower_bound_with_negative_coeff():
    box = {0: (-100, 100)}
    assert propagate([le({0: -1}, 5)], box)       # -x + 5 <= 0 → x >= 5
    assert box[0] == (5, 100)


def test_propagate_equality_collapses():
    box = {0: (-100, 100)}
    assert propagate([eq({0: 1}, -42)], box)      # x == 42
    assert box[0] == (42, 42)


def test_propagate_detects_unsat():
    box = {0: (0, 10)}
    assert not propagate([le({0: -1}, 50)], box)  # x >= 50 with x <= 10


def test_propagate_chains_through_shared_vars():
    # x == y, y == 7
    box = {0: (-100, 100), 1: (-100, 100)}
    assert propagate([eq({0: 1, 1: -1}, 0), eq({1: 1}, -7)], box)
    assert box[0] == (7, 7) and box[1] == (7, 7)


def test_propagate_integer_division_rounds_correctly():
    box = {0: (-100, 100)}
    assert propagate([le({0: 2}, -7)], box)       # 2x <= 7 → x <= 3
    assert box[0][1] == 3
    box = {0: (-100, 100)}
    assert propagate([le({0: -2}, 7)], box)       # -2x + 7 <= 0 → x >= 3.5 → 4
    assert box[0][0] == 4


# ----------------------------------------------------------------------
# solver
# ----------------------------------------------------------------------
def test_solver_simple_sat():
    p = Problem(constraints=[lt({0: 1}, -100)],      # x < 100
                domains={0: (-1000, 1000)})
    model = Solver().solve(p)
    assert model is not None and model[0] < 100


def test_solver_prefers_previous_value():
    p = Problem(constraints=[lt({0: 1}, -100)],
                domains={0: (-1000, 1000)}, previous={0: 57})
    model = Solver().solve(p)
    assert model == {0: 57}


def test_solver_moves_off_previous_only_when_forced():
    # x != 57 forces a change; y keeps its previous value
    p = Problem(constraints=[ne({0: 1}, -57), le({1: 1}, -10)],
                domains={0: (0, 100), 1: (0, 10)},
                previous={0: 57, 1: 3})
    model = Solver().solve(p)
    assert model[0] != 57
    assert model[1] == 3


def test_solver_equality_chain():
    # x0 == x1 == x2 == 5  (like the rw equality constraints)
    p = Problem(constraints=[eq({0: 1, 1: -1}, 0), eq({1: 1, 2: -1}, 0),
                             eq({2: 1}, -5)],
                domains={v: (0, 100) for v in range(3)})
    model = Solver().solve(p)
    assert model == {0: 5, 1: 5, 2: 5}


def test_solver_unsat_returns_none():
    p = Problem(constraints=[le({0: 1}, -5), le({0: -1}, 10)],  # x<=5, x>=10
                domains={0: (-100, 100)})
    assert Solver().solve(p) is None


def test_solver_disequality_with_collapsed_domain_unsat():
    p = Problem(constraints=[eq({0: 1}, -5), ne({0: 1}, -5)],
                domains={0: (-100, 100)})
    assert Solver().solve(p) is None


def test_solver_mpi_semantics_shape():
    """rank/size shape: x0=x1, z0=z1, x0<z0, 0<=x0, 1<=z0<=16, negate x0=0."""
    constraints = [
        eq({0: 1, 1: -1}, 0),          # x0 == x1
        eq({2: 1, 3: -1}, 0),          # z0 == z1
        lt({0: 1, 2: -1}, 0),          # x0 < z0
        ne({0: 1}, 0),                 # negated: x0 != 0
    ]
    p = Problem(constraints=constraints,
                domains={0: (0, 15), 1: (0, 15), 2: (1, 16), 3: (1, 16)},
                previous={0: 0, 1: 0, 2: 8, 3: 8})
    model = Solver().solve(p)
    assert model is not None
    assert model[0] == model[1] != 0
    assert model[2] == model[3]
    assert model[0] < model[2]


def test_solver_requires_domains_for_all_constraint_vars():
    p = Problem(constraints=[le({7: 1}, 0)], domains={})
    with pytest.raises(KeyError):
        Solver().solve(p)


def test_solver_node_limit_gives_up_cleanly():
    # a dense, hard instance with a tiny node budget
    constraints = [ne({v: 1, (v + 1) % 6: -1}, 0) for v in range(6)]
    p = Problem(constraints=constraints, domains={v: (0, 1) for v in range(6)})
    s = Solver(node_limit=1)
    assert s.solve(p) is None  # odd cycle over {0,1} is UNSAT anyway
    assert s.stats.nodes >= 1


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.dictionaries(st.integers(0, 3), st.integers(-4, 4), min_size=1, max_size=3),
        st.integers(-20, 20),
        st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    ),
    max_size=5,
))
def test_solver_models_always_verify(specs):
    """Soundness: any model the solver returns satisfies every constraint."""
    constraints = [Constraint(LinearExpr(c, k), op) for c, k, op in specs]
    domains = {v: (-50, 50) for v in range(4)}
    model = Solver(rng=np.random.default_rng(1)).solve(
        Problem(constraints=constraints, domains=domains))
    if model is not None:
        assert check_assignment(constraints, model)
        assert set(model) == set(domains)


@settings(max_examples=40, deadline=None)
@given(st.integers(-30, 30), st.integers(-30, 30))
def test_solver_finds_known_solution(a, b):
    """Completeness on easy instances: x == a, y == b is always found."""
    p = Problem(constraints=[eq({0: 1}, -a), eq({1: 1}, -b)],
                domains={0: (-50, 50), 1: (-50, 50)})
    assert Solver().solve(p) == {0: a, 1: b}


# ----------------------------------------------------------------------
# dependency slicing / incremental solving
# ----------------------------------------------------------------------
def test_dependent_slice_transitive_closure():
    cs = [le({0: 1, 1: 1}, 0),   # shares 0 → in
          le({1: 1, 2: 1}, 0),   # shares 1 transitively → in
          le({5: 1}, 0)]         # disjoint → out
    sliced, closed = dependent_slice(cs, frozenset({0}))
    assert sliced == cs[:2]
    assert closed == frozenset({0, 1, 2})


def test_dependent_slice_empty_seed():
    cs = [le({0: 1}, 0)]
    sliced, closed = dependent_slice(cs, frozenset())
    assert sliced == [] and closed == frozenset()


def test_dependent_slice_fully_disconnected():
    # every constraint disjoint from the seed and from each other
    cs = [le({1: 1}, 0), le({2: 1}, 0), le({3: 1}, 0)]
    sliced, closed = dependent_slice(cs, frozenset({0}))
    assert sliced == []
    assert closed == frozenset({0})    # the seed var alone stays closed


def test_dependent_slice_chain_closes_transitively():
    # 0—1, 1—2, 2—3: reaching constraint (2,3) needs two closure rounds
    # because the list order puts it *before* the links that justify it
    cs = [le({2: 1, 3: 1}, 0),
          le({1: 1, 2: 1}, 0),
          le({0: 1, 1: 1}, 0),
          le({7: 1, 8: 1}, 0)]         # island, must stay out
    sliced, closed = dependent_slice(cs, frozenset({0}))
    assert set(id(c) for c in sliced) == set(id(c) for c in cs[:3])
    assert closed == frozenset({0, 1, 2, 3})


def test_dependent_slice_preserves_input_order():
    cs = [le({2: 1, 3: 1}, 0), le({1: 1, 2: 1}, 0), le({0: 1, 1: 1}, 0)]
    sliced, _ = dependent_slice(cs, frozenset({0}))
    assert sliced == cs                # original order, not discovery order


def test_solve_incremental_keeps_unrelated_vars():
    context = [le({0: 1}, -100)]                 # x <= 100
    negated = ne({0: 1}, -7)                     # x != 7
    domains = {0: (0, 200), 1: (0, 200)}
    previous = {0: 7, 1: 55}
    res = solve_incremental(context, negated, domains, previous)
    assert res is not None
    assert res.assignment[1] == 55               # untouched var keeps value
    assert res.assignment[0] != 7
    assert res.changed == {0}
    assert res.slice_size == 2


def test_solve_incremental_unsat():
    context = [eq({0: 1}, -5)]
    negated = ne({0: 1}, -5)
    assert solve_incremental(context, negated, {0: (0, 10)}, {0: 5}) is None


def test_solve_incremental_changed_propagates_through_equalities():
    # x0 == x1, negate x0 == 0 → both change together ("most up-to-date")
    context = [eq({0: 1, 1: -1}, 0)]
    negated = ne({0: 1}, 0)
    res = solve_incremental(context, negated, {0: (0, 15), 1: (0, 15)},
                            {0: 0, 1: 0})
    assert res is not None
    assert res.assignment[0] == res.assignment[1] != 0
    assert res.changed == {0, 1}
