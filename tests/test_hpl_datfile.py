"""Tests for HPL.dat rendering/parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.targets.hpl.datfile import (DatError, FIELDS, parse, render,
                                       read_args_from_dat, write_dat)
from repro.targets.hpl.main import INPUT_SPEC


def default_args(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return args


def test_roundtrip_defaults():
    args = default_args()
    assert parse(render(args)) == {k: int(v) for k, v in args.items()}


@given(st.dictionaries(
    st.sampled_from([k for k, _l, _x in FIELDS]),
    st.integers(-10 ** 6, 10 ** 6),
    min_size=0, max_size=6))
def test_roundtrip_arbitrary_overrides(overrides):
    args = default_args(**overrides)
    assert parse(render(args)) == args


def test_fields_cover_the_input_spec():
    assert {k for k, _l, _x in FIELDS} == set(INPUT_SPEC)


def test_render_missing_key_rejected():
    args = default_args()
    del args["nb"]
    with pytest.raises(DatError, match="nb"):
        render(args)


def test_parse_rejects_truncated_file():
    text = render(default_args())
    truncated = "\n".join(text.splitlines()[:10])
    with pytest.raises(DatError, match="end of file"):
        parse(truncated)


def test_parse_rejects_noninteger():
    text = render(default_args()).replace("1            # of n entries",
                                          "xyz          # of n entries", 1)
    with pytest.raises(DatError, match="non-integer"):
        parse(text)


def test_parse_rejects_bad_list_count():
    text = render(default_args()).replace("1            # of n entries",
                                          "0            # of n entries", 1)
    with pytest.raises(DatError, match="count"):
        parse(text)


def test_parse_rejects_empty():
    with pytest.raises(DatError, match="header"):
        parse("")


def test_file_roundtrip(tmp_path):
    args = default_args(n=123, nb=17)
    path = tmp_path / "HPL.dat"
    write_dat(args, path)
    assert read_args_from_dat(path)["n"] == 123


def test_campaign_through_dat_files(tmp_path):
    """End-to-end: run the HPL target with inputs that round-trip through
    an actual HPL.dat file, like the C original."""
    from repro.mpi import run_spmd
    from repro.targets.hpl.main import main as hpl_main

    args = default_args(n=16, nb=4, p=2, q=2)
    path = tmp_path / "HPL.dat"
    write_dat(args, path)

    def prog(mpi):
        loaded = read_args_from_dat(path)
        return hpl_main(mpi, loaded)

    res = run_spmd(prog, size=4, timeout=30)
    assert res.ok
    assert all(o.exit_code == 0 for o in res.outcomes)
