"""Portfolio search: bandit, shared frontier, and campaign determinism.

The portfolio's crown-jewel claim is that it keeps the staged engine's
determinism contract while multiplexing several strategy arms over one
shared :class:`ExecutionTree` frontier — fixed seed ⇒ ``--workers N`` ≡
serial, cache-on ≡ cache-off, ``--resume`` ≡ uninterrupted.  Each of
those is asserted here with full per-iteration projections (including
the committed arm attribution), not just final tallies.
"""

import pickle

import numpy as np
import pytest

from repro.concolic.coverage import CoverageMap
from repro.concolic.expr import Constraint, LinearExpr
from repro.concolic.trace import PathEntry
from repro.core import Compi, CompiConfig
from repro.core.persist import CampaignLog, load_campaign
from repro.instrument import instrument_program
from repro.portfolio import (DEFAULT_PORTFOLIO, UcbBandit, canonical_arm,
                             iteration_cost, parse_portfolio)
from repro.search import (BoundedDFS, ExecutionTree, StrategyContext,
                          TwoPhaseDFS)


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def seq_program():
    prog = instrument_program(["repro.targets.seq_demo"])
    yield prog
    prog.unload()


ARMS = ("dfs2", "bounded", "random", "cfg")


def _cfg(**kw):
    base = dict(seed=7, init_nprocs=2, nprocs_cap=4, test_timeout=5.0,
                portfolio=ARMS)
    base.update(kw)
    return CompiConfig(**base)


def _proj(result):
    """Per-iteration projection incl. the commit-order arm attribution."""
    return [(r.iteration, r.origin, r.arm, r.nprocs, r.path_len,
             r.covered_after, r.error_kind, r.negated_site)
            for r in result.iterations]


def _pf_det(pf):
    """The deterministic slice of the portfolio snapshot: everything the
    bandit acts on.  Measured solver seconds (and the solve count, which
    the cache legitimately shrinks) are telemetry-only and excluded."""
    return {
        "active": pf["active"],
        "exploration": pf["exploration"],
        "arms": [{k: v for k, v in a.items()
                  if k not in ("solver_time", "solver_solves")}
                 for a in pf["arms"]],
    }


def entry(site, outcome):
    c = Constraint(LinearExpr({0: 1}, -site), "<")
    return PathEntry(site, outcome, c if outcome else c.negated())


def path(*pairs):
    return [entry(s, o) for s, o in pairs]


def ctx(p, iteration=0):
    return StrategyContext(path=p, coverage=CoverageMap(),
                           iteration=iteration)


# ----------------------------------------------------------------------
# arm registry
# ----------------------------------------------------------------------
def test_parse_portfolio_aliases_and_separators():
    assert parse_portfolio("dfs2,bounded,random,cfg") == ARMS
    assert parse_portfolio("dfs2+bounded+random+cfg") == ARMS
    assert parse_portfolio("two-phase,random-branch,uniform-random") == \
        ("dfs2", "random", "uniform")
    assert parse_portfolio("") == DEFAULT_PORTFOLIO
    assert parse_portfolio("default") == DEFAULT_PORTFOLIO
    assert parse_portfolio(["dfs", "cfg"]) == ("dfs", "cfg")


def test_parse_portfolio_rejects_unknown_and_duplicates():
    with pytest.raises(ValueError, match="unknown portfolio arm"):
        parse_portfolio("dfs2,quantum")
    with pytest.raises(ValueError, match="duplicate"):
        parse_portfolio("dfs2,two-phase")  # alias of the same arm
    with pytest.raises(ValueError, match="unknown portfolio arm"):
        canonical_arm("nope")


# ----------------------------------------------------------------------
# bandit
# ----------------------------------------------------------------------
def test_bandit_bootstraps_every_arm_in_order():
    b = UcbBandit(("a", "b", "c"), exploration=0.5, seed=1)
    order = []
    for _ in range(3):
        i = b.select()
        order.append(i)
        b.update(i, gain=0, cost=1.0)
    assert order == [0, 1, 2]


def test_bandit_exploits_the_productive_arm():
    b = UcbBandit(("good", "bad"), exploration=0.1, seed=0)
    pulls = [0, 0]
    for _ in range(60):
        i = b.select()
        pulls[i] += 1
        b.update(i, gain=3.0 if i == 0 else 0.0, cost=1.0)
    assert pulls[0] > 4 * pulls[1]


def test_bandit_explores_when_rewards_dry_up():
    """Once no arm gains coverage, the exploration bonus must keep every
    arm in rotation instead of starving all but one."""
    b = UcbBandit(("a", "b", "c"), exploration=0.5, seed=3)
    pulls = [0, 0, 0]
    for _ in range(90):
        i = b.select()
        pulls[i] += 1
        b.update(i, gain=0.0, cost=1.0)
    assert all(p > 10 for p in pulls)


def test_bandit_is_deterministic_and_state_roundtrips():
    def drive(b, n):
        out = []
        for k in range(n):
            i = b.select()
            out.append(i)
            b.update(i, gain=float(k % 3 == 0), cost=1.0 + 0.1 * i)
        return out

    a = UcbBandit(ARMS, exploration=0.5, seed=42)
    b = UcbBandit(ARMS, exploration=0.5, seed=42)
    assert drive(a, 40) == drive(b, 40)

    # pickle-roundtrip the state mid-stream: selections must continue
    # exactly (this is what checkpoint/resume leans on)
    state = pickle.loads(pickle.dumps(a.state_dict()))
    c = UcbBandit(ARMS, exploration=0.5, seed=0)
    c.load_state(state)
    assert drive(a, 25) == drive(c, 25)


def test_bandit_rejects_mismatched_checkpoint():
    a = UcbBandit(("x", "y"))
    with pytest.raises(ValueError, match="does not match"):
        UcbBandit(("x", "z")).load_state(a.state_dict())


def test_iteration_cost_is_deterministic_and_monotone():
    class T:
        def __init__(self, n):
            self.event_count = n

    assert iteration_cost(None) == 1.0
    assert iteration_cost(T(0)) == 1.0
    assert iteration_cost(T(512)) > iteration_cost(T(256)) > 1.0


# ----------------------------------------------------------------------
# shared-frontier ExecutionTree semantics
# ----------------------------------------------------------------------
def test_two_arms_share_explored_state():
    """Interleaved inserts from two arms agree on explored/infeasible."""
    tree = ExecutionTree()
    a = TwoPhaseDFS(rng=np.random.default_rng(0), tree=tree)
    b = BoundedDFS(rng=np.random.default_rng(1), tree=tree)
    assert a.tree is b.tree

    p1 = path((1, True), (2, False))
    a.register_execution(p1)
    b.note_foreign_execution(p1)
    # arm B sees arm A's exploration without inserting again
    assert b.tree.flip_status(p1, 1) == "unexplored"
    assert tree.paths_inserted == 1

    p2 = path((1, True), (2, True))  # B explores the flip of p1[1]
    b.register_execution(p2)
    a.note_foreign_execution(p2)
    assert a.tree.flip_status(p1, 1) == "explored"
    assert b.tree.flip_status(p2, 1) == "explored"
    assert tree.paths_inserted == 2

    # B proposes only still-unexplored flips — position 0 here
    assert list(b.propose(ctx(p1))) == [0]


def test_foreign_execution_updates_bound_observation_only():
    """note_foreign_execution feeds two-phase bound derivation but must
    not double-count tree bookkeeping."""
    tree = ExecutionTree()
    a = TwoPhaseDFS(observe_iterations=0, slack=1.0,
                    rng=np.random.default_rng(0), tree=tree)
    b = BoundedDFS(rng=np.random.default_rng(1), tree=tree)

    long_path = path(*[(i, True) for i in range(1, 8)])
    b.register_execution(long_path)
    a.note_foreign_execution(long_path)
    assert a.max_path_seen == 7
    assert tree.paths_inserted == 1
    # the derived phase-2 bound reflects the sibling's observation
    assert a.current_bound(ctx(path((1, True)), iteration=5)) == 7


def test_infeasibility_is_shared_and_cleared_by_execution():
    """A divergence one arm records steers its sibling too; a later
    execution of that direction (by either arm) rehabilitates it."""
    tree = ExecutionTree()
    a = BoundedDFS(rng=np.random.default_rng(0), tree=tree)
    b = BoundedDFS(rng=np.random.default_rng(1), tree=tree)

    p = path((1, True), (2, True))
    a.register_execution(p)
    a.mark_infeasible(p, 0)  # A's divergence handling
    tree.note_divergence()
    # B skips the flip A proved pointless — no re-derivation
    assert list(b.propose(ctx(p))) == [1]
    assert tree.divergences == 1

    # B later actually executes the "infeasible" direction: feasible
    # after all, and both arms see it as explored
    b.register_execution(path((1, False)))
    assert a.tree.flip_status(p, 0) == "explored"
    assert list(a.propose(ctx(p))) == [1]


def test_divergence_does_not_corrupt_sibling_bookkeeping():
    """One arm's divergence must leave the sibling's arm-local state
    (max_path_seen, RNG) untouched."""
    tree = ExecutionTree()
    a = BoundedDFS(rng=np.random.default_rng(0), tree=tree)
    b = TwoPhaseDFS(rng=np.random.default_rng(1), tree=tree)
    b.register_execution(path((1, True), (2, True), (3, True)))
    before = b.max_path_seen

    p = path((9, True))
    a.register_execution(p)
    a.mark_infeasible(p, 0)
    tree.note_divergence()
    assert b.max_path_seen == before
    assert tree.divergences == 1
    # sibling's own frontier view includes both executions
    assert tree.paths_inserted == 2


# ----------------------------------------------------------------------
# portfolio campaigns: construction + telemetry
# ----------------------------------------------------------------------
def test_explicit_strategy_and_portfolio_are_mutually_exclusive(
        demo_program):
    with pytest.raises(ValueError, match="not both"):
        Compi(demo_program, _cfg(),
              strategy=BoundedDFS(rng=np.random.default_rng(0)))


def test_portfolio_campaign_attributes_every_iteration(seq_program):
    with Compi(seq_program, _cfg()) as c:
        result = c.run(iterations=24)
    arms = [r.arm for r in result.iterations]
    assert all(a in ARMS for a in arms)
    # bootstrap guarantees every arm at least one committed iteration
    assert set(arms) == set(ARMS)

    pf = result.portfolio
    assert pf is not None
    assert [a["name"] for a in pf["arms"]] == list(ARMS)
    assert sum(a["pulls"] for a in pf["arms"]) == 24
    assert abs(sum(a["share"] for a in pf["arms"]) - 1.0) < 0.01
    for a in pf["arms"]:
        assert a["coverage_gained"] >= 0
        assert a["cost"] > 0 if a["pulls"] else a["cost"] == 0
        assert "solver_time" in a and "solver_solves" in a
        assert "ucb_score" in a and "restarts" in a


def test_portfolio_telemetry_reaches_log_and_report(seq_program, tmp_path):
    from repro.core.report import campaign_summary

    p = tmp_path / "c.jsonl"
    with Compi(seq_program, _cfg()) as c:
        with CampaignLog(p) as log:
            result = c.run(iterations=12, log=log)
    data = load_campaign(p)
    assert data["portfolio"] is not None
    assert [a["name"] for a in data["portfolio"]["arms"]] == list(ARMS)
    text = campaign_summary(result)
    assert "portfolio" in text
    for arm in ARMS:
        assert f"arm[{arm}]" in text


def test_single_strategy_campaign_has_no_portfolio_telemetry(seq_program):
    with Compi(seq_program, _cfg(portfolio=())) as c:
        result = c.run(iterations=4)
    assert result.portfolio is None
    assert all(r.arm == "" for r in result.iterations)


# ----------------------------------------------------------------------
# portfolio campaigns: the determinism contract
# ----------------------------------------------------------------------
def test_portfolio_parallel_equals_serial(demo_program):
    with Compi(demo_program, _cfg()) as c:
        serial = c.run(iterations=30)
    with Compi(demo_program, _cfg(workers=2)) as c:
        parallel = c.run(iterations=30)
    assert _proj(parallel) == _proj(serial)
    assert parallel.coverage.branches == serial.coverage.branches
    assert _pf_det(parallel.portfolio) == _pf_det(serial.portfolio)


def test_portfolio_cache_on_equals_cache_off(demo_program):
    with Compi(demo_program, _cfg()) as c:
        cached = c.run(iterations=30)
    with Compi(demo_program, _cfg(solver_cache=False)) as c:
        uncached = c.run(iterations=30)
    assert _proj(cached) == _proj(uncached)
    assert _pf_det(cached.portfolio) == _pf_det(uncached.portfolio)


def test_portfolio_resume_equals_uninterrupted(seq_program, tmp_path):
    """Kill after 5, resume for 7: identical committed stream, identical
    per-arm telemetry — arm state restores bit-for-bit."""
    full_log = tmp_path / "full.jsonl"
    with Compi(seq_program, _cfg()) as c:
        with CampaignLog(full_log) as log:
            full = c.run(iterations=12, log=log)

    part_log = tmp_path / "part.jsonl"
    with Compi(seq_program, _cfg()) as c:
        with CampaignLog(part_log) as log:
            c.run(iterations=5, log=log)

    resumed_c = Compi.resume(seq_program, part_log)
    assert resumed_c._iteration == 5
    with resumed_c:
        with CampaignLog(part_log, mode="a") as log:
            resumed = resumed_c.run(iterations=7, log=log)

    assert _proj(resumed) == _proj(full)
    assert resumed.coverage.branches == full.coverage.branches
    assert _pf_det(resumed.portfolio) == _pf_det(full.portfolio)


def test_portfolio_degraded_jsonl_resume_still_runs(seq_program, tmp_path):
    """Without the checkpoint sidecar the portfolio campaign still
    resumes from the JSONL log (fresh arm state, resume-origin next)."""
    from repro.core.persist import checkpoint_path

    p = tmp_path / "c.jsonl"
    with Compi(seq_program, _cfg()) as c:
        first = c.run(iterations=6, log=None)
    with Compi(seq_program, _cfg()) as c:
        with CampaignLog(p) as log:
            c.run(iterations=6, log=log)
    checkpoint_path(p).unlink()

    resumed = Compi.resume(seq_program, p)
    assert resumed._iteration == 6
    assert resumed.coverage.covered_branches == \
        first.coverage.covered_branches
    result = resumed.run(iterations=2)
    assert result.iterations[-2].origin == "resume"
    assert result.iterations[-2].arm in ARMS


# ----------------------------------------------------------------------
# CLI + fleet plumbing
# ----------------------------------------------------------------------
def test_cli_maps_portfolio_flag():
    import argparse

    from repro.__main__ import build_config

    ns = argparse.Namespace(
        seed=3, nprocs=2, nprocs_cap=4, test_timeout=5.0,
        no_reduction=False, one_way=False, no_framework=False,
        portfolio="dfs2,random", portfolio_exploration=0.7)
    cfg = build_config(ns)
    assert cfg.portfolio == ("dfs2", "random")
    assert cfg.portfolio_exploration == 0.7

    ns.portfolio = "dfs2,bogus"
    with pytest.raises(SystemExit, match="unknown portfolio arm"):
        build_config(ns)


def test_fleet_spec_accepts_portfolio_strategies():
    from repro.fleet.spec import (FleetSpec, FleetSpecError, ShardSpec,
                                  build_strategy)

    spec = FleetSpec.from_dict({
        "fleet": "pf", "seed": 1,
        "matrix": {"target": ["demo"],
                   "strategy": ["two-phase",
                                "portfolio:dfs2+bounded+random+cfg"]},
        "shard": {"iterations": 5},
    })
    shards = spec.expand()
    assert len(shards) == 2
    pf_shard = [s for s in shards if s.strategy.startswith("portfolio")][0]
    cfg = pf_shard.to_config()
    assert cfg.portfolio == ARMS
    # Compi builds the arms from config — the fleet passes no strategy
    assert build_strategy(pf_shard.strategy, cfg, program=None) is None
    # bare "portfolio" means the default mix
    assert ShardSpec(target="demo", strategy="portfolio", nprocs=2,
                     seed=0, fault_seed=0).to_config().portfolio == \
        DEFAULT_PORTFOLIO
    with pytest.raises(FleetSpecError, match="unknown portfolio arm"):
        FleetSpec.from_dict({
            "fleet": "pf", "matrix": {"target": ["demo"],
                                      "strategy": ["portfolio:warp"]}})


def test_fleet_coverage_union_across_shards():
    from repro.fleet.results import FleetReport, ShardReport

    def shard(sid, target, pairs, status="shard-done", has_log=True):
        return ShardReport(shard_id=sid, target=target, strategy="two-phase",
                           nprocs=2, status=status, covered=len(pairs),
                           cov_branches=tuple(sorted(pairs)),
                           has_log=has_log)

    report = FleetReport(fleet="pf", shards=(
        shard("a", "demo", [(1, 0), (1, 1), (2, 0)]),
        shard("b", "demo", [(2, 0), (2, 1)]),
        shard("c", "demo", [(9, 1)], status="shard-pending", has_log=False),
        shard("d", "seq_demo", [(3, 0)]),
    ))
    union = report.coverage_union()
    # union merges done shards per target; pending contributes nothing
    assert union["demo"] == ((1, 0), (1, 1), (2, 0), (2, 1))
    assert union["seq_demo"] == ((3, 0),)
    rows = {r[0]: r for r in report.coverage_rows()}
    assert rows["demo"] == ["demo", 2, 4, 3, 1]  # union 4, best 3 → +1
    assert report.as_dict()["coverage_union"] == {"demo": 4, "seq_demo": 1}

    from repro.fleet.results import report_text
    text = report_text(report, with_coverage=True)
    assert "coverage union across shards" in text
    assert "headroom" in text
    # without the flag the classic report is unchanged
    assert "coverage union" not in report_text(report)
