"""Unit tests for the search strategies and the execution tree."""

import numpy as np
import pytest

from repro.concolic.coverage import CoverageMap
from repro.concolic.expr import Constraint, LinearExpr
from repro.concolic.trace import PathEntry
from repro.search import (BoundedDFS, CfgDirectedSearch, ExecutionTree,
                          RandomBranchSearch, StrategyContext, TwoPhaseDFS,
                          UniformRandomSearch)


def entry(site, outcome):
    c = Constraint(LinearExpr({0: 1}, -site), "<")
    return PathEntry(site, outcome, c if outcome else c.negated())


def path(*pairs):
    return [entry(s, o) for s, o in pairs]


def ctx(p, iteration=0, coverage=None):
    return StrategyContext(path=p, coverage=coverage or CoverageMap(),
                           iteration=iteration)


# ----------------------------------------------------------------------
# execution tree
# ----------------------------------------------------------------------
def test_tree_insert_and_flip_status():
    t = ExecutionTree()
    p = path((1, True), (2, False))
    t.insert(p)
    assert t.flip_status(p, 0) == "unexplored"   # (1, False) never taken
    assert t.flip_status(p, 1) == "unexplored"
    t.insert(path((1, True), (2, True)))
    assert t.flip_status(p, 1) == "explored"


def test_tree_mark_and_clear_infeasible():
    t = ExecutionTree()
    p = path((1, True))
    t.insert(p)
    t.mark_infeasible(p, 0)
    assert t.flip_status(p, 0) == "infeasible"
    t.clear_infeasible()
    assert t.flip_status(p, 0) == "unexplored"


def test_tree_execution_clears_stale_infeasible():
    t = ExecutionTree()
    p = path((1, True))
    t.insert(p)
    t.mark_infeasible(p, 0)
    # the "infeasible" direction actually executed later: feasible after all
    t.insert(path((1, False)))
    assert t.flip_status(p, 0) == "explored"


# ----------------------------------------------------------------------
# (Bounded)DFS
# ----------------------------------------------------------------------
def test_dfs_proposes_deepest_first():
    s = BoundedDFS()
    p = path((1, True), (2, True), (3, True))
    s.register_execution(p)
    assert list(s.propose(ctx(p))) == [2, 1, 0]


def test_dfs_skips_explored_flips():
    s = BoundedDFS()
    p = path((1, True), (2, True))
    s.register_execution(p)
    s.register_execution(path((1, True), (2, False)))
    assert list(s.propose(ctx(p))) == [0]


def test_bounded_dfs_respects_depth_bound():
    s = BoundedDFS(depth_bound=2)
    p = path((1, True), (2, True), (3, True), (4, True))
    s.register_execution(p)
    assert list(s.propose(ctx(p))) == [1, 0]


def test_dfs_exhausted_flag():
    s = BoundedDFS()
    p = path((1, True))
    s.register_execution(p)
    s.register_execution(path((1, False)))
    assert list(s.propose(ctx(p))) == []
    assert s.exhausted


def test_two_phase_dfs_unbounded_then_derived_bound():
    s = TwoPhaseDFS(observe_iterations=2, slack=1.5)
    long_path = path(*[(i, True) for i in range(10)])
    s.register_execution(long_path)
    # phase 1: unbounded
    assert s.current_bound(ctx(long_path, iteration=0)) is None
    # phase 2: ceil(1.5 * 10) = 15
    assert s.current_bound(ctx(long_path, iteration=2)) == 15
    # the derived bound is frozen afterwards
    s.register_execution(path(*[(i, True) for i in range(100)]))
    assert s.current_bound(ctx(long_path, iteration=3)) == 15


def test_two_phase_dfs_fixed_bound_overrides():
    s = TwoPhaseDFS(observe_iterations=1, fixed_bound=7)
    p = path(*[(i, True) for i in range(10)])
    s.register_execution(p)
    assert s.current_bound(ctx(p, iteration=5)) == 7


# ----------------------------------------------------------------------
# random strategies
# ----------------------------------------------------------------------
def test_random_branch_yields_valid_positions():
    s = RandomBranchSearch(rng=np.random.default_rng(1))
    p = path((1, True), (2, True), (1, False))
    s.register_execution(p)
    got = list(s.propose(ctx(p)))
    assert got and all(0 <= pos < 3 for pos in got)


def test_uniform_random_skips_infeasible():
    s = UniformRandomSearch(rng=np.random.default_rng(2))
    p = path((1, True), (2, True))
    s.register_execution(p)
    s.mark_infeasible(p, 0)
    s.mark_infeasible(p, 1)
    assert list(s.propose(ctx(p))) == []


def test_random_strategies_empty_path():
    for s in (RandomBranchSearch(), UniformRandomSearch()):
        assert list(s.propose(ctx([]))) == []


# ----------------------------------------------------------------------
# CFG-directed
# ----------------------------------------------------------------------
def test_cfg_search_prefers_branch_near_uncovered():
    from repro.instrument import SiteRegistry

    reg = SiteRegistry()
    fid = reg.new_function("m", "f", 1)
    sids = [reg.new_site("m", fid, i + 2, "if") for i in range(5)]
    s = CfgDirectedSearch(reg, rng=np.random.default_rng(0))
    p = path((sids[0], True), (sids[4], True))
    s.register_execution(p)
    cov = CoverageMap()
    # cover both arms of everything except site 3 (neighbour of 4)
    for sid in sids:
        if sid != sids[3]:
            cov.add_branch(sid, True)
            cov.add_branch(sid, False)
    cov.add_branch(sids[3], True)
    first = next(iter(s.propose(ctx(p, coverage=cov))))
    assert first == 1  # position of site 4, one hop from uncovered site 3
