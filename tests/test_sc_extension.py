"""Tests for the sc extension: marking non-default communicator sizes.

The paper explicitly does NOT mark these (§III-A); this reproduction
implements them as an opt-in extension (``CompiConfig.mark_comm_sizes``)
with the natural inherent constraints: ``1 <= s_i <= z0`` and the
symbolic local-rank bound ``y_i < s_i``.
"""

import pytest

from repro.concolic import HeavySink, SymInt
from repro.concolic.expr import KIND_RC, KIND_SC
from repro.core import Compi, CompiConfig, mpi_semantic_constraints
from repro.instrument import instrument_program


class FakeComm:
    def __init__(self, comm_id, group, rank):
        self.comm_id = comm_id
        self.group = tuple(group)
        self._rank = rank

    @property
    def is_world(self):
        return self.comm_id == 0

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return len(self.group)


def test_default_behaviour_keeps_local_sizes_concrete():
    s = HeavySink()
    sub = FakeComm(5, (0, 1, 2), 1)
    assert isinstance(s.on_comm_size(sub, 3), int)


def test_extension_marks_local_sizes():
    s = HeavySink(mark_comm_sizes=True)
    sub = FakeComm(5, (0, 1, 2), 1)
    sz = s.on_comm_size(sub, 3)
    assert isinstance(sz, SymInt) and sz.is_symbolic
    res = s.result()
    sc = res.vars_by_kind(KIND_SC)[0]
    assert sc.comm_index == 0 and sc.comm_size == 3


def test_sc_semantic_constraints():
    s = HeavySink(mark_comm_sizes=True)
    world = FakeComm(0, (0, 1, 2, 3), 1)
    sub = FakeComm(5, (0, 1, 2), 1)
    s.on_comm_size(world, 4)            # z0
    s.on_comm_rank(sub, 1)              # y0
    s.on_comm_size(sub, 3)              # s0
    trace = s.result()
    cs = mpi_semantic_constraints(trace, CompiConfig(nprocs_cap=8))
    vid = {v.name: v.vid for v in trace.vars}
    good = {vid["size_world"]: 4, vid["rank_comm0"]: 1, vid["size_comm0"]: 3}
    assert all(c.evaluate(good) for c in cs)
    # local size above world size violates
    bad = dict(good)
    bad[vid["size_comm0"]] = 5
    assert not all(c.evaluate(bad) for c in cs)
    # local rank >= local size violates (symbolic bound, not concrete)
    bad = dict(good)
    bad[vid["rank_comm0"]] = 3
    assert not all(c.evaluate(bad) for c in cs)
    # zero-size communicator violates
    bad = dict(good)
    bad[vid["size_comm0"]] = 0
    assert not all(c.evaluate(bad) for c in cs)


def test_campaign_runs_with_extension_enabled():
    prog = instrument_program(["repro.targets.demo"])
    try:
        compi = Compi(prog, CompiConfig(seed=7, init_nprocs=3, nprocs_cap=6,
                                        mark_comm_sizes=True))
        result = compi.run(iterations=20)
        assert result.covered > 10
    finally:
        prog.unload()


def test_extension_solver_domains():
    from repro.core import solver_domains
    from repro.concolic.trace import TraceResult
    from repro.concolic.coverage import CoverageMap
    from repro.concolic.expr import Var

    trace = TraceResult(
        vars=[Var(vid=0, name="s", kind=KIND_SC, comm_index=0, comm_size=3)],
        values={0: 3}, path=[], coverage=CoverageMap(), mapping_rows=[])
    box = solver_domains(trace, CompiConfig(nprocs_cap=8))
    assert box[0] == (1, 8)
