"""Tests for the test runner: error taxonomy, focus placement, logs."""

import pytest

from repro.core import (CompiConfig, KIND_ABORT, KIND_ASSERT, KIND_FPE,
                        KIND_HANG, KIND_MPI, KIND_SEGFAULT, TestSetup,
                        classify_run)
from repro.core.runner import TestRunner, classify_exception, crash_location
from repro.core.testcase import TestCase
from repro.instrument import instrument_program
from repro.mpi import run_spmd
from repro.mpi.errors import MpiAbort, MpiInternalError
from repro.targets.cmem import SegfaultError


# ----------------------------------------------------------------------
# exception → kind mapping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exc,kind", [
    (AssertionError("x"), KIND_ASSERT),
    (SegfaultError("x"), KIND_SEGFAULT),
    (IndexError("x"), KIND_SEGFAULT),
    (MemoryError(), KIND_SEGFAULT),
    (ZeroDivisionError(), KIND_FPE),
    (FloatingPointError(), KIND_FPE),
    (OverflowError(), KIND_FPE),
    (MpiAbort(3), KIND_ABORT),
    (MpiInternalError("x"), KIND_MPI),
    (RuntimeError("x"), "crash"),
])
def test_classify_exception(exc, kind):
    assert classify_exception(exc) == kind


# ----------------------------------------------------------------------
# job-level classification
# ----------------------------------------------------------------------
def test_classify_hang():
    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Recv(source=0, tag=1)  # self-wait forever

    # with the wait-for graph disabled, only the watchdog can catch this
    job = run_spmd(prog, size=1, timeout=0.3, detect_deadlocks=False)
    err = classify_run(job)
    assert err is not None and err.kind == KIND_HANG


def test_classify_clean_and_nonzero_exits():
    def prog(mpi):
        mpi.Init()
        return 1 if mpi.COMM_WORLD.Get_rank() == 0 else 0

    job = run_spmd(prog, size=2, timeout=10)
    # sanity-check rejections (nonzero but graceful) are not bugs
    assert classify_run(job) is None


def test_classify_abort_code():
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            mpi.Abort(9)
        mpi.COMM_WORLD.Barrier()

    job = run_spmd(prog, size=2, timeout=10)
    err = classify_run(job)
    assert err.kind == KIND_ABORT


def test_crash_location_skips_helper_frames():
    tb = ('Traceback (most recent call last):\n'
          '  File "/x/targets/susy/fields.py", line 57, in alloc_warmup_sources\n'
          '    src.store(n, f, 8)\n'
          '  File "/x/targets/cmem.py", line 60, in store\n'
          '    raise SegfaultError("boom")\n')
    assert crash_location(tb) == "fields.py:57:alloc_warmup_sources"


def test_crash_location_empty_traceback():
    assert crash_location("") == ""


def test_crash_location_path_with_commas():
    # a naive `split(", ")` shears frame headers whose *path* contains
    # ", " (or even ", line " as a directory name); the regex must not
    tb = ('Traceback (most recent call last):\n'
          '  File "/tmp/odd, line 9, dir/solver, v2.py", line 12, in step\n'
          '    boom()\n')
    assert crash_location(tb) == "solver, v2.py:12:step"


def test_crash_location_windows_separators():
    tb = ('Traceback (most recent call last):\n'
          '  File "C:\\work\\targets\\fields.py", line 3, in alloc\n'
          '    x()\n')
    assert crash_location(tb) == "fields.py:3:alloc"


# ----------------------------------------------------------------------
# runner end-to-end behaviours
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


def run_once(program, cfg, nprocs=3, focus=1, inputs=None):
    runner = TestRunner(program, cfg)
    tc = TestCase(inputs=inputs or {"x": 10, "y": 200},
                  setup=TestSetup(nprocs, focus))
    return runner.run(tc)


def test_focus_rank_owns_the_trace(demo_program):
    rec = run_once(demo_program, CompiConfig(seed=1), focus=2)
    # the rw variables recorded concrete value 2 — the focus's rank
    rw = rec.trace.vars_by_kind("rw")
    assert rw and all(rec.trace.values[v.vid] == 2 for v in rw)


def test_framework_off_limits_coverage_to_focus(demo_program):
    on = run_once(demo_program, CompiConfig(seed=1, framework=True))
    off = run_once(demo_program, CompiConfig(seed=1, framework=False))
    assert off.coverage.covered_branches <= on.coverage.covered_branches
    # with framework off, rank/size are unmarked → no rw/sw vars
    assert not off.trace.vars_by_kind("rw")
    assert not off.trace.vars_by_kind("sw")


def test_one_way_blows_up_nonfocus_logs(demo_program):
    two = run_once(demo_program, CompiConfig(seed=1, two_way=True),
                   inputs={"x": 500, "y": 200})
    one = run_once(demo_program, CompiConfig(seed=1, two_way=False),
                   inputs={"x": 500, "y": 200})
    assert max(one.nonfocus_log_sizes) > 3 * max(two.nonfocus_log_sizes)


def test_runner_reports_wall_time(demo_program):
    rec = run_once(demo_program, CompiConfig(seed=1))
    assert rec.wall_time > 0


# ----------------------------------------------------------------------
# chained tracebacks (regressions for crash_location / root_cause_block)
# ----------------------------------------------------------------------
_CHAINED_TB = (
    'Traceback (most recent call last):\n'
    '  File "/x/targets/solver.py", line 12, in step\n'
    '    grid[i] = v\n'
    'IndexError: list index out of range\n'
    '\n'
    'During handling of the above exception, another exception occurred:\n'
    '\n'
    'Traceback (most recent call last):\n'
    '  File "/x/targets/driver.py", line 40, in main\n'
    '    step(grid)\n'
    '  File "/x/targets/driver.py", line 88, in report\n'
    '    raise RuntimeError("step failed") from exc\n'
    'RuntimeError: step failed\n')


def test_crash_location_chained_traceback_prefers_root_cause():
    # the bug site is where the *first* exception was raised, not the
    # frame that re-raised it inside an except/finally block
    assert crash_location(_CHAINED_TB) == "solver.py:12:step"


def test_crash_location_explicit_cause_chain():
    tb = _CHAINED_TB.replace(
        "During handling of the above exception, another exception occurred:",
        "The above exception was the direct cause of the following exception:")
    assert crash_location(tb) == "solver.py:12:step"


def test_traceback_frames_stop_at_chain_boundary():
    from repro.core import traceback_frames

    frames = traceback_frames(_CHAINED_TB)
    assert frames == ["solver.py:12:step"]


def test_chained_traceback_with_helper_root_frame():
    # root-cause selection composes with helper-frame skipping: the
    # cmem.py raise site is runtime plumbing, its caller is the bug
    tb = ('Traceback (most recent call last):\n'
          '  File "/x/targets/fields.py", line 57, in alloc\n'
          '    src.store(n, f, 8)\n'
          '  File "/x/targets/cmem.py", line 60, in store\n'
          '    raise SegfaultError("boom")\n'
          '\n'
          'During handling of the above exception, '
          'another exception occurred:\n'
          '\n'
          'Traceback (most recent call last):\n'
          '  File "/x/targets/driver.py", line 9, in main\n'
          '    raise RuntimeError("wrapped")\n'
          'RuntimeError: wrapped\n')
    assert crash_location(tb) == "fields.py:57:alloc"


# ----------------------------------------------------------------------
# harvest failure (regression for the silent `except Exception`)
# ----------------------------------------------------------------------
def test_harvest_failure_degrades_and_records_cause(demo_program,
                                                    monkeypatch):
    from repro.concolic.trace import HeavySink

    def boom(self):
        raise ValueError("synthetic harvest failure")

    monkeypatch.setattr(HeavySink, "result", boom)
    rec = run_once(demo_program, CompiConfig(seed=1))
    assert rec.degraded and rec.trace is None
    assert rec.error is None  # the target itself ran clean
    # the swallowed exception is preserved, typed and located
    assert rec.harvest_error.startswith("ValueError: synthetic harvest")
    assert "@" in rec.harvest_error
