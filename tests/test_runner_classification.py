"""Tests for the test runner: error taxonomy, focus placement, logs."""

import pytest

from repro.core import (CompiConfig, KIND_ABORT, KIND_ASSERT, KIND_FPE,
                        KIND_HANG, KIND_MPI, KIND_SEGFAULT, TestSetup,
                        classify_run)
from repro.core.runner import TestRunner, classify_exception, crash_location
from repro.core.testcase import TestCase
from repro.instrument import instrument_program
from repro.mpi import run_spmd
from repro.mpi.errors import MpiAbort, MpiInternalError
from repro.targets.cmem import SegfaultError


# ----------------------------------------------------------------------
# exception → kind mapping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exc,kind", [
    (AssertionError("x"), KIND_ASSERT),
    (SegfaultError("x"), KIND_SEGFAULT),
    (IndexError("x"), KIND_SEGFAULT),
    (MemoryError(), KIND_SEGFAULT),
    (ZeroDivisionError(), KIND_FPE),
    (FloatingPointError(), KIND_FPE),
    (OverflowError(), KIND_FPE),
    (MpiAbort(3), KIND_ABORT),
    (MpiInternalError("x"), KIND_MPI),
    (RuntimeError("x"), "crash"),
])
def test_classify_exception(exc, kind):
    assert classify_exception(exc) == kind


# ----------------------------------------------------------------------
# job-level classification
# ----------------------------------------------------------------------
def test_classify_hang():
    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Recv(source=0, tag=1)  # self-wait forever

    # with the wait-for graph disabled, only the watchdog can catch this
    job = run_spmd(prog, size=1, timeout=0.3, detect_deadlocks=False)
    err = classify_run(job)
    assert err is not None and err.kind == KIND_HANG


def test_classify_clean_and_nonzero_exits():
    def prog(mpi):
        mpi.Init()
        return 1 if mpi.COMM_WORLD.Get_rank() == 0 else 0

    job = run_spmd(prog, size=2, timeout=10)
    # sanity-check rejections (nonzero but graceful) are not bugs
    assert classify_run(job) is None


def test_classify_abort_code():
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            mpi.Abort(9)
        mpi.COMM_WORLD.Barrier()

    job = run_spmd(prog, size=2, timeout=10)
    err = classify_run(job)
    assert err.kind == KIND_ABORT


def test_crash_location_skips_helper_frames():
    tb = ('Traceback (most recent call last):\n'
          '  File "/x/targets/susy/fields.py", line 57, in alloc_warmup_sources\n'
          '    src.store(n, f, 8)\n'
          '  File "/x/targets/cmem.py", line 60, in store\n'
          '    raise SegfaultError("boom")\n')
    assert crash_location(tb) == "fields.py:57:alloc_warmup_sources"


def test_crash_location_empty_traceback():
    assert crash_location("") == ""


def test_crash_location_path_with_commas():
    # a naive `split(", ")` shears frame headers whose *path* contains
    # ", " (or even ", line " as a directory name); the regex must not
    tb = ('Traceback (most recent call last):\n'
          '  File "/tmp/odd, line 9, dir/solver, v2.py", line 12, in step\n'
          '    boom()\n')
    assert crash_location(tb) == "solver, v2.py:12:step"


def test_crash_location_windows_separators():
    tb = ('Traceback (most recent call last):\n'
          '  File "C:\\work\\targets\\fields.py", line 3, in alloc\n'
          '    x()\n')
    assert crash_location(tb) == "fields.py:3:alloc"


# ----------------------------------------------------------------------
# runner end-to-end behaviours
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


def run_once(program, cfg, nprocs=3, focus=1, inputs=None):
    runner = TestRunner(program, cfg)
    tc = TestCase(inputs=inputs or {"x": 10, "y": 200},
                  setup=TestSetup(nprocs, focus))
    return runner.run(tc)


def test_focus_rank_owns_the_trace(demo_program):
    rec = run_once(demo_program, CompiConfig(seed=1), focus=2)
    # the rw variables recorded concrete value 2 — the focus's rank
    rw = rec.trace.vars_by_kind("rw")
    assert rw and all(rec.trace.values[v.vid] == 2 for v in rw)


def test_framework_off_limits_coverage_to_focus(demo_program):
    on = run_once(demo_program, CompiConfig(seed=1, framework=True))
    off = run_once(demo_program, CompiConfig(seed=1, framework=False))
    assert off.coverage.covered_branches <= on.coverage.covered_branches
    # with framework off, rank/size are unmarked → no rw/sw vars
    assert not off.trace.vars_by_kind("rw")
    assert not off.trace.vars_by_kind("sw")


def test_one_way_blows_up_nonfocus_logs(demo_program):
    two = run_once(demo_program, CompiConfig(seed=1, two_way=True),
                   inputs={"x": 500, "y": 200})
    one = run_once(demo_program, CompiConfig(seed=1, two_way=False),
                   inputs={"x": 500, "y": 200})
    assert max(one.nonfocus_log_sizes) > 3 * max(two.nonfocus_log_sizes)


def test_runner_reports_wall_time(demo_program):
    rec = run_once(demo_program, CompiConfig(seed=1))
    assert rec.wall_time > 0
