"""Tests for MPMD focus placement and campaign summary formatting."""

import pytest

from repro.core import Compi, CompiConfig, campaign_summary
from repro.instrument import instrument_program
from repro.mpi import ProcSet, focus_launch


def test_focus_launch_places_heavy_block():
    kinds = {}

    def heavy(mpi):
        mpi.Init()
        kinds[int(mpi.COMM_WORLD.Get_rank())] = "heavy"

    def light(mpi):
        mpi.Init()
        kinds[int(mpi.COMM_WORLD.Get_rank())] = "light"

    for focus in (0, 2, 4):
        kinds.clear()
        res = focus_launch(size=5, focus=focus,
                           heavy=ProcSet(1, heavy), light=ProcSet(1, light),
                           timeout=10)
        assert res.ok
        assert kinds[focus] == "heavy"
        assert sum(1 for v in kinds.values() if v == "heavy") == 1
        assert len(kinds) == 5


def test_focus_launch_single_rank():
    seen = []

    def heavy(mpi):
        mpi.Init()
        seen.append("heavy")

    res = focus_launch(size=1, focus=0, heavy=ProcSet(1, heavy),
                       light=ProcSet(1, lambda mpi: None), timeout=10)
    assert res.ok and seen == ["heavy"]


def test_focus_launch_rejects_out_of_range_focus():
    with pytest.raises(ValueError):
        focus_launch(size=2, focus=2, heavy=ProcSet(1, lambda m: None),
                     light=ProcSet(1, lambda m: None))


def test_campaign_summary_mentions_bugs_and_inputs():
    prog = instrument_program(["repro.targets.seq_demo"])
    try:
        result = Compi(prog, CompiConfig(seed=3, init_nprocs=1,
                                         nprocs_cap=2)).run(iterations=12)
        text = campaign_summary(result)
        assert "covered branches" in text
        assert "unique bugs        : 1" in text
        assert "x=100" in text                 # the error-inducing input
        assert "assertion" in text
    finally:
        prog.unload()


def test_campaign_summary_without_bugs():
    prog = instrument_program(["repro.targets.demo"])
    try:
        result = Compi(prog, CompiConfig(seed=1, init_nprocs=2,
                                         nprocs_cap=4)).run(iterations=3)
        text = campaign_summary(result)
        assert "unique bugs        : 0" in text
    finally:
        prog.unload()
