"""Tests for the IMB-MPI1 target: sanity, subset logic, every kernel."""

import pytest

from repro.mpi import run_spmd
from repro.targets.imb.main import INPUT_SPEC, _active_subsets, main as imb_main
from repro.targets.imb.params import ImbParams
from repro.targets.imb.sanity import check_params


def default_args(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return args


def params_from(args):
    return ImbParams(**{k: args[k] for k in ImbParams.__slots__})


def run_imb(size=4, timeout=90, **overrides):
    args = default_args(**overrides)

    def prog(mpi):
        return imb_main(mpi, dict(args))

    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    assert all(o.exit_code == 0 for o in res.outcomes)
    return res


def test_sanity_accepts_defaults():
    assert check_params(params_from(default_args()), size=4) == 0


@pytest.mark.parametrize("field,value", [
    ("iters", 0), ("iters", 10001), ("msg_exp", -1), ("msg_exp", 23),
    ("npmin", 1), ("warmup", -1), ("off_cache", 2), ("run_pingpong", 2),
    ("run_barrier", -1),
])
def test_sanity_rejects_bad_values(field, value):
    assert check_params(params_from(default_args(**{field: value})), size=4) != 0


def test_sanity_rejects_npmin_above_world():
    assert check_params(params_from(default_args(npmin=8)), size=4) != 0


def test_active_subsets_doubling():
    assert _active_subsets(2, 8, two_proc=False) == [2, 4, 8]
    assert _active_subsets(3, 8, two_proc=False) == [3, 6, 8]
    assert _active_subsets(2, 2, two_proc=False) == [2]
    assert _active_subsets(2, 8, two_proc=True) == [2]
    assert _active_subsets(2, 1, two_proc=True) == []


def test_default_benchmarks_run():
    run_imb(size=4)


@pytest.mark.parametrize("bench", [
    "run_pingpong", "run_pingping", "run_sendrecv", "run_exchange",
    "run_bcast", "run_allreduce", "run_reduce", "run_allgather",
    "run_alltoall", "run_barrier",
])
def test_each_kernel_individually(bench):
    flags = {k: 0 for k in INPUT_SPEC if k.startswith("run_")}
    flags[bench] = 1
    run_imb(size=4, iters=2, msg_exp=4, **flags)


def test_invalid_input_gracefully_rejected():
    run_imb(size=2, iters=-1)


def test_subsets_exercise_split_on_odd_world():
    run_imb(size=5, npmin=2, iters=2, msg_exp=3,
            run_pingpong=0, run_bcast=1, run_allreduce=0)
