"""Tests for reduction operators, payload copying, and the C-memory
emulation behind the SUSY segfault bugs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import (BAND, BOR, BXOR, LAND, LOR, MAX, MAXLOC,
                                 MIN, MINLOC, PROD, SUM, copy_payload,
                                 reduce_pair)
from repro.targets.cmem import (SIZEOF_PTR, CArray, SegfaultError, malloc)


# ----------------------------------------------------------------------
# reduction ops
# ----------------------------------------------------------------------
def test_scalar_ops():
    assert reduce_pair(SUM, 2, 3) == 5
    assert reduce_pair(PROD, 2, 3) == 6
    assert reduce_pair(MIN, 2, 3) == 2
    assert reduce_pair(MAX, 2, 3) == 3
    assert reduce_pair(LAND, 1, 0) is False
    assert reduce_pair(LOR, 1, 0) is True
    assert reduce_pair(BAND, 0b1100, 0b1010) == 0b1000
    assert reduce_pair(BOR, 0b1100, 0b1010) == 0b1110
    assert reduce_pair(BXOR, 0b1100, 0b1010) == 0b0110


def test_numpy_elementwise():
    a = np.array([1, 5, 3])
    b = np.array([4, 2, 3])
    assert list(reduce_pair(SUM, a, b)) == [5, 7, 6]
    assert list(reduce_pair(MIN, a, b)) == [1, 2, 3]
    assert list(reduce_pair(MAX, a, b)) == [4, 5, 3]


def test_nested_list_structure():
    assert reduce_pair(SUM, [1, [2, 3]], [10, [20, 30]]) == [11, [22, 33]]
    with pytest.raises(TypeError):
        reduce_pair(SUM, [1, 2], [1])


def test_maxloc_minloc_pairs():
    assert reduce_pair(MAXLOC, (5, 0), (9, 1)) == (9, 1)
    assert reduce_pair(MAXLOC, (9, 2), (9, 1)) == (9, 1)   # tie → lower idx
    assert reduce_pair(MINLOC, (5, 0), (9, 1)) == (5, 0)
    assert reduce_pair(MINLOC, (5, 3), (5, 1)) == (5, 1)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_sum_reduction_order_independent(xs):
    fwd = xs[0]
    for x in xs[1:]:
        fwd = reduce_pair(SUM, fwd, x)
    assert fwd == sum(xs)


@given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 7)),
                min_size=1, max_size=8))
def test_maxloc_agrees_with_python_max(pairs):
    acc = pairs[0]
    for p in pairs[1:]:
        acc = reduce_pair(MAXLOC, acc, p)
    best = max(v for v, _i in pairs)
    best_idx = min(i for v, i in pairs if v == best)
    assert acc == (best, best_idx)


# ----------------------------------------------------------------------
# payload copying
# ----------------------------------------------------------------------
def test_copy_payload_numpy_is_deep():
    a = np.arange(3)
    b = copy_payload(a)
    a[0] = 99
    assert b[0] == 0


def test_copy_payload_scalars_pass_through():
    for v in (1, 1.5, "s", b"b", None, True):
        assert copy_payload(v) is v or copy_payload(v) == v


def test_copy_payload_nested_containers():
    src = {"k": [np.arange(2), (1, 2)]}
    dst = copy_payload(src)
    src["k"][0][0] = 77
    assert dst["k"][0][0] == 0


# ----------------------------------------------------------------------
# C memory emulation
# ----------------------------------------------------------------------
def test_malloc_store_load_within_bounds():
    a = malloc(4 * SIZEOF_PTR)
    for i in range(4):
        a.store(i, f"p{i}")
    assert a.load(2) == "p2"
    assert len(a) == 32


def test_store_past_capacity_segfaults():
    a = malloc(2 * SIZEOF_PTR)
    a.store(1, "ok")
    with pytest.raises(SegfaultError):
        a.store(2, "boom")


def test_wrong_elem_size_is_the_susy_bug():
    nroot = 3
    a = malloc(nroot * 4)           # sizeof(**src): 4-byte packed struct
    with pytest.raises(SegfaultError):
        for i in range(nroot):
            a.store(i, object(), SIZEOF_PTR)   # 8-byte pointers


def test_negative_index_and_negative_malloc():
    a = malloc(16)
    with pytest.raises(SegfaultError):
        a.load(-1)
    with pytest.raises(SegfaultError):
        CArray(-8)


def test_load_unwritten_slot_returns_none():
    a = malloc(16)
    assert a.load(0) is None
