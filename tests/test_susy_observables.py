"""Tests for SUSY observables and checkpointing."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.targets.susy.checkpoint import (CheckpointError, FORMAT_VERSION,
                                           load, roundtrip_verify, save)
from repro.targets.susy.layout import setup_layout
from repro.targets.susy.main import INPUT_SPEC
from repro.targets.susy.observables import (binder_cumulant, link_energy,
                                            measure_all,
                                            timeslice_correlator)
from repro.targets.susy.params import SusyParams


def default_params(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return SusyParams(**{k: args[k] for k in SusyParams.__slots__})


def with_lattice(fn, size=2, dims=(2, 2, 2, 4), timeout=30):
    """Run fn(world, layout, phi) on every rank with a shared lattice."""
    out = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        nprocs = mpi.Comm_size(mpi.COMM_WORLD)
        p = default_params(nx=dims[0], ny=dims[1], nz=dims[2], nt=dims[3])
        lay = setup_layout(rank, nprocs, p)
        assert lay is not None
        rng = np.random.default_rng(42 + int(rank))
        phi = rng.normal(size=lay.local_dims)
        out[int(rank)] = fn(mpi.COMM_WORLD, lay, phi)
        mpi.Finalize()

    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    return out


# ----------------------------------------------------------------------
# observables
# ----------------------------------------------------------------------
def test_link_energy_agrees_across_ranks():
    out = with_lattice(lambda w, l, p: link_energy(w, l, p))
    vals = list(out.values())
    assert len(vals[0]) == 4
    assert vals[0] == vals[1]


def test_link_energy_constant_field():
    out = with_lattice(lambda w, l, p: link_energy(w, l, np.ones(l.local_dims)))
    # <phi(x) phi(x+d)> of the all-ones field is exactly 1 per direction
    assert all(abs(e - 1.0) < 1e-12 for e in out[0])


def test_correlator_shape_and_symmetry_input():
    out = with_lattice(lambda w, l, p: timeslice_correlator(w, l, p))
    corr = out[0]
    assert len(corr) == 4 // 2 + 1       # nt=4 → dt 0..2
    assert out[0] == out[1]
    # C(0) is a sum of squares → nonnegative
    assert corr[0] >= 0.0


def test_correlator_distributed_matches_single_rank():
    single = with_lattice(lambda w, l, p: timeslice_correlator(
        w, l, np.ones(l.local_dims)), size=1)
    dual = with_lattice(lambda w, l, p: timeslice_correlator(
        w, l, np.ones(l.local_dims)), size=2)
    assert np.allclose(single[0], dual[0])


def test_binder_cumulant_bounds():
    out = with_lattice(lambda w, l, p: binder_cumulant(w, l, p))
    # for any real field distribution, U <= 2/3 and typically > -2
    assert out[0] == out[1]
    assert out[0] <= 2.0 / 3.0 + 1e-12


def test_binder_zero_field():
    out = with_lattice(lambda w, l, p: binder_cumulant(
        w, l, np.zeros(l.local_dims)))
    assert out[0] == 0.0


def test_measure_all_keys():
    out = with_lattice(lambda w, l, p: sorted(measure_all(w, l, p)))
    assert out[0] == ["binder", "correlator", "link_energy"]


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
def test_checkpoint_roundtrip_multirank():
    out = with_lattice(lambda w, l, p: roundtrip_verify(w, l, p, traj=7))
    assert all(out.values())


def test_checkpoint_save_load_single(tmp_path):
    p = default_params()
    lay = setup_layout(0, 1, p)
    phi = np.arange(np.prod(lay.local_dims), dtype=float).reshape(
        lay.local_dims)
    save(lay, phi, str(tmp_path), traj=3)
    reloaded, traj = load(lay, str(tmp_path))
    assert traj == 3 and np.array_equal(reloaded, phi)


def test_checkpoint_missing_header(tmp_path):
    lay = setup_layout(0, 1, default_params())
    with pytest.raises(CheckpointError, match="header"):
        load(lay, str(tmp_path))


def test_checkpoint_version_mismatch(tmp_path):
    import json

    lay = setup_layout(0, 1, default_params())
    phi = np.zeros(lay.local_dims)
    save(lay, phi, str(tmp_path), traj=0)
    header = json.loads((tmp_path / "header.json").read_text())
    header["version"] = FORMAT_VERSION + 1
    (tmp_path / "header.json").write_text(json.dumps(header))
    with pytest.raises(CheckpointError, match="version"):
        load(lay, str(tmp_path))


def test_checkpoint_geometry_mismatch(tmp_path):
    lay_small = setup_layout(0, 1, default_params(nx=2, ny=2, nz=2, nt=2))
    phi = np.zeros(lay_small.local_dims)
    save(lay_small, phi, str(tmp_path), traj=0)
    lay_big = setup_layout(0, 1, default_params(nx=4, ny=4, nz=4, nt=4))
    with pytest.raises(CheckpointError):
        load(lay_big, str(tmp_path))


def test_checkpoint_missing_rank_file(tmp_path):
    lay = setup_layout(0, 1, default_params())
    save(lay, np.zeros(lay.local_dims), str(tmp_path), traj=0)
    (tmp_path / "lat_rank0.npy").unlink()
    with pytest.raises(CheckpointError, match="missing"):
        load(lay, str(tmp_path))
