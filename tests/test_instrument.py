"""Tests for the instrumentation pass: site assignment, probes, loading."""

import ast
import sys

import pytest

from repro.concolic import HeavySink, LightSink, sink_scope
from repro.instrument import (SiteGraph, SiteRegistry, instrument_program,
                              instrument_source, make_probes, uncovered_sites)


def load_snippet(source, registry=None):
    """Instrument a source snippet and return (namespace, registry)."""
    registry = registry or SiteRegistry()
    tree = instrument_source(source, "snippet", registry)
    ns = dict(make_probes(registry))
    exec(compile(tree, "<snippet>", "exec"), ns)
    return ns, registry


# ----------------------------------------------------------------------
# transform mechanics
# ----------------------------------------------------------------------
def test_if_while_ifexp_get_sites():
    src = (
        "def f(a):\n"
        "    if a > 0:\n"
        "        pass\n"
        "    while a > 10:\n"
        "        a -= 1\n"
        "    return 1 if a else 2\n"
    )
    _, reg = load_snippet(src)
    kinds = sorted(s.kind for s in reg.sites)
    assert kinds == ["if", "ifexp", "while"]
    assert reg.total_branches == 6


def test_site_ids_are_deterministic():
    src = "def f(a):\n    if a:\n        pass\n    if a > 1:\n        pass\n"
    _, r1 = load_snippet(src)
    _, r2 = load_snippet(src)
    assert [(s.sid, s.lineno, s.kind) for s in r1.sites] == \
           [(s.sid, s.lineno, s.kind) for s in r2.sites]


def test_function_entry_probe_after_docstring():
    src = '"""mod doc"""\ndef f():\n    """doc"""\n    return 0\n'
    reg = SiteRegistry()
    tree = instrument_source(src, "m", reg)
    fdef = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    # docstring stays first; probe second
    assert isinstance(fdef.body[0].value, ast.Constant)
    assert isinstance(fdef.body[1], ast.Expr)
    assert fdef.body[1].value.func.id == "__compi_func__"


def test_nested_functions_get_own_fids():
    src = ("def outer(a):\n"
           "    def inner(b):\n"
           "        if b:\n"
           "            pass\n"
           "    if a:\n"
           "        inner(a)\n")
    _, reg = load_snippet(src)
    names = [f.qualname for f in reg.functions]
    assert names == ["<module>", "outer", "inner"]
    # the `if b` site belongs to inner, `if a` to outer
    inner_fid = names.index("inner")
    outer_fid = names.index("outer")
    assert len(reg.sites_of_function(inner_fid)) == 1
    assert len(reg.sites_of_function(outer_fid)) == 1


# ----------------------------------------------------------------------
# probe behaviour under sinks
# ----------------------------------------------------------------------
def test_probe_records_coverage_for_concrete_conditions():
    src = ("def f(a):\n"
           "    if a > 5:\n"
           "        return 'big'\n"
           "    return 'small'\n")
    ns, reg = load_snippet(src)
    sink = LightSink()
    with sink_scope(sink):
        assert ns["f"](10) == "big"
        assert ns["f"](1) == "small"
    assert sink.coverage.covered_branches == 2  # both arms of the one site
    # module toplevel executed at load time (no sink), so only f's entry
    # was recorded
    assert len(sink.coverage.functions) == 1


def test_probe_records_constraints_for_symbolic_conditions():
    src = ("def f(x):\n"
           "    if x < 100:\n"
           "        return 1\n"
           "    return 0\n")
    ns, reg = load_snippet(src)
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", 7)
        assert ns["f"](x) == 1
    res = sink.result()
    assert len(res.path) == 1
    pe = res.path[0]
    assert pe.site == 0 and pe.outcome is True
    assert pe.constraint.evaluate({0: 7}) and not pe.constraint.evaluate({0: 500})


def test_probe_symint_truthiness_records_nonzero_constraint():
    src = "def f(x):\n    if x:\n        return 1\n    return 0\n"
    ns, _ = load_snippet(src)
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", 3)
        assert ns["f"](x) == 1
    res = sink.result()
    assert len(res.path) == 1
    assert res.path[0].constraint.evaluate({0: 3})
    assert not res.path[0].constraint.evaluate({0: 0})


def test_probe_without_sink_is_transparent():
    src = "def f(x):\n    if x > 1:\n        return 'a'\n    return 'b'\n"
    ns, _ = load_snippet(src)
    assert ns["f"](5) == "a" and ns["f"](0) == "b"


def test_while_loop_site_reduction_through_probe():
    src = ("def f(x):\n"
           "    i = 0\n"
           "    while i < x:\n"
           "        i = i + 1\n"
           "    return i\n")
    ns, _ = load_snippet(src)
    sink = HeavySink(reduction=True)
    with sink_scope(sink):
        x = sink.mark_input("x", 50)
        assert ns["f"](x) == 50
    res = sink.result()
    assert res.event_count == 51
    assert len(res.path) == 2      # first True + final False


# ----------------------------------------------------------------------
# program loading (multi-module with import rewriting)
# ----------------------------------------------------------------------
def test_instrument_program_demo_target_runs():
    from repro.mpi import run_spmd

    prog = instrument_program(["repro.targets.demo"])
    try:
        assert prog.total_branches >= 12
        results = {}

        def entry(mpi):
            return prog.entry(mpi, {"x": 10, "y": 200})

        res = run_spmd(entry, size=2, timeout=15,
                       sink_factory=lambda r: LightSink(r))
        assert res.ok
    finally:
        prog.unload()


def test_instrument_program_unload_cleans_sys_modules():
    prog = instrument_program(["repro.targets.seq_demo"])
    names = [m.__name__ for m in prog.modules.values()]
    assert all(n in sys.modules for n in names)
    prog.unload()
    assert all(n not in sys.modules for n in names)


def test_instrument_program_entry_validation():
    with pytest.raises(ValueError):
        instrument_program([])
    with pytest.raises(ValueError):
        instrument_program(["repro.targets.demo"], entry_module="nope")


def test_seq_demo_bug_reachable_only_at_x_100():
    prog = instrument_program(["repro.targets.seq_demo"])
    try:
        sink = HeavySink()
        with sink_scope(sink):
            assert prog.entry(None, {"x": 10, "y": 50}) in (1, 2, 3)
        with pytest.raises(AssertionError):
            with sink_scope(HeavySink()):
                prog.entry(None, {"x": 100, "y": 50})
    finally:
        prog.unload()


# ----------------------------------------------------------------------
# site graph / uncovered-site helpers
# ----------------------------------------------------------------------
def test_site_graph_chains_within_function():
    src = ("def f(a):\n"
           "    if a > 0:\n"
           "        pass\n"
           "    if a > 1:\n"
           "        pass\n"
           "    if a > 2:\n"
           "        pass\n")
    _, reg = load_snippet(src)
    g = SiteGraph(reg)
    assert g.distance_to_any(0, {2}) == 2
    assert g.distance_to_any(0, {0}) == 0
    assert g.distance_to_any(0, {99}) >= 10 ** 9


def test_uncovered_sites_requires_both_directions():
    src = "def f(a):\n    if a:\n        pass\n    if a > 1:\n        pass\n"
    _, reg = load_snippet(src)
    covered = [(0, True), (0, False), (1, True)]
    assert uncovered_sites(reg, covered) == {1}
