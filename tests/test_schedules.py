"""Schedule-space exploration: IDs, tree, controller, replay, resume."""

import dataclasses

import pytest

from repro.core import Compi, CompiConfig
from repro.core.conflicts import TestSetup
from repro.core.persist import (CampaignLog, load_campaign, load_checkpoint,
                                read_records, write_checkpoint)
from repro.core.runner import TestRunner
from repro.core.testcase import TestCase
from repro.instrument import instrument_program
from repro.schedules import (Decision, ScheduleExplorer, ScheduleTree,
                             decode_schedule, encode_schedule,
                             normalize_prescription)


@pytest.fixture(scope="module")
def race_program():
    prog = instrument_program(["repro.targets.race"])
    yield prog
    prog.unload()


CFG = CompiConfig(seed=0, init_nprocs=4, test_timeout=20.0,
                  explore_schedules=True, schedule_budget=16,
                  schedule_depth=8)

#: the two seeded interleaving bugs of repro.targets.race
DEADLOCK_SID = "r0.0=s2.t1"
#: the fold order every un-steered run takes (rank order 1, 2, 3)
CANONICAL_SID = "r0.0=s1.t1;r0.1=s2.t1;r0.2=s3.t1"


# ----------------------------------------------------------------------
# schedule IDs
# ----------------------------------------------------------------------
def test_schedule_id_roundtrip():
    entries = ((0, 0, 2, 1), (0, 1, 1, 1), (3, 0, 7, 42))
    sid = encode_schedule(entries)
    assert sid == "r0.0=s2.t1;r0.1=s1.t1;r3.0=s7.t42"
    assert decode_schedule(sid) == entries


def test_schedule_id_is_site_sorted():
    # commit order of commuting cross-rank decisions must not perturb
    # the ID: encoding sorts by (rank, index)
    a = encode_schedule(((1, 0, 2, 1), (0, 0, 3, 1)))
    b = encode_schedule(((0, 0, 3, 1), (1, 0, 2, 1)))
    assert a == b == "r0.0=s3.t1;r1.0=s2.t1"


def test_empty_schedule_id():
    assert encode_schedule(()) == ""
    assert decode_schedule("") == ()


def test_normalize_prescription_accepts_lists_and_strings():
    want = ((0, 0, 2, 1),)
    assert normalize_prescription("r0.0=s2.t1") == want
    assert normalize_prescription([[0, 0, 2, 1]]) == want
    assert normalize_prescription(((0, 0, 2, 1),)) == want
    assert normalize_prescription(()) == ()


# ----------------------------------------------------------------------
# the schedule tree / explorer
# ----------------------------------------------------------------------
def _decisions(*specs):
    """(rank, index, source, tag, candidates) tuples → Decision list."""
    return [Decision(rank=r, index=i, source=s, tag=t,
                     candidates=tuple(c)) for r, i, s, t, c in specs]


def test_tree_emits_unexplored_alternatives_once():
    tree = ScheduleTree(depth=8)
    run = _decisions((0, 0, 1, 1, [(1, 1), (2, 1), (3, 1)]),
                     (0, 1, 2, 1, [(2, 1), (3, 1)]))
    fresh = tree.observe([d.record() for d in run])
    # alternatives at both decision points, deepest prefix preserved
    assert ((0, 0, 2, 1),) in fresh
    assert ((0, 0, 3, 1),) in fresh
    assert ((0, 0, 1, 1), (0, 1, 3, 1)) in fresh
    # replaying the same run discovers nothing new
    assert tree.observe([d.record() for d in run]) == []


def test_tree_depth_bound_truncates():
    tree = ScheduleTree(depth=1)
    run = _decisions((0, 0, 1, 1, [(1, 1), (2, 1)]),
                     (0, 1, 2, 1, [(2, 1), (3, 1)]))
    fresh = tree.observe([d.record() for d in run])
    assert fresh == [((0, 0, 2, 1),)]  # the deeper decision is ignored


def test_explorer_budget_and_state_roundtrip():
    exp = ScheduleExplorer(budget=2, depth=8)
    tc = TestCase(inputs={"x": 1}, setup=TestSetup(4, 0))
    run = _decisions((0, 0, 1, 1, [(1, 1), (2, 1), (3, 1)]))
    exp.note(tc, tuple(d.record() for d in run))
    assert exp.frontier_size() == 2
    copy = ScheduleExplorer(budget=2, depth=8)
    copy.load_state(exp.state_dict())
    assert copy.frontier_size() == exp.frontier_size()
    first = exp.next_testcase()
    assert first is not None and first.origin == "schedule"
    assert first.inputs == tc.inputs and first.schedule
    assert exp.next_testcase() is not None
    assert exp.next_testcase() is None  # budget of 2 spent
    # the restored copy drains the same frontier
    assert copy.next_testcase().schedule == first.schedule


# ----------------------------------------------------------------------
# campaign-level: finding and replaying the seeded race bugs
# ----------------------------------------------------------------------
def _bug_kinds(result):
    return {b.kind for b in result.unique_bugs()}


def test_exploration_finds_both_seeded_race_bugs(race_program):
    with Compi(race_program, CFG) as c:
        result = c.run(iterations=12)
    assert _bug_kinds(result) == {"deadlock", "assertion"}
    by_kind = {b.kind: b for b in result.unique_bugs()}
    assert by_kind["deadlock"].schedule == DEADLOCK_SID
    assert by_kind["deadlock"].pending_ops == \
        ((0, "Recv(source=1, tag=9)"),)
    # the assertion fires on any non-canonical fold that dodges the
    # deadlock branch; whichever the DFS hit first, its schedule is a
    # full, decodable, non-canonical interleaving
    assert_sid = by_kind["assertion"].schedule
    assert assert_sid not in ("", CANONICAL_SID, DEADLOCK_SID)
    assert len(decode_schedule(assert_sid)) == 3
    assert result.schedules is not None
    assert result.schedules["explored"] >= 2
    assert result.schedules["divergences"] == 0


def test_default_campaign_never_sees_the_race_bugs(race_program):
    cfg = dataclasses.replace(CFG, explore_schedules=False)
    with Compi(race_program, cfg) as c:
        result = c.run(iterations=30)
    assert result.unique_bugs() == []
    assert result.schedules is None
    assert all(r.schedule == "" for r in result.iterations)


def test_pinned_replay_reproduces_bug_and_schedule(race_program):
    cfg = dataclasses.replace(CFG, explore_schedules=False)
    tc = TestCase(inputs={"x": 10, "y": 5}, setup=TestSetup(4, 0),
                  schedule=decode_schedule(DEADLOCK_SID))
    for _ in range(2):  # replay is deterministic, not merely likely
        rec = TestRunner(race_program, cfg).run(tc)
        assert rec.error is not None and rec.error.kind == "deadlock"
        assert rec.schedule == DEADLOCK_SID
        assert rec.schedule_divergences == 0
        assert rec.error.pending == ((0, "Recv(source=1, tag=9)"),)


def test_portfolio_excludes_schedule_exploration(race_program):
    cfg = dataclasses.replace(CFG, portfolio=("dfs2", "bounded"))
    with pytest.raises(ValueError, match="mutually exclusive"):
        Compi(race_program, cfg)


# ----------------------------------------------------------------------
# determinism + resume
# ----------------------------------------------------------------------
def _normalized_log(path):
    """The deterministic log stream: meta/iteration/bug/cov records with
    wall-clock noise dropped (byte-compare the rest).  Solver/supervision
    telemetry records carry latency EWMAs, and a resumed log repeats them
    mid-stream, so they are excluded here."""
    out = []
    for rec in read_records(path):
        if rec["type"] not in ("meta", "iteration", "bug", "cov"):
            continue
        rec = dict(rec)
        for key in ("wall_time", "elapsed"):
            rec.pop(key, None)
        out.append(rec)
    return out


def test_fixed_seed_gives_identical_logs(race_program, tmp_path):
    logs = []
    for name in ("a.jsonl", "b.jsonl"):
        p = tmp_path / name
        with CampaignLog(p) as log:
            with Compi(race_program, CFG) as c:
                c.run(iterations=10, log=log)
        logs.append(_normalized_log(p))
    assert logs[0] == logs[1]
    # every schedule-origin iteration carries its schedule ID
    sched = [r for r in logs[0] if r["type"] == "iteration"
             and r["origin"] == "schedule"]
    assert sched and all(r["schedule"] for r in sched)


def test_resume_continues_the_schedule_frontier(race_program, tmp_path):
    full_log = tmp_path / "full.jsonl"
    with CampaignLog(full_log) as log:
        with Compi(race_program, CFG) as c:
            full = c.run(iterations=12, log=log)

    part_log = tmp_path / "part.jsonl"
    with CampaignLog(part_log) as log:
        with Compi(race_program, CFG) as c:
            c.run(iterations=5, log=log)
    resumed_c = Compi.resume(race_program, part_log)
    assert resumed_c.scheduler.schedules is not None
    with CampaignLog(part_log, mode="a") as log:
        with resumed_c:
            resumed = resumed_c.run(iterations=7, log=log)

    proj = lambda it: [(r.iteration, r.origin, r.schedule, r.error_kind,
                        r.covered_after, r.negated_site)
                       for r in it]
    assert proj(resumed.iterations) == proj(full.iterations)
    assert _bug_kinds(resumed) == _bug_kinds(full)
    assert {b.schedule for b in resumed.bugs} == \
        {b.schedule for b in full.bugs}
    assert resumed.schedules == full.schedules
    # the stitched log equals the uninterrupted one, record for record
    assert _normalized_log(part_log) == _normalized_log(full_log)


def test_pre_schedule_checkpoint_resumes_with_empty_frontier(
        race_program, tmp_path):
    """Checkpoints written before schedule exploration lack the
    "schedules" key; resume must start an empty frontier, not crash."""
    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        with Compi(race_program, CFG) as c:
            c.run(iterations=3, log=log)
    state = load_checkpoint(p)
    del state["schedules"]  # what an old-version checkpoint looks like
    write_checkpoint(p, state)

    resumed = Compi.resume(race_program, p)
    assert resumed.scheduler.schedules is not None
    assert resumed.scheduler.schedules.frontier_size() == 0
    with resumed:
        result = resumed.run(iterations=2)
    assert len(result.iterations) == 5


def test_bug_log_roundtrips_schedule_and_pending(race_program, tmp_path):
    p = tmp_path / "c.jsonl"
    with CampaignLog(p) as log:
        with Compi(race_program, CFG) as c:
            result = c.run(iterations=12, log=log)
    loaded = load_campaign(p)
    assert {b.schedule for b in loaded["bugs"]} == \
        {b.schedule for b in result.bugs}
    by_kind = {b.kind: b for b in loaded["bugs"]}
    dead = by_kind["deadlock"]
    assert dead.pending_ops == ((0, "Recv(source=1, tag=9)"),)
    # the reloaded testcase is re-pinned: replaying it hits the bug
    rec = TestRunner(race_program,
                     dataclasses.replace(CFG, explore_schedules=False)
                     ).run(dead.testcase)
    assert rec.error is not None and rec.error.kind == "deadlock"


# ----------------------------------------------------------------------
# fleet strategy strings
# ----------------------------------------------------------------------
def test_fleet_schedules_suffix_sets_config():
    from repro.fleet.spec import FleetSpec, FleetSpecError

    spec = FleetSpec.from_dict({
        "fleet": "sweep", "matrix": {"target": ["race"],
                                     "strategy": ["two-phase:schedules"]},
        "shard": {"iterations": 4}})
    shard = spec.expand()[0]
    cfg = shard.to_config()
    assert cfg.explore_schedules is True
    assert cfg.portfolio == ()
    with pytest.raises(FleetSpecError, match="portfolio"):
        FleetSpec.from_dict({
            "fleet": "bad", "matrix": {"target": ["race"],
                                       "strategy": ["portfolio:schedules"]}})
