"""Fault injection: plan semantics, hook behaviour, determinism."""

import pytest

from repro.core import (Compi, CompiConfig, KIND_DEADLOCK, KIND_INJECTED,
                        TestSetup, classify_run)
from repro.core.runner import TestRunner
from repro.core.testcase import TestCase
from repro.faults import (ALL_FAULT_KINDS, FaultCampaign, FaultInjector,
                          FaultPlan, FaultSpec, InjectedFault)
from repro.instrument import instrument_program
from repro.mpi import run_spmd


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def test_plan_roundtrip_and_defaults():
    plan = FaultPlan.from_names(["drop", "crash"], seed=9)
    assert plan.kinds() == ("drop", "crash")
    assert plan.has("drop") and not plan.has("jitter")
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("cosmic-ray")


def test_plan_derive_is_pure():
    plan = FaultPlan.from_names(["delay"], seed=5)
    assert plan.derive(3) == plan.derive(3)
    assert plan.derive(3) != plan.derive(4)
    assert plan.derive(3).specs == plan.specs  # only the seed moves


def test_matrix_one_plan_per_kind():
    plans = FaultPlan.matrix(seed=1)
    assert [p.specs[0].kind for p in plans] == list(ALL_FAULT_KINDS)
    assert all(len(p.specs) == 1 for p in plans)


# ----------------------------------------------------------------------
# injector hooks (via the substrate)
# ----------------------------------------------------------------------
def _ring(mpi):
    mpi.Init()
    r = mpi.COMM_WORLD.Get_rank()
    n = mpi.COMM_WORLD.Get_size()
    mpi.COMM_WORLD.Send(r * 10, dest=(r + 1) % n, tag=1)
    got, _ = mpi.COMM_WORLD.Recv(source=(r - 1) % n, tag=1)
    return 0 if got == ((r - 1) % n) * 10 else 1


def test_crash_at_nth_call_classifies_injected():
    plan = FaultPlan(seed=1, specs=(FaultSpec("crash", rank=0, nth_call=2),))
    res = run_spmd(_ring, size=2, timeout=5, injector=FaultInjector(plan))
    err = classify_run(res)
    assert err is not None and err.kind == KIND_INJECTED
    assert isinstance(res.first_error().error, InjectedFault)


def test_certain_drop_starves_the_receiver():
    plan = FaultPlan(seed=1, specs=(FaultSpec("drop", probability=1.0),))
    res = run_spmd(_ring, size=2, timeout=5, injector=FaultInjector(plan))
    err = classify_run(res)
    # every message vanishes: the ring deadlocks on its receives
    assert err is not None and err.kind == KIND_DEADLOCK


def test_certain_corruption_mutates_payloads():
    plan = FaultPlan(seed=1, specs=(FaultSpec("corrupt", probability=1.0),))
    res = run_spmd(_ring, size=2, timeout=5, injector=FaultInjector(plan))
    assert res.deadlock is None and not res.timed_out
    # the ring's sanity check sees a value nobody sent
    assert all(o.exit_code == 1 for o in res.outcomes)


def test_no_plan_means_no_interference():
    res = run_spmd(_ring, size=4, timeout=5)
    assert res.ok and all(o.exit_code == 0 for o in res.outcomes)


def test_injector_streams_are_replayable():
    """Two injectors from the same plan make identical decisions."""
    plan = FaultPlan(seed=3, specs=(FaultSpec("drop", probability=0.5),))
    draws = []
    for _ in range(2):
        inj = FaultInjector(plan)
        draws.append([inj.on_send(0, 1, 0, "m")[1] for _ in range(50)])
    assert draws[0] == draws[1]
    assert False in draws[0] and True in draws[0]  # p=0.5 actually fires


# ----------------------------------------------------------------------
# campaign-level determinism
# ----------------------------------------------------------------------
def _projection(result):
    """The deterministic part of an iteration log (no wall-clock times)."""
    return [(r.iteration, r.origin, r.nprocs, r.focus, r.path_len,
             r.covered_after, r.error_kind, r.negated_site)
            for r in result.iterations]


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


def test_fault_campaign_is_deterministic(demo_program):
    cfg = CompiConfig(seed=2, init_nprocs=2, nprocs_cap=4, test_timeout=5.0,
                      faults=("drop", "jitter", "solver-timeout"),
                      fault_seed=11)
    runs = [Compi(demo_program, cfg).run(iterations=6) for _ in range(2)]
    assert _projection(runs[0]) == _projection(runs[1])


def test_fault_seed_changes_the_campaign(demo_program):
    base = CompiConfig(seed=2, init_nprocs=2, nprocs_cap=4, test_timeout=5.0,
                       faults=("drop",), fault_seed=1)
    a = Compi(demo_program, base).run(iterations=8)
    b = Compi(demo_program,
              base.with_(fault_seed=2)).run(iterations=8)
    c = Compi(demo_program, base).run(iterations=8)
    assert _projection(a) == _projection(c)
    # different fault seed → drops land elsewhere → different log
    # (statistically certain over 8 iterations with p=0.1 per message)
    assert _projection(a) != _projection(b) or a.bugs != b.bugs


def test_runner_injects_per_run_derived_plans(demo_program):
    """The same testcase run twice sees different derived sub-plans."""
    cfg = CompiConfig(seed=1, test_timeout=5.0,
                      faults=("crash",), fault_seed=4)
    runner = TestRunner(demo_program, cfg)
    assert runner.fault_plan is not None
    tc = TestCase(inputs={"x": 10, "y": 200}, setup=TestSetup(2, 0))
    runner.run(tc)
    runner.run(tc)
    assert runner._runs == 2


# ----------------------------------------------------------------------
# FaultCampaign (bug reproducibility matrix)
# ----------------------------------------------------------------------
def test_fault_campaign_reports_matrix():
    from repro.core.compi import BugRecord

    program = instrument_program(["repro.targets.seq_demo"])
    try:
        cfg = CompiConfig(seed=1, test_timeout=5.0)
        # seq_demo's planted bug: x == 100 asserts (branch 0F)
        tc = TestCase(inputs={"x": 100, "y": 50}, setup=TestSetup(1, 0))
        rec = TestRunner(program, cfg).run(tc)
        assert rec.error is not None
        bug = BugRecord(kind=rec.error.kind, message=rec.error.message,
                        global_rank=rec.error.global_rank, testcase=tc,
                        iteration=0, location=rec.error.location)

        campaign = FaultCampaign(program, cfg, seed=5, kinds=("jitter",))
        report = campaign.check_bug(bug)
        assert [t.fault_kind for t in report.trials] == ["baseline", "jitter"]
        assert report.trials[0].reproduced  # control run must reproduce
        assert 0.0 <= report.reproducibility <= 1.0
    finally:
        program.unload()
