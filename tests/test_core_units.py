"""Unit tests for COMPI core pieces: semantics constraints, conflict
resolution, test cases, runner classification, report formatting."""

import pytest

from repro.concolic.expr import KIND_INPUT, KIND_RC, KIND_RW, KIND_SW, Var
from repro.concolic.trace import TraceResult
from repro.concolic.coverage import CoverageMap
from repro.core import (CompiConfig, capping_constraints, clamp_to_caps,
                        format_table, mpi_semantic_constraints,
                        random_testcase, resolve_setup, size_histogram,
                        solver_domains, specs_from_module)
from repro.core import TestSetup as TestSetup  # noqa: PLC0414
from repro.core.testcase import InputSpec, default_testcase
from repro.core.testcase import TestCase as TestCase  # noqa: PLC0414

# keep pytest from trying to collect the imported dataclasses
TestSetup.__test__ = False
TestCase.__test__ = False


def make_trace(vars_, values=None, mapping_rows=()):
    return TraceResult(vars=vars_, values=values or {}, path=[],
                       coverage=CoverageMap(), mapping_rows=list(mapping_rows))


def var(vid, kind, name="v", **kw):
    return Var(vid=vid, name=name, kind=kind, **kw)


# ----------------------------------------------------------------------
# MPI semantic constraints (§III-B)
# ----------------------------------------------------------------------
def test_semantics_rw_equalities_and_bounds():
    trace = make_trace([var(0, KIND_RW), var(1, KIND_RW), var(2, KIND_SW),
                        var(3, KIND_SW)])
    cs = mpi_semantic_constraints(trace, CompiConfig(nprocs_cap=16))
    # valid: both rw = 3, both sw = 8
    good = {0: 3, 1: 3, 2: 8, 3: 8}
    assert all(c.evaluate(good) for c in cs)
    # rw disagreement violates
    assert not all(c.evaluate({0: 3, 1: 4, 2: 8, 3: 8}) for c in cs)
    # rank >= size violates
    assert not all(c.evaluate({0: 8, 1: 8, 2: 8, 3: 8}) for c in cs)
    # size above the cap violates
    assert not all(c.evaluate({0: 0, 1: 0, 2: 17, 3: 17}) for c in cs)
    # negative rank violates
    assert not all(c.evaluate({0: -1, 1: -1, 2: 8, 3: 8}) for c in cs)


def test_semantics_rc_bounds_use_concrete_comm_size():
    trace = make_trace([var(0, KIND_RC, comm_index=0, comm_size=3)])
    cs = mpi_semantic_constraints(trace, CompiConfig())
    assert all(c.evaluate({0: 2}) for c in cs)
    assert not all(c.evaluate({0: 3}) for c in cs)
    assert not all(c.evaluate({0: -1}) for c in cs)


def test_semantics_empty_trace_no_constraints():
    assert mpi_semantic_constraints(make_trace([]), CompiConfig()) == []


def test_clamp_to_caps_clamps_only_capped_over_cap_inputs():
    caps = {"n": 10, "m": 5}
    inputs = {"n": 99, "m": 3, "k": 1000}
    assert clamp_to_caps(inputs, caps) == {"n": 10, "m": 3, "k": 1000}
    # no caps: identity copy, and the original is never mutated
    assert clamp_to_caps(inputs, {}) == inputs
    assert inputs["n"] == 99
    assert clamp_to_caps({}, caps) == {}


def test_capping_constraints_only_for_capped_inputs():
    trace = make_trace([var(0, KIND_INPUT, cap=100), var(1, KIND_INPUT)])
    caps = capping_constraints(trace)
    assert len(caps) == 1
    assert caps[0].evaluate({0: 100}) and not caps[0].evaluate({0: 101})


def test_solver_domains_by_kind():
    cfg = CompiConfig(nprocs_cap=8, input_min=-100, input_max=100)
    trace = make_trace([
        var(0, KIND_INPUT, name="n", cap=50),
        var(1, KIND_RW), var(2, KIND_SW),
        var(3, KIND_RC, comm_index=0, comm_size=4),
    ])
    box = solver_domains(trace, cfg, input_bounds={"n": (-10, 2000)})
    assert box[0] == (-10, 50)        # spec lower, cap-tightened upper
    assert box[1] == (0, 7)
    assert box[2] == (1, 8)
    assert box[3] == (0, 3)


# ----------------------------------------------------------------------
# conflict resolution (§III-C / §III-D)
# ----------------------------------------------------------------------
def test_resolve_setup_rw_change_moves_focus():
    trace = make_trace([var(0, KIND_RW), var(1, KIND_SW)])
    setup = resolve_setup(trace, {0: 3, 1: 6}, changed={0},
                          current=TestSetup(4, 0), config=CompiConfig())
    assert setup == TestSetup(nprocs=6, focus=3)


def test_resolve_setup_rc_change_translates_through_mapping():
    # local communicator 0 maps local ranks [0,1,2] → globals (0, 4, 2)
    trace = make_trace([var(0, KIND_RC, comm_index=0, comm_size=3)],
                       mapping_rows=[(0, 4, 2)])
    setup = resolve_setup(trace, {0: 1}, changed={0},
                          current=TestSetup(8, 0), config=CompiConfig())
    assert setup.focus == 4              # Table II's example lookup


def test_resolve_setup_rw_wins_over_rc():
    trace = make_trace([var(0, KIND_RW),
                        var(1, KIND_RC, comm_index=0, comm_size=2)],
                       mapping_rows=[(0, 5)])
    setup = resolve_setup(trace, {0: 2, 1: 1}, changed={0, 1},
                          current=TestSetup(8, 0), config=CompiConfig())
    assert setup.focus == 2


def test_resolve_setup_no_change_keeps_focus():
    trace = make_trace([var(0, KIND_RW)])
    setup = resolve_setup(trace, {0: 0}, changed=set(),
                          current=TestSetup(4, 2), config=CompiConfig())
    assert setup == TestSetup(4, 2)


def test_resolve_setup_clamps_focus_into_new_world():
    trace = make_trace([var(0, KIND_SW)])
    setup = resolve_setup(trace, {0: 2}, changed={0},
                          current=TestSetup(8, 7), config=CompiConfig())
    assert setup.nprocs == 2 and setup.focus == 1


def test_resolve_setup_mapping_miss_is_guarded():
    trace = make_trace([var(0, KIND_RC, comm_index=0, comm_size=3)],
                       mapping_rows=[(0, 1)])     # row shorter than rank
    setup = resolve_setup(trace, {0: 2}, changed={0},
                          current=TestSetup(4, 1), config=CompiConfig())
    assert setup.focus == 1              # kept


def test_testsetup_validation():
    with pytest.raises(ValueError):
        TestSetup(nprocs=2, focus=2)


# ----------------------------------------------------------------------
# test cases / specs
# ----------------------------------------------------------------------
def test_specs_from_module_and_defaults():
    import repro.targets.demo as demo

    specs = specs_from_module(demo)
    assert set(specs) == {"x", "y"}
    tc = default_testcase(specs, TestSetup(2, 0))
    assert tc.inputs == {"x": 10, "y": 50}


def test_specs_missing_raises():
    import repro.targets.cmem as cmem

    with pytest.raises(AttributeError):
        specs_from_module(cmem)


def test_input_spec_validation():
    with pytest.raises(ValueError):
        InputSpec(name="x", default=0, lo=5, hi=1)


def test_random_testcase_respects_bounds_and_caps():
    import numpy as np

    specs = {"a": InputSpec("a", 0, -10, 1000)}
    rng = np.random.default_rng(0)
    for _ in range(50):
        tc = random_testcase(specs, TestSetup(2, 0), rng, caps={"a": 20})
        assert -10 <= tc.inputs["a"] <= 20


def test_testcase_describe():
    tc = TestCase(inputs={"x": 1}, setup=TestSetup(4, 2), origin="negation")
    s = tc.describe()
    assert "np=4" in s and "focus=2" in s and "x=1" in s


# ----------------------------------------------------------------------
# reporting helpers
# ----------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_size_histogram_buckets():
    hist = size_histogram([0, 50, 150, 450, 999, 5000, 10 ** 7])
    as_dict = dict(hist)
    assert as_dict["[0,100)"] == 2
    assert as_dict["[100,300)"] == 1
    assert as_dict["[300,500)"] == 1
    assert as_dict[">=5000"] == 2
    assert sum(as_dict.values()) == 7
