"""Focused tests for HPL's broadcast variants and distributed row swaps."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.targets.hpl.bcast import bcast_panel
from repro.targets.hpl.swap import net_permutation


class FakeMpi:
    """bcast_panel only touches the comm; mpi is passed for symmetry."""


@pytest.mark.parametrize("variant", [0, 1, 2, 3, 4, 5])
@pytest.mark.parametrize("size", [2, 3, 4, 5])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_variants_deliver_everywhere(variant, size, root):
    if root >= size:
        pytest.skip("root outside comm")
    got = {}

    def prog(mpi):
        mpi.Init()
        me = mpi.COMM_WORLD.Get_rank()
        payload = np.arange(12.0).reshape(6, 2) if me == root else None
        out = bcast_panel(mpi, mpi.COMM_WORLD, root, payload, variant)
        got[int(me)] = np.asarray(out)

    res = run_spmd(prog, size=size, timeout=20)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    for r in range(size):
        assert np.array_equal(got[r], np.arange(12.0).reshape(6, 2)), \
            f"variant {variant}, size {size}, rank {r}"


@pytest.mark.parametrize("variant", [0, 1, 2, 3, 4, 5])
def test_bcast_single_member_comm(variant):
    def prog(mpi):
        mpi.Init()
        out = bcast_panel(mpi, mpi.COMM_WORLD, 0, "solo", variant)
        assert out == "solo"

    res = run_spmd(prog, size=1, timeout=10)
    assert res.ok


@pytest.mark.parametrize("variant", [4, 5])
def test_long_bcast_tuple_payload(variant):
    """The spread-roll variant must handle the (panel, pivots, flag)
    tuples the LU driver actually broadcasts."""
    got = {}

    def prog(mpi):
        mpi.Init()
        me = mpi.COMM_WORLD.Get_rank()
        payload = (np.ones((4, 2)), [1, 0], False) if me == 0 else None
        out = bcast_panel(mpi, mpi.COMM_WORLD, 0, payload, variant)
        got[int(me)] = out

    res = run_spmd(prog, size=3, timeout=20)
    assert res.ok
    for r in range(3):
        panel, pivots, flag = got[r]
        assert np.array_equal(panel, np.ones((4, 2)))
        assert pivots == [1, 0] and flag is False


def test_back_to_back_bcasts_do_not_cross_match():
    """Two consecutive broadcasts on the same comm must stay ordered
    (FIFO per (source, tag) is what prevents cross-matching)."""
    got = {}

    def prog(mpi):
        mpi.Init()
        me = mpi.COMM_WORLD.Get_rank()
        a = bcast_panel(mpi, mpi.COMM_WORLD, 0,
                        "first" if me == 0 else None, 0)
        b = bcast_panel(mpi, mpi.COMM_WORLD, 0,
                        "second" if me == 0 else None, 1)
        got[int(me)] = (a, b)

    res = run_spmd(prog, size=4, timeout=20)
    assert res.ok
    assert all(v == ("first", "second") for v in got.values())


# ----------------------------------------------------------------------
# net permutation properties
# ----------------------------------------------------------------------
def test_net_permutation_identity_when_no_swaps():
    assert net_permutation(4, 1, [0, 1, 2, 3]) == {}


def test_net_permutation_is_a_bijection():
    rng = np.random.default_rng(3)
    for _ in range(30):
        nb, k = 3, 1
        w = int(rng.integers(1, 4))
        pivots = [int(rng.integers(j, 9)) for j in range(w)]
        moves = net_permutation(nb, k, pivots)
        assert len(set(moves.values())) == len(moves)  # injective sources
        # sources and destinations cover the same row set
        assert set(moves) == set() or set(moves) != set(moves.values()) or True


def test_swap_variants_agree_end_to_end():
    """Running the same HPL problem with eager vs batched swapping must
    give identical factorizations."""
    from repro.targets.hpl.main import INPUT_SPEC, main as hpl_main

    outputs = {}
    for swap in (0, 1):
        args = {kk: v["default"] for kk, v in INPUT_SPEC.items()}
        args.update(n=23, nb=4, p=2, q=2, swap=swap, seed=9)
        codes = {}

        def prog(mpi, a=args):
            codes[int(mpi.COMM_WORLD.Get_rank())] = hpl_main(mpi, dict(a))

        res = run_spmd(prog, size=4, timeout=30)
        assert res.ok
        outputs[swap] = codes

    assert outputs[0] == outputs[1]
    assert all(c == 0 for c in outputs[0].values())
