"""Supervised execution: pool death recovery, sandboxing, quarantine,
crash triage and input minimization.

The anchor test is the PR's acceptance criterion: a campaign whose
worker is hard-killed mid-iteration (``os._exit`` from the target)
finishes, with a final report bit-for-bit identical between ``--workers
2`` and the serial sandboxed run, the killing input quarantined, and a
minimized reproducer artifact emitted next to the campaign log.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import Compi, CompiConfig, KIND_CPU, KIND_OOM, KIND_WORKER
from repro.core.conflicts import TestSetup
from repro.core.persist import CampaignLog, checkpoint_path, load_campaign
from repro.core.runner import ErrorInfo, TestRunner
from repro.core.testcase import TestCase
from repro.instrument import instrument_program
from repro.supervise import (CampaignSupervisor, HeartbeatMonitor,
                             QuarantineEntry, ResourceLimits, crash_signature,
                             ddmin, load_artifacts, minimize_inputs,
                             repro_dir, run_sandboxed, signature_filename)
from repro.supervise.pool import canonical_input_key
from repro.supervise.sandbox import SandboxDeath


@pytest.fixture(scope="module")
def killer_program():
    prog = instrument_program(["repro.targets.killer"],
                              entry_module="repro.targets.killer")
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def hog_program():
    prog = instrument_program(["repro.targets.hog"],
                              entry_module="repro.targets.hog")
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


def _cfg(**kw):
    base = dict(seed=7, init_nprocs=2, nprocs_cap=4, test_timeout=10.0)
    base.update(kw)
    return CompiConfig(**base)


def _proj(result):
    """The deterministic projection of a campaign (no wall-clock noise)."""
    return dict(
        branches=sorted(result.coverage.branches),
        bugs=[(b.kind, b.location, b.signature,
               sorted(b.testcase.inputs.items()))
              for b in result.bugs],
        iterations=[(r.iteration, r.origin, r.nprocs, r.path_len,
                     r.covered_after, r.error_kind, r.negated_site)
                    for r in result.iterations],
    )


def _setup(nprocs=2, focus=0):
    return TestSetup(nprocs=nprocs, focus=focus)


# ----------------------------------------------------------------------
# ddmin / input minimization
# ----------------------------------------------------------------------
def test_ddmin_finds_minimal_pair():
    mini, spent = ddmin(list(range(16)),
                        lambda sub: 3 in sub and 11 in sub, budget=200)
    assert sorted(mini) == [3, 11]
    assert spent <= 200


def test_ddmin_single_culprit():
    mini, _ = ddmin(list(range(8)), lambda sub: 5 in sub, budget=100)
    assert mini == [5]


def test_ddmin_budget_exhaustion_returns_best_so_far():
    calls = []

    def probe(sub):
        calls.append(tuple(sub))
        return 3 in sub and 11 in sub

    mini, spent = ddmin(list(range(16)), probe, budget=3)
    assert spent == 3 == len(calls)
    # still a failing superset of the true minimum
    assert 3 in mini and 11 in mini


def test_minimize_inputs_resets_irrelevant_keys_to_defaults():
    inputs = {"a": 5, "b": -9, "c": 42}
    defaults = {"a": 1, "b": 2, "c": 3}
    mini, spent = minimize_inputs(inputs, defaults,
                                  lambda d: d["b"] == -9, budget=50)
    assert mini == {"a": 1, "b": -9, "c": 3}
    assert spent >= 1


def test_minimize_inputs_no_delta_is_free():
    mini, spent = minimize_inputs({"a": 1}, {"a": 1}, lambda d: True,
                                  budget=50)
    assert mini == {"a": 1} and spent == 0


def test_minimize_inputs_key_without_default_is_kept():
    mini, _ = minimize_inputs({"a": 5, "extra": 7}, {"a": 1},
                              lambda d: True, budget=50)
    assert mini["extra"] == 7


# ----------------------------------------------------------------------
# crash signatures
# ----------------------------------------------------------------------
_TB = ('Traceback (most recent call last):\n'
       '  File "/x/targets/solver.py", line 57, in step\n'
       '    v = grid[i]\n'
       'IndexError: list index out of range\n')


def test_signature_stable_across_message_payloads():
    a = ErrorInfo("segfault", 0, "IndexError: oob (i=3)", _TB,
                  "solver.py:57:step")
    b = ErrorInfo("segfault", 1, "IndexError: oob (i=99)", _TB,
                  "solver.py:57:step")
    assert crash_signature(a) == crash_signature(b)


def test_signature_distinguishes_kinds_and_stacks():
    a = ErrorInfo("segfault", 0, "IndexError: oob", _TB, "solver.py:57:step")
    b = ErrorInfo("assert", 0, "IndexError: oob", _TB, "solver.py:57:step")
    other_tb = _TB.replace("step", "other_fn")
    c = ErrorInfo("segfault", 0, "IndexError: oob", other_tb,
                  "solver.py:57:other_fn")
    sigs = {crash_signature(e) for e in (a, b, c)}
    assert len(sigs) == 3


def test_signature_ignores_line_numbers():
    moved = _TB.replace("line 57", "line 99")
    a = ErrorInfo("segfault", 0, "IndexError: oob", _TB, "solver.py:57:step")
    b = ErrorInfo("segfault", 0, "IndexError: oob", moved,
                  "solver.py:57:step")
    assert crash_signature(a) == crash_signature(b)


def test_signature_filename_is_safe():
    name = signature_filename("segfault@solver.py:57:step#ab12cd34")
    assert "/" not in name and name.endswith(".json")
    assert signature_filename("worker-killed@?#95fb2009") == \
        "worker-killed@-#95fb2009.json"


# ----------------------------------------------------------------------
# sandbox
# ----------------------------------------------------------------------
def test_sandbox_clean_run_matches_inline(demo_program):
    cfg = _cfg()
    tc = TestCase(inputs={"x": 10, "y": 200}, setup=_setup(nprocs=3))
    inline = TestRunner(demo_program, cfg).run(tc)
    out, death = run_sandboxed(TestRunner(demo_program, cfg), tc, 10.0,
                               ResourceLimits())
    assert death is None
    assert out.error is None and inline.error is None
    assert out.coverage.branches == inline.coverage.branches
    assert [c.site for c in out.trace.path] == \
        [c.site for c in inline.trace.path]


def test_sandbox_catches_hard_exit(killer_program):
    cfg = _cfg()
    tc = TestCase(inputs={"x": 0, "y": 5}, setup=_setup())
    out, death = run_sandboxed(TestRunner(killer_program, cfg), tc, 10.0,
                               ResourceLimits())
    assert out is None
    assert death.kind == KIND_WORKER
    assert death.desc == "exit code 1"
    msg = death.message(ResourceLimits())
    assert "died mid-run" in msg and "exit code 1" in msg


def test_sandbox_rss_cap_classifies_oom(hog_program):
    cfg = _cfg(max_rss_mb=2048)
    tc = TestCase(inputs={"mem": 1, "spin": 0}, setup=_setup())
    out, death = run_sandboxed(TestRunner(hog_program, cfg), tc, 10.0,
                               ResourceLimits.from_config(cfg))
    # RLIMIT_AS surfaces as an in-process MemoryError, reclassified from
    # the segfault family to the distinct oom kind
    if death is not None:  # kernel chose SIGKILL instead
        assert death.kind == KIND_OOM
    else:
        assert out.error is not None and out.error.kind == KIND_OOM


def test_sandbox_cpu_cap_classifies_sigxcpu(hog_program):
    cfg = _cfg(max_cpu_s=1.0, test_timeout=30.0)
    tc = TestCase(inputs={"mem": 0, "spin": 1}, setup=_setup())
    out, death = run_sandboxed(TestRunner(hog_program, cfg), tc, 30.0,
                               ResourceLimits.from_config(cfg))
    assert out is None
    assert death.kind == KIND_CPU
    assert "SIGXCPU" in death.desc


def test_sandbox_enabled_auto_on_with_caps():
    assert not CompiConfig().sandbox_enabled()
    assert CompiConfig(max_rss_mb=100).sandbox_enabled()
    assert CompiConfig(max_cpu_s=1.0).sandbox_enabled()
    assert CompiConfig(sandbox=True).sandbox_enabled()
    assert not CompiConfig(sandbox=False, max_rss_mb=100).sandbox_enabled()


# ----------------------------------------------------------------------
# supervisor units: kill accounting, quarantine, breaker, heartbeats
# ----------------------------------------------------------------------
def _mk_supervisor(program, **cfg_kw):
    cfg = _cfg(**cfg_kw)
    return CampaignSupervisor(cfg, TestRunner(program, cfg))


def test_quarantine_threshold(demo_program):
    sup = _mk_supervisor(demo_program, quarantine_kills=2)
    tc = TestCase(inputs={"x": 1, "y": 2}, setup=_setup())
    death = SandboxDeath(kind=KIND_WORKER, desc="exit code 1")
    assert sup.record_kill(tc, death) is None          # 1st kill: counted
    assert not sup.is_quarantined(tc)
    entry = sup.record_kill(tc, death)                 # 2nd: quarantined
    assert entry is not None and entry.kills == 2
    assert sup.is_quarantined(tc)
    assert sup.drain_new_quarantines() == [entry]
    assert sup.drain_new_quarantines() == []           # drained once


def test_canonical_key_ignores_input_order_but_not_setup():
    a = TestCase(inputs={"x": 1, "y": 2}, setup=_setup())
    b = TestCase(inputs={"y": 2, "x": 1}, setup=_setup(), origin="restart")
    c = TestCase(inputs={"x": 1, "y": 2}, setup=_setup(nprocs=3))
    assert canonical_input_key(a) == canonical_input_key(b)
    assert canonical_input_key(a) != canonical_input_key(c)


def test_quarantine_outcome_replays_recorded_error(demo_program):
    sup = _mk_supervisor(demo_program)
    tc = TestCase(inputs={"x": 1, "y": 2}, setup=_setup())
    sup.record_kill(tc, SandboxDeath(kind=KIND_WORKER, desc="exit code 1"))
    out = sup.quarantine_outcome(tc)
    assert out.error.kind == KIND_WORKER
    assert out.trace is None and out.timed_out
    assert out.wall_time == 0.0
    assert sup.stats.quarantine_skips == 1


def test_breaker_opens_after_threshold(demo_program):
    sup = _mk_supervisor(demo_program, breaker_rebuilds=3)
    assert not sup.breaker_open
    sup.note_rebuild()
    sup.note_rebuild(wedged=True)
    assert not sup.breaker_open
    sup.note_rebuild()
    assert sup.breaker_open
    assert sup.stats.pool_rebuilds == 3
    assert sup.stats.wedge_recoveries == 1


def test_supervisor_state_roundtrip(demo_program):
    sup = _mk_supervisor(demo_program)
    tc = TestCase(inputs={"x": 1, "y": 2}, setup=_setup())
    sup.record_kill(tc, SandboxDeath(kind=KIND_WORKER, desc="exit code 1"))
    state = sup.state_dict()
    fresh = _mk_supervisor(demo_program)
    fresh.load_state(state)
    assert fresh.is_quarantined(tc)
    assert fresh.kill_counts == sup.kill_counts
    # rebuild telemetry is per-process, not campaign state
    assert fresh.stats.pool_rebuilds == 0


def test_quarantine_entry_roundtrip():
    entry = QuarantineEntry(key="k", inputs={"x": 1}, nprocs=2, focus=0,
                            kills=1, error_kind=KIND_WORKER,
                            error_message="worker process died mid-run (x)")
    assert QuarantineEntry.from_dict(entry.as_dict()) == entry


def test_heartbeat_monitor_staleness(tmp_path):
    mon = HeartbeatMonitor(stale_after=5.0)
    try:
        assert mon.newest() is None
        assert not mon.stale()  # no worker checked in yet: not wedged
        path = mon.path_for(1234)
        HeartbeatMonitor.touch(path)
        newest = mon.newest()
        assert newest is not None
        assert not mon.stale(now=newest + 4.9)
        assert mon.stale(now=newest + 5.1)
        # a second, fresher worker keeps the pool alive
        HeartbeatMonitor.touch(mon.path_for(5678))
        os.utime(mon.path_for(5678), (newest + 10, newest + 10))
        assert not mon.stale(now=newest + 5.1)
    finally:
        mon.cleanup()
    assert not os.path.isdir(mon.dir)


# ----------------------------------------------------------------------
# the acceptance test: hard-killed worker, parallel ≡ serial
# ----------------------------------------------------------------------
def _killer_campaign(tmp_path, tag, iterations=12, resume=False, **cfg_kw):
    base = dict(sandbox=True, minimize_probes=16)
    base.update(cfg_kw)
    cfg = _cfg(**base)
    prog = instrument_program(["repro.targets.killer"],
                              entry_module="repro.targets.killer")
    path = tmp_path / f"camp-{tag}.jsonl"
    try:
        if resume:
            compi = Compi.resume(prog, path)
            log = CampaignLog(path, mode="a")
        else:
            compi = Compi(prog, cfg)
            log = CampaignLog(path)
        with compi, log:
            result = compi.run(iterations=iterations, log=log)
        return result, path, compi
    finally:
        prog.unload()


def test_killed_worker_campaign_matches_serial(tmp_path):
    """A target that os._exit()s mid-iteration must not kill the
    campaign, and --workers 2 must commit the exact serial stream."""
    serial, p1, c1 = _killer_campaign(tmp_path, "serial", workers=1)
    parallel, p2, c2 = _killer_campaign(tmp_path, "par", workers=2)

    assert _proj(serial) == _proj(parallel)
    assert len(serial.iterations) == 12  # the campaign finished

    # the kill was confirmed, classified and quarantined in both modes
    kinds = {b.kind for b in serial.bugs}
    assert KIND_WORKER in kinds
    for result in (serial, parallel):
        sup = result.supervision
        assert sup["worker_kills"] >= 1
        assert sup["quarantined"] >= 1
        assert sup["unique_signatures"] >= 1
    # only the parallel run pays pool rebuilds; the committed stream
    # does not depend on them
    assert serial.supervision["pool_rebuilds"] == 0

    # quarantine records and the reproducer artifact landed in both logs
    for path in (p1, p2):
        loaded = load_campaign(path)
        assert loaded["quarantine"], f"no quarantine record in {path}"
        assert loaded["supervision"]["worker_kills"] >= 1
        arts = load_artifacts(repro_dir(path))
        assert arts, f"no reproducer artifact under {repro_dir(path)}"
        assert arts[0]["kind"] == KIND_WORKER
        # ddmin reset the irrelevant y to its default
        assert arts[0]["minimized"]
        assert arts[0]["minimized_inputs"]["y"] == 5
        assert arts[0]["minimized_inputs"]["x"] <= 0
    assert load_campaign(p1)["quarantine"] == load_campaign(p2)["quarantine"]


def test_quarantine_honored_across_checkpoint_resume(tmp_path):
    _, path, first = _killer_campaign(tmp_path, "resume", iterations=6)
    assert first.supervisor.quarantine  # at least one input quarantined
    quarantined = dict(first.supervisor.quarantine)

    result, _, resumed = _killer_campaign(tmp_path, "resume", iterations=4,
                                          resume=True)
    assert set(resumed.supervisor.quarantine) >= set(quarantined)
    # the resumed session replayed quarantine state, not just the log
    assert resumed.supervisor.kill_counts
    assert len(result.iterations) == 10


def test_quarantine_honored_across_jsonl_resume(tmp_path):
    _, path, first = _killer_campaign(tmp_path, "jresume", iterations=6)
    keys = set(first.supervisor.quarantine)
    assert keys
    checkpoint_path(path).unlink()  # force the degraded JSONL path

    prog = instrument_program(["repro.targets.killer"],
                              entry_module="repro.targets.killer")
    try:
        compi = Compi.resume(prog, path)
        try:
            assert set(compi.supervisor.quarantine) == keys
            # logged signatures seeded triage dedup: no re-minimization
            assert compi.triage.seen
        finally:
            compi.close()
    finally:
        prog.unload()


def test_breaker_degrades_to_sandboxed_inline(tmp_path):
    """With a 1-rebuild breaker the parallel executor must stop
    rebuilding after the first kill and still finish the campaign."""
    result, _, compi = _killer_campaign(tmp_path, "breaker", workers=2,
                                        breaker_rebuilds=1)
    assert result.supervision["breaker_open"]
    assert result.supervision["pool_rebuilds"] == 1
    assert len(result.iterations) == 12


# ----------------------------------------------------------------------
# triage artifacts + CLI
# ----------------------------------------------------------------------
def test_triage_emits_one_artifact_per_signature(tmp_path):
    result, path, _ = _killer_campaign(tmp_path, "triage")
    arts = load_artifacts(repro_dir(path))
    sigs = {a["signature"] for a in arts}
    assert len(arts) == len(sigs)  # dedup: one artifact per signature
    worker_bugs = [b for b in result.bugs if b.kind == KIND_WORKER]
    assert {b.signature for b in worker_bugs} <= sigs | {""}
    art = arts[0]
    assert art["format"] == "compi-repro-v1"
    assert art["program"] and art["nprocs"] >= 1
    assert set(art["minimized_inputs"]) == set(art["inputs"])


def test_triage_cli_list_show_replay(tmp_path, capsys):
    from repro.__main__ import main

    _, path, _ = _killer_campaign(tmp_path, "cli")
    assert main(["triage", "list", "--log", str(path)]) == 0
    out = capsys.readouterr().out
    assert "worker-killed" in out

    assert main(["triage", "show", "--log", str(path)]) == 0
    shown = json.loads(
        "\n".join(l for l in capsys.readouterr().out.splitlines()
                  if not l.startswith("#")))
    assert shown["format"] == "compi-repro-v1"

    rc = main(["triage", "replay", "--log", str(path),
               "--target", "killer"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "signature match" in out


def test_triage_cli_replay_requires_target(tmp_path):
    from repro.__main__ import main

    _, path, _ = _killer_campaign(tmp_path, "clibad")
    with pytest.raises(SystemExit):
        main(["triage", "replay", "--log", str(path)])


def test_run_cli_supervision_flags(tmp_path, capsys):
    """End-to-end: `run --target killer --sandbox --workers 2` survives
    the kill and prints supervision telemetry."""
    from repro.__main__ import main

    log = tmp_path / "cli-camp.jsonl"
    rc = main(["run", "--target", "killer", "--iterations", "8",
               "--seed", "7", "--nprocs", "2", "--nprocs-cap", "4",
               "--sandbox", "--workers", "2", "--save-log", str(log)])
    out = capsys.readouterr().out
    assert rc == 1, out  # bugs found → nonzero, but it *finished*
    assert "supervision" in out
    assert "quarantine" in out
    assert load_campaign(log)["quarantine"]


# ----------------------------------------------------------------------
# report + persistence surface
# ----------------------------------------------------------------------
def test_summary_mentions_supervision(tmp_path):
    from repro.core import campaign_summary

    result, _, _ = _killer_campaign(tmp_path, "summary")
    text = campaign_summary(result)
    assert "supervision" in text
    assert "quarantine" in text
    assert "crash triage" in text


def test_bug_signature_survives_log_roundtrip(tmp_path):
    result, path, _ = _killer_campaign(tmp_path, "roundtrip")
    loaded = load_campaign(path)
    by_iter = {b.iteration: b for b in loaded["bugs"]}
    for bug in result.bugs:
        assert by_iter[bug.iteration].signature == bug.signature


# ----------------------------------------------------------------------
# abandoned-pool hygiene
# ----------------------------------------------------------------------
def test_teardown_kills_abandoned_pool_workers(demo_program):
    """Tearing down a wedged pool must kill its worker processes.

    A wedged worker never drains the shutdown sentinel, so the abandoned
    pool's manager thread blocks in ``process.join()`` — and the
    interpreter joins that manager thread at exit, wedging the whole
    process long after the campaign recovered.
    """
    import time as _time

    from repro.engine import ParallelExecutor

    cfg = _cfg(workers=2)
    runner = TestRunner(demo_program, cfg)
    sup = CampaignSupervisor(cfg, runner)
    ex = ParallelExecutor(demo_program, cfg, runner, workers=2,
                          supervisor=sup)
    pool = ex._ensure_pool()
    # park one worker on a long job: under the old shutdown(wait=False)
    # teardown it would outlive the executor by minutes
    pool.submit(_time.sleep, 300)
    procs = list(pool._processes.values())
    assert procs
    ex._teardown(wedged=True)
    deadline = _time.monotonic() + 15.0
    while any(p.is_alive() for p in procs):
        assert _time.monotonic() < deadline, "abandoned workers survived"
        _time.sleep(0.1)
    assert sup.stats.wedge_recoveries == 1
