"""Tests for the ASCII chart renderer."""

from repro.analysis.plots import coverage_chart, histogram_chart, line_chart


def test_line_chart_renders_markers_and_legend():
    out = line_chart({"dfs": [0, 5, 10], "rand": [0, 1, 1]}, width=20,
                     height=6, title="T")
    assert out.startswith("T")
    assert "*" in out and "o" in out
    assert "*=dfs" in out and "o=rand" in out


def test_line_chart_extremes_on_axis():
    out = line_chart({"s": [0, 100]}, width=10, height=5)
    lines = out.splitlines()
    assert lines[0].lstrip().startswith("100")     # y max label on top
    assert lines[4].lstrip().startswith("0")       # y min at bottom


def test_line_chart_empty():
    assert "(no data)" in line_chart({}, title="x")
    assert "(no data)" in line_chart({"a": []})


def test_line_chart_constant_series():
    out = line_chart({"c": [5, 5, 5]}, width=12, height=4)
    assert "*" in out


def test_coverage_chart_from_campaign():
    from repro.core import Compi, CompiConfig
    from repro.instrument import instrument_program

    prog = instrument_program(["repro.targets.demo"])
    try:
        res = Compi(prog, CompiConfig(seed=1, init_nprocs=2,
                                      nprocs_cap=4)).run(iterations=6)
        out = coverage_chart({"compi": res}, title="demo")
        assert "covered branches" in out
    finally:
        prog.unload()


def test_histogram_chart():
    out = histogram_chart([("[0,100)", 10), ("[100,300)", 5), (">=300", 0)],
                          width=10, title="H")
    lines = out.splitlines()
    assert lines[0] == "H"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert lines[3].count("#") == 0


def test_histogram_empty():
    assert "(no data)" in histogram_chart([], title="x")
