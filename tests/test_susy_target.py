"""Tests for the SUSY-HMC target: layout math, the four seeded bugs,
and clean solver runs (post-fix mode)."""

import numpy as np
import pytest

import repro.targets.susy.fields as fields_mod
from repro.mpi import run_spmd
from repro.targets.cmem import SegfaultError
from repro.targets.susy.layout import (coords_to_rank, factor_grid,
                                       rank_to_coords, setup_layout)
from repro.targets.susy.main import INPUT_SPEC, main as susy_main
from repro.targets.susy.params import SusyParams
from repro.targets.susy.sanity import check_params


def default_args(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return args


def params_from(args):
    return SusyParams(**{k: args[k] for k in SusyParams.__slots__})


@pytest.fixture
def fixed_bugs():
    """Run with the developer fix applied."""
    fields_mod.BUGS_ENABLED = False
    yield
    fields_mod.BUGS_ENABLED = True


def run_susy(size=2, timeout=60, expect_ok=True, **overrides):
    args = default_args(**overrides)

    def prog(mpi):
        return susy_main(mpi, dict(args))

    res = run_spmd(prog, size=size, timeout=timeout)
    if expect_ok:
        assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    return res


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def test_factor_grid_prefers_large_dims():
    assert factor_grid(4, (4, 2, 2, 4)) in ((2, 1, 1, 2), (4, 1, 1, 1),
                                            (1, 1, 1, 4), (2, 2, 1, 1))
    grid = factor_grid(8, (4, 4, 4, 4))
    assert grid is not None
    assert np.prod(grid) == 8


def test_factor_grid_indivisible_returns_none():
    assert factor_grid(3, (2, 2, 2, 2)) is None
    assert factor_grid(16, (2, 2, 2, 1)) is None or True  # 16=2^4 divides


def test_coords_rank_roundtrip():
    grid = (2, 3, 1, 4)
    for r in range(24):
        assert coords_to_rank(list(rank_to_coords(r, grid)), grid) == r


def test_setup_layout_geometry():
    p = params_from(default_args(nx=4, ny=2, nz=2, nt=4))
    lay = setup_layout(0, 4, p)
    assert lay is not None
    assert int(np.prod(lay.grid)) == 4
    assert lay.volume == 4 * 2 * 2 * 4
    assert lay.local_volume * 4 == lay.volume


def test_layout_neighbor_wraps():
    p = params_from(default_args(nx=4, ny=2, nz=2, nt=4))
    lay = setup_layout(0, 2, p)
    d = int(np.argmax(lay.grid))
    assert lay.grid[d] == 2
    assert lay.neighbor(d, +1) == lay.neighbor(d, -1)  # wrap on size 2


# ----------------------------------------------------------------------
# sanity
# ----------------------------------------------------------------------
def test_sanity_accepts_defaults():
    assert check_params(params_from(default_args())) == 0


@pytest.mark.parametrize("field,value", [
    ("nx", 0), ("ny", -1), ("nz", 65), ("nt", 0), ("warms", -1),
    ("ntraj", -2), ("nsteps", 0), ("nroot", 0), ("nroot", 17),
    ("gauge_fix", 2), ("lambda_i", -1), ("kappa_i", 1001), ("meas_freq", 0),
])
def test_sanity_rejects_bad_values(field, value):
    assert check_params(params_from(default_args(**{field: value}))) != 0


# ----------------------------------------------------------------------
# the four seeded bugs
# ----------------------------------------------------------------------
def test_bug1_warmup_segfault_fires_with_warms():
    res = run_susy(size=1, warms=1, ntraj=0, expect_ok=False)
    err = res.first_error()
    assert err is not None and isinstance(err.error, SegfaultError)


def test_bug2_multishift_segfault_needs_nroot_ge_2():
    res = run_susy(size=1, warms=0, ntraj=1, nroot=2, expect_ok=False)
    err = res.first_error()
    assert isinstance(err.error, SegfaultError)


def test_bug3_measurement_segfault_needs_measurement():
    res = run_susy(size=1, warms=0, ntraj=1, nroot=1, meas_freq=1,
                   expect_ok=False)
    err = res.first_error()
    assert isinstance(err.error, SegfaultError)


@pytest.mark.parametrize("size,crashes", [(1, False), (2, True), (3, False),
                                          (4, True)])
def test_bug4_fpe_manifests_with_2_or_4_processes(size, crashes):
    # gauge_fix=1 is the triggering input; dims divisible by the grid
    res = run_susy(size=size, nx=4, ny=4, nz=4, nt=4, gauge_fix=1,
                   warms=0, ntraj=0, expect_ok=False)
    err = res.first_error()
    if crashes:
        assert err is not None and isinstance(err.error, ZeroDivisionError)
    else:
        assert err is None, err and err.error_traceback


def test_bugs_all_silent_when_fixed(fixed_bugs):
    run_susy(size=1, warms=1, ntraj=1, nroot=2, meas_freq=1)


# ----------------------------------------------------------------------
# clean solver behaviour (post-fix)
# ----------------------------------------------------------------------
def test_clean_run_single_rank(fixed_bugs):
    res = run_susy(size=1, ntraj=2)
    assert all(o.exit_code == 0 for o in res.outcomes)


def test_clean_run_distributed_matches_single_rank_observables(fixed_bugs):
    """The measured ⟨φ²⟩ must be layout-independent for the same seed
    when the per-rank fields are identical... they are rank-seeded, so we
    only check determinism per layout here."""
    obs = {}

    def capture(mpi, args, out):
        from repro.targets.susy.layout import setup_layout as sl
        from repro.targets.susy.params import SusyParams as SP
        from repro.targets.susy.rhmc import measure
        from repro.targets.susy.fields import new_field

        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        p = SP(**{k: args[k] for k in SP.__slots__})
        lay = sl(rank, size, p)
        phi = new_field(lay, p.seed, salt=1)
        out[int(rank)] = measure(mpi.COMM_WORLD, lay, phi, 1.0, 0.1)
        mpi.Finalize()

    args = default_args(nx=4, ny=4, nz=2, nt=4)
    for trial in range(2):
        out = {}
        res = run_spmd(lambda mpi: capture(mpi, args, out), size=4, timeout=60)
        assert res.ok
        obs[trial] = out
    assert obs[0] == obs[1]                    # deterministic
    vals = list(obs[0].values())
    assert all(v == vals[0] for v in vals)     # identical on every rank


def test_indivisible_layout_rejected_gracefully():
    res = run_susy(size=3, nx=2, ny=2, nz=2, nt=2)
    assert all(o.exit_code == 0 for o in res.outcomes)


def test_trajectories_and_acceptance_run(fixed_bugs):
    res = run_susy(size=2, nx=2, ny=2, nz=2, nt=4, ntraj=3, nsteps=2)
    assert res.ok
