"""Tests for divergence detection (CREST's mismatch handling).

When a negated test case's execution does not actually flip the
predicted branch — typical when constraint-set reduction collapsed a loop
— the engine counts a divergence and marks the flip as tried so the
systematic strategies don't re-propose it.
"""

from repro.core import Compi, CompiConfig
from repro.instrument import instrument_program


def campaign(divergence_detection, iterations=25, seed=7):
    prog = instrument_program(["repro.targets.demo"])
    try:
        cfg = CompiConfig(seed=seed, init_nprocs=3, nprocs_cap=6,
                          divergence_detection=divergence_detection,
                          restart_with_defaults=False)
        return Compi(prog, cfg).run(iterations=iterations)
    finally:
        prog.unload()


def test_divergences_are_counted_when_enabled():
    result = campaign(True)
    # the demo's while-loop exit is reduction-collapsed: negating it
    # always diverges, so campaigns long enough to try it count some
    assert result.divergences > 0


def test_divergences_not_counted_when_disabled():
    result = campaign(False)
    assert result.divergences == 0


def test_detection_never_loses_coverage():
    on = campaign(True, iterations=30)
    off = campaign(False, iterations=30)
    assert on.covered >= off.covered


def test_divergence_marks_flip_as_tried():
    """After a divergence, the same (prefix, flip) is not re-proposed."""
    from repro.concolic.expr import Constraint, LinearExpr
    from repro.concolic.trace import PathEntry
    from repro.search import BoundedDFS
    from repro.search.base import StrategyContext
    from repro.concolic.coverage import CoverageMap

    s = BoundedDFS()
    c = Constraint(LinearExpr({0: 1}, -5), "<")
    path = [PathEntry(3, True, c)]
    s.register_execution(path)
    ctx = StrategyContext(path=path, coverage=CoverageMap(), iteration=0)
    assert list(s.propose(ctx)) == [0]
    s.mark_infeasible(path, 0)         # what _check_divergence does
    assert list(s.propose(ctx)) == []
