"""Collective operations: barrier, bcast, reductions, gather/scatter, split."""

import numpy as np
import pytest

from repro.mpi import run_spmd


def collect(prog, size, timeout=15):
    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [f"{o.global_rank}: {o.error_traceback}" for o in res.outcomes
                    if o.error is not None]
    return res


def test_barrier_orders_phases():
    phases = []

    def prog(mpi):
        mpi.Init()
        phases.append(("pre", mpi.Comm_rank(mpi.COMM_WORLD)))
        mpi.COMM_WORLD.Barrier()
        phases.append(("post", mpi.Comm_rank(mpi.COMM_WORLD)))

    collect(prog, 4)
    pre = [i for i, (p, _) in enumerate(phases) if p == "pre"]
    post = [i for i, (p, _) in enumerate(phases) if p == "post"]
    assert max(pre) < min(post)


def test_bcast_from_nonzero_root():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        data = {"n": 99} if rank == 2 else None
        got[rank] = mpi.COMM_WORLD.Bcast(data, root=2)

    collect(prog, 4)
    assert all(v == {"n": 99} for v in got.values())


def test_bcast_payload_isolated_between_ranks():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        data = [1, 2] if rank == 0 else None
        mine = mpi.COMM_WORLD.Bcast(data, root=0)
        mine.append(rank)  # mutation must stay local
        got[rank] = mine

    collect(prog, 3)
    assert got[1] == [1, 2, 1] and got[2] == [1, 2, 2]


def test_reduce_sum_on_root_only():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        got[rank] = mpi.COMM_WORLD.Reduce(rank + 1, mpi.SUM, root=0)

    collect(prog, 4)
    assert got[0] == 10
    assert got[1] is None and got[2] is None and got[3] is None


def test_allreduce_ops():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        got.setdefault(rank, {})
        got[rank]["sum"] = mpi.COMM_WORLD.Allreduce(rank, mpi.SUM)
        got[rank]["max"] = mpi.COMM_WORLD.Allreduce(rank, mpi.MAX)
        got[rank]["min"] = mpi.COMM_WORLD.Allreduce(rank, mpi.MIN)
        got[rank]["prod"] = mpi.COMM_WORLD.Allreduce(rank + 1, mpi.PROD)

    collect(prog, 4)
    for r in range(4):
        assert got[r] == {"sum": 6, "max": 3, "min": 0, "prod": 24}


def test_allreduce_numpy_elementwise():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        got[rank] = mpi.COMM_WORLD.Allreduce(np.full(3, rank, dtype=np.int64),
                                             mpi.SUM)

    collect(prog, 3)
    assert all(list(v) == [3, 3, 3] for v in got.values())


def test_maxloc_picks_value_and_owner():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        values = [5, 9, 9, 1]
        got[rank] = mpi.COMM_WORLD.Allreduce((values[rank], rank), mpi.MAXLOC)

    collect(prog, 4)
    # ties broken toward the lower index, like MPI_MAXLOC
    assert all(v == (9, 1) for v in got.values())


def test_scan_inclusive_prefix():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        got[rank] = mpi.COMM_WORLD.Scan(rank + 1, mpi.SUM)

    collect(prog, 4)
    assert got == {0: 1, 1: 3, 2: 6, 3: 10}


def test_gather_and_allgather():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        g = mpi.COMM_WORLD.Gather(rank * rank, root=1)
        ag = mpi.COMM_WORLD.Allgather(rank + 100)
        got[rank] = (g, ag)

    collect(prog, 3)
    assert got[1][0] == [0, 1, 4]
    assert got[0][0] is None and got[2][0] is None
    assert all(v[1] == [100, 101, 102] for v in got.values())


def test_scatter_distributes_root_list():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        data = [10, 20, 30] if rank == 0 else None
        got[rank] = mpi.COMM_WORLD.Scatter(data, root=0)

    collect(prog, 3)
    assert got == {0: 10, 1: 20, 2: 30}


def test_alltoall_transposes():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        got[rank] = mpi.COMM_WORLD.Alltoall([rank * 10 + d for d in range(size)])

    collect(prog, 3)
    assert got == {0: [0, 10, 20], 1: [1, 11, 21], 2: [2, 12, 22]}


def test_split_creates_disjoint_comms():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        sub = mpi.COMM_WORLD.Split(color=rank % 2, key=rank)
        got[rank] = (sub.Get_rank(), sub.Get_size(),
                     sub.Allreduce(rank, mpi.SUM))

    collect(prog, 4)
    # evens {0,2} and odds {1,3}
    assert got[0] == (0, 2, 2) and got[2] == (1, 2, 2)
    assert got[1] == (0, 2, 4) and got[3] == (1, 2, 4)


def test_split_key_reorders_local_ranks():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        sub = mpi.COMM_WORLD.Split(color=0, key=-rank)  # reversed order
        got[rank] = sub.Get_rank()

    collect(prog, 3)
    assert got == {0: 2, 1: 1, 2: 0}


def test_split_negative_color_returns_none():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        sub = mpi.COMM_WORLD.Split(color=0 if rank == 0 else -1)
        got[rank] = sub if sub is None else sub.Get_size()

    collect(prog, 3)
    assert got[0] == 1 and got[1] is None and got[2] is None


def test_split_comm_p2p_uses_local_ranks():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        row = mpi.COMM_WORLD.Split(color=rank // 2, key=rank)
        if row.Get_rank() == 0:
            row.Send(("from", rank), dest=1)
        else:
            got[rank], _ = row.Recv(source=0)

    collect(prog, 4)
    assert got == {1: ("from", 0), 3: ("from", 2)}


def test_dup_gives_independent_sequencing():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        dup = mpi.COMM_WORLD.Dup()
        a = dup.Allreduce(1, mpi.SUM)
        b = mpi.COMM_WORLD.Allreduce(2, mpi.SUM)
        got[rank] = (a, b)

    collect(prog, 3)
    assert all(v == (3, 6) for v in got.values())


def test_nested_splits():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        half = mpi.COMM_WORLD.Split(color=rank // 4, key=rank)  # two halves of 4
        pair = half.Split(color=half.Get_rank() // 2, key=half.Get_rank())
        got[rank] = (half.Get_size(), pair.Get_size(), pair.Allreduce(rank, mpi.SUM))

    collect(prog, 8)
    assert got[0] == (4, 2, 1) and got[5] == (4, 2, 9)
