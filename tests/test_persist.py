"""Tests for campaign persistence (JSONL logs)."""

import json

import pytest

from repro.core import Compi, CompiConfig
from repro.core.persist import (CampaignLog, load_campaign, read_records,
                                save_campaign)
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def campaign():
    prog = instrument_program(["repro.targets.seq_demo"])
    compi = Compi(prog, CompiConfig(seed=3, init_nprocs=1, nprocs_cap=2))
    result = compi.run(iterations=12)
    yield result
    prog.unload()


def test_save_and_load_roundtrip(campaign, tmp_path):
    path = save_campaign(campaign, tmp_path / "log.jsonl",
                         config=CompiConfig(seed=3))
    loaded = load_campaign(path)
    assert loaded["meta"]["program"] == campaign.program_name
    assert loaded["meta"]["config"]["seed"] == 3
    assert len(loaded["iterations"]) == len(campaign.iterations)
    assert loaded["coverage"]["covered_static"] == \
        campaign.coverage.covered_static


def test_bug_records_roundtrip_with_inputs(campaign, tmp_path):
    assert campaign.bugs, "fixture should have found the Fig. 1 bug"
    path = save_campaign(campaign, tmp_path / "log.jsonl")
    loaded = load_campaign(path)
    orig = campaign.bugs[0]
    got = loaded["bugs"][0]
    assert got.kind == orig.kind
    assert got.testcase.inputs == orig.testcase.inputs
    assert got.testcase.setup == orig.testcase.setup
    assert got.dedup_key == orig.dedup_key


def test_iteration_records_roundtrip_exactly(campaign, tmp_path):
    path = save_campaign(campaign, tmp_path / "log.jsonl")
    loaded = load_campaign(path)
    assert loaded["iterations"] == campaign.iterations


def test_records_are_valid_jsonl(campaign, tmp_path):
    path = save_campaign(campaign, tmp_path / "log.jsonl")
    with open(path) as fh:
        for line in fh:
            obj = json.loads(line)
            assert "type" in obj


def test_streaming_writer_flushes_incrementally(tmp_path):
    path = tmp_path / "stream.jsonl"
    with CampaignLog(path) as log:
        log.write_meta("p", CompiConfig(), 10)
        assert list(read_records(path))  # visible before close


def test_writer_outside_context_rejected(tmp_path):
    log = CampaignLog(tmp_path / "x.jsonl")
    with pytest.raises(RuntimeError):
        log.write_meta("p", CompiConfig(), 1)


def test_unknown_record_types_skipped(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"type": "future-thing", "x": 1}\n')
    loaded = load_campaign(path)
    assert loaded["meta"] is None and loaded["iterations"] == []
