"""Tests for the shared crash-safe file primitives (core.atomicio)."""

import json
import os

import pytest

from repro.core.atomicio import (JsonlAppender, atomic_write_bytes,
                                 atomic_write_json, atomic_write_text,
                                 fsync_dir, read_jsonl)


# ----------------------------------------------------------------------
# atomic replace


def test_atomic_write_bytes_creates_and_replaces(tmp_path):
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    # no temp droppings left behind
    assert sorted(p.name for p in tmp_path.iterdir()) == ["state.bin"]


def test_atomic_write_text_roundtrip(tmp_path):
    target = tmp_path / "note.txt"
    atomic_write_text(target, "héllo\n")
    assert target.read_text(encoding="utf-8") == "héllo\n"


def test_atomic_write_json_sorted_and_parseable(tmp_path):
    target = tmp_path / "obj.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    text = target.read_text()
    assert json.loads(text) == {"a": 1, "b": 2}
    # deterministic rendering: keys sorted
    assert text.index('"a"') < text.index('"b"')


def test_atomic_write_never_exposes_partial_content(tmp_path):
    """The temp file carries the partial state; the target never does."""
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"complete-old-content")
    tmp = target.with_name(target.name + ".tmp")
    # simulate a crash mid-write: the temp exists, the rename never ran
    tmp.write_bytes(b"half-writ")
    assert target.read_bytes() == b"complete-old-content"


def test_fsync_dir_missing_path_is_noop(tmp_path):
    fsync_dir(tmp_path / "does-not-exist")  # must not raise


# ----------------------------------------------------------------------
# torn-tail-tolerant JSONL reader


def test_read_jsonl_yields_records_in_order(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2}\n{"n": 3}\n')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2, 3]


def test_read_jsonl_skips_torn_tail(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2}\n{"n": 3, "tor')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


def test_read_jsonl_strict_mode_raises_on_torn_tail(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2, "tor')
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(p, tolerate_torn_tail=False))


def test_read_jsonl_midfile_corruption_raises(tmp_path):
    """A mangled line that is NOT the tail is corruption, not a crash."""
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\nGARBAGE\n{"n": 3}\n')
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(p))


def test_read_jsonl_ignores_blank_lines(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n\n{"n": 2}\n')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


# ----------------------------------------------------------------------
# JsonlAppender


def test_appender_writes_readable_records(tmp_path):
    p = tmp_path / "a.jsonl"
    with JsonlAppender(p, mode="x") as app:
        app.write({"n": 1})
        app.write({"n": 2})
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


def test_appender_mode_x_refuses_existing(tmp_path):
    p = tmp_path / "a.jsonl"
    p.write_text("")
    with pytest.raises(FileExistsError):
        JsonlAppender(p, mode="x").open()


def test_appender_mode_a_appends_mode_w_overwrites(tmp_path):
    p = tmp_path / "a.jsonl"
    with JsonlAppender(p, mode="w") as app:
        app.write({"n": 1})
    with JsonlAppender(p, mode="a") as app:
        app.write({"n": 2})
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]
    with JsonlAppender(p, mode="w") as app:
        app.write({"n": 9})
    assert [o["n"] for o in read_jsonl(p)] == [9]


def test_appender_rejects_unknown_mode(tmp_path):
    with pytest.raises(ValueError):
        JsonlAppender(tmp_path / "a.jsonl", mode="r")


def test_appender_write_requires_open(tmp_path):
    app = JsonlAppender(tmp_path / "a.jsonl", mode="w")
    with pytest.raises(RuntimeError):
        app.write({"n": 1})


def test_appender_records_survive_unflushed_tail(tmp_path):
    """Every record is flushed as written: a reader sees all complete
    records even while the appender is still open (crash window)."""
    p = tmp_path / "a.jsonl"
    app = JsonlAppender(p, mode="w", fsync_every=100)
    app.open()
    app.write({"n": 1})
    app.write({"n": 2})
    # no close/sync — simulate the process dying here
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]
    app.close()
