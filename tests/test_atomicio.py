"""Tests for the shared crash-safe file primitives (core.atomicio)."""

import errno
import json
import os
from pathlib import Path

import pytest

from repro.core.atomicio import (JsonlAppender, atomic_write_bytes,
                                 atomic_write_json, atomic_write_text,
                                 fsync_dir, read_jsonl)


# ----------------------------------------------------------------------
# atomic replace


def test_atomic_write_bytes_creates_and_replaces(tmp_path):
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    # no temp droppings left behind
    assert sorted(p.name for p in tmp_path.iterdir()) == ["state.bin"]


def test_atomic_write_text_roundtrip(tmp_path):
    target = tmp_path / "note.txt"
    atomic_write_text(target, "héllo\n")
    assert target.read_text(encoding="utf-8") == "héllo\n"


def test_atomic_write_json_sorted_and_parseable(tmp_path):
    target = tmp_path / "obj.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    text = target.read_text()
    assert json.loads(text) == {"a": 1, "b": 2}
    # deterministic rendering: keys sorted
    assert text.index('"a"') < text.index('"b"')


def test_atomic_write_never_exposes_partial_content(tmp_path):
    """The temp file carries the partial state; the target never does."""
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"complete-old-content")
    tmp = target.with_name(target.name + ".tmp")
    # simulate a crash mid-write: the temp exists, the rename never ran
    tmp.write_bytes(b"half-writ")
    assert target.read_bytes() == b"complete-old-content"


def test_fsync_dir_missing_path_is_noop(tmp_path):
    fsync_dir(tmp_path / "does-not-exist")  # must not raise


# ----------------------------------------------------------------------
# torn-tail-tolerant JSONL reader


def test_read_jsonl_yields_records_in_order(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2}\n{"n": 3}\n')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2, 3]


def test_read_jsonl_skips_torn_tail(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2}\n{"n": 3, "tor')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


def test_read_jsonl_strict_mode_raises_on_torn_tail(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n{"n": 2, "tor')
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(p, tolerate_torn_tail=False))


def test_read_jsonl_midfile_corruption_raises(tmp_path):
    """A mangled line that is NOT the tail is corruption, not a crash."""
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\nGARBAGE\n{"n": 3}\n')
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(p))


def test_read_jsonl_ignores_blank_lines(tmp_path):
    p = tmp_path / "log.jsonl"
    p.write_text('{"n": 1}\n\n{"n": 2}\n')
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


# ----------------------------------------------------------------------
# JsonlAppender


def test_appender_writes_readable_records(tmp_path):
    p = tmp_path / "a.jsonl"
    with JsonlAppender(p, mode="x") as app:
        app.write({"n": 1})
        app.write({"n": 2})
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]


def test_appender_mode_x_refuses_existing(tmp_path):
    p = tmp_path / "a.jsonl"
    p.write_text("")
    with pytest.raises(FileExistsError):
        JsonlAppender(p, mode="x").open()


def test_appender_mode_a_appends_mode_w_overwrites(tmp_path):
    p = tmp_path / "a.jsonl"
    with JsonlAppender(p, mode="w") as app:
        app.write({"n": 1})
    with JsonlAppender(p, mode="a") as app:
        app.write({"n": 2})
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]
    with JsonlAppender(p, mode="w") as app:
        app.write({"n": 9})
    assert [o["n"] for o in read_jsonl(p)] == [9]


def test_appender_rejects_unknown_mode(tmp_path):
    with pytest.raises(ValueError):
        JsonlAppender(tmp_path / "a.jsonl", mode="r")


def test_appender_write_requires_open(tmp_path):
    app = JsonlAppender(tmp_path / "a.jsonl", mode="w")
    with pytest.raises(RuntimeError):
        app.write({"n": 1})


def test_appender_records_survive_unflushed_tail(tmp_path):
    """Every record is flushed as written: a reader sees all complete
    records even while the appender is still open (crash window)."""
    p = tmp_path / "a.jsonl"
    app = JsonlAppender(p, mode="w", fsync_every=100)
    app.open()
    app.write({"n": 1})
    app.write({"n": 2})
    # no close/sync — simulate the process dying here
    assert [o["n"] for o in read_jsonl(p)] == [1, 2]
    app.close()


# ----------------------------------------------------------------------
# chaos: injected I/O faults (ENOSPC, EIO, short writes)
#
# Buffered file writes do not pass through a Python-level ``os.write``,
# so the faults are injected where the module actually touches Python
# APIs: wrapper file objects installed via ``pathlib.Path.open``, and
# ``os.fsync`` (which atomicio calls directly).


class _FaultyFile:
    """Wraps a real file object; ``plan(fh, data)`` runs each write."""

    def __init__(self, fh, plan):
        self._fh = fh
        self._plan = plan

    def write(self, data):
        return self._plan(self._fh, data)

    def __getattr__(self, name):
        return getattr(self._fh, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._fh.close()


def _inject_write_fault(monkeypatch, match, plan):
    """Make ``Path.open`` hand back a faulty wrapper for matching paths."""
    real_open = Path.open

    def fake_open(self, *a, **kw):
        fh = real_open(self, *a, **kw)
        return _FaultyFile(fh, plan) if match(self) else fh

    monkeypatch.setattr(Path, "open", fake_open)


def _enospc(fh, data):
    raise OSError(errno.ENOSPC, "No space left on device")


def test_enospc_during_replace_write_keeps_old_content(tmp_path,
                                                       monkeypatch):
    """Disk-full while writing the temp file: the target still holds the
    previous complete content — the atomic-replace claim under fault."""
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"complete-old-content")
    _inject_write_fault(monkeypatch,
                        match=lambda p: p.name.endswith(".tmp"),
                        plan=_enospc)
    with pytest.raises(OSError) as exc:
        atomic_write_bytes(target, b"new-content-that-never-lands")
    assert exc.value.errno == errno.ENOSPC
    assert target.read_bytes() == b"complete-old-content"


def test_short_write_then_eio_confines_torn_state_to_temp(tmp_path,
                                                          monkeypatch):
    """A short write followed by EIO (dying disk) leaves the torn bytes
    in the temp file only; the rename never runs, the target is whole."""
    def partial_then_eio(fh, data):
        fh.write(data[:len(data) // 2])
        fh.flush()
        raise OSError(errno.EIO, "Input/output error")

    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"old")
    _inject_write_fault(monkeypatch,
                        match=lambda p: p.name.endswith(".tmp"),
                        plan=partial_then_eio)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"0123456789abcdef")
    assert target.read_bytes() == b"old"
    torn = target.with_name(target.name + ".tmp")
    assert torn.read_bytes() == b"01234567"  # partial state, quarantined


def test_eio_during_fsync_aborts_before_rename(tmp_path, monkeypatch):
    """fsync failing (EIO) must abort the replace: an unsynced rename
    could surface the new name with unjournalled bytes after a crash."""
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"old")

    def bad_fsync(fd):
        raise OSError(errno.EIO, "Input/output error")

    monkeypatch.setattr(os, "fsync", bad_fsync)
    with pytest.raises(OSError) as exc:
        atomic_write_bytes(target, b"new")
    assert exc.value.errno == errno.EIO
    assert target.read_bytes() == b"old"


def test_fsync_dir_swallows_eio(tmp_path, monkeypatch):
    """Directory fsync is best-effort by contract (network filesystems,
    Windows): an EIO there degrades to a no-op, never an exception."""
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (_ for _ in ()).throw(
                            OSError(errno.EIO, "Input/output error")))
    fsync_dir(tmp_path)  # must not raise


def test_appender_enospc_mid_record_leaves_torn_tail_readable(tmp_path,
                                                              monkeypatch):
    """Disk-full halfway through appending record 2 tears its line; the
    torn-tail reader still yields record 1 (and only strict mode sees
    the corruption) — the JSONL claims under an injected fault."""
    calls = {"n": 0}

    def second_write_tears(fh, data):
        calls["n"] += 1
        if calls["n"] == 2:
            fh.write(data[:6])
            fh.flush()
            raise OSError(errno.ENOSPC, "No space left on device")
        return fh.write(data)

    p = tmp_path / "a.jsonl"
    _inject_write_fault(monkeypatch, match=lambda q: q == p,
                        plan=second_write_tears)
    app = JsonlAppender(p, mode="w")
    app.open()
    app.write({"n": 1})
    with pytest.raises(OSError):
        app.write({"n": 2})
    assert [o["n"] for o in read_jsonl(p)] == [1]
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(p, tolerate_torn_tail=False))


def test_appender_sync_failure_is_loud(tmp_path, monkeypatch):
    """Unlike directory fsync, the appender's data fsync failing must
    propagate — callers rely on sync() meaning 'records are on disk'."""
    p = tmp_path / "a.jsonl"
    app = JsonlAppender(p, mode="w", fsync_every=100)
    app.open()
    app.write({"n": 1})

    def bad_fsync(fd):
        raise OSError(errno.EIO, "Input/output error")

    monkeypatch.setattr(os, "fsync", bad_fsync)
    with pytest.raises(OSError):
        app.sync()
