"""Tests for sinks (heavy/light), reduction filter, and coverage maps."""

import pytest
from hypothesis import given, strategies as st

from repro.concolic import (CoverageMap, HeavySink, LightSink, ReductionFilter,
                            SymInt, merge_all, sink_scope)


class FakeComm:
    def __init__(self, comm_id, group, rank):
        self.comm_id = comm_id
        self.group = tuple(group)
        self._rank = rank

    @property
    def is_world(self):
        return self.comm_id == 0

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return len(self.group)


# ----------------------------------------------------------------------
# ReductionFilter — the paper's §IV-C heuristic
# ----------------------------------------------------------------------
def test_reduction_records_first_and_flips_only():
    f = ReductionFilter(enabled=True)
    # loop: True x4 then False — paper's Fig. 7 pattern
    outcomes = [True, True, True, True, False]
    kept = [f.should_record(7, o) for o in outcomes]
    assert kept == [True, False, False, False, True]
    assert f.admitted == 2 and f.suppressed == 3


def test_reduction_alternating_keeps_all():
    f = ReductionFilter(enabled=True)
    kept = [f.should_record(1, o) for o in [True, False, True, False]]
    assert kept == [True, True, True, True]


def test_reduction_disabled_keeps_everything():
    f = ReductionFilter(enabled=False)
    kept = [f.should_record(1, True) for _ in range(5)]
    assert kept == [True] * 5
    assert f.suppressed == 0


def test_reduction_tracks_sites_independently():
    f = ReductionFilter(enabled=True)
    assert f.should_record(1, True)
    assert f.should_record(2, True)      # different site: first encounter
    assert not f.should_record(1, True)  # same site, same outcome


@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=60))
def test_reduction_invariant_boundaries_kept(events):
    """Property: an evaluation is kept iff it is the first at its site or
    its outcome differs from the immediately preceding one at that site."""
    f = ReductionFilter(enabled=True)
    last: dict[int, bool] = {}
    for site, outcome in events:
        expected = site not in last or last[site] != outcome
        assert f.should_record(site, outcome) == expected
        last[site] = outcome


def test_reduction_reset():
    f = ReductionFilter(enabled=True)
    f.should_record(1, True)
    f.reset()
    assert f.should_record(1, True)  # first encounter again


# ----------------------------------------------------------------------
# CoverageMap
# ----------------------------------------------------------------------
def test_coverage_counts_distinct_branches():
    c = CoverageMap()
    c.add_branch(1, True)
    c.add_branch(1, True)
    c.add_branch(1, False)
    c.add_branch(2, True)
    assert c.covered_branches == 3
    assert (1, True) in c and (2, False) not in c
    assert c.covered_sites() == {1, 2}


def test_coverage_merge_and_rate():
    a, b = CoverageMap(), CoverageMap()
    a.add_branch(1, True)
    b.add_branch(1, True)
    b.add_branch(2, False)
    b.add_function(9)
    m = merge_all([a, b])
    assert m.covered_branches == 2 and 9 in m.functions
    assert m.rate(4) == 0.5
    assert CoverageMap().rate(0) == 0.0


def test_reachable_branch_estimate_sums_entered_functions():
    c = CoverageMap()
    c.add_function(1)
    c.add_function(3)
    per_func = {1: 10, 2: 100, 3: 4}
    assert c.reachable_branches(per_func) == 14


# ----------------------------------------------------------------------
# LightSink
# ----------------------------------------------------------------------
def test_light_sink_records_coverage_only_and_stays_concrete():
    s = LightSink(global_rank=3)
    s.on_branch(5, True)
    s.on_branch(5, True)
    s.on_branch(6, False)
    assert s.coverage.covered_branches == 2
    assert s.mark_input("x", 7) == 7 and isinstance(s.mark_input("x", 7), int)
    world = FakeComm(0, (0, 1), 1)
    assert s.on_comm_rank(world, 1) == 1
    assert s.on_comm_size(world, 2) == 2


def test_light_sink_log_is_small_and_coverage_shaped():
    s = LightSink()
    for i in range(100):
        s.on_branch(i, True)
    log = s.serialize()
    assert 0 < len(log) < 2000
    assert b"pc " not in log and b"ev " not in log


# ----------------------------------------------------------------------
# HeavySink
# ----------------------------------------------------------------------
def test_heavy_sink_marks_inputs_symbolic_and_reuses_vars():
    s = HeavySink()
    x1 = s.mark_input("x", 10)
    x2 = s.mark_input("x", 10)
    y = s.mark_input("y", 3, cap=50)
    assert isinstance(x1, SymInt) and x1.is_symbolic
    assert x1.lin == x2.lin                     # same var reused per name
    res = s.result()
    assert res.input_vids == {"x": 0, "y": 1}
    assert res.vars[1].cap == 50
    assert res.values == {0: 10, 1: 3}


def test_heavy_sink_marks_world_rank_and_size():
    s = HeavySink()
    world = FakeComm(0, (0, 1, 2), 2)
    r1 = s.on_comm_rank(world, 2)
    r2 = s.on_comm_rank(world, 2)
    sz = s.on_comm_size(world, 3)
    assert all(isinstance(v, SymInt) for v in (r1, r2, sz))
    res = s.result()
    kinds = [v.kind for v in res.vars]
    assert kinds == ["rw", "rw", "sw"]
    # each invocation creates a FRESH variable (the paper adds x0=xi
    # equality constraints precisely because of this)
    assert r1.lin != r2.lin


def test_heavy_sink_local_comm_marking_and_mapping_rows():
    s = HeavySink()
    sub = FakeComm(7, (0, 4, 2), 1)     # local ranks 0,1,2 → global 0,4,2
    r = s.on_comm_rank(sub, 1)
    assert isinstance(r, SymInt)
    sz = s.on_comm_size(sub, 3)
    assert isinstance(sz, int)           # non-world size is NOT marked
    res = s.result()
    rc = res.vars_by_kind("rc")[0]
    assert rc.comm_index == 0 and rc.comm_size == 3
    assert res.mapping_rows == [(0, 4, 2)]
    # registering the same comm again does not duplicate the row
    s.on_comm_rank(sub, 1)
    assert len(s.result().mapping_rows) == 1


def test_heavy_sink_path_respects_reduction():
    s = HeavySink(reduction=True)
    with sink_scope(s):
        x = s.mark_input("x", 0)
        i = 0
        while x + i < 5:   # 5 True evaluations then 1 False, one site... but
            i += 1         # implicit sites are per (file,func,line,lasti)
    res = s.result()
    # all evaluations share one implicit site → reduction keeps 2 of 6
    assert res.event_count == 6
    assert len(res.path) == 2
    assert res.suppressed == 4
    assert [pe.outcome for pe in res.path] == [True, False]


def test_heavy_sink_without_reduction_keeps_all():
    s = HeavySink(reduction=False)
    with sink_scope(s):
        x = s.mark_input("x", 0)
        i = 0
        while x + i < 5:
            i += 1
    res = s.result()
    assert len(res.path) == 6


def test_heavy_log_includes_events_and_dwarfs_light_log():
    heavy = HeavySink(reduction=True, log_events=True)
    light = LightSink()
    with sink_scope(heavy):
        x = heavy.mark_input("x", 0)
        i = 0
        while x + i < 500:
            i += 1
    for _ in range(506):
        light.on_branch(1, True)
    assert len(heavy.serialize()) > 20 * len(light.serialize())


def test_heavy_sink_stop_event_cancels_probe_stream():
    import threading

    from repro.mpi.errors import MpiShutdown

    s = HeavySink()
    ev = threading.Event()
    s.bind_stop_event(ev)
    ev.set()
    with pytest.raises(MpiShutdown):
        for _ in range(10_000):
            s.on_branch(1, True)
