"""Tests for the gauge-fixing sweep path (the surviving side of bug #4)."""

import numpy as np

from repro.mpi import run_spmd
from repro.targets.susy.layout import setup_layout
from repro.targets.susy.main import INPUT_SPEC, main as susy_main
from repro.targets.susy.params import SusyParams
from repro.targets.susy.rhmc import gauge_fix_sweeps


def default_params(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return SusyParams(**{k: args[k] for k in SusyParams.__slots__})


def test_sweeps_damp_time_gradient():
    """Each sweep smooths along t: the t-variance must shrink."""
    out = {}

    def prog(mpi):
        mpi.Init()
        p = default_params(nx=2, ny=2, nz=2, nt=4)
        lay = setup_layout(0, 1, p)
        rng = np.random.default_rng(5)
        phi = rng.normal(size=lay.local_dims)

        def t_roughness(f):
            return float(np.sum((f - np.roll(f, 1, axis=3)) ** 2))

        before = t_roughness(phi)
        smoothed = gauge_fix_sweeps(mpi.COMM_WORLD, lay, phi, sweeps=5)
        out["before"] = before
        out["after"] = t_roughness(smoothed)
        mpi.Finalize()

    res = run_spmd(prog, size=1, timeout=20)
    assert res.ok
    assert out["after"] < out["before"]


def test_zero_sweeps_is_identity():
    def prog(mpi):
        mpi.Init()
        p = default_params()
        lay = setup_layout(0, 1, p)
        phi = np.arange(np.prod(lay.local_dims), dtype=float).reshape(
            lay.local_dims)
        assert np.array_equal(gauge_fix_sweeps(mpi.COMM_WORLD, lay, phi, 0),
                              phi)
        mpi.Finalize()

    assert run_spmd(prog, size=1, timeout=20).ok


def test_layout_gauge_sweep_counts():
    # odd small machine: parity 1 → sweeps = nt // 1 = nt
    p = default_params(gauge_fix=1, nx=3, ny=3, nz=3, nt=3)
    lay = setup_layout(0, 3, p)
    assert lay.gauge_sweeps == 3
    # gauge fixing off → no sweeps
    lay = setup_layout(0, 1, default_params(gauge_fix=0))
    assert lay.gauge_sweeps == 0


def test_gauge_fix_full_run_distributed():
    """gauge_fix=1 on 1 process (parity path) runs sweeps and completes."""
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(gauge_fix=1, ntraj=1)
    codes = {}

    def prog(mpi):
        codes[int(mpi.COMM_WORLD.Get_rank())] = susy_main(mpi, dict(args))

    res = run_spmd(prog, size=1, timeout=30)
    assert res.ok
    assert codes[0] == 0
