"""Tests for the solver acceleration subsystem (repro.solvercache):
canonicalization, the two-tier counterexample cache, the speculative
fork view, telemetry, and the campaign-level determinism contract
(cache-on ≡ cache-off for a fixed seed)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.concolic.expr import Constraint, LinearExpr
from repro.core import Compi, CompiConfig
from repro.instrument import instrument_program
from repro.solver import SimplifyMemo, Solver, simplify, solve_incremental
from repro.solver.incremental import SolveSession
from repro.solvercache import (CacheEntry, CounterexampleCache, SolverStats,
                               canonical_key, canonicalize_model,
                               decanonicalize)


def le(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "<=")


def eq(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "==")


def ne(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "!=")


def lt(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "<")


# ----------------------------------------------------------------------
# canonicalization
# ----------------------------------------------------------------------
def test_canonical_key_invariant_under_renaming_and_order():
    # x + y <= 10, y == 3  with vids {0,1} vs {7,42}, constraints reversed
    k1, _ = canonical_key([le({0: 1, 1: 1}, -10), eq({1: 1}, -3)],
                          {0: (0, 100), 1: (0, 100)}, {1: 3})
    k2, _ = canonical_key([eq({42: 1}, -3), le({7: 1, 42: 1}, -10)],
                          {7: (0, 100), 42: (0, 100)}, {42: 3})
    assert k1 == k2


def test_canonical_key_normalizes_strict_comparisons():
    # x < 5 and x + 1 <= 5 are the same normalized constraint
    k1, _ = canonical_key([lt({0: 1}, -5)], {0: (0, 10)}, {})
    k2, _ = canonical_key([le({0: 1}, -4)], {0: (0, 10)}, {})
    assert k1 == k2


def test_canonical_key_distinguishes_previous_values():
    cons = [le({0: 1}, -10)]
    k1, _ = canonical_key(cons, {0: (0, 100)}, {0: 3})
    k2, _ = canonical_key(cons, {0: (0, 100)}, {0: 4})
    k3, _ = canonical_key(cons, {0: (0, 100)}, {})
    assert len({k1, k2, k3}) == 3


def test_canonical_key_distinguishes_domains():
    cons = [le({0: 1}, -10)]
    k1, _ = canonical_key(cons, {0: (0, 100)}, {})
    k2, _ = canonical_key(cons, {0: (0, 99)}, {})
    assert k1 != k2


def test_model_roundtrip_through_canonical_indices():
    cons = [le({7: 1, 42: 1}, -10)]
    _, order = canonical_key(cons, {7: (0, 100), 42: (0, 100)}, {})
    model = {7: 4, 42: 6}
    assert decanonicalize(canonicalize_model(model, order), order) == model


def test_cached_model_replays_onto_renamed_query():
    """The end-to-end reuse story: canonicalize a model under one set of
    vids, replay it onto a renaming of the same query."""
    cons_a = [le({0: 1, 1: 1}, -10)]
    dom_a = {0: (0, 100), 1: (0, 100)}
    key_a, order_a = canonical_key(cons_a, dom_a, {0: 2, 1: 2})

    cons_b = [le({30: 1, 31: 1}, -10)]
    dom_b = {30: (0, 100), 31: (0, 100)}
    key_b, order_b = canonical_key(cons_b, dom_b, {30: 2, 31: 2})
    assert key_a == key_b
    stored = canonicalize_model({0: 3, 1: 4}, order_a)
    replayed = decanonicalize(stored, order_b)
    assert sorted(replayed.values()) == [3, 4]
    assert set(replayed) == {30, 31}


# ----------------------------------------------------------------------
# cache entries and tiers
# ----------------------------------------------------------------------
def test_cache_entry_json_roundtrip():
    sat = CacheEntry(sat=True, model={0: -3, 2: 17})
    k, back = CacheEntry.from_json(json.loads(sat.to_json("K")))
    assert k == "K" and back == sat
    unsat = CacheEntry(sat=False)
    k, back = CacheEntry.from_json(json.loads(unsat.to_json("U")))
    assert k == "U" and back == unsat


def test_lru_eviction_is_deterministic_and_touch_aware():
    c = CounterexampleCache(capacity=2)
    c.put("a", CacheEntry(sat=False))
    c.put("b", CacheEntry(sat=False))
    c.get("a")                        # refresh: b is now oldest
    c.put("c", CacheEntry(sat=False))
    assert c.get("b") is None and c.get("a") is not None
    assert c.evictions == 1


def test_untouched_get_does_not_refresh_recency():
    c = CounterexampleCache(capacity=2)
    c.put("a", CacheEntry(sat=False))
    c.put("b", CacheEntry(sat=False))
    c.get("a", touch=False)           # a stays oldest
    c.put("c", CacheEntry(sat=False))
    assert c.get("a") is None and c.get("b") is not None


def test_disk_tier_persists_and_reloads(tmp_path):
    path = tmp_path / "cache.jsonl"
    c = CounterexampleCache(capacity=16, path=path)
    c.put("sat-key", CacheEntry(sat=True, model={0: 5}))
    c.put("unsat-key", CacheEntry(sat=False))

    back = CounterexampleCache(capacity=16, path=path)
    assert back.get("sat-key") == CacheEntry(sat=True, model={0: 5})
    assert back.get("unsat-key") == CacheEntry(sat=False)
    assert back.sat_entries == 1 and back.unsat_entries == 1


def test_disk_tier_later_lines_win_and_replaced_entries_reappend(tmp_path):
    path = tmp_path / "cache.jsonl"
    c = CounterexampleCache(capacity=16, path=path)
    c.put("k", CacheEntry(sat=True, model={0: 1}))
    c.put("k", CacheEntry(sat=True, model={0: 2}))   # replaced → re-appended
    c.put("k", CacheEntry(sat=True, model={0: 2}))   # unchanged → no append
    assert len(path.read_text().splitlines()) == 2
    back = CounterexampleCache(capacity=16, path=path)
    assert back.get("k").model == {0: 2}


def test_disk_tier_tolerates_torn_tail(tmp_path):
    path = tmp_path / "cache.jsonl"
    c = CounterexampleCache(capacity=16, path=path)
    c.put("k", CacheEntry(sat=False))
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"k": "torn", "sa')   # crash mid-append
    back = CounterexampleCache(capacity=16, path=path)
    assert back.get("k") is not None and len(back) == 1


def test_disk_tier_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "cache.jsonl"
    path.write_text('garbage\n{"k": "a", "sat": false}\n')
    with pytest.raises(json.JSONDecodeError):
        CounterexampleCache(capacity=16, path=path)


# ----------------------------------------------------------------------
# the fork write-buffer rule
# ----------------------------------------------------------------------
def test_fork_writes_stay_private():
    base = CounterexampleCache(capacity=16)
    base.put("shared", CacheEntry(sat=False))
    view = base.fork()
    view.put("speculative", CacheEntry(sat=True, model={0: 1}))
    assert view.get("speculative") is not None     # visible to the fork
    assert view.get("shared") is not None          # read-through
    assert base.get("speculative") is None         # invisible to base
    assert len(base) == 1


def test_fork_reads_do_not_touch_base_recency():
    base = CounterexampleCache(capacity=2)
    base.put("a", CacheEntry(sat=False))
    base.put("b", CacheEntry(sat=False))
    base.fork().get("a")              # speculative read: a stays oldest
    base.put("c", CacheEntry(sat=False))
    assert base.get("a") is None and base.get("b") is not None


def test_fork_writes_never_reach_disk(tmp_path):
    path = tmp_path / "cache.jsonl"
    base = CounterexampleCache(capacity=16, path=path)
    base.fork().put("spec", CacheEntry(sat=False))
    assert not path.exists() or path.read_text() == ""


# ----------------------------------------------------------------------
# solve_incremental + cache integration
# ----------------------------------------------------------------------
def _query():
    """A small SAT query: x + y <= 10, negate x == 0."""
    return ([le({0: 1, 1: 1}, -10)], ne({0: 1}, 0),
            {0: (0, 100), 1: (0, 100)}, {0: 0, 1: 0})


def test_cache_hit_replays_identical_assignment():
    cache = CounterexampleCache()
    stats = SolverStats()
    cons, neg, dom, prev = _query()
    first = solve_incremental(cons, neg, dom, prev, cache=cache, stats=stats)
    again = solve_incremental(cons, neg, dom, prev, cache=cache, stats=stats)
    assert first is not None and again is not None
    assert not first.cached and again.cached
    assert first.assignment == again.assignment
    assert stats.cache_hits == 1 and stats.cache_misses == 1
    assert stats.stores == 1 and stats.solves == 2


def test_cache_hit_replays_across_renaming():
    cache = CounterexampleCache()
    stats = SolverStats()
    cons, neg, dom, prev = _query()
    solve_incremental(cons, neg, dom, prev, cache=cache, stats=stats)
    # same query over fresh vids {8, 9}
    res = solve_incremental([le({8: 1, 9: 1}, -10)], ne({8: 1}, 0),
                            {8: (0, 100), 9: (0, 100)}, {8: 0, 9: 0},
                            cache=cache, stats=stats)
    assert res is not None and res.cached
    assert stats.cache_hits == 1


def test_unsat_short_circuit():
    cache = CounterexampleCache()
    stats = SolverStats()
    cons, neg = [eq({0: 1}, -5)], ne({0: 1}, -5)
    dom, prev = {0: (0, 10)}, {0: 5}
    assert solve_incremental(cons, neg, dom, prev,
                             cache=cache, stats=stats) is None
    assert solve_incremental(cons, neg, dom, prev,
                             cache=cache, stats=stats) is None
    assert stats.unsat_hits == 1 and stats.cache_misses == 1
    assert cache.unsat_entries == 1


def test_poisoned_sat_entry_degrades_to_miss_and_is_replaced():
    cache = CounterexampleCache()
    stats = SolverStats()
    cons, neg, dom, prev = _query()
    key, order = canonical_key(simplify(list(cons)) + [neg], dom, prev)
    # poison: a "model" violating the negated constraint (x == 0)
    cache.put(key, CacheEntry(sat=True,
                              model=canonicalize_model({0: 0, 1: 0}, order)))
    res = solve_incremental(cons, neg, dom, prev, cache=cache, stats=stats)
    assert res is not None and not res.cached
    assert res.assignment[0] != 0
    assert stats.stale_hits == 1 and stats.cache_misses == 1
    # the fresh verdict replaced the poisoned entry
    replayed = decanonicalize(cache.get(key).model, order)
    assert replayed[0] != 0


def test_node_budget_giveup_is_not_cached_as_unsat():
    cache = CounterexampleCache()
    # an actually-SAT query, but the solver gives up instantly
    cons, neg, dom, prev = _query()
    starved = Solver(node_limit=0)
    assert solve_incremental(cons, neg, dom, prev, solver=starved,
                             cache=cache) is None
    assert len(cache) == 0
    # a real solver later answers SAT — no poisoned UNSAT blocks it
    res = solve_incremental(cons, neg, dom, prev, cache=cache)
    assert res is not None


def test_cache_determinism_same_stream_same_contents():
    def run():
        cache = CounterexampleCache(capacity=4)
        for k in range(8):
            cons = [le({0: 1}, -(10 + k % 5))]
            solve_incremental(cons, ne({0: 1}, 0), {0: (0, 100)}, {0: 0},
                              cache=cache)
        return list(cache._entries)
    assert run() == run()


# ----------------------------------------------------------------------
# SolveSession wiring
# ----------------------------------------------------------------------
def test_session_threads_cache_and_stats():
    session = SolveSession(cache=CounterexampleCache())
    cons, neg, dom, prev = _query()
    a = session.solve(cons, neg, dom, prev)
    b = session.solve(cons, neg, dom, prev)
    assert a.assignment == b.assignment
    assert session.stats.cache_hits == 1
    assert session.stats.solves == 2


def test_session_fork_isolates_cache_and_stats():
    session = SolveSession(cache=CounterexampleCache())
    cons, neg, dom, prev = _query()
    fork = session.fork()
    fork.solve(cons, neg, dom, prev)
    # speculation left no trace in the committed session
    assert len(session.cache) == 0
    assert session.stats.solves == 0
    assert fork.stats.solves == 1
    # the committed stream still has to solve (and store) it itself
    res = session.solve(cons, neg, dom, prev)
    assert res is not None and not res.cached
    assert len(session.cache) == 1


def test_session_without_cache_still_solves():
    session = SolveSession()
    cons, neg, dom, prev = _query()
    res = session.solve(cons, neg, dom, prev)
    assert res is not None and not res.cached
    assert session.stats.cache_misses == 1 and session.stats.hits == 0


# ----------------------------------------------------------------------
# SimplifyMemo (satellite: memoized prefix simplification)
# ----------------------------------------------------------------------
constraint_st = st.builds(
    lambda coeffs, const, op: Constraint(LinearExpr(coeffs, const), op),
    st.dictionaries(st.integers(0, 4), st.integers(-3, 3).filter(bool),
                    min_size=1, max_size=3),
    st.integers(-20, 20),
    st.sampled_from(["<=", "<", "==", "!="]))


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_st, max_size=8),
       st.lists(constraint_st, max_size=4),
       st.lists(constraint_st, max_size=4))
def test_simplify_memo_matches_plain_simplify(base, ext1, ext2):
    """Exact repeat, pure extension, and non-extension all agree with
    the unmemoized function."""
    memo = SimplifyMemo()
    assert memo(base) == simplify(base)
    assert memo(base + ext1) == simplify(base + ext1)          # extension
    assert memo(base + ext1) == simplify(base + ext1)          # repeat
    assert memo(ext2 + base) == simplify(ext2 + base)          # reset


def test_simplify_memo_reuses_survivors_on_extension():
    memo = SimplifyMemo()
    base = [le({0: 1}, -k) for k in range(10)]   # collapses to tightest
    memo(base)
    assert len(memo._out) == 1
    out = memo(base + [le({1: 1}, -5)])
    assert out == simplify(base + [le({1: 1}, -5)])


# ----------------------------------------------------------------------
# campaign-level contract: cache-on ≡ cache-off, and resume
# ----------------------------------------------------------------------
def _campaign(solver_cache: bool, iters: int = 25, path=None):
    program = instrument_program(["repro.targets.demo"])
    try:
        cfg = CompiConfig(seed=11, init_nprocs=2, nprocs_cap=4,
                          test_timeout=5.0, solver_cache=solver_cache,
                          solver_cache_path=path)
        compi = Compi(program, cfg)
        try:
            return compi.run(iterations=iters)
        finally:
            compi.close()
    finally:
        program.unload()


def _projection(result):
    return [(r.iteration, r.origin, r.nprocs, r.path_len, r.covered_after,
             r.error_kind) for r in result.iterations]


def test_campaign_cache_on_equals_cache_off():
    on = _campaign(True)
    off = _campaign(False)
    assert on.coverage.branches == off.coverage.branches
    assert ({b.dedup_key for b in on.bugs}
            == {b.dedup_key for b in off.bugs})
    assert _projection(on) == _projection(off)
    assert on.solver.hits > 0           # and the cache actually worked
    assert off.solver.hits == 0
    assert on.solver.stale_hits == 0


def test_campaign_disk_tier_warms_second_run(tmp_path):
    path = str(tmp_path / "solver_cache.jsonl")
    cold = _campaign(True, iters=15, path=path)
    warm = _campaign(True, iters=15, path=path)
    # identical trajectory (cache contents steer nothing observable) ...
    assert _projection(cold) == _projection(warm)
    assert cold.coverage.branches == warm.coverage.branches
    # ... but the warmed run answers more requests from the cache
    assert warm.solver.hits >= cold.solver.hits
    assert warm.solver.nodes <= cold.solver.nodes
