"""Tests for cartesian topologies, v-collectives, and request helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi import (cart_create, dims_create, run_spmd, waitall, waitany)
from repro.mpi.errors import MpiInternalError
from repro.mpi.topology import _row_major_strides


def collect(prog, size, timeout=20):
    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    return res


# ----------------------------------------------------------------------
# dims_create
# ----------------------------------------------------------------------
def test_dims_create_balanced():
    assert sorted(dims_create(12, 2)) == [3, 4]
    assert sorted(dims_create(8, 3)) == [2, 2, 2]
    assert dims_create(7, 1) == [7]


def test_dims_create_respects_fixed_entries():
    dims = dims_create(12, 2, [3, 0])
    assert dims == [3, 4]
    with pytest.raises(MpiInternalError):
        dims_create(12, 2, [5, 0])      # 12 % 5 != 0


@given(st.integers(1, 64), st.integers(1, 4))
def test_dims_create_product_invariant(nnodes, ndims):
    dims = dims_create(nnodes, ndims)
    assert int(np.prod(dims)) == nnodes
    assert all(d >= 1 for d in dims)


def test_row_major_strides():
    assert _row_major_strides((2, 3, 4)) == (12, 4, 1)
    assert _row_major_strides((5,)) == (1,)


# ----------------------------------------------------------------------
# cart comm
# ----------------------------------------------------------------------
def test_cart_coords_roundtrip():
    got = {}

    def prog(mpi):
        mpi.Init()
        cart = cart_create(mpi.COMM_WORLD, dims=(2, 3), periods=(True, False))
        me = cart.Get_rank()
        got[int(me)] = cart.coords()
        assert cart.rank_of(cart.coords()) == me

    collect(prog, 6)
    assert got == {0: (0, 0), 1: (0, 1), 2: (0, 2),
                   3: (1, 0), 4: (1, 1), 5: (1, 2)}


def test_cart_shift_periodic_and_bounded():
    got = {}

    def prog(mpi):
        mpi.Init()
        cart = cart_create(mpi.COMM_WORLD, dims=(2, 2),
                           periods=(True, False))
        got[cart.Get_rank()] = {
            "dim0": cart.shift(0), "dim1": cart.shift(1)}

    collect(prog, 4)
    # dim0 periodic: rank0's up/down neighbours both rank2
    assert got[0]["dim0"] == (2, 2)
    # dim1 non-periodic: rank0 has no left neighbour
    assert got[0]["dim1"] == (None, 1)
    assert got[3]["dim1"] == (2, None)


def test_cart_excess_ranks_get_none():
    got = {}

    def prog(mpi):
        mpi.Init()
        cart = cart_create(mpi.COMM_WORLD, dims=(2,), periods=(True,))
        got[int(mpi.COMM_WORLD.Get_rank())] = cart is not None

    collect(prog, 3)
    assert got == {0: True, 1: True, 2: False}


def test_cart_sub_splits_rows():
    got = {}

    def prog(mpi):
        mpi.Init()
        cart = cart_create(mpi.COMM_WORLD, dims=(2, 3), periods=(False, True))
        row = cart.sub([False, True])    # keep the column dimension
        from repro.mpi.datatypes import SUM

        got[cart.Get_rank()] = (row.dims, row.comm.Allreduce(
            cart.Get_rank(), SUM))

    collect(prog, 6)
    assert got[0] == ((3,), 0 + 1 + 2)
    assert got[4] == ((3,), 3 + 4 + 5)


def test_cart_halo_exchange_ring():
    """1D periodic ring: everyone passes its rank right; receives left."""
    got = {}

    def prog(mpi):
        mpi.Init()
        cart = cart_create(mpi.COMM_WORLD, dims=(4,), periods=(True,))
        src, dst = cart.shift(0, 1)
        data, _ = cart.comm.Sendrecv(cart.Get_rank(), dest=dst, sendtag=5,
                                     source=src, recvtag=5)
        got[cart.Get_rank()] = data

    collect(prog, 4)
    assert got == {0: 3, 1: 0, 2: 1, 3: 2}


def test_cart_too_big_rejected():
    def prog(mpi):
        mpi.Init()
        cart_create(mpi.COMM_WORLD, dims=(5,))

    res = run_spmd(prog, size=2, timeout=10)
    err = res.first_error()
    assert isinstance(err.error, MpiInternalError)


# ----------------------------------------------------------------------
# v-collectives
# ----------------------------------------------------------------------
def test_gatherv_uneven_contributions():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        got[rank] = mpi.COMM_WORLD.Gatherv(list(range(rank + 1)), root=0)

    collect(prog, 3)
    assert got[0] == [[0], [0, 1], [0, 1, 2]]
    assert got[1] is None


def test_scatterv_uneven_parts():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        parts = [[1], [2, 2], [3, 3, 3]] if rank == 0 else None
        got[rank] = mpi.COMM_WORLD.Scatterv(parts, root=0)

    collect(prog, 3)
    assert got == {0: [1], 1: [2, 2], 2: [3, 3, 3]}


def test_reduce_scatter_block():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        # rank r contributes [r, r+1, r+2]; slot s sums to 0+1+2 + 3s
        got[rank] = mpi.COMM_WORLD.Reduce_scatter(
            [rank + s for s in range(3)], mpi.SUM)

    collect(prog, 3)
    assert got == {0: 3, 1: 6, 2: 9}


def test_exscan():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        got[rank] = mpi.COMM_WORLD.Exscan(rank + 1, mpi.SUM)

    collect(prog, 4)
    assert got == {0: None, 1: 1, 2: 3, 3: 6}


# ----------------------------------------------------------------------
# request helpers
# ----------------------------------------------------------------------
def test_waitall_returns_in_request_order():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        if rank == 0:
            for tag in (3, 1, 2):
                mpi.COMM_WORLD.Send(f"m{tag}", dest=1, tag=tag)
        else:
            reqs = [mpi.COMM_WORLD.Irecv(source=0, tag=t) for t in (1, 2, 3)]
            got["msgs"] = waitall(reqs)

    collect(prog, 2)
    assert got["msgs"] == ["m1", "m2", "m3"]


def test_waitany_returns_some_completed():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        if rank == 0:
            mpi.COMM_WORLD.Send("only", dest=1, tag=7)
        else:
            reqs = [mpi.COMM_WORLD.Irecv(source=0, tag=9),
                    mpi.COMM_WORLD.Irecv(source=0, tag=7)]
            idx, payload = waitany(reqs)
            got["r"] = (idx, payload)
            mpi.COMM_WORLD.Send("unblock", dest=0, tag=9) if False else None

    res = run_spmd(prog, size=2, timeout=10)
    # rank 1 still holds a pending Irecv; job ends anyway (daemon threads)
    assert got["r"] == (1, "only")


def test_waitany_empty_rejected():
    with pytest.raises(ValueError):
        waitany([])
