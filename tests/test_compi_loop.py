"""End-to-end tests of the COMPI loop on the paper's Figure 2 demo target.

These exercise the full stack: instrumentation → virtual MPI launch →
heavy/light sinks → search strategy → solver → conflict resolution.
"""

import pytest

from repro.core import Compi, CompiConfig
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


def fresh_compi(demo_program, **cfg):
    defaults = dict(seed=7, init_nprocs=3, nprocs_cap=6, test_timeout=10.0,
                    observe_iterations=100)
    defaults.update(cfg)
    return Compi(demo_program, CompiConfig(**defaults))


def test_campaign_requires_budget(demo_program):
    with pytest.raises(ValueError):
        fresh_compi(demo_program).run()


def test_demo_campaign_covers_sanity_and_mpi_branches(demo_program):
    compi = fresh_compi(demo_program)
    result = compi.run(iterations=40)
    assert len(result.iterations) == 40
    # the demo has 7 static conditionals = 14 branches; COMPI should cover
    # most of them, including the rank-dependent ones
    assert result.covered >= 11, result.coverage.branches
    # reachable-vs-covered sanity
    assert result.covered <= result.total_branches


def test_demo_campaign_varies_focus_and_nprocs(demo_program):
    compi = fresh_compi(demo_program)
    result = compi.run(iterations=40)
    foci = {r.focus for r in result.iterations}
    sizes = {r.nprocs for r in result.iterations}
    assert len(foci) > 1, "framework never moved the focus"
    assert len(sizes) > 1, "framework never varied the process count"
    # the process-count cap from config is respected
    assert all(1 <= s <= 6 for s in sizes)


def test_demo_campaign_without_framework_keeps_setup_fixed(demo_program):
    compi = fresh_compi(demo_program, framework=False)
    result = compi.run(iterations=25)
    assert {r.focus for r in result.iterations} == {0}
    assert {r.nprocs for r in result.iterations} == {3}


def test_framework_beats_no_framework_on_demo(demo_program):
    with_fwk = fresh_compi(demo_program).run(iterations=40)
    without = fresh_compi(demo_program, framework=False).run(iterations=40)
    # branch 5F (worker arm with y < 100) needs a non-zero focus; branches
    # 3F/4-style worker arms need all-recorders. Fwk must strictly win.
    assert with_fwk.covered > without.covered


def test_campaign_iteration_records_are_complete(demo_program):
    result = fresh_compi(demo_program).run(iterations=10)
    for i, rec in enumerate(result.iterations):
        assert rec.iteration == i
        assert rec.origin in ("initial", "negation", "restart")
        assert rec.covered_after >= (result.iterations[i - 1].covered_after
                                     if i else 0)
        assert rec.wall_time >= 0 and rec.elapsed >= 0


def test_campaign_time_budget_stops_early(demo_program):
    compi = fresh_compi(demo_program)
    result = compi.run(time_budget=0.5)
    assert result.wall_time < 10


def test_constraint_set_sizes_collected(demo_program):
    result = fresh_compi(demo_program).run(iterations=8)
    sizes = result.constraint_set_sizes()
    assert len(sizes) == 8
    assert all(s >= 0 for s in sizes)
    assert max(sizes) >= 1  # symbolic branches exist on the demo


def test_seq_demo_bug_found_by_negating_x_ne_100():
    from repro.core.conflicts import TestSetup

    prog = instrument_program(["repro.targets.seq_demo"])
    try:
        compi = Compi(prog, CompiConfig(seed=3, init_nprocs=1, nprocs_cap=2))
        result = compi.run(iterations=12)
        kinds = {b.kind for b in result.unique_bugs()}
        assert "assertion" in kinds, result.iterations
        bug = next(b for b in result.unique_bugs() if b.kind == "assertion")
        # the error-inducing input is logged, and it is exactly x == 100
        assert bug.testcase.inputs["x"] == 100
    finally:
        prog.unload()
