"""Tests for the concolic proxies: shadow propagation & concolic
simplification rules."""

import pytest
from hypothesis import given, strategies as st

from repro.concolic import (HeavySink, SymBool, SymInt, concrete, sink_scope)
from repro.concolic.expr import LinearExpr, Var


def sym(vid, value):
    return SymInt.from_var(Var(vid=vid, name=f"v{vid}", kind="input"), value)


# ----------------------------------------------------------------------
# linear arithmetic keeps the shadow exact
# ----------------------------------------------------------------------
def test_add_sub_of_symbolic_and_const():
    x = sym(0, 10)
    y = x + 5
    assert isinstance(y, SymInt) and y.concrete == 15
    assert y.lin.coeffs == {0: 1} and y.lin.const == 5
    z = 3 - x
    assert z.concrete == -7 and z.lin.coeffs == {0: -1} and z.lin.const == 3


def test_mul_by_const_scales_shadow():
    x = sym(0, 4)
    y = 3 * x
    assert y.concrete == 12 and y.lin.coeffs == {0: 3}
    z = x * -2
    assert z.concrete == -8 and z.lin.coeffs == {0: -2}


def test_sym_plus_sym_combines_coeffs():
    x, y = sym(0, 2), sym(1, 3)
    s = x + y
    assert s.concrete == 5 and s.lin.coeffs == {0: 1, 1: 1}
    d = x - y
    assert d.concrete == -1 and d.lin.coeffs == {0: 1, 1: -1}


def test_neg_and_pos():
    x = sym(0, 7)
    assert (-x).concrete == -7 and (-x).lin.coeffs == {0: -1}
    assert (+x) is x


def test_sym_times_sym_concretizes_right_operand():
    x, y = sym(0, 3), sym(1, 5)
    p = x * y
    assert p.concrete == 15
    # x stays symbolic; y's concrete 5 became the coefficient
    assert p.lin.coeffs == {0: 5}


@given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-20, 20))
def test_shadow_matches_concrete_under_linear_ops(a, b, k):
    x = sym(0, a)
    expr = (x + b) * k - x
    if isinstance(expr, SymInt):
        assert expr.lin.evaluate({0: a}) == expr.concrete


# ----------------------------------------------------------------------
# non-linear ops concretize
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fn,expected", [
    (lambda x: x // 3, 3), (lambda x: x % 3, 1), (lambda x: x / 2, 5.0),
    (lambda x: x ** 2, 100), (lambda x: abs(x), 10), (lambda x: x << 1, 20),
    (lambda x: x >> 1, 5), (lambda x: x & 6, 2), (lambda x: x | 1, 11),
    (lambda x: x ^ 3, 9),
])
def test_nonlinear_returns_plain_value(fn, expected):
    x = sym(0, 10)
    result = fn(x)
    assert not isinstance(result, SymInt)
    assert result == expected


def test_rdiv_rmod_concretize():
    x = sym(0, 3)
    assert 10 // x == 3
    assert 10 % x == 1
    assert 9 / x == 3.0


# ----------------------------------------------------------------------
# comparisons produce SymBool with an oriented (holding) constraint
# ----------------------------------------------------------------------
def test_comparison_builds_constraint():
    x = sym(0, 10)
    b = x < 100
    assert isinstance(b, SymBool) and b.concrete is True
    assert b.constraint is not None
    assert b.constraint.evaluate({0: 10})      # holds at current value
    assert not b.constraint.evaluate({0: 200})


def test_false_comparison_stores_negated_constraint():
    x = sym(0, 10)
    b = x > 100
    assert b.concrete is False
    # stored constraint must HOLD under the current execution
    assert b.constraint.evaluate({0: 10})


def test_eq_ne_with_non_int_fall_back():
    x = sym(0, 1)
    assert (x == "a") is False
    assert (x != None) is True  # noqa: E711 - exercising the fallback


def test_comparison_with_float_is_concrete_only():
    x = sym(0, 10)
    b = x < 10.5
    assert b.concrete is True and b.constraint is None


def test_comparison_between_equal_shadows_is_trivial():
    x = sym(0, 10)
    b = (x - x) == 0
    # shadow difference is constant → no symbolic content
    assert b.concrete is True and b.constraint is None


def test_invert_keeps_held_constraint():
    x = sym(0, 10)
    b = x < 100
    nb = ~b
    assert nb.concrete is False
    assert nb.constraint is b.constraint


# ----------------------------------------------------------------------
# coercions
# ----------------------------------------------------------------------
def test_index_int_float_hash():
    x = sym(0, 4)
    assert list(range(x)) == [0, 1, 2, 3]
    assert int(x) == 4 and float(x) == 4.0
    assert hash(x) == hash(4)
    assert [10, 11, 12, 13, 14][x] == 14


def test_concrete_helper():
    x = sym(0, 9)
    assert concrete(x) == 9
    assert concrete(x < 10) is True
    assert concrete("s") == "s"


# ----------------------------------------------------------------------
# implicit branch recording through a sink
# ----------------------------------------------------------------------
def test_bool_records_implicit_branch_in_sink():
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", 10)
        if x < 100:       # plain `if` without probe → implicit branch
            pass
        a = bool(x < 50)   # second implicit branch, distinct line
        b = bool(x > 2)    # third
        assert a and b
    res = sink.result()
    assert res.event_count == 3
    assert len(res.path) == 3
    # implicit sites get negative ids and are distinct per source line
    sites = {pe.site for pe in res.path}
    assert len(sites) == 3 and all(s < 0 for s in sites)


def test_short_circuit_and_forces_only_first_operand():
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", 10)
        flag = (x < 50) and (x > 2)   # `and` forces the first operand only
        assert isinstance(flag, SymBool)   # result is the unforced second
    res = sink.result()
    assert res.event_count == 1


def test_symint_bool_records_nonzero_check():
    sink = HeavySink()
    with sink_scope(sink):
        x = sink.mark_input("x", 5)
        if x:   # C-style truthiness: x != 0
            pass
    res = sink.result()
    assert len(res.path) == 1
    c = res.path[0].constraint
    assert c.evaluate({0: 5}) and not c.evaluate({0: 0})


def test_no_sink_means_pure_concrete_behaviour():
    x = sym(0, 10)
    assert bool(x < 100) is True
    assert bool(x) is True
