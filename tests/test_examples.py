"""Smoke tests: every shipped example must run end-to-end.

Budgets are monkeypatched down so the whole file stays fast; the examples
themselves default to demo-scale settings anyway.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_examples_directory_contents():
    names = sorted(p.stem for p in EXAMPLES.glob("*.py"))
    assert "quickstart" in names
    assert len(names) >= 5     # the deliverable floor is 3


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "covered" in out and "focus processes used" in out


def test_virtual_mpi_tour(capsys):
    load_example("virtual_mpi_tour").main()
    out = capsys.readouterr().out
    assert "allreduce total = 499500" in out
    assert "master got" in out


def test_campaign_logs(capsys):
    load_example("campaign_logs").main()
    out = capsys.readouterr().out
    assert "campaign log written" in out
    assert "error-inducing inputs" in out


def test_bug_hunting_susy(capsys, monkeypatch):
    from repro.core.compi import Compi

    mod = load_example("bug_hunting_susy")
    # full budget finds all four; the smoke run gets a trimmed budget
    orig_run = Compi.run
    monkeypatch.setattr(
        Compi, "run",
        lambda self, iterations=None, time_budget=None:
            orig_run(self, iterations=min(iterations or 40, 40),
                     time_budget=time_budget))
    mod.main()
    out = capsys.readouterr().out
    assert "unique bugs found" in out


def test_compi_vs_random(capsys, monkeypatch):
    mod = load_example("compi_vs_random")
    monkeypatch.setattr(mod, "TIME_BUDGET", 4.0)
    mod.main()
    out = capsys.readouterr().out
    assert "COMPI" in out and "Random" in out


def test_hpl_search_strategies(capsys, monkeypatch):
    mod = load_example("hpl_search_strategies")
    monkeypatch.setattr(mod, "ITERATIONS", 25)
    monkeypatch.setattr(mod, "STRATEGY_NAMES",
                        ["BoundedDFS(default)", "RandomBranch"])
    mod.main()
    out = capsys.readouterr().out
    assert "BoundedDFS(default)" in out and "RandomBranch" in out
