"""Staged engine: parallel determinism, executor selection, mid-batch
kill + resume.

The engine's contract (docs/ARCHITECTURE.md): for a fixed seed the
committed iteration stream is bit-for-bit identical under every executor
and speculation width — parallelism changes wall-clock time and nothing
else.  These tests pin that with full per-iteration projections, not
just final tallies.
"""

import pytest

from repro.core import Compi, CompiConfig
from repro.core.persist import CampaignLog
from repro.engine import InlineExecutor, ParallelExecutor, make_executor
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


@pytest.fixture(scope="module")
def seq_program():
    prog = instrument_program(["repro.targets.seq_demo"])
    yield prog
    prog.unload()


def _cfg(**kw):
    base = dict(seed=7, init_nprocs=2, nprocs_cap=4, test_timeout=5.0)
    base.update(kw)
    return CompiConfig(**base)


def _proj(result):
    return [(r.iteration, r.origin, r.nprocs, r.path_len, r.covered_after,
             r.error_kind, r.negated_site) for r in result.iterations]


def _keys(result):
    return {b.dedup_key for b in result.bugs}


# ----------------------------------------------------------------------
# executor selection
# ----------------------------------------------------------------------
def test_make_executor_selects_by_workers(demo_program):
    from repro.core.runner import TestRunner

    serial_cfg = _cfg()
    runner = TestRunner(demo_program, serial_cfg)
    assert isinstance(make_executor(demo_program, serial_cfg, runner),
                      InlineExecutor)

    par_cfg = _cfg(workers=2)
    ex = make_executor(demo_program, par_cfg,
                       TestRunner(demo_program, par_cfg))
    try:
        assert isinstance(ex, ParallelExecutor)
    finally:
        ex.close()


def test_faults_force_the_inline_executor(demo_program):
    """Fault streams are run-number-indexed: squashed speculation would
    shift them, so workers>1 + faults must fall back to inline."""
    cfg = _cfg(workers=4, faults=("jitter",), fault_seed=5)
    compi = Compi(demo_program, cfg)
    try:
        assert isinstance(compi.executor, InlineExecutor)
        assert not compi.executor.parallel
        assert compi.engine.width == 1
    finally:
        compi.close()


def test_speculation_width_defaults_to_workers():
    assert _cfg(workers=3).effective_speculation_width() == 3
    assert _cfg(workers=3, speculation_width=1) \
        .effective_speculation_width() == 1
    assert _cfg().effective_speculation_width() == 1


# ----------------------------------------------------------------------
# parallel == serial, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", ["demo_program", "seq_program"])
def test_parallel_campaign_matches_serial(target, request):
    program = request.getfixturevalue(target)

    serial = Compi(program, _cfg())
    rs = serial.run(iterations=10)
    serial.close()

    par = Compi(program, _cfg(workers=2))
    try:
        assert par.executor.parallel
        rp = par.run(iterations=10)
    finally:
        par.close()

    assert _proj(rs) == _proj(rp)
    assert rs.coverage.branches == rp.coverage.branches
    assert _keys(rs) == _keys(rp)
    assert rs.divergences == rp.divergences


def test_wide_speculation_still_matches_serial(seq_program):
    """Width beyond the worker count exercises deeper squashing."""
    serial = Compi(seq_program, _cfg())
    rs = serial.run(iterations=8)
    serial.close()

    par = Compi(seq_program, _cfg(workers=2, speculation_width=4))
    try:
        rp = par.run(iterations=8)
    finally:
        par.close()

    assert _proj(rs) == _proj(rp)
    assert rs.coverage.branches == rp.coverage.branches
    assert _keys(rs) == _keys(rp)


# ----------------------------------------------------------------------
# kill mid-batch, resume (satellite: checkpoint under ParallelExecutor)
# ----------------------------------------------------------------------
def test_kill_mid_batch_parallel_resume_matches_serial(seq_program,
                                                       tmp_path):
    """Checkpoint a parallel campaign partway (speculative work still in
    flight is squashed, i.e. lost, exactly as a kill would lose it),
    resume in parallel, and land on the uninterrupted serial reference."""
    reference = Compi(seq_program, _cfg())
    ref = reference.run(iterations=12)
    reference.close()

    part_log = tmp_path / "part.jsonl"
    first = Compi(seq_program, _cfg(workers=2))
    try:
        with CampaignLog(part_log) as log:
            first.run(iterations=5, log=log)
    finally:
        first.close()

    resumed_c = Compi.resume(seq_program, part_log)
    assert resumed_c._iteration == 5
    assert resumed_c.executor.parallel  # checkpointed config had workers=2
    try:
        with CampaignLog(part_log, mode="a") as log:
            resumed = resumed_c.run(iterations=7, log=log)
    finally:
        resumed_c.close()

    assert _proj(resumed) == _proj(ref)
    assert resumed.coverage.branches == ref.coverage.branches
    assert _keys(resumed) == _keys(ref)


# ----------------------------------------------------------------------
# engine telemetry
# ----------------------------------------------------------------------
def test_speculation_telemetry_accounts_for_every_candidate(seq_program):
    compi = Compi(seq_program, _cfg(workers=2))
    try:
        compi.run(iterations=10)
        eng = compi.engine
        assert eng.speculation_hits + eng.speculation_squashes >= 0
        # every committed iteration was the authoritative serial one
        assert eng.iteration == 10
    finally:
        compi.close()
