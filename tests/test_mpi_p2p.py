"""Point-to-point communication: matching, ordering, wildcards, payloads."""

import numpy as np

from repro.mpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_send_recv_roundtrip_object():
    received = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            mpi.COMM_WORLD.Send({"a": 7, "b": [1, 2]}, dest=1, tag=11)
        else:
            data, st = mpi.COMM_WORLD.Recv(source=0, tag=11)
            received["data"] = data
            received["status"] = st

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert received["data"] == {"a": 7, "b": [1, 2]}
    assert received["status"].source == 0
    assert received["status"].tag == 11


def test_payload_is_copied_not_aliased():
    out = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            buf = np.arange(4)
            mpi.COMM_WORLD.Send(buf, dest=1)
            buf[:] = -1  # mutate after send; receiver must not see this
        else:
            data, _ = mpi.COMM_WORLD.Recv(source=0)
            out["data"] = data

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert list(out["data"]) == [0, 1, 2, 3]


def test_fifo_order_per_source_tag():
    order = []

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            for i in range(5):
                mpi.COMM_WORLD.Send(i, dest=1, tag=3)
        else:
            for _ in range(5):
                v, _ = mpi.COMM_WORLD.Recv(source=0, tag=3)
                order.append(v)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert order == [0, 1, 2, 3, 4]


def test_tag_selectivity():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            mpi.COMM_WORLD.Send("low", dest=1, tag=1)
            mpi.COMM_WORLD.Send("high", dest=1, tag=2)
        else:
            # receive tag 2 first even though tag 1 was sent first
            v2, _ = mpi.COMM_WORLD.Recv(source=0, tag=2)
            v1, _ = mpi.COMM_WORLD.Recv(source=0, tag=1)
            got["order"] = [v2, v1]

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert got["order"] == ["high", "low"]


def test_any_source_any_tag():
    got = []

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank != 0:
            mpi.COMM_WORLD.Send(rank * 10, dest=0, tag=rank)
        else:
            for _ in range(2):
                v, st = mpi.COMM_WORLD.Recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((v, st.source, st.tag))

    res = run_spmd(prog, size=3, timeout=10)
    assert res.ok
    assert sorted(got) == [(10, 1, 1), (20, 2, 2)]


def test_isend_irecv_wait():
    out = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            req = mpi.COMM_WORLD.Isend([1, 2, 3], dest=1, tag=5)
            req.wait()
        else:
            req = mpi.COMM_WORLD.Irecv(source=0, tag=5)
            out["data"] = req.wait()
            out["status"] = req.status

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert out["data"] == [1, 2, 3]
    assert out["status"].source == 0


def test_sendrecv_exchange_no_deadlock():
    vals = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        peer = 1 - rank
        data, _ = mpi.COMM_WORLD.Sendrecv(rank, dest=peer, sendtag=0,
                                          source=peer, recvtag=0)
        vals[rank] = data

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert vals == {0: 1, 1: 0}


def test_iprobe_detects_pending_message():
    out = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            mpi.COMM_WORLD.Send("x", dest=1, tag=7)
            mpi.COMM_WORLD.Barrier()
        else:
            mpi.COMM_WORLD.Barrier()  # after barrier the send has landed
            st = mpi.COMM_WORLD.Iprobe(source=0, tag=7)
            out["probe"] = st
            out["missing"] = mpi.COMM_WORLD.Iprobe(source=0, tag=99)
            mpi.COMM_WORLD.Recv(source=0, tag=7)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert out["probe"] is not None and out["probe"].source == 0
    assert out["missing"] is None


def test_ring_pass_many_ranks():
    result = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        if rank == 0:
            mpi.COMM_WORLD.Send(1, dest=1)
            total, _ = mpi.COMM_WORLD.Recv(source=size - 1)
            result["total"] = total
        else:
            v, _ = mpi.COMM_WORLD.Recv(source=rank - 1)
            mpi.COMM_WORLD.Send(v + 1, dest=(rank + 1) % size)

    res = run_spmd(prog, size=6, timeout=10)
    assert res.ok
    assert result["total"] == 6


def test_blocking_probe_waits_for_message():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        if rank == 0:
            mpi.COMM_WORLD.Barrier()
            mpi.COMM_WORLD.Send("late", dest=1, tag=4)
        else:
            mpi.COMM_WORLD.Barrier()
            st = mpi.COMM_WORLD.Probe(source=0, tag=4)  # blocks until sent
            got["probe"] = (st.source, st.tag)
            got["data"], _ = mpi.COMM_WORLD.Recv(source=0, tag=4)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert got["probe"] == (0, 4) and got["data"] == "late"


def test_blocking_probe_unwinds_on_shutdown():
    from repro.mpi.errors import MpiShutdown

    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Probe(source=0, tag=99)  # nobody ever sends

    res = run_spmd(prog, size=1, timeout=0.4)
    assert res.timed_out
    assert isinstance(res.outcomes[0].error, MpiShutdown)


def _mixed_wildcard_prog(got):
    """Two senders interleave posts under one tag; the root drains them
    through ANY_SOURCE + concrete-tag receives."""

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank != 0:
            for i in range(4):
                mpi.COMM_WORLD.Send((rank, i), dest=0, tag=3)
            mpi.COMM_WORLD.Barrier()
        else:
            mpi.COMM_WORLD.Barrier()  # every send has landed: the match
            for _ in range(8):        # order is pure matching policy
                v, st = mpi.COMM_WORLD.Recv(source=ANY_SOURCE, tag=3)
                got.append((st.source, v[1]))

    return prog


def test_any_source_concrete_tag_preserves_per_sender_fifo():
    got = []
    res = run_spmd(_mixed_wildcard_prog(got), size=3, timeout=10)
    assert res.ok
    assert len(got) == 8
    for sender in (1, 2):
        assert [i for s, i in got if s == sender] == [0, 1, 2, 3]


def test_any_source_concrete_tag_fifo_under_schedule_policy():
    # the schedule controller's canonical choice (min (source, tag) pair,
    # then earliest seq) must never reorder one sender's stream
    from repro.schedules import ScheduleController

    got = []
    res = run_spmd(_mixed_wildcard_prog(got), size=3, timeout=10,
                   match_policy=ScheduleController())
    assert res.ok
    assert len(got) == 8
    for sender in (1, 2):
        assert [i for s, i in got if s == sender] == [0, 1, 2, 3]


def test_concrete_source_any_tag_preserves_send_order():
    got = []

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        if rank == 0:
            for i, tag in enumerate([5, 2, 9, 2, 5]):
                mpi.COMM_WORLD.Send(i, dest=1, tag=tag)
            mpi.COMM_WORLD.Barrier()
        else:
            mpi.COMM_WORLD.Barrier()  # all five pending before matching
            for _ in range(5):
                v, st = mpi.COMM_WORLD.Recv(source=0, tag=ANY_TAG)
                got.append((v, st.tag))

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    # non-overtaking: one sender's messages arrive in send order even
    # though the receive matches every tag
    assert got == [(0, 5), (1, 2), (2, 9), (3, 2), (4, 5)]
