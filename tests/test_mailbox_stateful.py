"""Property/stateful tests of the mailbox matching semantics.

A model-based check: the mailbox must behave exactly like a list of
messages matched by (source, tag) with FIFO-per-(source, tag) order and
wildcard support.
"""

import threading

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.mpi.channel import Mailbox
from repro.mpi.status import ANY_SOURCE, ANY_TAG


class MailboxModel(RuleBasedStateMachine):
    """Reference model: a plain list replayed against the real mailbox."""

    def __init__(self):
        super().__init__()
        self.mailbox = Mailbox(0, threading.Event())
        self.model: list[tuple[int, int, int]] = []   # (source, tag, payload)
        self.counter = 0

    @rule(source=st.integers(0, 3), tag=st.integers(0, 3))
    def deposit(self, source, tag):
        self.counter += 1
        self.mailbox.deposit(source, tag, self.counter)
        self.model.append((source, tag, self.counter))

    def _model_match(self, source, tag):
        for i, (s, t, _p) in enumerate(self.model):
            if source != ANY_SOURCE and s != source:
                continue
            if tag != ANY_TAG and t != tag:
                continue
            return i
        return None

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def receive_existing(self, data):
        # pick a (source, tag) that definitely matches something
        s, t, _p = data.draw(st.sampled_from(self.model))
        use_any_source = data.draw(st.booleans())
        use_any_tag = data.draw(st.booleans())
        source = ANY_SOURCE if use_any_source else s
        tag = ANY_TAG if use_any_tag else t
        idx = self._model_match(source, tag)
        expected = self.model.pop(idx)
        payload, status = self.mailbox.receive(source=source, tag=tag,
                                               timeout=1.0)
        assert payload == expected[2]
        assert status.source == expected[0]
        assert status.tag == expected[1]

    @rule(source=st.integers(0, 3), tag=st.integers(0, 3))
    def probe_agrees_with_model(self, source, tag):
        st_real = self.mailbox.probe(source=source, tag=tag)
        idx = self._model_match(source, tag)
        if idx is None:
            assert st_real is None
        else:
            s, t, _p = self.model[idx]
            assert st_real is not None
            assert (st_real.source, st_real.tag) == (s, t)

    @invariant()
    def pending_counts_match(self):
        assert self.mailbox.pending_count() == len(self.model)


TestMailboxModel = MailboxModel.TestCase
TestMailboxModel.settings = settings(max_examples=40, deadline=None,
                                     stateful_step_count=30)


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1,
                max_size=20))
def test_fifo_order_per_source_tag_pair(messages):
    """Receiving with exact (source, tag) always yields the OLDEST match."""
    box = Mailbox(0, threading.Event())
    for i, (s, t) in enumerate(messages):
        box.deposit(s, t, i)
    # drain by pair: each receive returns increasing payload indices
    last_seen: dict[tuple[int, int], int] = {}
    for s, t in sorted(set(messages)):
        count = sum(1 for m in messages if m == (s, t))
        for _ in range(count):
            payload, _st = box.receive(source=s, tag=t, timeout=1.0)
            key = (s, t)
            assert last_seen.get(key, -1) < payload
            last_seen[key] = payload
    assert box.pending_count() == 0
