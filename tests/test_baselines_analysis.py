"""Tests for the baselines (random testing, ablation variants) and the
complexity/SLOC analysis helpers."""

import pytest

from repro.analysis import (complexity_row, count_sloc_modules,
                            count_sloc_source)
from repro.baselines import RandomTester, VARIANTS, make_variant
from repro.core import Compi, CompiConfig
from repro.instrument import instrument_program


@pytest.fixture(scope="module")
def demo_program():
    prog = instrument_program(["repro.targets.demo"])
    yield prog
    prog.unload()


# ----------------------------------------------------------------------
# SLOC
# ----------------------------------------------------------------------
def test_sloc_skips_blanks_comments_docstrings():
    src = (
        '"""module docstring\nspanning lines"""\n'
        "\n"
        "# a comment\n"
        "def f(a):\n"
        '    """doc"""\n'
        "    x = 1  # trailing comment\n"
        "\n"
        "    return x\n"
    )
    assert count_sloc_source(src) == 3  # def, assign, return


def test_sloc_counts_multiline_statements_fully():
    src = "x = [\n    1,\n    2,\n]\n"
    assert count_sloc_source(src) == 4


def test_sloc_of_real_targets_is_substantial():
    from repro.targets.hpl import MODULES as HPL
    from repro.targets.susy import MODULES as SUSY
    from repro.targets.imb import MODULES as IMB

    hpl, susy, imb = (count_sloc_modules(m) for m in (HPL, SUSY, IMB))
    # ordering mirrors the paper's Table III: SUSY and HPL are the big
    # ones, IMB the smallest
    assert hpl > imb and susy > 100 and imb > 100


def test_complexity_row(demo_program):
    row = complexity_row(demo_program, ["repro.targets.demo"])
    assert row.total_branches == 14
    assert row.sloc > 10
    assert row.reachable_branches == 0  # no campaign coverage given

    result = Compi(demo_program, CompiConfig(seed=0, init_nprocs=2,
                                             nprocs_cap=4)).run(iterations=5)
    row2 = complexity_row(demo_program, ["repro.targets.demo"],
                          coverage=result.coverage)
    assert 0 < row2.reachable_branches <= row2.total_branches


# ----------------------------------------------------------------------
# random testing
# ----------------------------------------------------------------------
def test_random_tester_runs_and_merges_coverage(demo_program):
    rt = RandomTester(demo_program, CompiConfig(seed=5, nprocs_cap=4))
    res = rt.run(iterations=15)
    assert len(res.iterations) == 15
    assert res.covered > 0
    assert res.program_name.endswith("(random)")
    # random testing varies both process count and focus
    assert len({r.nprocs for r in res.iterations}) > 1


def test_random_tester_honours_caps(demo_program):
    rt = RandomTester(demo_program, CompiConfig(seed=5, nprocs_cap=3),
                      caps={"x": 5})
    res = rt.run(iterations=10)
    assert all(r.nprocs <= 3 for r in res.iterations)


def test_random_tester_requires_budget(demo_program):
    with pytest.raises(ValueError):
        RandomTester(demo_program).run()


def test_compi_beats_random_on_demo(demo_program):
    cfg = CompiConfig(seed=9, init_nprocs=3, nprocs_cap=6)
    compi = Compi(demo_program, cfg).run(iterations=30)
    rand = RandomTester(demo_program, cfg).run(iterations=30)
    # the demo needs x*50+y <= 100000 AND x>0, y>0 AND the rank branches;
    # random rarely covers what negation finds directly
    assert compi.covered >= rand.covered


# ----------------------------------------------------------------------
# variants factory
# ----------------------------------------------------------------------
def test_every_variant_constructs_and_runs(demo_program):
    cfg = CompiConfig(seed=3, init_nprocs=2, nprocs_cap=4)
    for name in VARIANTS:
        tester = make_variant(demo_program, name, cfg)
        res = tester.run(iterations=3)
        assert len(res.iterations) == 3, name


def test_unknown_variant_rejected(demo_program):
    with pytest.raises(ValueError):
        make_variant(demo_program, "nope")


def test_nr_variants_disable_reduction(demo_program):
    cfg = CompiConfig(seed=3)
    nr = make_variant(demo_program, "NRBound", cfg, depth_bound=100)
    assert nr.config.reduction is False
    assert nr.strategy.depth_bound == 100
    unl = make_variant(demo_program, "NRUnl", cfg)
    assert unl.strategy.depth_bound is None


def test_nofwk_and_oneway_flags(demo_program):
    cfg = CompiConfig(seed=3)
    assert make_variant(demo_program, "No_Fwk", cfg).config.framework is False
    assert make_variant(demo_program, "OneWay", cfg).config.two_way is False


def test_nr_unl_paths_are_longer_than_reduced(demo_program):
    """Without reduction the loop in the demo generates one constraint per
    iteration; with reduction only the boundary pair is kept."""
    cfg = CompiConfig(seed=4, init_nprocs=2, nprocs_cap=4)
    r = make_variant(demo_program, "R", cfg).run(iterations=10)
    nr = make_variant(demo_program, "NRUnl", cfg).run(iterations=10)
    assert max(nr.constraint_set_sizes()) > max(r.constraint_set_sizes())
