"""Tests for ranged / width-typed marking (the CREST_char family)."""

import pytest

from repro.concolic import (HeavySink, LightSink, SymInt, compi_char,
                            compi_int_with_range, compi_short, compi_uchar,
                            compi_ushort, sink_scope)
from repro.core import CompiConfig, capping_constraints, solver_domains


def trace_of(fn):
    sink = HeavySink()
    with sink_scope(sink):
        fn()
    return sink.result()


def test_range_marking_records_both_bounds():
    res = trace_of(lambda: compi_int_with_range(5, "n", lo=-3, hi=40))
    var = res.vars[0]
    assert var.floor == -3 and var.cap == 40


def test_empty_range_rejected():
    with pytest.raises(ValueError):
        compi_int_with_range(0, "n", lo=5, hi=1)


@pytest.mark.parametrize("fn,lo,hi", [
    (compi_char, -128, 127),
    (compi_uchar, 0, 255),
    (compi_short, -(2 ** 15), 2 ** 15 - 1),
    (compi_ushort, 0, 2 ** 16 - 1),
])
def test_width_typed_markings(fn, lo, hi):
    res = trace_of(lambda: fn(1, "v"))
    var = res.vars[0]
    assert (var.floor, var.cap) == (lo, hi)


def test_width_marking_returns_symbolic_on_heavy_sink():
    sink = HeavySink()
    with sink_scope(sink):
        v = compi_uchar(10, "c")
    assert isinstance(v, SymInt) and v.is_symbolic


def test_width_marking_concrete_on_light_sink():
    with sink_scope(LightSink()):
        assert compi_char(7, "c") == 7
    assert compi_char(7, "c") == 7        # and with no sink at all


def test_capping_constraints_include_floor():
    res = trace_of(lambda: compi_int_with_range(5, "n", lo=2, hi=9))
    cs = capping_constraints(res)
    assert len(cs) == 2
    assert all(c.evaluate({0: 5}) for c in cs)
    assert not all(c.evaluate({0: 1}) for c in cs)    # below floor
    assert not all(c.evaluate({0: 10}) for c in cs)   # above cap


def test_solver_domains_respect_floor_and_cap():
    res = trace_of(lambda: compi_int_with_range(5, "n", lo=2, hi=9))
    box = solver_domains(res, CompiConfig(input_min=-100, input_max=100))
    assert box[0] == (2, 9)


def test_floor_above_spec_bounds_still_coherent():
    res = trace_of(lambda: compi_int_with_range(50, "n", lo=40, hi=60))
    box = solver_domains(res, CompiConfig(), input_bounds={"n": (-5, 45)})
    lo, hi = box[0]
    assert lo <= hi          # never an inverted box
    assert lo >= 40 and hi <= 45
