"""Tests for real HPL equilibration: scaling math and end-to-end solves."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.targets.hpl.equil import _pow2_scale, unscale_solution
from repro.targets.hpl.main import INPUT_SPEC, main as hpl_main


def default_args(**overrides):
    args = {k: v["default"] for k, v in INPUT_SPEC.items()}
    args.update(overrides)
    return args


def run_hpl(size=4, timeout=60, **overrides):
    args = default_args(**overrides)
    codes = {}

    def prog(mpi):
        codes[int(mpi.COMM_WORLD.Get_rank())] = hpl_main(mpi, dict(args))

    res = run_spmd(prog, size=size, timeout=timeout)
    assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
    return codes


def test_pow2_scale_properties():
    assert _pow2_scale(1.0) == 1.0
    assert _pow2_scale(8.0) == 0.125
    assert _pow2_scale(0.25) == 4.0
    assert _pow2_scale(0.0) == 1.0           # degenerate row guard
    assert _pow2_scale(float("inf")) == 1.0
    # always an exact power of two
    for m in (3.7, 100.0, 1e-9, 12345.6):
        s = _pow2_scale(m)
        assert s == 2.0 ** round(np.log2(s))
        # scaled magnitude lands within [1/sqrt2, sqrt2)-ish of 1
        assert 0.5 <= m * s <= 2.0


def test_unscale_solution():
    y = np.array([1.0, 2.0, 3.0])
    x = unscale_solution(y, {0: 2.0, 2: 0.5})
    assert list(x) == [2.0, 2.0, 1.5]
    assert list(y) == [1.0, 2.0, 3.0]        # input untouched


def test_equilibrated_solve_passes_residual():
    codes = run_hpl(size=4, n=31, nb=6, p=2, q=2, equil=1)
    assert all(c == 0 for c in codes.values())


def test_equilibrated_solve_matches_unequilibrated_solution():
    """equil=0 and equil=1 must solve the same system: compare solutions
    via the residual check both passing AND direct x comparison."""
    from repro.targets.hpl.grid import grid_init
    from repro.targets.hpl.lu import (LocalBlocks, back_substitute,
                                      factorize, gather_matrix)
    from repro.targets.hpl.params import HplParams
    from repro.targets.hpl.equil import (equilibrate, gather_col_scales,
                                         unscale_solution)

    n, nb, seed = 19, 4, 5
    xs = {}
    for equil in (0, 1):
        captured = {}

        def prog(mpi, equil=equil, captured=captured):
            mpi.Init()
            rank = mpi.Comm_rank(mpi.COMM_WORLD)
            size = mpi.Comm_size(mpi.COMM_WORLD)
            args = default_args(n=n, nb=nb, p=2, q=2, seed=seed, equil=equil)
            params = HplParams(**{k: args[k] for k in HplParams.__slots__})
            grid = grid_init(mpi, rank, size, 2, 2, 0)
            local = LocalBlocks(n, nb, grid, seed)
            scales = None
            if equil == 1:
                scales = gather_col_scales(grid, equilibrate(grid, local))
            factorize(mpi, grid, local, params)
            full = gather_matrix(grid, local)
            if full is not None:
                x = back_substitute(full, n)
                if scales is not None:
                    x = unscale_solution(x, scales)
                captured["x"] = x
            mpi.Finalize()

        res = run_spmd(prog, size=4, timeout=60)
        assert res.ok, [o.error_traceback for o in res.outcomes if o.error]
        xs[equil] = captured["x"]

    assert np.allclose(xs[0], xs[1], atol=1e-8)


def test_equilibration_on_badly_scaled_system():
    """A system with rows spanning ~12 orders of magnitude must still
    pass the residual check when equilibration is on."""
    from repro.targets.hpl.grid import grid_init
    from repro.targets.hpl.lu import LocalBlocks, block_extents
    from repro.targets.hpl.equil import equilibrate

    captured = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        grid = grid_init(mpi, rank, size, 2, 2, 0)
        local = LocalBlocks(16, 4, grid, 3)
        # wreck the scaling: row i multiplied by 10^(i-8)
        for (bi, bj), blk in local.blocks.items():
            i0, i1, _j0, _j1 = block_extents(bi, bj, 16, 4)
            blk *= (10.0 ** (np.arange(i0, i1) - 8.0))[:, None]
        equilibrate(grid, local)
        # post-equilibration every A-column magnitude is ~1
        worst = 0.0
        for (bi, bj), blk in local.blocks.items():
            _i0, _i1, j0, j1 = block_extents(bi, bj, 16, 4)
            a_cols = min(j1, 16) - j0
            if a_cols > 0:
                worst = max(worst, float(np.max(np.abs(blk[:, :a_cols]))))
        captured[int(rank)] = worst
        mpi.Finalize()

    res = run_spmd(prog, size=4, timeout=60)
    assert res.ok
    assert all(w <= 2.0 for w in captured.values())
