"""Edge cases of the virtual MPI runtime: collective misuse, stragglers,
shutdown unwinding, payload corner cases."""

import numpy as np
import pytest

from repro.mpi import MpiInternalError, run_spmd
from repro.mpi.errors import MpiShutdown


def test_mismatched_collectives_detected():
    """Rank 0 calls Bcast while rank 1 calls Barrier — a real SPMD bug;
    the rendezvous detects the operation mismatch."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            mpi.COMM_WORLD.Bcast("x", root=0)
        else:
            mpi.COMM_WORLD.Barrier()

    res = run_spmd(prog, size=2, timeout=10)
    err = res.first_error()
    assert err is not None
    assert isinstance(err.error, MpiInternalError)
    assert "mismatch" in str(err.error)


def test_scatter_wrong_length_rejected():
    def prog(mpi):
        mpi.Init()
        data = [1, 2] if mpi.COMM_WORLD.Get_rank() == 0 else None
        mpi.COMM_WORLD.Scatter(data, root=0)   # 2 items for 3 ranks

    res = run_spmd(prog, size=3, timeout=10)
    assert isinstance(res.first_error().error, MpiInternalError)


def test_straggler_counted_on_pure_compute_hang():
    """A rank stuck in an uninstrumented infinite loop cannot be unwound;
    the runtime abandons it and reports a straggler."""
    def prog(mpi):
        mpi.Init()
        if mpi.COMM_WORLD.Get_rank() == 0:
            x = 0
            while True:       # no probes, no MPI: unkillable
                x += 1
                if x < 0:     # pragma: no cover
                    break

    res = run_spmd(prog, size=2, timeout=0.4)
    assert res.timed_out
    assert res.stragglers >= 1


def test_blocked_ranks_unwind_via_shutdown():
    """Ranks blocked in MPI calls DO unwind on timeout (no stragglers)."""
    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Recv(source=mpi.COMM_WORLD.Get_rank(), tag=1)

    # watchdog path (deadlock detection would stop this job even earlier)
    res = run_spmd(prog, size=3, timeout=0.4, detect_deadlocks=False)
    assert res.timed_out
    assert res.stragglers == 0
    assert all(isinstance(o.error, MpiShutdown) for o in res.outcomes)


def test_send_to_self_and_recv():
    got = {}

    def prog(mpi):
        mpi.Init()
        mpi.COMM_WORLD.Send("self", dest=0, tag=2)
        got["v"], _ = mpi.COMM_WORLD.Recv(source=0, tag=2)

    res = run_spmd(prog, size=1, timeout=10)
    assert res.ok and got["v"] == "self"


def test_zero_length_and_empty_payloads():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        if rank == 0:
            mpi.COMM_WORLD.Send(np.zeros(0), dest=1)
            mpi.COMM_WORLD.Send([], dest=1)
            mpi.COMM_WORLD.Send(None, dest=1)
        else:
            a, _ = mpi.COMM_WORLD.Recv(source=0)
            b, _ = mpi.COMM_WORLD.Recv(source=0)
            c, _ = mpi.COMM_WORLD.Recv(source=0)
            got.update(a=a, b=b, c=c)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert len(got["a"]) == 0 and got["b"] == [] and got["c"] is None


def test_interleaved_comms_do_not_cross_match():
    """Same tag on world and a split comm: messages stay separated."""
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        sub = mpi.COMM_WORLD.Split(color=0, key=rank)
        if rank == 0:
            mpi.COMM_WORLD.Send("world", dest=1, tag=5)
            sub.Send("sub", dest=1, tag=5)
        else:
            v_sub, _ = sub.Recv(source=0, tag=5)
            v_world, _ = mpi.COMM_WORLD.Recv(source=0, tag=5)
            got.update(sub=v_sub, world=v_world)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert got == {"sub": "sub", "world": "world"}


def test_any_tag_scoped_to_communicator():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        sub = mpi.COMM_WORLD.Split(color=0, key=rank)
        if rank == 0:
            mpi.COMM_WORLD.Send("world-msg", dest=1, tag=9)
            sub.Send("sub-msg", dest=1, tag=3)
        else:
            # ANY_TAG on the sub comm must NOT match the world message
            v, st = sub.Recv(source=0, tag=mpi.ANY_TAG)
            got["v"], got["tag"] = v, st.tag
            mpi.COMM_WORLD.Recv(source=0, tag=9)

    res = run_spmd(prog, size=2, timeout=10)
    assert res.ok
    assert got["v"] == "sub-msg" and got["tag"] == 3


def test_large_numpy_payload_roundtrip():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = mpi.COMM_WORLD.Get_rank()
        if rank == 0:
            mpi.COMM_WORLD.Send(np.arange(200_000, dtype=np.float64), dest=1)
        else:
            data, _ = mpi.COMM_WORLD.Recv(source=0)
            got["sum"] = float(data.sum())

    res = run_spmd(prog, size=2, timeout=15)
    assert res.ok
    assert got["sum"] == float(np.arange(200_000).sum())


def test_many_ranks_allreduce():
    got = {}

    def prog(mpi):
        mpi.Init()
        rank = int(mpi.COMM_WORLD.Get_rank())
        got[rank] = mpi.COMM_WORLD.Allreduce(rank, mpi.SUM)

    res = run_spmd(prog, size=16, timeout=30)
    assert res.ok
    assert set(got.values()) == {sum(range(16))}
