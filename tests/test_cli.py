"""Tests for the command-line interface (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_targets_lists_all(capsys):
    assert main(["targets"]) == 0
    out = capsys.readouterr().out
    for name in ("demo", "susy", "hpl", "imb"):
        assert name in out


def test_run_demo_campaign(capsys):
    rc = main(["run", "--target", "demo", "--iterations", "15",
               "--nprocs", "2", "--nprocs-cap", "4"])
    out = capsys.readouterr().out
    assert "covered branches" in out
    assert rc in (0, 1)


def test_run_seq_demo_finds_bug(capsys):
    # seq_demo is sequential; wrap happens target-side via the mpi arg
    rc = main(["run", "--target", "seq_demo", "--iterations", "12",
               "--nprocs", "1", "--nprocs-cap", "2"])
    out = capsys.readouterr().out
    assert "assertion" in out     # the Fig. 1 bug at x == 100
    assert rc == 1                # bugs found → nonzero exit


def test_compare_variants(capsys):
    rc = main(["compare", "--target", "demo", "--iterations", "8",
               "--nprocs", "2", "--nprocs-cap", "4",
               "--variants", "R,Random"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "R" in out and "Random" in out and "of reachable" in out


def test_run_save_log_and_replay(capsys, tmp_path):
    log = tmp_path / "campaign.jsonl"
    rc = main(["run", "--target", "seq_demo", "--iterations", "12",
               "--nprocs", "1", "--nprocs-cap", "2",
               "--save-log", str(log)])
    assert rc == 1 and log.exists()
    capsys.readouterr()

    rc = main(["replay", "--target", "seq_demo", "--log", str(log),
               "--bug", "0", "--nprocs", "1", "--nprocs-cap", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproduced: assertion" in out
    assert "'x': 100" in out


def test_replay_bug_index_out_of_range(capsys, tmp_path):
    import pytest as _pytest

    log = tmp_path / "campaign.jsonl"
    main(["run", "--target", "seq_demo", "--iterations", "12",
          "--nprocs", "1", "--nprocs-cap", "2", "--save-log", str(log)])
    capsys.readouterr()
    with _pytest.raises(SystemExit):
        main(["replay", "--target", "seq_demo", "--log", str(log),
              "--bug", "99"])


def test_replay_empty_log(capsys, tmp_path):
    log = tmp_path / "empty.jsonl"
    log.write_text("")
    rc = main(["replay", "--target", "seq_demo", "--log", str(log)])
    assert rc == 0
    assert "no bugs" in capsys.readouterr().out


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--target", "nope"])


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--target", "demo", "--variants", "R,bogus"])


def test_run_unrecoverable_error_exits_2(capsys, monkeypatch):
    import repro.__main__ as cli

    def explode(name):
        raise RuntimeError("instrumentation backend fell over")

    monkeypatch.setattr(cli, "load_target", explode)
    rc = main(["run", "--target", "demo", "--iterations", "1"])
    assert rc == 2
    assert "unrecoverable error" in capsys.readouterr().err


def test_fleet_cli_run_status_report(capsys, tmp_path):
    import json

    spec = tmp_path / "sweep.json"
    spec.write_text(json.dumps({
        "fleet": "cli-smoke",
        "matrix": {"target": ["seq_demo"]},
        "shard": {"iterations": 2},
        "failure": {"max_failures": 2, "backoff": 0.01},
        "workers": 1,
    }))
    root = tmp_path / "fleet"
    assert main(["fleet", "run", str(spec), "--dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "fleet report: cli-smoke" in out and "done" in out

    # re-running without --force refuses to clobber the sweep
    assert main(["fleet", "run", str(spec), "--dir", str(root)]) == 2
    capsys.readouterr()

    assert main(["fleet", "status", str(root)]) == 0
    assert "fleet status: cli-smoke" in capsys.readouterr().out

    assert main(["fleet", "report", str(root), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["done"] == 1


def test_fleet_cli_bad_spec_exits_2(capsys, tmp_path):
    spec = tmp_path / "bad.json"
    spec.write_text("{not json")
    assert main(["fleet", "run", str(spec),
                 "--dir", str(tmp_path / "f")]) == 2
    assert "bad spec" in capsys.readouterr().err


def test_flags_map_to_config():
    import argparse

    from repro.__main__ import build_config

    ns = argparse.Namespace(seed=5, nprocs=2, nprocs_cap=4,
                            test_timeout=3.0, no_reduction=True,
                            one_way=True, no_framework=True)
    cfg = build_config(ns)
    assert cfg.seed == 5 and cfg.reduction is False
    assert cfg.two_way is False and cfg.framework is False
