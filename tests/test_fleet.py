"""Tests for the campaign fleet: specs, manifest, merge, and the
supervised scheduler (retry / quarantine / crash-safe resume)."""

import json

import pytest

from repro.fleet import (FailurePolicy, FleetManifest, FleetSpec,
                         FleetSpecError, ShardSpec, fleet_paths, load_spec,
                         load_state, merge_results, report_text)
from repro.fleet.manifest import (DONE, PENDING, QUARANTINED, SHARD_CRASH,
                                  SHARD_OOM, FleetState, ShardState)
from repro.fleet.results import status_text
from repro.fleet.service import (fleet_report, fleet_resume, fleet_run,
                                 fleet_status)
from repro.fleet.worker import EXIT_INTERNAL, run_shard

quiet = lambda msg: None  # noqa: E731 - silence scheduler narration


# ----------------------------------------------------------------------
# spec parsing + expansion


def spec_dict(**kw):
    base = {
        "fleet": "t",
        "matrix": {"target": ["seq_demo"]},
        "shard": {"iterations": 2},
        "failure": {"max_failures": 2, "backoff": 0.01, "jitter": 0.0},
        "workers": 1,
    }
    base.update(kw)
    return base


def test_expansion_is_deterministic_matrix_product():
    spec = FleetSpec.from_dict(spec_dict(matrix={
        "target": ["demo", "seq_demo"],
        "strategy": ["two-phase", "dfs"],
        "nprocs": [2, 4],
    }))
    shards = spec.expand()
    assert len(shards) == 8
    ids = [sh.shard_id for sh in shards]
    assert ids[0] == "demo--two-phase--np2--s0--fs0"
    assert ids == sorted(set(ids), key=ids.index)  # unique, stable order
    # same spec → same expansion
    assert [sh.shard_id for sh in spec.expand()] == ids


def test_shard_config_is_pure_function_of_spec():
    sh = ShardSpec(target="demo", strategy="dfs", nprocs=2, seed=7,
                   fault_seed=3, overrides=(("nprocs_cap", 4),))
    cfg = sh.to_config()
    assert (cfg.seed, cfg.fault_seed, cfg.init_nprocs) == (7, 3, 2)
    assert cfg.nprocs_cap == 4
    assert sh.to_config() == cfg


def test_spec_rejects_unknown_target_strategy_and_config_key():
    with pytest.raises(FleetSpecError, match="unknown target"):
        FleetSpec.from_dict(spec_dict(matrix={"target": ["nope"]}))
    with pytest.raises(FleetSpecError, match="unknown strategy"):
        FleetSpec.from_dict(spec_dict(matrix={"target": ["demo"],
                                              "strategy": ["zigzag"]}))
    with pytest.raises(FleetSpecError, match="unknown shard.config"):
        FleetSpec.from_dict(spec_dict(shard={"config": {"not_a_field": 1}}))
    with pytest.raises(FleetSpecError, match="max_failures"):
        FleetSpec.from_dict(spec_dict(failure={"max_failures": 0}))


def test_spec_roundtrips_through_manifest_snapshot():
    spec = FleetSpec.from_dict(spec_dict(
        matrix={"target": ["demo"], "strategy": ["dfs"], "nprocs": [2]},
        shard={"iterations": 9, "config": {"two_way": False}}))
    clone = FleetSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
    assert clone.as_dict() == spec.as_dict()
    assert [s.shard_id for s in clone.expand()] == \
        [s.shard_id for s in spec.expand()]


def test_load_spec_json_and_yaml(tmp_path):
    d = spec_dict()
    jpath = tmp_path / "sweep.json"
    jpath.write_text(json.dumps(d))
    assert load_spec(jpath).name == "t"
    yaml = pytest.importorskip("yaml")
    ypath = tmp_path / "sweep.yaml"
    ypath.write_text(yaml.safe_dump(d))
    assert load_spec(ypath).as_dict() == load_spec(jpath).as_dict()


# ----------------------------------------------------------------------
# manifest: ledger + reload


def make_manifest(tmp_path, **kw):
    spec = FleetSpec.from_dict(spec_dict(**kw))
    paths = fleet_paths(tmp_path / "fleet")
    return spec, paths, FleetManifest.create(paths, spec)


def test_manifest_reload_tracks_failures_and_quarantine(tmp_path):
    spec, paths, manifest = make_manifest(tmp_path)
    (sid,) = [sh.shard_id for sh in spec.expand()]
    with manifest:
        manifest.shard_start(sid, 1, 111)
        manifest.shard_fail(sid, 1, SHARD_CRASH, "died")
        manifest.shard_start(sid, 2, 222)
        manifest.shard_fail(sid, 2, SHARD_OOM, "oom")
        manifest.shard_quarantine(sid, 2, SHARD_OOM, "oom")
    state = load_state(paths.root)
    st = state.shards[sid]
    assert st.status == QUARANTINED
    assert st.failures == 2 and st.attempts == 2
    assert st.last_kind == SHARD_OOM
    assert state.incomplete() == []  # quarantined shards are never re-run
    assert state.counts()[QUARANTINED] == 1


def test_manifest_inflight_attempt_is_not_a_failure(tmp_path):
    """A shard-start with no terminal record = the fleet died mid-attempt.

    Resume must re-run the shard without charging it a failure (the
    attempt produced no verdict), and must know the orphan pid."""
    spec, paths, manifest = make_manifest(tmp_path)
    (sid,) = [sh.shard_id for sh in spec.expand()]
    with manifest:
        manifest.shard_start(sid, 1, 4242)
    state = load_state(paths.root)
    st = state.shards[sid]
    assert st.status == PENDING and st.failures == 0
    assert state.incomplete() == [sid]
    assert state.orphan_pids() == [4242]


def test_manifest_tolerates_torn_tail(tmp_path):
    spec, paths, manifest = make_manifest(tmp_path)
    (sid,) = [sh.shard_id for sh in spec.expand()]
    with manifest:
        manifest.shard_start(sid, 1, 99)
        manifest.shard_done(sid, 1, {"iterations": 2})
    with paths.manifest.open("a") as fh:
        fh.write('{"type": "shard-fail", "shard": "' + sid)  # torn record
    state = load_state(paths.root)
    assert state.shards[sid].status == DONE
    assert state.shards[sid].failures == 0


def test_status_text_lists_every_shard(tmp_path):
    spec, paths, manifest = make_manifest(tmp_path)
    (sid,) = [sh.shard_id for sh in spec.expand()]
    with manifest:
        manifest.shard_start(sid, 1, 7)
        manifest.shard_fail(sid, 1, SHARD_CRASH, "boom")
    text = status_text(load_state(paths.root))
    assert sid in text and "shard-crash: boom" in text


# ----------------------------------------------------------------------
# results store: deterministic merge of (possibly partial) shard logs


def write_shard_log(path, iters, bugs=(), branches=(), finished=True,
                    torn=False):
    """Synthesize a campaign log the way one shard attempt writes it."""
    lines = [{"type": "meta", "program": "p", "config": {},
              "total_branches": 10}]
    for i in range(iters):
        lines.append({"type": "iteration", "iteration": i, "origin": "t",
                      "nprocs": 2, "focus": 0, "path_len": 1,
                      "event_count": 0, "covered_after": len(branches),
                      "error_kind": None, "wall_time": 0.0, "elapsed": 0.0})
    if branches:
        lines.append({"type": "cov", "iteration": 0,
                      "branches": [[s, int(d)] for s, d in branches]})
    for kind, loc in bugs:
        lines.append({"type": "bug", "kind": kind, "message": "m",
                      "global_rank": 0, "iteration": 0, "location": loc,
                      "signature": "", "inputs": {}, "nprocs": 2,
                      "focus": 0})
    if finished:
        lines.append({"type": "coverage",
                      "branches": [[s, int(d)] for s, d in branches],
                      "functions": [], "covered_static": len(branches),
                      "reachable": 10, "wall_time": 1.0})
    text = "\n".join(json.dumps(o) for o in lines) + "\n"
    if torn:
        text += '{"type": "coverage", "branch'  # crash mid-record
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def fake_state(tmp_path, statuses):
    """A FleetState over two overlapping demo shards with given statuses."""
    spec = FleetSpec.from_dict(spec_dict(matrix={
        "target": ["demo"], "strategy": ["two-phase", "dfs"]}))
    shards = {}
    for sh, status in zip(spec.expand(), statuses):
        shards[sh.shard_id] = ShardState(shard_id=sh.shard_id,
                                         status=status)
    return FleetState(spec=spec, shards=shards)


def test_merge_is_independent_of_shard_dict_order(tmp_path):
    state = fake_state(tmp_path, [DONE, DONE])
    paths = fleet_paths(tmp_path)
    ids = state.shard_ids()
    write_shard_log(paths.shard_log(ids[0]), iters=3,
                    bugs=[("assert", "a.py:1")], branches=[(1, True)])
    write_shard_log(paths.shard_log(ids[1]), iters=2,
                    bugs=[("assert", "a.py:1")], branches=[(2, False)])
    text_fwd = report_text(merge_results(tmp_path, state))
    # rebuild the state with reversed insertion order
    rev = FleetState(spec=state.spec,
                     shards=dict(reversed(list(state.shards.items()))))
    assert report_text(merge_results(tmp_path, rev)) == text_fwd
    # overlapping shards hit the same bug: fleet-wide it is ONE bug
    assert merge_results(tmp_path, state).fleet_bugs == \
        [("demo", "assert", "a.py:1")]


def test_merge_reads_torn_and_partial_quarantined_logs(tmp_path):
    state = fake_state(tmp_path, [DONE, QUARANTINED])
    paths = fleet_paths(tmp_path)
    ids = state.shard_ids()
    write_shard_log(paths.shard_log(ids[0]), iters=2, branches=[(1, True)],
                    finished=True, torn=True)
    write_shard_log(paths.shard_log(ids[1]), iters=1,
                    bugs=[("crash", "k.py:9")], branches=[(3, True)],
                    finished=False)  # quarantined: final attempt's partial
    report = merge_results(tmp_path, state)
    by_id = {sh.shard_id: sh for sh in report.shards}
    # torn final record is skipped; the complete records still merge
    assert by_id[ids[0]].iterations == 2
    # the partial log's coverage comes from per-iteration deltas
    q = by_id[ids[1]]
    assert q.status == QUARANTINED and q.covered == 1
    assert q.reachable is None
    # bugs a quarantined shard found before dying reach the fleet list
    assert ("demo", "crash", "k.py:9") in report.fleet_bugs


def test_pending_shards_contribute_no_data(tmp_path):
    """A killed attempt's leftover log must not leak into the report —
    else an interrupted sweep's report diverges from the clean one."""
    state = fake_state(tmp_path, [DONE, PENDING])
    paths = fleet_paths(tmp_path)
    ids = state.shard_ids()
    write_shard_log(paths.shard_log(ids[0]), iters=2, branches=[(1, True)])
    write_shard_log(paths.shard_log(ids[1]), iters=1,
                    bugs=[("crash", "x.py:1")], finished=False)
    report = merge_results(tmp_path, state)
    by_id = {sh.shard_id: sh for sh in report.shards}
    assert by_id[ids[1]].iterations == 0
    assert report.fleet_bugs == []


# ----------------------------------------------------------------------
# the scheduler, end to end (small real sweeps)


def write_spec(tmp_path, d):
    p = tmp_path / "sweep.json"
    p.write_text(json.dumps(d))
    return p


def test_fleet_run_completes_and_reports(tmp_path):
    spec_path = write_spec(tmp_path, spec_dict())
    root = tmp_path / "fleet"
    # a 2-iteration seq_demo campaign completes bug-free → exit 0
    assert fleet_run(spec_path, root, echo=quiet) == 0
    state = load_state(root)
    assert state.counts() == {PENDING: 0, DONE: 1, QUARANTINED: 0}
    (sid,) = state.shard_ids()
    assert state.shards[sid].summary["iterations"] == 2
    assert fleet_status(root, echo=quiet) == 0
    assert fleet_report(root, echo=quiet) == 0


def test_bad_spec_and_missing_fleet_exit_unrecoverable(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"fleet": "x", "matrix": {"target": ["nope"]}}')
    assert fleet_run(bad, tmp_path / "f", echo=quiet) == 2
    assert fleet_resume(tmp_path / "nothing-here", echo=quiet) == 2
    assert fleet_status(tmp_path / "nothing-here", echo=quiet) == 2


def test_hard_crashing_shard_is_quarantined_siblings_complete(tmp_path):
    # targets/killer os._exit()s the whole worker on its first bad input;
    # the fleet retries it max_failures times, quarantines it, and the
    # sibling shard still completes
    spec_path = write_spec(tmp_path, spec_dict(
        matrix={"target": ["killer", "seq_demo"]}, workers=2))
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, echo=quiet) == 2
    state = load_state(root)
    killer = state.shards["killer--two-phase--np8--s0--fs0"]
    assert killer.status == QUARANTINED
    assert killer.failures == 2
    assert killer.last_kind == SHARD_CRASH
    assert state.shards["seq_demo--two-phase--np8--s0--fs0"].status == DONE
    # quarantine is honored across resume: nothing left to run
    assert state.incomplete() == []


def test_kill_mid_sweep_then_resume_merges_byte_identical(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]})
    spec_path = write_spec(tmp_path, d)

    clean_root = tmp_path / "clean"
    assert fleet_run(spec_path, clean_root, echo=quiet) == 0

    # same sweep, but the fleet process "dies" after one shard finishes
    killed_root = tmp_path / "killed"
    assert fleet_run(spec_path, killed_root, stop_after_shards=1,
                     echo=quiet) == 2
    assert load_state(killed_root).incomplete() != []

    assert fleet_resume(killed_root, echo=quiet) == 0
    clean = report_text(merge_results(clean_root, load_state(clean_root)))
    resumed = report_text(merge_results(killed_root,
                                        load_state(killed_root)))
    # the acceptance bar: interrupted + resumed ≡ uninterrupted, bytewise
    assert clean == resumed


def test_worker_entry_maps_unknown_shard_to_internal_error(tmp_path):
    spec = FleetSpec.from_dict(spec_dict())
    FleetManifest.create(fleet_paths(tmp_path), spec).close()
    assert run_shard(tmp_path, "no-such-shard") == EXIT_INTERNAL


def test_retry_backoff_is_deterministic_per_shard(tmp_path):
    from repro.fleet.scheduler import FleetScheduler
    import random
    spec = FleetSpec.from_dict(spec_dict(
        failure={"max_failures": 5, "backoff": 0.5, "backoff_cap": 2.0,
                 "jitter": 0.1}))
    state = FleetState(spec=spec, shards={
        sh.shard_id: ShardState(shard_id=sh.shard_id)
        for sh in spec.expand()})
    sched = FleetScheduler(tmp_path, state, manifest=None, echo=quiet)
    rng_a = random.Random("0:sid")
    rng_b = random.Random("0:sid")
    delays_a = [sched._backoff_delay(n, rng_a) for n in (1, 2, 3, 4)]
    delays_b = [sched._backoff_delay(n, rng_b) for n in (1, 2, 3, 4)]
    assert delays_a == delays_b
    # exponential then capped: base delays 0.5, 1.0, 2.0, 2.0 (+jitter)
    assert delays_a[0] < delays_a[1] < delays_a[2]
    assert delays_a[3] <= 2.0 * 1.1
