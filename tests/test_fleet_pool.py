"""Tests for the warm worker pool: framing, policy, leases, recycling,
graceful drain, the circuit breaker, and the determinism contract
(warm-pool sweeps must merge byte-identical to cold-spawn sweeps)."""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import (FleetSpec, FleetSpecError, PoolPolicy, fleet_paths,
                        load_state, merge_results, report_text)
from repro.fleet.manifest import (DONE, FleetManifest, QUARANTINED,
                                  SHARD_CRASH, SHARD_TIMEOUT)
from repro.fleet.pool import (MAX_FRAME, PROTO_VERSION, ProtocolError,
                              WarmPool, read_frame, write_frame)
from repro.fleet.results import status_text
from repro.fleet.service import clear_heartbeats, fleet_resume, fleet_run
from repro.fleet.spec import load_spec

quiet = lambda msg: None  # noqa: E731 - silence scheduler narration


def spec_dict(**kw):
    base = {
        "fleet": "t",
        "matrix": {"target": ["seq_demo"]},
        "shard": {"iterations": 2},
        "failure": {"max_failures": 2, "backoff": 0.01, "jitter": 0.0},
        "workers": 1,
    }
    base.update(kw)
    return base


def write_spec(tmp_path, d, name="sweep.json"):
    p = tmp_path / name
    p.write_text(json.dumps(d))
    return p


def manifest_records(root, rtype):
    out = []
    for line in (fleet_paths(root).manifest).read_text().splitlines():
        rec = json.loads(line)
        if rec["type"] == rtype:
            out.append(rec)
    return out


# ----------------------------------------------------------------------
# framing


def test_frame_roundtrip():
    buf = io.BytesIO()
    write_frame(buf, {"type": "run", "shard": "x", "n": 1})
    buf.seek(0)
    assert read_frame(buf) == {"type": "run", "shard": "x", "n": 1}
    assert read_frame(buf) is None  # clean EOF


def test_torn_frame_reads_as_eof():
    buf = io.BytesIO()
    write_frame(buf, {"big": "x" * 100})
    whole = buf.getvalue()
    # cut inside the header, then inside the payload: both are the peer
    # dying mid-write, and both must read as EOF, not an exception
    assert read_frame(io.BytesIO(whole[:2])) is None
    assert read_frame(io.BytesIO(whole[:20])) is None


def test_oversized_and_garbage_frames_are_protocol_errors():
    import struct
    huge = struct.pack(">I", MAX_FRAME + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        read_frame(io.BytesIO(huge))
    bad = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
    with pytest.raises(ProtocolError, match="undecodable"):
        read_frame(io.BytesIO(bad))


# ----------------------------------------------------------------------
# pool policy in the spec


def test_pool_policy_defaults_and_roundtrip():
    spec = FleetSpec.from_dict(spec_dict())
    assert spec.pool == PoolPolicy()
    assert spec.pool.warm == 0  # cold spawn unless asked for
    clone = FleetSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
    assert clone.pool == spec.pool


def test_pool_policy_parses_and_validates():
    spec = FleetSpec.from_dict(spec_dict(
        pool={"warm": 2, "recycle_tasks": 5, "max_rss_mb": 256,
              "breaker": 2}))
    assert (spec.pool.warm, spec.pool.recycle_tasks,
            spec.pool.max_rss_mb, spec.pool.breaker) == (2, 5, 256, 2)
    with pytest.raises(FleetSpecError, match="unknown pool key"):
        FleetSpec.from_dict(spec_dict(pool={"hotness": 9}))
    with pytest.raises(FleetSpecError, match="pool.warm"):
        FleetSpec.from_dict(spec_dict(pool={"warm": -1}))
    with pytest.raises(FleetSpecError, match="recycle_tasks"):
        FleetSpec.from_dict(spec_dict(pool={"recycle_tasks": 0}))


# ----------------------------------------------------------------------
# manifest: pool records, PoolState, orphan pids


def test_pool_records_roundtrip_through_state(tmp_path):
    spec = FleetSpec.from_dict(spec_dict())
    paths = fleet_paths(tmp_path)
    with FleetManifest.create(paths, spec) as manifest:
        manifest.pool_spawn(0, 1111)
        manifest.pool_spawn(1, 2222)
        manifest.pool_exit(0, 1111, "recycle")
    state = load_state(tmp_path)
    assert state.pool.spawns == 2
    assert state.pool.recycled == 1
    assert state.pool.live == {1: 2222}
    assert state.pool.alive == 1
    # a live warm worker of a dead sweep is an orphan, like any worker
    assert 2222 in state.orphan_pids()
    assert 1111 not in state.orphan_pids()


def test_open_warm_lease_is_tracked_and_closed(tmp_path):
    spec = FleetSpec.from_dict(spec_dict())
    (sid,) = [sh.shard_id for sh in spec.expand()]
    paths = fleet_paths(tmp_path)
    with FleetManifest.create(paths, spec) as manifest:
        manifest.pool_spawn(0, 1111)
        manifest.shard_start(sid, 1, 1111, pool_worker=0)
    assert load_state(tmp_path).pool.leased == [sid]
    with FleetManifest.open_append(paths) as manifest:
        manifest.shard_done(sid, 1, {"iterations": 2})
    assert load_state(tmp_path).pool.leased == []


def test_breaker_record_surfaces_in_state_and_status(tmp_path):
    spec = FleetSpec.from_dict(spec_dict())
    with FleetManifest.create(fleet_paths(tmp_path), spec) as manifest:
        manifest.pool_spawn(0, 1111)
        manifest.pool_exit(0, 1111, "spawn-failed")
        manifest.pool_breaker(3, "spawn kept failing")
    state = load_state(tmp_path)
    assert state.pool.breaker_open
    assert "breaker OPEN" in status_text(state)


def test_status_omits_pool_section_for_cold_sweeps(tmp_path):
    spec_path = write_spec(tmp_path, spec_dict())
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, echo=quiet) == 0
    assert "pool:" not in status_text(load_state(root))


# ----------------------------------------------------------------------
# the determinism contract: warm ≡ cold, bytewise


def test_warm_pool_report_is_byte_identical_to_cold(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]},
                  workers=2)
    spec_path = write_spec(tmp_path, d)
    cold_root, warm_root = tmp_path / "cold", tmp_path / "warm"
    assert fleet_run(spec_path, cold_root, echo=quiet) == 0
    assert fleet_run(spec_path, warm_root, warm_pool=2, echo=quiet) == 0
    cold = report_text(merge_results(cold_root, load_state(cold_root)))
    warm = report_text(merge_results(warm_root, load_state(warm_root)))
    assert cold == warm
    # and it really ran warm: spawns recorded, shards carry pool_worker
    assert load_state(warm_root).pool.spawns >= 1
    starts = manifest_records(warm_root, "shard-start")
    assert any("pool_worker" in rec for rec in starts)
    # warm status shows the pool section
    assert "pool:" in status_text(load_state(warm_root))


def test_one_warm_worker_is_reused_across_shards(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]})
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, warm_pool=1, echo=quiet) == 0
    state = load_state(root)
    assert state.pool.spawns == 1       # both shards on the same daemon
    assert state.pool.recycled == 0
    exits = manifest_records(root, "pool-exit")
    assert [e["reason"] for e in exits] == ["drain"]  # clean close


# ----------------------------------------------------------------------
# recycling


def test_recycle_on_task_budget(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]})
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, warm_pool=1, pool_recycle_tasks=1,
                     echo=quiet) == 0
    state = load_state(root)
    assert state.counts()[DONE] == 2
    # every shard exhausts the 1-task budget → fresh daemon per shard
    assert state.pool.spawns == 2
    assert state.pool.recycled == 2


def test_recycle_on_rss_self_check(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]})
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    # a 1 MB threshold is always exceeded by a real interpreter's RSS
    assert fleet_run(spec_path, root, warm_pool=1, pool_max_rss=1,
                     echo=quiet) == 0
    state = load_state(root)
    assert state.counts()[DONE] == 2
    assert state.pool.recycled == 2


# ----------------------------------------------------------------------
# leases: worker death and lease expiry are the shard's failure


def test_warm_worker_death_mid_shard_is_shard_crash_not_pool_failure(
        tmp_path):
    # targets/killer os._exit()s the daemon mid-shard: EOF on the lease.
    # The shard is quarantined after its retry budget; the sibling still
    # completes (on fresh warm workers), and the pool breaker never
    # opens — a poison shard must not degrade the pool.
    d = spec_dict(matrix={"target": ["killer", "seq_demo"]}, workers=2)
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, warm_pool=2, echo=quiet) == 2
    state = load_state(root)
    killer = state.shards["killer--two-phase--np8--s0--fs0"]
    assert killer.status == QUARANTINED
    assert killer.last_kind == SHARD_CRASH
    assert "died mid-shard" in killer.last_detail
    assert state.shards["seq_demo--two-phase--np8--s0--fs0"].status == DONE
    assert not state.pool.breaker_open
    assert manifest_records(root, "pool-breaker") == []
    # each killer attempt took a daemon down with it
    assert state.pool.exits.get("crash", 0) >= 2


def test_lease_expiry_kills_worker_and_classifies_shard_timeout(tmp_path):
    d = spec_dict(shard={"iterations": 2000},
                  failure={"max_failures": 2, "backoff": 0.01,
                           "jitter": 0.0, "shard_timeout": 0.1})
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, warm_pool=1, echo=quiet) == 2
    state = load_state(root)
    (sid,) = state.shard_ids()
    st = state.shards[sid]
    assert st.status == QUARANTINED
    assert st.last_kind == SHARD_TIMEOUT
    assert "lease expired" in st.last_detail
    # the expired lease SIGKILLed the daemon; the retry got a fresh one
    assert state.pool.spawns >= 2
    assert state.pool.exits.get("kill", 0) >= 2


# ----------------------------------------------------------------------
# graceful drain (SIGTERM to a busy daemon)


def _workerd_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def test_workerd_drains_gracefully_on_sigterm(tmp_path):
    # a busy daemon must finish the in-flight shard, publish its
    # result.json, answer, and exit 0 — never abandon work mid-write
    spec = FleetSpec.from_dict(spec_dict(shard={"iterations": 300}))
    paths = fleet_paths(tmp_path)
    FleetManifest.create(paths, spec).close()
    (shard,) = spec.expand()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "workerd",
         "--dir", str(tmp_path), "--worker", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, env=_workerd_env())
    try:
        hello = read_frame(proc.stdout)
        assert hello["type"] == "hello"
        assert hello["proto"] == PROTO_VERSION
        write_frame(proc.stdin, {"type": "run", "shard": shard.shard_id})
        # wait until the shard is demonstrably in flight (heartbeat
        # file appears), then ask for the drain
        hb = paths.heartbeats / f"hb-{shard.shard_id}"
        deadline = time.time() + 30
        while not hb.exists() and time.time() < deadline:
            time.sleep(0.01)
        assert hb.exists(), "shard never started"
        proc.send_signal(signal.SIGTERM)
        resp = read_frame(proc.stdout)
        assert resp["type"] == "done"
        assert resp["shard"] == shard.shard_id
        assert resp["status"] == "ok"
        assert resp["tasks_done"] == 1
        assert resp["rss_kb"] > 0
        assert read_frame(proc.stdout) is None  # drained: clean EOF
        assert proc.wait(timeout=30) == 0
        assert paths.shard_result(shard.shard_id).exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_idle_workerd_exits_zero_on_sigterm(tmp_path):
    spec = FleetSpec.from_dict(spec_dict())
    FleetManifest.create(fleet_paths(tmp_path), spec).close()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "workerd",
         "--dir", str(tmp_path), "--worker", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, env=_workerd_env())
    try:
        assert read_frame(proc.stdout)["type"] == "hello"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# circuit breaker: repeated pool failures degrade to cold spawn


def test_breaker_opens_and_sweep_completes_cold(tmp_path, monkeypatch):
    # every spawn dies before saying hello — a broken pool. The breaker
    # opens after pool.breaker failures and the sweep still completes,
    # cold, with the same report a cold sweep produces.
    monkeypatch.setattr(
        WarmPool, "_argv",
        lambda self, wid: [sys.executable, "-c", "raise SystemExit(1)"])
    monkeypatch.setattr(WarmPool, "SPAWN_BACKOFF_S", 0.0)
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]},
                  pool={"warm": 1, "breaker": 2})
    spec_path = write_spec(tmp_path, d)
    cold_root, degraded_root = tmp_path / "cold", tmp_path / "degraded"
    assert fleet_run(spec_path, degraded_root, echo=quiet) == 0
    state = load_state(degraded_root)
    assert state.counts()[DONE] == 2        # no shard was lost
    assert state.pool.breaker_open
    assert state.pool.spawns == 0
    (brk,) = manifest_records(degraded_root, "pool-breaker")
    assert brk["failures"] == 2
    # degraded-warm ≡ cold, bytewise
    monkeypatch.undo()
    assert fleet_run(spec_path, cold_root, warm_pool=0, echo=quiet) == 0
    assert report_text(merge_results(cold_root, load_state(cold_root))) \
        == report_text(merge_results(degraded_root,
                                     load_state(degraded_root)))


# ----------------------------------------------------------------------
# resume safety


def test_resume_kills_orphan_warm_workers_and_clears_heartbeats(tmp_path):
    d = spec_dict(matrix={"target": ["seq_demo"],
                          "strategy": ["two-phase", "random-branch"]})
    spec_path = write_spec(tmp_path, d)
    root = tmp_path / "fleet"
    # the fleet process "dies" after one shard; fake the dead session's
    # leavings: a live warm-worker record and a stale heartbeat file
    assert fleet_run(spec_path, root, stop_after_shards=1, echo=quiet) == 2
    paths = fleet_paths(root)
    orphan = subprocess.Popen([sys.executable, "-c",
                               "import time; time.sleep(600)"])
    with FleetManifest.open_append(paths) as manifest:
        manifest.pool_spawn(7, orphan.pid)
    stale = paths.heartbeats / "stale-shard-hb"
    stale.write_text("")
    assert orphan.pid in load_state(root).orphan_pids()
    assert fleet_resume(root, echo=quiet) == 0
    assert orphan.wait(timeout=30) != 0     # SIGKILLed on resume
    assert not stale.exists()
    assert load_state(root).counts()[DONE] == 2


def test_clear_heartbeats_counts_and_tolerates_missing_dir(tmp_path):
    spec_path = write_spec(tmp_path, spec_dict())
    root = tmp_path / "fleet"
    assert fleet_run(spec_path, root, echo=quiet) == 0
    paths = fleet_paths(root)
    (paths.heartbeats / "a").write_text("")
    (paths.heartbeats / "b").write_text("")
    assert clear_heartbeats(root) == 2
    assert clear_heartbeats(root) == 0
    assert clear_heartbeats(tmp_path / "never-created") == 0


# ----------------------------------------------------------------------
# kill -9 mid-shard: the acceptance scenario, in-process


def test_kill9_of_warm_worker_retries_on_fresh_worker_deterministically(
        tmp_path):
    # run the same one-shard spec cold and warm; in the warm run a
    # watcher SIGKILLs the daemon as soon as the shard's heartbeat
    # appears. The shard must retry on a fresh daemon and the merged
    # report must still be byte-identical to the cold run's.
    import threading
    d = spec_dict(shard={"iterations": 300},
                  failure={"max_failures": 3, "backoff": 0.01,
                           "jitter": 0.0})
    spec_path = write_spec(tmp_path, d)
    cold_root, warm_root = tmp_path / "cold", tmp_path / "warm"
    # 300 iterations of seq_demo may legitimately find bugs (exit 1);
    # the bar is that warm matches cold exactly, exit code included
    cold_rc = fleet_run(spec_path, cold_root, echo=quiet)
    assert cold_rc in (0, 1)

    paths = fleet_paths(warm_root)
    (sid,) = [sh.shard_id for sh in
              FleetSpec.from_dict(d).expand()]
    done = threading.Event()

    def assassin():
        hb = paths.heartbeats / f"hb-{sid}"
        deadline = time.time() + 60
        while time.time() < deadline and not done.is_set():
            if hb.exists():
                for rec in manifest_records(warm_root, "pool-spawn"):
                    try:
                        os.kill(rec["pid"], signal.SIGKILL)
                    except (ProcessLookupError, PermissionError):
                        pass
                return
            time.sleep(0.005)

    killer = threading.Thread(target=assassin)
    killer.start()
    try:
        assert fleet_run(spec_path, warm_root, warm_pool=1,
                         echo=quiet) == cold_rc
    finally:
        done.set()
        killer.join()
    state = load_state(warm_root)
    st = state.shards[sid]
    assert st.status == DONE
    assert st.failures >= 1                  # the kill really landed
    assert st.last_kind == SHARD_CRASH
    assert "died mid-shard" in st.last_detail
    assert state.pool.spawns >= 2            # retried on a fresh daemon
    cold = report_text(merge_results(cold_root, load_state(cold_root)))
    warm = report_text(merge_results(warm_root, state))
    assert cold == warm
