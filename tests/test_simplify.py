"""Tests for solver-side constraint simplification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concolic.expr import Constraint, LinearExpr
from repro.solver.simplify import simplify


def le(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "<=")


def lt(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "<")


def eq(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "==")


def ne(coeffs, const):
    return Constraint(LinearExpr(coeffs, const), "!=")


def test_exact_duplicates_removed():
    cs = [le({0: 1}, -5), le({0: 1}, -5), eq({1: 1}, 0), eq({1: 1}, 0)]
    out = simplify(cs)
    assert len(out) == 2


def test_subsumption_keeps_tightest_le():
    # x - 100 <= 0 subsumed by x - 5 <= 0 (x <= 5 is tighter)
    cs = [le({0: 1}, -100), le({0: 1}, -5)]
    out = simplify(cs)
    assert len(out) == 1
    assert out[0].lhs.const == -5


def test_subsumption_direction_matters():
    # -x + 5 <= 0 (x >= 5) and -x + 100 <= 0 (x >= 100): keep x >= 100
    cs = [le({0: -1}, 5), le({0: -1}, 100)]
    out = simplify(cs)
    assert len(out) == 1 and out[0].lhs.const == 100


def test_different_coefficients_kept_separately():
    cs = [le({0: 1}, -5), le({0: 2}, -5), le({0: 1, 1: 1}, -5)]
    assert len(simplify(cs)) == 3


def test_strict_inequalities_normalize_then_merge():
    # x < 6  ≡ x + 1 - 6 <= 0 ≡ x <= 5 ; together with x <= 5 → one left
    cs = [lt({0: 1}, -6), le({0: 1}, -5)]
    out = simplify(cs)
    assert len(out) == 1


def test_ne_and_eq_not_merged_across_constants():
    cs = [ne({0: 1}, -5), ne({0: 1}, -6), eq({1: 1}, -1), eq({1: 1}, -2)]
    assert len(simplify(cs)) == 4


def test_loop_family_collapses_to_boundary():
    """The Fig. 7 pattern: x + i < 100 for i = 0..99 → single tightest."""
    cs = [lt({0: 1}, i - 100) for i in range(100)]
    out = simplify(cs)
    assert len(out) == 1
    # tightest is i=99: x + 99 < 100 → x <= 0
    assert out[0].evaluate({0: 0}) and not out[0].evaluate({0: 1})


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.dictionaries(st.integers(0, 2), st.integers(-3, 3),
                              min_size=1, max_size=2),
              st.integers(-10, 10),
              st.sampled_from(["<", "<=", ">", ">=", "==", "!="])),
    max_size=8),
    st.fixed_dictionaries({v: st.integers(-30, 30) for v in range(3)}))
def test_simplify_preserves_satisfaction(specs, assignment):
    cs = [Constraint(LinearExpr(c, k), op) for c, k, op in specs]
    out = simplify(cs)
    assert len(out) <= sum(len(c.normalized()) for c in cs)
    before = all(c.evaluate(assignment) for c in cs)
    after = all(c.evaluate(assignment) for c in out)
    assert before == after
