"""Tests for ``for``-loop instrumentation (the CIL for→while lowering)."""

import pytest

from repro.concolic import HeavySink, LightSink, sink_scope
from repro.instrument import SiteRegistry, instrument_source, make_probes


def load_snippet(source):
    registry = SiteRegistry()
    tree = instrument_source(source, "snippet", registry)
    ns = dict(make_probes(registry))
    exec(compile(tree, "<snippet>", "exec"), ns)
    return ns, registry


def test_for_gets_a_site():
    src = "def f(xs):\n    for x in xs:\n        pass\n"
    _, reg = load_snippet(src)
    assert [s.kind for s in reg.sites] == ["for"]
    assert reg.total_branches == 2


def test_for_records_iteration_and_exhaustion_branches():
    src = ("def f(xs):\n"
           "    total = 0\n"
           "    for x in xs:\n"
           "        total += x\n"
           "    return total\n")
    ns, reg = load_snippet(src)
    sink = LightSink()
    with sink_scope(sink):
        assert ns["f"]([1, 2, 3]) == 6
    sid = reg.sites[0].sid
    assert (sid, True) in sink.coverage
    assert (sid, False) in sink.coverage


def test_empty_iterable_records_only_false_arm():
    src = "def f(xs):\n    for x in xs:\n        pass\n    return 'done'\n"
    ns, reg = load_snippet(src)
    sink = LightSink()
    with sink_scope(sink):
        assert ns["f"]([]) == "done"
    sid = reg.sites[0].sid
    assert (sid, False) in sink.coverage
    assert (sid, True) not in sink.coverage


def test_break_skips_exhaustion_branch():
    src = ("def f(xs):\n"
           "    for x in xs:\n"
           "        if x > 1:\n"
           "            break\n"
           "    return x\n")
    ns, reg = load_snippet(src)
    sink = LightSink()
    with sink_scope(sink):
        assert ns["f"]([1, 2, 3]) == 2
    for_sid = next(s.sid for s in reg.sites if s.kind == "for")
    # break leaves the loop without evaluating the exhaustion condition
    assert (for_sid, True) in sink.coverage
    assert (for_sid, False) not in sink.coverage


def test_for_without_sink_is_transparent():
    src = "def f(xs):\n    return [x * 2 for y in [0] for x in xs]\n"
    ns, _ = load_snippet(src)
    assert ns["f"]([1, 2]) == [2, 4]
    src2 = "def g(xs):\n    out = []\n    for x in xs:\n        out.append(x)\n    return out\n"
    ns2, _ = load_snippet(src2)
    assert ns2["g"]((1, 2, 3)) == [1, 2, 3]


def test_nested_fors_have_distinct_sites():
    src = ("def f(n):\n"
           "    c = 0\n"
           "    for i in range(n):\n"
           "        for j in range(n):\n"
           "            c += 1\n"
           "    return c\n")
    ns, reg = load_snippet(src)
    assert sum(1 for s in reg.sites if s.kind == "for") == 2
    sink = LightSink()
    with sink_scope(sink):
        assert ns["f"](3) == 9


def test_for_events_feed_reduction_like_while():
    """Heavy sink event stream: a 3-item for loop produces 4 events at
    one site (3×True + 1×False)."""
    src = ("def f(xs):\n"
           "    for x in xs:\n"
           "        pass\n")
    ns, reg = load_snippet(src)
    sink = HeavySink()
    with sink_scope(sink):
        ns["f"]([10, 20, 30])
    assert sink.event_count == 4


def test_generator_iterables_still_lazy():
    """The probe must not pre-consume generators."""
    src = ("def f(gen):\n"
           "    for x in gen:\n"
           "        if x == 2:\n"
           "            return 'found'\n"
           "    return 'no'\n")
    ns, _ = load_snippet(src)
    consumed = []

    def gen():
        for i in range(10):
            consumed.append(i)
            yield i

    with sink_scope(LightSink()):
        assert ns["f"](gen()) == "found"
    assert consumed == [0, 1, 2]     # stopped as soon as found
