"""Terminal-friendly ASCII charts for campaign telemetry.

The paper's Figure 4 and Figure 6 are line plots; the benchmark harness
reports their data as tables, and this module renders the same series as
ASCII charts for humans skimming terminal output.  No plotting libraries
— deliberately dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence


def line_chart(series: dict[str, Sequence[float]], width: int = 64,
               height: int = 16, title: str = "",
               y_label: str = "") -> str:
    """Render one or more y-series (shared, implicit x) as an ASCII chart.

    Each series gets a marker character; the legend maps them back.
    """
    if not series or all(len(v) == 0 for v in series.values()):
        return f"{title}\n(no data)"
    markers = "*o+x#@%&"
    y_min = min(min(v) for v in series.values() if len(v))
    y_max = max(max(v) for v in series.values() if len(v))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(len(v) for v in series.values())

    grid = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        m = markers[si % len(markers)]
        for i, y in enumerate(values):
            col = int(i * (width - 1) / max(1, x_max - 1))
            row = int((y - y_min) * (height - 1) / (y_max - y_min))
            grid[height - 1 - row][col] = m

    lines = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_max:g}"), len(f"{y_min:g}")) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:g}".rjust(label_w)
        elif r == height - 1:
            label = f"{y_min:g}".rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_w + "-" * (width + 2))
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    lines.append(" " * label_w + f" {legend}")
    if y_label:
        lines.append(" " * label_w + f" (y: {y_label}; x: 0..{x_max - 1})")
    return "\n".join(lines)


def coverage_chart(results: dict[str, "object"], width: int = 64,
                   height: int = 16, title: str = "") -> str:
    """Chart covered-branches-over-iterations for named campaigns.

    Accepts :class:`~repro.core.compi.CampaignResult` values (anything
    with ``.iterations`` carrying ``covered_after``).
    """
    series = {
        name: [rec.covered_after for rec in result.iterations]
        for name, result in results.items()
    }
    return line_chart(series, width=width, height=height, title=title,
                      y_label="covered branches")


def histogram_chart(buckets: Sequence[tuple[str, int]], width: int = 40,
                    title: str = "") -> str:
    """Horizontal bar chart for bucketed counts (the Fig. 9 shape)."""
    if not buckets:
        return f"{title}\n(no data)"
    peak = max(c for _l, c in buckets) or 1
    label_w = max(len(l) for l, _c in buckets)
    lines = [title] if title else []
    for label, count in buckets:
        bar = "#" * int(round(count * width / peak)) if count else ""
        lines.append(f"{label.rjust(label_w)} |{bar} {count}")
    return "\n".join(lines)
