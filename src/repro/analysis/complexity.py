"""Target complexity accounting (Table III).

Combines the SLOC counter with the instrumentation registry: total
branches come from the static instrumentation pass, reachable branches
from the CREST-FAQ estimate (2 × sites of every function entered during
testing, i.e. a campaign's merged function coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..concolic.coverage import CoverageMap
from ..instrument.loader import InstrumentedProgram
from .sloc import count_sloc_modules


@dataclass(frozen=True)
class ComplexityRow:
    """One Table III row."""

    program: str
    sloc: int
    total_branches: int
    reachable_branches: int


def complexity_row(program: InstrumentedProgram, module_names: list[str],
                   coverage: Optional[CoverageMap] = None) -> ComplexityRow:
    """Build the row; ``coverage`` supplies the reachable estimate (0 when
    no testing campaign has run yet)."""
    reachable = 0
    if coverage is not None:
        reachable = coverage.reachable_branches(
            program.registry.branches_per_function())
    return ComplexityRow(
        program=program.name,
        sloc=count_sloc_modules(module_names),
        total_branches=program.registry.total_branches,
        reachable_branches=reachable,
    )
