"""SLOCCount analog: source lines of code for target programs.

Table III reports each target's complexity as SLOC (physical source
lines, excluding blanks and comments — SLOCCount's definition), total
branches from the instrumentation phase, and reachable branches estimated
from testing.  This module provides the SLOC half.
"""

from __future__ import annotations

import importlib
import inspect
import io
import tokenize


def count_sloc_source(source: str) -> int:
    """Physical source lines minus blanks, comments, and docstrings."""
    lines_with_code: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        prev_toktype = tokenize.INDENT
        for tok in tokens:
            toktype, _text, start, end, _line = tok
            if toktype in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                           tokenize.INDENT, tokenize.DEDENT,
                           tokenize.ENCODING, tokenize.ENDMARKER):
                prev_toktype = toktype
                continue
            if toktype == tokenize.STRING and prev_toktype in (
                    tokenize.INDENT, tokenize.NEWLINE, tokenize.NL,
                    tokenize.ENCODING):
                # docstring / bare string statement
                prev_toktype = toktype
                continue
            for ln in range(start[0], end[0] + 1):
                lines_with_code.add(ln)
            prev_toktype = toktype
    except tokenize.TokenError:
        # fall back to a crude count on malformed input
        return sum(1 for l in source.splitlines()
                   if l.strip() and not l.strip().startswith("#"))
    return len(lines_with_code)


def count_sloc_module(module_name: str) -> int:
    """SLOC of one importable module's source file."""
    mod = importlib.import_module(module_name)
    path = inspect.getsourcefile(mod)
    if path is None:  # pragma: no cover
        return 0
    with open(path, "r", encoding="utf-8") as fh:
        return count_sloc_source(fh.read())


def count_sloc_modules(module_names: list[str]) -> int:
    """Total SLOC over a list of modules (one target program)."""
    return sum(count_sloc_module(m) for m in module_names)
