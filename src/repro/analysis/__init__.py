"""Static/dynamic analysis helpers feeding the evaluation tables."""

from .complexity import ComplexityRow, complexity_row
from .sloc import count_sloc_module, count_sloc_modules, count_sloc_source

__all__ = ["ComplexityRow", "complexity_row", "count_sloc_module",
           "count_sloc_modules", "count_sloc_source"]
