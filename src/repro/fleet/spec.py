"""Declarative fleet specs: a matrix of campaigns, expanded into shards.

A spec names a sweep and the axes of its matrix; the cartesian product
of the axes is the shard list.  Expansion is pure and deterministic —
the same spec always yields the same shards with the same IDs, which is
what lets the manifest quarantine a shard in one session and honor that
quarantine in every later ``repro fleet resume``.

Example (YAML; JSON with the same shape is accepted too)::

    fleet: nightly-sweep
    seed: 0
    matrix:
      target: [demo, seq_demo]
      strategy: [two-phase, random-branch]
      nprocs: [2, 4]
    shard:
      iterations: 40
      config:
        nprocs_cap: 4
    failure:
      max_failures: 3
      backoff: 0.5
      jitter: 0.1
      shard_timeout: 300
    workers: 4

``matrix.target`` is the only required axis; every other axis defaults
to a single value (``strategy: two-phase``, ``nprocs: init_nprocs``,
``seed: [spec seed]``, ``fault_seed: [0]``).  ``shard.config`` takes raw
:class:`~repro.core.config.CompiConfig` field overrides applied to every
shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.config import CompiConfig

#: search strategies a shard can name; "two-phase" is the COMPI default.
#: A shard can also name a *portfolio*: ``portfolio`` (the default arm
#: mix) or ``portfolio:dfs2+bounded+random+cfg`` (explicit arms, joined
#: with ``+`` so shard IDs stay comma-free).  Any non-portfolio strategy
#: takes a ``:schedules`` suffix (e.g. ``two-phase:schedules``) that
#: turns on message-schedule exploration for the shard.
STRATEGIES = ("two-phase", "bounded", "dfs", "random-branch",
              "uniform-random", "cfg")


def split_schedules(name: str) -> tuple[str, bool]:
    """Split a trailing ``:schedules`` suffix off a strategy string.

    Returns ``(base_strategy, explore_schedules)``.
    """
    if name.endswith(":schedules"):
        return name[:-len(":schedules")], True
    return name, False


def portfolio_arms_from_strategy(name: str):
    """Arms tuple when ``name`` is a portfolio strategy string, else None.

    Raises :class:`FleetSpecError` for a malformed arm list.
    """
    if name != "portfolio" and not name.startswith("portfolio:"):
        return None
    from ..portfolio import parse_portfolio
    spec = name.partition(":")[2]
    try:
        return parse_portfolio(spec)
    except ValueError as exc:
        raise FleetSpecError(str(exc)) from None


class FleetSpecError(ValueError):
    """A spec that cannot be expanded into a valid shard list."""


def known_targets() -> tuple[str, ...]:
    """The instrumentable target names (the CLI registry)."""
    from ..__main__ import TARGETS  # lazy: __main__ imports this package
    return tuple(sorted(TARGETS))


def build_strategy(name: str, config: CompiConfig, program):
    """Instantiate one named search strategy for a shard's campaign.

    Returns ``None`` for ``two-phase`` so :class:`~repro.core.Compi`
    builds its own default — keeping a two-phase shard bit-for-bit
    identical to a plain ``repro run`` of the same configuration — and
    for portfolio strategies, whose arms Compi builds from
    ``config.portfolio`` (set by :meth:`ShardSpec.to_config`).
    """
    import numpy as np

    from ..search import (BoundedDFS, CfgDirectedSearch, RandomBranchSearch,
                          UniformRandomSearch)
    rng = np.random.default_rng(config.rng_seed(3))
    name, _ = split_schedules(name)  # the suffix lives in the config
    if name == "two-phase":
        return None
    if portfolio_arms_from_strategy(name) is not None:
        return None
    if name == "bounded":
        return BoundedDFS(depth_bound=config.fixed_depth_bound or 500,
                          rng=rng)
    if name == "dfs":
        return BoundedDFS(depth_bound=None, rng=rng)
    if name == "random-branch":
        return RandomBranchSearch(rng=rng)
    if name == "uniform-random":
        return UniformRandomSearch(rng=rng)
    if name == "cfg":
        return CfgDirectedSearch(program.registry, rng=rng)
    raise FleetSpecError(f"unknown strategy {name!r}; "
                         f"pick from {', '.join(STRATEGIES)}")


@dataclass(frozen=True)
class FailurePolicy:
    """Per-shard failure handling for one sweep.

    A shard attempt that ends in ``shard-crash`` / ``shard-timeout`` /
    ``shard-oom`` / ``shard-error`` counts one failure.  Failed shards
    retry with exponential backoff (``backoff * 2**(failures-1)``,
    capped at ``backoff_cap``, plus up to ``jitter`` fraction of
    deterministic per-shard jitter); after ``max_failures`` total
    failures — counted *across* resumes — the shard is quarantined.
    """

    #: total failed attempts before the shard is quarantined
    max_failures: int = 3
    #: base of the exponential retry backoff, seconds
    backoff: float = 0.5
    #: ceiling on one backoff delay, seconds
    backoff_cap: float = 30.0
    #: extra random fraction of the delay (deterministic per shard+attempt)
    jitter: float = 0.1
    #: wall-clock cap for one shard attempt, seconds (None = uncapped)
    shard_timeout: Optional[float] = None
    #: address-space rlimit for the whole shard worker process, MB; a
    #: MemoryError under the cap classifies as ``shard-oom``
    max_rss_mb: Optional[int] = None
    #: a shard whose heartbeat (campaign-log progress) is older than this
    #: is considered wedged and killed as ``shard-timeout`` (None = off)
    wedge_grace: Optional[float] = None

    def as_dict(self) -> dict:
        return {"max_failures": self.max_failures, "backoff": self.backoff,
                "backoff_cap": self.backoff_cap, "jitter": self.jitter,
                "shard_timeout": self.shard_timeout,
                "max_rss_mb": self.max_rss_mb,
                "wedge_grace": self.wedge_grace}

    @classmethod
    def from_dict(cls, d: dict) -> "FailurePolicy":
        known = {f: d[f] for f in ("max_failures", "backoff", "backoff_cap",
                                   "jitter", "shard_timeout", "max_rss_mb",
                                   "wedge_grace") if f in d}
        unknown = set(d) - set(cls().as_dict())
        if unknown:
            raise FleetSpecError(
                f"unknown failure-policy key(s): {', '.join(sorted(unknown))}")
        policy = cls(**known)
        if policy.max_failures < 1:
            raise FleetSpecError("failure.max_failures must be >= 1")
        return policy


@dataclass(frozen=True)
class PoolPolicy:
    """Warm-pool configuration for one sweep (see :mod:`repro.fleet.pool`).

    ``warm: 0`` (the default) keeps today's disposable cold-spawn path;
    ``warm: N`` keeps up to N persistent ``workerd`` daemons serving
    shards over pipes.  The remaining knobs are lifecycle hygiene: a
    worker is recycled after ``recycle_tasks`` shards or when its
    post-shard RSS self-check exceeds ``max_rss_mb``, and ``breaker``
    pool-level failures (spawn/handshake failures, idle deaths — not
    deaths under a shard lease) permanently degrade the sweep to cold
    spawn.
    """

    #: persistent warm workers (0 = cold spawn per attempt)
    warm: int = 0
    #: shards one worker serves before being recycled
    recycle_tasks: int = 25
    #: post-shard RSS threshold, MB (None = no RSS-based recycling)
    max_rss_mb: Optional[int] = None
    #: pool failures before the circuit breaker opens
    breaker: int = 3
    #: seconds to wait for a spawned daemon's hello frame
    spawn_timeout: float = 60.0
    #: seconds a retiring worker gets to drain before SIGKILL
    drain_grace: float = 5.0

    def as_dict(self) -> dict:
        return {"warm": self.warm, "recycle_tasks": self.recycle_tasks,
                "max_rss_mb": self.max_rss_mb, "breaker": self.breaker,
                "spawn_timeout": self.spawn_timeout,
                "drain_grace": self.drain_grace}

    @classmethod
    def from_dict(cls, d: dict) -> "PoolPolicy":
        unknown = set(d) - set(cls().as_dict())
        if unknown:
            raise FleetSpecError(
                f"unknown pool key(s): {', '.join(sorted(unknown))}")
        policy = cls(**{k: d[k] for k in d})
        if policy.warm < 0:
            raise FleetSpecError("pool.warm must be >= 0")
        if policy.recycle_tasks < 1:
            raise FleetSpecError("pool.recycle_tasks must be >= 1")
        if policy.breaker < 1:
            raise FleetSpecError("pool.breaker must be >= 1")
        return policy


@dataclass(frozen=True)
class ShardSpec:
    """One fully resolved campaign shard of a sweep (pure data)."""

    target: str
    strategy: str
    nprocs: int
    seed: int
    fault_seed: int
    iterations: Optional[int] = None
    time_budget: Optional[float] = None
    overrides: tuple = ()          # sorted (CompiConfig field, value) pairs

    @property
    def shard_id(self) -> str:
        """Stable identity: the matrix coordinates, nothing session-bound."""
        return (f"{self.target}--{self.strategy}--np{self.nprocs}"
                f"--s{self.seed}--fs{self.fault_seed}")

    def budget_kwargs(self) -> dict:
        """The Compi.run budget (defaults to 50 iterations, as the CLI)."""
        if self.iterations is None and self.time_budget is None:
            return {"iterations": 50}
        out: dict = {}
        if self.iterations is not None:
            out["iterations"] = self.iterations
        if self.time_budget is not None:
            out["time_budget"] = self.time_budget
        return out

    def to_config(self) -> CompiConfig:
        """The shard's campaign configuration (pure function of the spec)."""
        base = dict(self.overrides)
        base.update(seed=self.seed, fault_seed=self.fault_seed,
                    init_nprocs=self.nprocs)
        base.setdefault("nprocs_cap", max(self.nprocs,
                                          CompiConfig().nprocs_cap))
        strategy, schedules = split_schedules(self.strategy)
        if schedules:
            base["explore_schedules"] = True
        arms = portfolio_arms_from_strategy(strategy)
        if arms is not None:
            base["portfolio"] = arms
        return CompiConfig.from_dict(base)

    def as_dict(self) -> dict:
        return {"target": self.target, "strategy": self.strategy,
                "nprocs": self.nprocs, "seed": self.seed,
                "fault_seed": self.fault_seed,
                "iterations": self.iterations,
                "time_budget": self.time_budget,
                "overrides": [list(p) for p in self.overrides]}

    @classmethod
    def from_dict(cls, d: dict) -> "ShardSpec":
        return cls(target=d["target"], strategy=d["strategy"],
                   nprocs=d["nprocs"], seed=d["seed"],
                   fault_seed=d["fault_seed"],
                   iterations=d.get("iterations"),
                   time_budget=d.get("time_budget"),
                   overrides=tuple((k, _dejson(v))
                                   for k, v in d.get("overrides", [])))


def _dejson(value):
    """JSON round-trips tuples as lists; CompiConfig wants tuples back."""
    return tuple(value) if isinstance(value, list) else value


def _as_list(value) -> list:
    return list(value) if isinstance(value, (list, tuple)) else [value]


@dataclass
class FleetSpec:
    """One declarative sweep: the matrix, shard defaults, failure policy."""

    name: str
    seed: int = 0
    targets: list = field(default_factory=list)
    strategies: list = field(default_factory=lambda: ["two-phase"])
    nprocs: list = field(default_factory=lambda: [CompiConfig().init_nprocs])
    seeds: Optional[list] = None          # None → [self.seed]
    fault_seeds: list = field(default_factory=lambda: [0])
    iterations: Optional[int] = None
    time_budget: Optional[float] = None
    config_overrides: dict = field(default_factory=dict)
    failure: FailurePolicy = field(default_factory=FailurePolicy)
    pool: PoolPolicy = field(default_factory=PoolPolicy)
    #: shards dispatched concurrently
    workers: int = 2

    # ------------------------------------------------------------------
    def expand(self) -> list[ShardSpec]:
        """The shard list, in deterministic matrix-product order."""
        overrides = tuple(sorted(self.config_overrides.items()))
        shards = [
            ShardSpec(target=t, strategy=st, nprocs=np_, seed=s,
                      fault_seed=fs, iterations=self.iterations,
                      time_budget=self.time_budget, overrides=overrides)
            for t in self.targets
            for st in self.strategies
            for np_ in self.nprocs
            for s in (self.seeds if self.seeds is not None else [self.seed])
            for fs in self.fault_seeds
        ]
        seen: set[str] = set()
        for sh in shards:
            if sh.shard_id in seen:
                raise FleetSpecError(
                    f"duplicate shard {sh.shard_id!r}: matrix axes repeat "
                    f"a value")
            seen.add(sh.shard_id)
        return shards

    def shard(self, shard_id: str) -> ShardSpec:
        for sh in self.expand():
            if sh.shard_id == shard_id:
                return sh
        raise KeyError(f"no shard {shard_id!r} in fleet {self.name!r}")

    # ------------------------------------------------------------------
    def validate(self) -> "FleetSpec":
        if not self.name:
            raise FleetSpecError("spec needs a non-empty 'fleet' name")
        if not self.targets:
            raise FleetSpecError("matrix.target must list at least one "
                                 "target")
        targets = known_targets()
        for t in self.targets:
            if t not in targets:
                raise FleetSpecError(
                    f"unknown target {t!r}; pick from {', '.join(targets)}")
        for st in self.strategies:
            base, schedules = split_schedules(st)
            if schedules and portfolio_arms_from_strategy(base) is not None:
                raise FleetSpecError(
                    f"strategy {st!r}: ':schedules' cannot ride a "
                    f"portfolio (the schedule frontier lives on the "
                    f"single-strategy scheduler — make it its own shard)")
            if base not in STRATEGIES and \
                    portfolio_arms_from_strategy(base) is None:
                raise FleetSpecError(
                    f"unknown strategy {st!r}; pick from "
                    f"{', '.join(STRATEGIES)} (optionally with a "
                    f"':schedules' suffix), 'portfolio', or "
                    f"'portfolio:<arm+arm+...>'")
        for np_ in self.nprocs:
            if not isinstance(np_, int) or np_ < 1:
                raise FleetSpecError(f"matrix.nprocs entries must be "
                                     f"positive integers, got {np_!r}")
        if self.workers < 1:
            raise FleetSpecError("workers must be >= 1")
        known = {f.name for f in
                 __import__("dataclasses").fields(CompiConfig)}
        unknown = set(self.config_overrides) - known
        if unknown:
            raise FleetSpecError(
                f"unknown shard.config key(s): {', '.join(sorted(unknown))}")
        return self

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Round-trippable snapshot (embedded in the fleet manifest)."""
        return {
            "fleet": self.name, "seed": self.seed,
            "matrix": {"target": list(self.targets),
                       "strategy": list(self.strategies),
                       "nprocs": list(self.nprocs),
                       "seed": (list(self.seeds)
                                if self.seeds is not None else None),
                       "fault_seed": list(self.fault_seeds)},
            "shard": {"iterations": self.iterations,
                      "time_budget": self.time_budget,
                      "config": dict(self.config_overrides)},
            "failure": self.failure.as_dict(),
            "pool": self.pool.as_dict(),
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FleetSpec":
        unknown = set(d) - {"fleet", "seed", "matrix", "shard", "failure",
                            "pool", "workers"}
        if unknown:
            raise FleetSpecError(
                f"unknown top-level spec key(s): {', '.join(sorted(unknown))}")
        matrix = d.get("matrix") or {}
        if not isinstance(matrix, dict):
            raise FleetSpecError("'matrix' must be a mapping of axes")
        unknown = set(matrix) - {"target", "strategy", "nprocs", "seed",
                                 "fault_seed"}
        if unknown:
            raise FleetSpecError(
                f"unknown matrix axis(es): {', '.join(sorted(unknown))}")
        shard = d.get("shard") or {}
        unknown = set(shard) - {"iterations", "time_budget", "config"}
        if unknown:
            raise FleetSpecError(
                f"unknown shard key(s): {', '.join(sorted(unknown))}")
        seed = int(d.get("seed", 0))
        seeds = matrix.get("seed")
        spec = cls(
            name=str(d.get("fleet", "")),
            seed=seed,
            targets=_as_list(matrix.get("target", [])),
            strategies=_as_list(matrix.get("strategy", ["two-phase"])),
            nprocs=_as_list(matrix.get("nprocs",
                                       [CompiConfig().init_nprocs])),
            seeds=None if seeds is None else _as_list(seeds),
            fault_seeds=_as_list(matrix.get("fault_seed", [0])),
            iterations=shard.get("iterations"),
            time_budget=shard.get("time_budget"),
            config_overrides=dict(shard.get("config") or {}),
            failure=FailurePolicy.from_dict(d.get("failure") or {}),
            pool=PoolPolicy.from_dict(d.get("pool") or {}),
            workers=int(d.get("workers", 2)),
        )
        return spec.validate()


def load_spec(path: Union[str, Path]) -> FleetSpec:
    """Parse a fleet spec file: YAML when PyYAML is available, JSON
    always.  A ``.json`` suffix skips the YAML attempt entirely, so the
    tool works on images without PyYAML."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        return FleetSpec.from_dict(json.loads(text))
    try:
        import yaml
    except ImportError:
        try:
            return FleetSpec.from_dict(json.loads(text))
        except json.JSONDecodeError:
            raise FleetSpecError(
                f"{path}: PyYAML is not installed and the file is not "
                f"JSON; install PyYAML or rewrite the spec as .json"
            ) from None
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise FleetSpecError(f"{path}: invalid YAML: {exc}") from None
    if not isinstance(data, dict):
        raise FleetSpecError(f"{path}: spec must be a mapping, "
                             f"got {type(data).__name__}")
    return FleetSpec.from_dict(data)
