"""Campaign fleet: declarative sharded sweeps with fleet-level robustness.

The paper evaluates one target × one strategy × one rank configuration
at a time; real MPI bug-finding sweeps *matrices* of configurations.
This package lifts the robustness-era guarantees from the run level to
the sweep level:

* :mod:`repro.fleet.spec` — declarative campaign specs (YAML/JSON): a
  matrix of targets × search strategies × process counts × seeds ×
  fault seeds expands into deterministic campaign **shards**;
* :mod:`repro.fleet.manifest` — the crash-safe fleet manifest: an
  append-only, torn-tail-tolerant JSONL ledger of shard lifecycle
  events (same discipline as the PR-1 campaign log, via
  :mod:`repro.core.atomicio`), so ``repro fleet resume`` continues a
  killed sweep exactly where it died;
* :mod:`repro.fleet.worker` — the shard worker: one campaign in one
  disposable child process, rlimit-capped and heartbeat-instrumented,
  so a hard-dying shard can never take the sweep down with it;
* :mod:`repro.fleet.pool` — the warm pool: long-lived worker daemons
  reused across shards over a length-prefixed JSON pipe protocol, with
  per-shard leases, recycling (task budget / RSS growth), graceful
  drain on SIGTERM, and a circuit breaker that degrades the sweep back
  to disposable cold spawns when the pool itself misbehaves;
* :mod:`repro.fleet.scheduler` — the async fleet scheduler: dispatches
  shards across a bounded pool of supervised worker processes with
  per-shard failure policy — bounded retries with exponential backoff
  and jitter, distinct ``shard-crash`` / ``shard-timeout`` /
  ``shard-oom`` outcomes, and poison-shard quarantine after the retry
  budget (persisted, honored across resume);
* :mod:`repro.fleet.results` — the results store: merges completed
  shards' JSONL campaign logs into one deterministic aggregate report
  (identical regardless of merge order, interruption, or retries);
* :mod:`repro.fleet.service` — the CLI-facing façade
  (``repro fleet run|resume|status|report``).
"""

from .manifest import (FleetManifest, FleetState, PoolState, ShardState,
                       fleet_paths, load_state)
from .pool import WarmPool
from .results import FleetReport, ShardReport, merge_results, report_text
from .scheduler import FleetScheduler
from .spec import (FailurePolicy, FleetSpec, FleetSpecError, PoolPolicy,
                   ShardSpec, STRATEGIES, load_spec)

__all__ = [
    "FailurePolicy", "FleetManifest", "FleetReport", "FleetScheduler",
    "FleetSpec", "FleetSpecError", "FleetState", "PoolPolicy", "PoolState",
    "STRATEGIES", "ShardReport", "ShardSpec", "ShardState", "WarmPool",
    "fleet_paths", "load_spec", "load_state", "merge_results",
    "report_text",
]
