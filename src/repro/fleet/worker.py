"""The shard workers: disposable per-attempt processes and warm daemons.

The fleet scheduler launches ``python -m repro fleet worker --dir D
--shard ID`` per attempt.  Process-per-attempt is the isolation the
supervision era bought at the run level, applied at the campaign level:
a target that hard-kills its process (``os._exit``, a fatal signal, an
OOM the kernel answers with SIGKILL) takes down *this* worker only —
the scheduler classifies the death from the exit status and retries or
quarantines the shard without disturbing its siblings.

With a warm pool (``--warm-pool N`` / spec ``pool.warm``), the
scheduler instead keeps ``python -m repro fleet workerd`` daemons alive
across shards and feeds them requests over the framed pipe protocol
(:mod:`repro.fleet.pool`).  :func:`serve_pool` is that daemon's loop;
the isolation story is unchanged — each shard still runs
:func:`execute_shard`, a pure function of the shard spec and the fleet
directory, and a shard that takes the daemon down is classified from
the broken pipe exactly as a dead cold worker is classified from its
exit status.

Contract with the scheduler:

* the campaign streams to ``shards/<id>.jsonl`` (mode ``"w"`` — each
  attempt starts the log over, so a retried shard's log is always one
  attempt's coherent record, and a quarantined shard leaves the partial
  log of its final attempt for the results store);
* every log record touches the shard's heartbeat file (reusing
  :class:`~repro.supervise.pool.HeartbeatMonitor`), which is how the
  scheduler tells "slow but progressing" from "wedged";
* a finished attempt atomically writes ``shards/<id>.result.json``
  before exiting 0 — the scheduler treats exit 0 *without* the result
  file as a crash (the worker died between campaign end and publish);
* exit codes: 0 = completed (bugs found or not — bugs are data),
  :data:`EXIT_OOM` = MemoryError under the fleet rlimit,
  :data:`EXIT_INTERNAL` = harness-level exception (details on stderr).
"""

from __future__ import annotations

import os
import signal as signal_module
import sys
import traceback
from pathlib import Path
from typing import Union

from ..core.atomicio import atomic_write_json, read_jsonl
from ..core.persist import CampaignLog
from ..supervise import HeartbeatMonitor, ResourceLimits, apply_rlimits
from .manifest import fleet_paths
from .spec import FleetSpec, ShardSpec, build_strategy

#: worker exit status for a MemoryError under the fleet's rlimit cap
EXIT_OOM = 86
#: worker exit status for a harness-level exception
EXIT_INTERNAL = 70


class HeartbeatLog(CampaignLog):
    """A campaign log whose every record doubles as a liveness signal."""

    def __init__(self, path, heartbeat_path: str, mode: str = "w"):
        super().__init__(path, mode=mode)
        self._heartbeat = str(heartbeat_path)

    def _write(self, obj: dict) -> None:
        super()._write(obj)
        HeartbeatMonitor.touch(self._heartbeat)


def load_fleet_spec(root: Union[str, Path]) -> FleetSpec:
    """The spec snapshot embedded in a fleet manifest's first record."""
    paths = fleet_paths(root)
    for obj in read_jsonl(paths.manifest):
        if obj.get("type") == "fleet-meta":
            return FleetSpec.from_dict(obj["spec"])
    raise ValueError(f"{paths.manifest}: no fleet-meta record")


def shard_summary(result) -> dict:
    """The deterministic projection of one campaign the report merges.

    Wall-clock time, retries and attempt counts are deliberately *not*
    here: the merged fleet report must be byte-identical between an
    uninterrupted sweep and a killed-and-resumed one.
    """
    return {
        "iterations": len(result.iterations),
        "covered": result.covered,
        "total_branches": result.total_branches,
        "reachable": result.reachable_branches,
        "divergences": result.divergences,
        "unique_bugs": sorted([k, loc] for (k, loc) in
                              {b.dedup_key for b in result.bugs}),
    }


def execute_shard(root: Union[str, Path], shard: ShardSpec) -> dict:
    """Run one shard campaign to completion and publish its result file.

    Runs in the worker process, but is also callable inline (the
    benchmark's serial baseline uses it) — it is a pure function of the
    shard spec plus the fleet directory it writes into.
    """
    from ..__main__ import load_target  # lazy: __main__ imports fleet
    from ..core import Compi

    paths = fleet_paths(root)
    heartbeat = HeartbeatMonitor(stale_after=1.0,
                                 dir=str(paths.heartbeats))
    hb_path = heartbeat.path_for(shard.shard_id)
    HeartbeatMonitor.touch(hb_path)

    config = shard.to_config()
    program = load_target(shard.target)
    try:
        strategy = build_strategy(shard.strategy, config, program)
        with Compi(program, config, strategy=strategy) as compi, \
                HeartbeatLog(paths.shard_log(shard.shard_id), hb_path,
                             mode="w") as log:
            result = compi.run(**shard.budget_kwargs(), log=log)
    finally:
        program.unload()

    payload = {
        "shard": shard.shard_id,
        "status": "ok",
        "summary": shard_summary(result),
        # session-local telemetry, excluded from the deterministic report
        "wall_time": result.wall_time,
        "retries": result.retries,
    }
    atomic_write_json(paths.shard_result(shard.shard_id), payload)
    return payload


def run_shard(root: Union[str, Path], shard_id: str) -> int:
    """Worker-process entry: resolve the shard, run it, map the exit code."""
    try:
        spec = load_fleet_spec(root)
        shard = spec.shard(shard_id)
        # the whole worker runs under the fleet's address-space cap, so a
        # runaway shard OOMs alone and classifies as shard-oom
        apply_rlimits(ResourceLimits(max_rss_mb=spec.failure.max_rss_mb))
        execute_shard(root, shard)
        return 0
    except MemoryError:
        # keep the handler allocation-free: no traceback rendering
        sys.stderr.write("shard worker: MemoryError under rlimit cap\n")
        return EXIT_OOM
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL


# ----------------------------------------------------------------------
# the warm daemon (``repro fleet workerd``)


def _rss_kb() -> int:
    """Current RSS in KB — the post-shard state-leak self-check.

    Prefers ``/proc/self/statm`` (current resident pages); falls back to
    ``ru_maxrss`` (peak, KB on Linux) where /proc is unavailable.
    """
    try:
        with open("/proc/self/statm", "r") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") // 1024
    except (OSError, ValueError, IndexError):
        try:
            import resource
            return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except Exception:  # pragma: no cover - exotic platform
            return 0


def _open_fds() -> int:
    """Open file descriptors — leaked fds across shards are a state leak."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - no /proc
        return -1


def serve_pool(root: Union[str, Path], worker_id: int) -> int:
    """The warm-worker daemon loop: serve shard requests until told not to.

    Protocol (see :mod:`repro.fleet.pool` for the framing): one
    ``hello`` handshake out, then ``run`` requests in and ``done``
    responses out, one shard at a time.  Every response carries the
    worker's post-shard self-check (``tasks_done``, ``rss_kb``,
    ``open_fds``) so the pool can recycle a leaking worker.

    Lifecycle contracts:

    * the *real* stdout is detached for the protocol before any shard
      runs; fd 1 is re-pointed at stderr (the pool output file), so a
      printing target can never corrupt the frame stream;
    * SIGTERM/SIGINT request a **graceful drain** — an idle worker
      exits 0 immediately; a busy one finishes the in-flight shard,
      publishes its ``result.json`` atomically (that is
      :func:`execute_shard`'s normal epilogue), sends the response, and
      exits 0;
    * a MemoryError response announces ``will_exit`` and the daemon
      exits afterward — post-OOM heap state is not worth trusting;
    * EOF on stdin or an ``exit`` frame ends the loop with exit 0.
    """
    from .pool import PROTO_VERSION, ProtocolError, read_frame, write_frame

    # detach the protocol channel, then point fd 1 (and sys.stdout,
    # which wraps it) at stderr so target prints go to the output file
    proto_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    req_in = os.fdopen(os.dup(0), "rb")
    devnull = os.open(os.devnull, os.O_RDONLY)
    os.dup2(devnull, 0)
    os.close(devnull)

    state = {"busy": False, "drain": False}

    def _drain(signum, frame):
        state["drain"] = True
        if not state["busy"]:
            # idle: nothing in flight, nothing to publish — leave now
            raise SystemExit(0)
        # busy: finish the shard; the loop exits after the response

    signal_module.signal(signal_module.SIGTERM, _drain)
    signal_module.signal(signal_module.SIGINT, _drain)

    try:
        spec = load_fleet_spec(root)
        apply_rlimits(ResourceLimits(max_rss_mb=spec.failure.max_rss_mb))
        write_frame(proto_out, {"type": "hello", "proto": PROTO_VERSION,
                                "pid": os.getpid(), "worker": worker_id})
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL

    tasks = 0
    while True:
        try:
            req = read_frame(req_in)
        except ProtocolError:
            traceback.print_exc()
            return EXIT_INTERNAL
        if req is None or req.get("type") == "exit":
            return 0
        if req.get("type") != "run":
            continue  # unknown request types: forward compatibility
        state["busy"] = True
        resp = {"type": "done", "shard": req.get("shard"), "status": "ok"}
        try:
            execute_shard(root, spec.shard(req["shard"]))
        except MemoryError:
            resp["status"] = "oom"
            resp["will_exit"] = True
            resp["detail"] = "MemoryError under rlimit cap"
        except Exception:
            resp["status"] = "error"
            resp["detail"] = traceback.format_exc().strip()[-500:]
        finally:
            state["busy"] = False
        tasks += 1
        resp["tasks_done"] = tasks
        resp["rss_kb"] = _rss_kb()
        resp["open_fds"] = _open_fds()
        try:
            write_frame(proto_out, resp)
        except (BrokenPipeError, OSError):
            # the scheduler is gone; the shard's result.json (if any)
            # is already atomically published — nothing left to say
            return 0
        if resp["status"] == "oom" or state["drain"]:
            return 0
