"""The shard worker: one campaign shard in one disposable process.

The fleet scheduler launches ``python -m repro fleet worker --dir D
--shard ID`` per attempt.  Process-per-attempt is the isolation the
supervision era bought at the run level, applied at the campaign level:
a target that hard-kills its process (``os._exit``, a fatal signal, an
OOM the kernel answers with SIGKILL) takes down *this* worker only —
the scheduler classifies the death from the exit status and retries or
quarantines the shard without disturbing its siblings.

Contract with the scheduler:

* the campaign streams to ``shards/<id>.jsonl`` (mode ``"w"`` — each
  attempt starts the log over, so a retried shard's log is always one
  attempt's coherent record, and a quarantined shard leaves the partial
  log of its final attempt for the results store);
* every log record touches the shard's heartbeat file (reusing
  :class:`~repro.supervise.pool.HeartbeatMonitor`), which is how the
  scheduler tells "slow but progressing" from "wedged";
* a finished attempt atomically writes ``shards/<id>.result.json``
  before exiting 0 — the scheduler treats exit 0 *without* the result
  file as a crash (the worker died between campaign end and publish);
* exit codes: 0 = completed (bugs found or not — bugs are data),
  :data:`EXIT_OOM` = MemoryError under the fleet rlimit,
  :data:`EXIT_INTERNAL` = harness-level exception (details on stderr).
"""

from __future__ import annotations

import sys
import traceback
from pathlib import Path
from typing import Union

from ..core.atomicio import atomic_write_json, read_jsonl
from ..core.persist import CampaignLog
from ..supervise import HeartbeatMonitor, ResourceLimits, apply_rlimits
from .manifest import fleet_paths
from .spec import FleetSpec, ShardSpec, build_strategy

#: worker exit status for a MemoryError under the fleet's rlimit cap
EXIT_OOM = 86
#: worker exit status for a harness-level exception
EXIT_INTERNAL = 70


class HeartbeatLog(CampaignLog):
    """A campaign log whose every record doubles as a liveness signal."""

    def __init__(self, path, heartbeat_path: str, mode: str = "w"):
        super().__init__(path, mode=mode)
        self._heartbeat = str(heartbeat_path)

    def _write(self, obj: dict) -> None:
        super()._write(obj)
        HeartbeatMonitor.touch(self._heartbeat)


def load_fleet_spec(root: Union[str, Path]) -> FleetSpec:
    """The spec snapshot embedded in a fleet manifest's first record."""
    paths = fleet_paths(root)
    for obj in read_jsonl(paths.manifest):
        if obj.get("type") == "fleet-meta":
            return FleetSpec.from_dict(obj["spec"])
    raise ValueError(f"{paths.manifest}: no fleet-meta record")


def shard_summary(result) -> dict:
    """The deterministic projection of one campaign the report merges.

    Wall-clock time, retries and attempt counts are deliberately *not*
    here: the merged fleet report must be byte-identical between an
    uninterrupted sweep and a killed-and-resumed one.
    """
    return {
        "iterations": len(result.iterations),
        "covered": result.covered,
        "total_branches": result.total_branches,
        "reachable": result.reachable_branches,
        "divergences": result.divergences,
        "unique_bugs": sorted([k, loc] for (k, loc) in
                              {b.dedup_key for b in result.bugs}),
    }


def execute_shard(root: Union[str, Path], shard: ShardSpec) -> dict:
    """Run one shard campaign to completion and publish its result file.

    Runs in the worker process, but is also callable inline (the
    benchmark's serial baseline uses it) — it is a pure function of the
    shard spec plus the fleet directory it writes into.
    """
    from ..__main__ import load_target  # lazy: __main__ imports fleet
    from ..core import Compi

    paths = fleet_paths(root)
    heartbeat = HeartbeatMonitor(stale_after=1.0,
                                 dir=str(paths.heartbeats))
    hb_path = heartbeat.path_for(shard.shard_id)
    HeartbeatMonitor.touch(hb_path)

    config = shard.to_config()
    program = load_target(shard.target)
    try:
        strategy = build_strategy(shard.strategy, config, program)
        with Compi(program, config, strategy=strategy) as compi, \
                HeartbeatLog(paths.shard_log(shard.shard_id), hb_path,
                             mode="w") as log:
            result = compi.run(**shard.budget_kwargs(), log=log)
    finally:
        program.unload()

    payload = {
        "shard": shard.shard_id,
        "status": "ok",
        "summary": shard_summary(result),
        # session-local telemetry, excluded from the deterministic report
        "wall_time": result.wall_time,
        "retries": result.retries,
    }
    atomic_write_json(paths.shard_result(shard.shard_id), payload)
    return payload


def run_shard(root: Union[str, Path], shard_id: str) -> int:
    """Worker-process entry: resolve the shard, run it, map the exit code."""
    try:
        spec = load_fleet_spec(root)
        shard = spec.shard(shard_id)
        # the whole worker runs under the fleet's address-space cap, so a
        # runaway shard OOMs alone and classifies as shard-oom
        apply_rlimits(ResourceLimits(max_rss_mb=spec.failure.max_rss_mb))
        execute_shard(root, shard)
        return 0
    except MemoryError:
        # keep the handler allocation-free: no traceback rendering
        sys.stderr.write("shard worker: MemoryError under rlimit cap\n")
        return EXIT_OOM
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL
