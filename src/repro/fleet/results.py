"""The fleet results store: merge shard campaign logs into one report.

Each shard attempt streams a PR-1 campaign log to
``shards/<id>.jsonl``; the results store folds those logs — plus the
manifest's shard statuses — into one aggregate fleet report.

The merge is **deterministic**: shards are always folded in shard-id
order regardless of the order they finished, retried, or resumed in,
and the report carries no wall-clock, attempt, or retry data.  Two
sweeps of the same spec — one uninterrupted, one killed mid-flight and
``fleet resume``-d — therefore render byte-identical reports.  Partial
logs are first-class inputs: a quarantined shard contributes the
torn-tail-tolerant read of its final attempt's log, and bugs it found
before dying still reach the fleet-wide bug list.

Shards still ``pending`` (a sweep interrupted before they finished) are
listed but contribute **no** data — an interrupted sweep's report never
shows half-done work that the uninterrupted sweep would render
differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.persist import load_campaign
from ..core.report import format_table
from .manifest import DONE, FleetState, PENDING, QUARANTINED, fleet_paths


@dataclass(frozen=True)
class ShardReport:
    """One shard's deterministic contribution to the fleet report."""

    shard_id: str
    target: str
    strategy: str
    nprocs: int
    status: str
    #: iterations recorded in the shard's campaign log
    iterations: int = 0
    covered: int = 0
    total_branches: int = 0
    #: reachable-branch estimate; only a *finished* campaign records it
    reachable: Optional[int] = None
    #: sorted unique (kind, location) bug keys from this shard's log
    unique_bugs: tuple = ()
    has_log: bool = False
    #: sorted (site, outcome) branch pairs this shard covered — the raw
    #: material of the fleet-wide per-target coverage union
    cov_branches: tuple = ()

    def as_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "target": self.target,
            "strategy": self.strategy,
            "nprocs": self.nprocs,
            "status": self.status,
            "iterations": self.iterations,
            "covered": self.covered,
            "total_branches": self.total_branches,
            "reachable": self.reachable,
            "unique_bugs": [list(k) for k in self.unique_bugs],
            "has_log": self.has_log,
        }


@dataclass(frozen=True)
class FleetReport:
    """The merged sweep: per-shard rows plus fleet-wide aggregates."""

    fleet: str
    shards: tuple

    def counts(self) -> dict:
        out = {PENDING: 0, DONE: 0, QUARANTINED: 0}
        for sh in self.shards:
            out[sh.status] = out.get(sh.status, 0) + 1
        return out

    @property
    def total_iterations(self) -> int:
        return sum(sh.iterations for sh in self.shards)

    @property
    def fleet_bugs(self) -> list:
        """Unique (target, kind, location) triples across every shard.

        The cross-shard dedup is what makes overlapping shards (same
        target under several strategies/rank counts) merge cleanly: a
        bug three shards all hit is one fleet-level bug.
        """
        seen = set()
        for sh in self.shards:
            for kind, loc in sh.unique_bugs:
                seen.add((sh.target, kind, loc))
        return sorted(seen)

    def coverage_union(self) -> dict:
        """Per-target union of covered (site, outcome) branch pairs.

        Shards of one target under different strategies, rank counts or
        seeds explore different corners of the execution tree; their
        union is the fleet's real coverage headroom over any single
        campaign.  Only shards that contributed a log count — pending
        shards stay invisible here exactly as they do everywhere else.
        """
        union: dict = {}
        for sh in self.shards:
            if sh.has_log:
                union.setdefault(sh.target, set()).update(sh.cov_branches)
        return {t: tuple(sorted(pairs)) for t, pairs in sorted(union.items())}

    def coverage_rows(self) -> list[list]:
        """[target, shards-with-logs, union, best-single-shard, headroom]
        rows for the ``--coverage`` report section."""
        union = self.coverage_union()
        rows = []
        for target, pairs in union.items():
            contributing = [sh for sh in self.shards
                            if sh.target == target and sh.has_log]
            best = max((sh.covered for sh in contributing), default=0)
            rows.append([target, len(contributing), len(pairs), best,
                         len(pairs) - best])
        return rows

    def as_dict(self) -> dict:
        return {
            "fleet": self.fleet,
            "counts": self.counts(),
            "total_iterations": self.total_iterations,
            "fleet_bugs": [list(t) for t in self.fleet_bugs],
            "coverage_union": {t: len(p)
                               for t, p in self.coverage_union().items()},
            "shards": [sh.as_dict() for sh in self.shards],
        }


# ----------------------------------------------------------------------


def _shard_report_from_log(shard, status: str, log_path) -> ShardReport:
    """Fold one shard's campaign log (possibly partial, possibly absent)."""
    base = dict(shard_id=shard.shard_id, target=shard.target,
                strategy=shard.strategy, nprocs=shard.nprocs, status=status)
    if status == PENDING or not log_path.exists():
        # pending shards contribute nothing even if a killed attempt
        # left a partial log — their data is not part of the sweep yet
        return ShardReport(**base)
    data = load_campaign(log_path)
    meta = data["meta"] or {}
    coverage = data["coverage"]
    if coverage is not None:
        covered = len(coverage["branches"])
        reachable = coverage.get("reachable")
    else:
        # partial log: the per-iteration coverage deltas still tell us
        # what the attempt covered before it died
        covered = len(data["cov_branches"])
        reachable = None
    unique = tuple(sorted({b.dedup_key for b in data["bugs"]}))
    # cov_branches accumulates per-iteration deltas plus the final
    # coverage record, so partial and finished logs rank equally here
    pairs = tuple(sorted((s, int(d)) for s, d in data["cov_branches"]))
    return ShardReport(
        iterations=len(data["iterations"]), covered=covered,
        total_branches=int(meta.get("total_branches", 0)),
        reachable=reachable, unique_bugs=unique, has_log=True,
        cov_branches=pairs, **base)


def merge_results(root, state: FleetState) -> FleetReport:
    """Merge every shard's log into the deterministic fleet report."""
    paths = fleet_paths(root)
    rows = []
    for sid in sorted(state.shard_ids()):
        shard = state.spec.shard(sid)
        rows.append(_shard_report_from_log(
            shard, state.shards[sid].status, paths.shard_log(sid)))
    return FleetReport(fleet=state.spec.name, shards=tuple(rows))


# ----------------------------------------------------------------------
# rendering


def report_text(report: FleetReport, with_coverage: bool = False) -> str:
    """Render the merged report (deterministic: no times, no attempts).

    ``with_coverage`` appends the per-target branch-coverage union
    section (``repro fleet report --coverage``): how many distinct
    branches the whole sweep covered per target, the best any single
    shard managed, and the headroom the union buys over it.
    """
    headers = ["shard", "status", "iters", "cov", "total", "reach", "bugs"]
    rows = []
    for sh in report.shards:
        rows.append([
            sh.shard_id, sh.status, sh.iterations, sh.covered,
            sh.total_branches,
            "-" if sh.reachable is None else sh.reachable,
            len(sh.unique_bugs),
        ])
    counts = report.counts()
    lines = [
        format_table(headers, rows, title=f"fleet report: {report.fleet}"),
        "",
        (f"shards: {len(report.shards)} "
         f"({counts[DONE]} done, {counts[QUARANTINED]} quarantined, "
         f"{counts[PENDING]} pending)"),
        f"iterations: {report.total_iterations}",
        f"fleet-wide unique bugs: {len(report.fleet_bugs)}",
    ]
    for target, kind, loc in report.fleet_bugs:
        lines.append(f"  {target}: {kind} @ {loc}")
    if with_coverage:
        lines += ["", format_table(
            ["target", "shards", "union", "best shard", "headroom"],
            report.coverage_rows(),
            title="coverage union across shards")]
    return "\n".join(lines) + "\n"


def status_text(state: FleetState) -> str:
    """Render the live sweep status (attempts/failures ARE shown here —
    this is the operator view, not the deterministic report)."""
    headers = ["shard", "status", "attempts", "failures", "last failure"]
    rows = []
    for sid in state.shard_ids():
        st = state.shards[sid]
        last = f"{st.last_kind}: {st.last_detail}"[:60] if st.last_kind \
            else "-"
        rows.append([sid, st.status, st.attempts, st.failures, last])
    counts = state.counts()
    lines = [
        format_table(headers, rows,
                     title=f"fleet status: {state.spec.name}"),
        "",
        (f"{counts[DONE]} done, {counts[QUARANTINED]} quarantined, "
         f"{counts[PENDING]} pending"),
    ]
    orphans = state.orphan_pids()
    if orphans:
        lines.append(f"in-flight/orphaned worker pids: "
                     f"{sorted(orphans)}")
    pool = state.pool
    if pool.spawns or state.spec.pool.warm:
        breaker = "OPEN (degraded to cold spawn)" if pool.breaker_open \
            else "closed"
        lines.append(f"pool: {pool.alive} alive, {len(pool.leased)} "
                     f"leased, {pool.spawns} spawned, {pool.recycled} "
                     f"recycled, breaker {breaker}")
        if pool.leased:
            lines.append(f"pool leases: {', '.join(pool.leased)}")
    return "\n".join(lines) + "\n"
