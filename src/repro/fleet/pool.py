"""The warm worker pool: persistent shard workers with supervised leases.

PR 6's fleet pays a fresh ``repro fleet worker`` process — roughly a
second of interpreter startup and imports — for *every shard attempt*.
This module keeps a pool of long-lived ``repro fleet workerd`` daemons
alive across shards instead, talking to each over a length-prefixed
JSON request/response protocol on its stdin/stdout pipe.

Warm reuse is only sound because a shard campaign is a pure function of
its spec plus the fleet directory (:func:`~repro.fleet.worker
.execute_shard` re-instruments its target per shard and unloads it
after, and the instrumentation contract guarantees identical site
registries across loads — the serial benchmark baseline has always run
shards back-to-back in one process and matched the fleet).  The
determinism bar is therefore absolute: a warm-pool sweep's merged
report must be byte-identical to a cold-spawn sweep of the same spec.

Robustness is the core of the design, ported up from the PR-5
supervision layer:

* **leases** — a shard dispatched to a warm worker holds a lease; the
  scheduler supervises it with the same deadline + heartbeat-wedge
  machinery as cold workers, and an expired lease SIGKILLs the worker
  and reclassifies the shard with the existing ``shard-timeout`` /
  ``shard-crash`` kinds, to be retried on a fresh worker;
* **recycling** — a worker is retired after ``pool.recycle_tasks``
  shards or when its post-shard RSS self-check exceeds
  ``pool.max_rss_mb`` (state-leak hygiene), and after any failed shard;
* **graceful drain** — workers finish the in-flight shard, publish its
  ``result.json`` atomically, and exit 0 on SIGTERM/SIGINT or an
  ``exit`` frame;
* **circuit breaker** — repeated *pool* failures (spawn/handshake
  failures, idle worker deaths, protocol violations — a worker dying
  under a lease is the shard's failure, not the pool's) permanently
  degrade the sweep to the existing cold-spawn path;
* **resume safety** — every spawn/exit/breaker transition is a
  manifest record, so ``repro fleet resume`` SIGKILLs orphaned warm
  workers exactly as it kills orphaned cold workers.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

from .manifest import (FleetManifest, FleetPaths, POOL_CRASH, POOL_DRAIN,
                       POOL_KILL, POOL_RECYCLE, POOL_SPAWN_FAILED)
from .spec import PoolPolicy

#: protocol version exchanged in the ``hello`` handshake; a daemon
#: speaking a different version is a pool failure (degrade, don't guess)
PROTO_VERSION = 1

#: hard cap on one frame's payload — a corrupted length prefix must not
#: make the reader try to allocate gigabytes
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame on a worker pipe (corrupted or wrong speaker)."""


# ----------------------------------------------------------------------
# framing, shared by the async scheduler side and the blocking workerd
# side: 4-byte big-endian length prefix + UTF-8 JSON payload


def write_frame(fh, obj: dict) -> None:
    """Write one frame to a blocking binary file object and flush it."""
    data = json.dumps(obj, sort_keys=True).encode("utf-8")
    fh.write(_HEADER.pack(len(data)) + data)
    fh.flush()


def read_frame(fh) -> Optional[dict]:
    """Read one frame from a blocking binary file object.

    Returns ``None`` on a clean or torn EOF (the peer is gone — the
    caller classifies); raises :class:`ProtocolError` on a frame that
    cannot be a frame (oversized length, undecodable payload).
    """
    head = fh.read(_HEADER.size)
    if len(head) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME}")
    data = b""
    while len(data) < length:
        chunk = fh.read(length - len(data))
        if not chunk:
            return None
        data += chunk
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[dict]:
    """The asyncio twin of :func:`read_frame` (scheduler side).

    Safe to wrap in ``asyncio.wait_for`` and retry: a cancelled
    ``readexactly`` leaves already-buffered bytes in the stream.
    """
    try:
        head = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(head)
        if length > MAX_FRAME:
            raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME}")
        data = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError,
            BrokenPipeError):
        return None
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


# ----------------------------------------------------------------------


class WarmWorker:
    """One live ``workerd`` daemon and its bookkeeping."""

    def __init__(self, wid: int, proc: asyncio.subprocess.Process):
        self.wid = wid
        self.proc = proc
        #: shards completed (successfully or not) on this worker,
        #: reported back by the worker's own post-shard self-check
        self.tasks_done = 0
        #: post-shard RSS self-check, KB (0 until the first shard)
        self.rss_kb = 0

    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc.returncode is None


class WarmPool:
    """A supervised pool of persistent shard workers.

    The scheduler asks for a worker per attempt (:meth:`try_acquire`),
    runs the shard over the worker's pipe, and hands the worker back
    (:meth:`release`) or reports its death (:meth:`reap`).  The pool
    decides spawning, recycling, and — after repeated pool-level
    failures — opening the circuit breaker, which permanently sends
    every later attempt down the cold-spawn path.
    """

    #: spawn-retry suppression window after a failed spawn, seconds
    #: (attempts inside it go cold; the breaker handles repetition)
    SPAWN_BACKOFF_S = 1.0

    def __init__(self, paths: FleetPaths, policy: PoolPolicy,
                 manifest: Optional[FleetManifest], env: dict,
                 echo=None):
        self.paths = paths
        self.policy = policy
        self.manifest = manifest
        self.env = env
        self.echo = echo or (lambda msg: None)
        self._next_wid = 0
        self._idle: list[WarmWorker] = []
        self._live: dict[int, WarmWorker] = {}
        self._failures = 0
        self.breaker_open = False
        self._closed = False
        #: monotonic deadline before which spawning is suppressed after
        #: a spawn failure (simple backoff; breaker handles repetition)
        self._spawn_backoff_until = 0.0
        #: telemetry for the echo stream and tests
        self.spawned = 0
        self.recycled = 0

    # ------------------------------------------------------------------
    # acquire / release

    async def try_acquire(self) -> Optional[WarmWorker]:
        """An idle warm worker, a freshly spawned one, or ``None``.

        ``None`` means "use the cold path for this attempt": the
        breaker is open, the pool is closed or at capacity, or a spawn
        just failed (counted toward the breaker).
        """
        if self.breaker_open or self._closed:
            return None
        while self._idle:
            worker = self._idle.pop(0)
            if worker.alive:
                return worker
            # an idle worker died on its own: nothing was leased to it,
            # so this is the pool's failure, not any shard's
            await self._reap_dead(worker, POOL_CRASH)
            self._pool_failure(f"idle worker {worker.wid} "
                               f"(pid {worker.pid}) died")
        if len(self._live) >= max(1, self.policy.warm):
            return None
        loop = asyncio.get_running_loop()
        if loop.time() < self._spawn_backoff_until:
            return None
        worker = await self._spawn()
        if worker is None:
            self._spawn_backoff_until = loop.time() + self.SPAWN_BACKOFF_S
        return worker

    async def release(self, worker: WarmWorker, response: dict,
                      failed: bool = False) -> None:
        """Hand a worker back after its lease; recycle when due.

        Recycling fires on the task-count budget, the RSS self-check
        threshold, a worker that announced it is exiting (e.g. after an
        OOM response), or — hygiene — any failed shard.
        """
        worker.tasks_done = int(response.get("tasks_done",
                                             worker.tasks_done + 1))
        worker.rss_kb = int(response.get("rss_kb", 0))
        reason = None
        if failed or response.get("will_exit"):
            reason = "post-failure hygiene"
        elif worker.tasks_done >= self.policy.recycle_tasks:
            reason = f"task budget ({worker.tasks_done} shards)"
        elif (self.policy.max_rss_mb is not None
                and worker.rss_kb > self.policy.max_rss_mb * 1024):
            reason = (f"rss {worker.rss_kb // 1024} MB > "
                      f"{self.policy.max_rss_mb} MB")
        if reason is not None:
            self.echo(f"  pool: recycling worker {worker.wid} ({reason})")
            await self._retire(worker, POOL_RECYCLE)
            self.recycled += 1
        else:
            self._idle.append(worker)

    async def reap(self, worker: WarmWorker, reason: str) -> None:
        """A leased worker died or was killed — drop it from the pool.

        Lease deaths are charged to the *shard* (the scheduler records
        the ``shard-crash``/``shard-timeout``); they do not move the
        pool's circuit breaker.
        """
        if reason == POOL_KILL:
            await self._kill(worker)
        await self._reap_dead(worker, reason)

    def available(self) -> bool:
        return not (self.breaker_open or self._closed)

    def protocol_violation(self, detail: str) -> None:
        """A worker spoke garbage — the pool's failure, breaker-counted."""
        self._pool_failure(f"protocol violation: {detail}")

    def live_count(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # lifecycle internals

    def _argv(self, wid: int) -> list:
        """The workerd command line (a seam the breaker tests override)."""
        import sys
        return [sys.executable, "-m", "repro", "fleet", "workerd",
                "--dir", str(self.paths.root), "--worker", str(wid)]

    async def _spawn(self) -> Optional[WarmWorker]:
        wid = self._next_wid
        self._next_wid += 1
        out = self.paths.pool_output(wid).open("wb")
        try:
            proc = await asyncio.create_subprocess_exec(
                *self._argv(wid),
                stdin=asyncio.subprocess.PIPE,
                stdout=asyncio.subprocess.PIPE,
                stderr=out, env=self.env)
        except OSError as exc:
            self._pool_failure(f"spawn of worker {wid} failed: {exc!r}")
            return None
        finally:
            out.close()
        worker = WarmWorker(wid, proc)
        try:
            hello = await asyncio.wait_for(
                read_frame_async(proc.stdout),
                timeout=self.policy.spawn_timeout)
        except (asyncio.TimeoutError, ProtocolError) as exc:
            await self._kill(worker)
            self._pool_failure(f"worker {wid} handshake failed: {exc!r}")
            if self.manifest is not None:
                self.manifest.pool_exit(wid, proc.pid, POOL_SPAWN_FAILED)
            return None
        if (hello is None or hello.get("type") != "hello"
                or hello.get("proto") != PROTO_VERSION):
            await self._kill(worker)
            self._pool_failure(f"worker {wid} bad hello: {hello!r}")
            if self.manifest is not None:
                self.manifest.pool_exit(wid, proc.pid, POOL_SPAWN_FAILED)
            return None
        self._live[wid] = worker
        self.spawned += 1
        if self.manifest is not None:
            self.manifest.pool_spawn(wid, proc.pid)
        self.echo(f"  pool: spawned warm worker {wid} (pid {proc.pid})")
        return worker

    async def _retire(self, worker: WarmWorker, reason: str) -> None:
        """Politely stop an idle worker: exit frame, grace, then kill."""
        try:
            write_frame(_StreamWriterFile(worker.proc.stdin), {"type": "exit"})
        except (OSError, AttributeError, RuntimeError):
            pass
        try:
            await asyncio.wait_for(worker.proc.wait(),
                                   timeout=self.policy.drain_grace)
        except asyncio.TimeoutError:
            await self._kill(worker)
        await self._reap_dead(worker, reason)

    async def _kill(self, worker: WarmWorker) -> None:
        try:
            worker.proc.kill()
        except ProcessLookupError:
            pass
        try:
            await worker.proc.wait()
        except Exception:  # pragma: no cover - already reaped
            pass

    async def _reap_dead(self, worker: WarmWorker, reason: str) -> None:
        if worker.proc.returncode is None:
            await self._kill(worker)
        if self._live.pop(worker.wid, None) is not None \
                and self.manifest is not None:
            self.manifest.pool_exit(worker.wid, worker.pid, reason)

    def _pool_failure(self, detail: str) -> None:
        self._failures += 1
        self.echo(f"  pool: failure {self._failures}/"
                  f"{self.policy.breaker}: {detail}")
        if not self.breaker_open and self._failures >= self.policy.breaker:
            self.breaker_open = True
            if self.manifest is not None:
                self.manifest.pool_breaker(self._failures, detail)
            self.echo("  pool: circuit breaker OPEN — degrading to cold "
                      "spawn for the rest of the sweep")

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain idle workers, kill anything else; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in list(self._idle):
            if worker.alive:
                await self._retire(worker, POOL_DRAIN)
            else:
                await self._reap_dead(worker, POOL_CRASH)
        self._idle.clear()
        # anything still live was leased when the sweep stopped — a
        # warm worker must never outlive its scheduler (it would race
        # the next resume for shard logs, like any orphan)
        for worker in list(self._live.values()):
            await self.reap(worker, POOL_KILL)


class _StreamWriterFile:
    """Adapt an asyncio StreamWriter to the blocking write_frame shape.

    Writes land in the transport buffer immediately (StreamWriter.write
    is synchronous); request frames are tiny, so the buffer never needs
    an explicit drain before the worker can read them.
    """

    def __init__(self, writer):
        self._writer = writer

    def write(self, data: bytes) -> None:
        if self._writer is None:
            raise OSError("worker stdin is gone")
        self._writer.write(data)

    def flush(self) -> None:
        pass


def send_request(worker: WarmWorker, obj: dict) -> None:
    """Send one request frame to a warm worker (scheduler side).

    Raises ``OSError`` when the pipe is already closed — the caller
    treats that exactly like a worker death at lease start.
    """
    if worker.proc.stdin is None:
        raise OSError("worker stdin is gone")
    if worker.proc.stdin.is_closing():
        raise OSError("worker stdin is closing")
    write_frame(_StreamWriterFile(worker.proc.stdin), obj)
