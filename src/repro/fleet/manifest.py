"""The fleet manifest: a crash-safe ledger of shard lifecycle events.

One append-only JSONL file per sweep (``<fleet>/manifest.jsonl``),
written through :class:`~repro.core.atomicio.JsonlAppender` with a
per-record fsync — the same discipline as the PR-1 campaign log, at the
fleet level.  Record types, discriminated by ``"type"``:

* ``fleet-meta``        — spec snapshot + expanded shard IDs (first line)
* ``shard-start``       — one attempt dispatched (shard, attempt, pid;
  plus ``pool_worker`` when the attempt ran on a warm worker)
* ``shard-done``        — attempt completed; deterministic summary
* ``shard-fail``        — attempt failed: ``shard-crash`` /
  ``shard-timeout`` / ``shard-oom`` / ``shard-error``
* ``shard-quarantine``  — retry budget exhausted; the shard is poisoned
* ``pool-spawn``        — one warm worker daemon came up (worker, pid)
* ``pool-exit``         — a warm worker left the pool: ``recycle`` /
  ``drain`` / ``crash`` / ``kill`` / ``spawn-failed``
* ``pool-breaker``      — the pool circuit breaker opened; every later
  attempt of this sweep cold-spawns

Crash semantics: a sweep killed at any instruction leaves a readable
manifest — the reader tolerates a torn final line, and every record is
fsync'd before the action it describes is *relied upon* (a shard is
only skipped on resume if its ``shard-done``/``shard-quarantine`` made
it to disk).  A ``shard-start`` without a matching terminal record
marks an attempt that was in flight when the fleet died: resume counts
it as never having happened (it produced no verdict) and re-runs the
shard, after killing any orphaned worker the dead fleet left behind.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.atomicio import JsonlAppender, read_jsonl
from .spec import FleetSpec

MANIFEST_NAME = "manifest.jsonl"

#: fleet-level outcome kinds of one failed shard attempt
SHARD_CRASH = "shard-crash"
SHARD_TIMEOUT = "shard-timeout"
SHARD_OOM = "shard-oom"
SHARD_ERROR = "shard-error"
SHARD_FAIL_KINDS = (SHARD_CRASH, SHARD_TIMEOUT, SHARD_OOM, SHARD_ERROR)

#: shard statuses derived from the manifest
PENDING = "pending"
DONE = "done"
QUARANTINED = "quarantined"

#: reasons a warm worker leaves the pool (``pool-exit`` records)
POOL_RECYCLE = "recycle"
POOL_DRAIN = "drain"
POOL_CRASH = "crash"
POOL_KILL = "kill"
POOL_SPAWN_FAILED = "spawn-failed"
POOL_EXIT_REASONS = (POOL_RECYCLE, POOL_DRAIN, POOL_CRASH, POOL_KILL,
                     POOL_SPAWN_FAILED)


@dataclass
class FleetPaths:
    """Filesystem layout of one fleet directory."""

    root: Path

    @property
    def manifest(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shards(self) -> Path:
        return self.root / "shards"

    @property
    def heartbeats(self) -> Path:
        return self.root / "heartbeats"

    def shard_log(self, shard_id: str) -> Path:
        return self.shards / f"{shard_id}.jsonl"

    def shard_result(self, shard_id: str) -> Path:
        return self.shards / f"{shard_id}.result.json"

    def shard_output(self, shard_id: str) -> Path:
        return self.shards / f"{shard_id}.output"

    @property
    def pool(self) -> Path:
        return self.root / "pool"

    def pool_output(self, worker_id: int) -> Path:
        return self.pool / f"workerd-{worker_id}.output"

    def ensure(self) -> "FleetPaths":
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards.mkdir(exist_ok=True)
        self.heartbeats.mkdir(exist_ok=True)
        self.pool.mkdir(exist_ok=True)
        return self


def fleet_paths(root: Union[str, Path]) -> FleetPaths:
    return FleetPaths(Path(root))


class FleetManifest:
    """Streaming writer for the fleet ledger (one open appender)."""

    def __init__(self, paths: FleetPaths, mode: str = "a"):
        # every record is fsync'd: manifest writes are rare (per shard
        # attempt, not per iteration) and each one gates resume behavior
        self._appender = JsonlAppender(paths.manifest, mode=mode,
                                       fsync_every=1)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, paths: FleetPaths, spec: FleetSpec,
               overwrite: bool = False) -> "FleetManifest":
        """Start a fresh sweep: layout + the ``fleet-meta`` first record."""
        paths.ensure()
        manifest = cls(paths, mode="w" if overwrite else "x")
        manifest._appender.open()
        manifest._write({
            "type": "fleet-meta", "fleet": spec.name,
            "spec": spec.as_dict(),
            "shards": [sh.shard_id for sh in spec.expand()],
        })
        return manifest

    @classmethod
    def open_append(cls, paths: FleetPaths) -> "FleetManifest":
        """Append to an existing sweep's manifest (resume)."""
        if not paths.manifest.exists():
            raise FileNotFoundError(f"no fleet manifest at {paths.manifest}")
        manifest = cls(paths, mode="a")
        manifest._appender.open()
        return manifest

    # ------------------------------------------------------------------
    def _write(self, obj: dict) -> None:
        self._appender.write(obj)

    def shard_start(self, shard_id: str, attempt: int, pid: int,
                    pool_worker: Optional[int] = None) -> None:
        rec = {"type": "shard-start", "shard": shard_id,
               "attempt": attempt, "pid": pid, "ts": time.time()}
        if pool_worker is not None:
            rec["pool_worker"] = pool_worker
        self._write(rec)

    def shard_done(self, shard_id: str, attempt: int, summary: dict) -> None:
        self._write({"type": "shard-done", "shard": shard_id,
                     "attempt": attempt, "summary": summary,
                     "ts": time.time()})

    def shard_fail(self, shard_id: str, attempt: int, kind: str,
                   detail: str) -> None:
        assert kind in SHARD_FAIL_KINDS, kind
        self._write({"type": "shard-fail", "shard": shard_id,
                     "attempt": attempt, "kind": kind, "detail": detail,
                     "ts": time.time()})

    def shard_quarantine(self, shard_id: str, failures: int, kind: str,
                         detail: str) -> None:
        self._write({"type": "shard-quarantine", "shard": shard_id,
                     "failures": failures, "kind": kind, "detail": detail,
                     "ts": time.time()})

    # -- warm-pool lifecycle (see repro.fleet.pool) --------------------

    def pool_spawn(self, worker: int, pid: int) -> None:
        self._write({"type": "pool-spawn", "worker": worker, "pid": pid,
                     "ts": time.time()})

    def pool_exit(self, worker: int, pid: int, reason: str) -> None:
        assert reason in POOL_EXIT_REASONS, reason
        self._write({"type": "pool-exit", "worker": worker, "pid": pid,
                     "reason": reason, "ts": time.time()})

    def pool_breaker(self, failures: int, detail: str) -> None:
        self._write({"type": "pool-breaker", "failures": failures,
                     "detail": detail, "ts": time.time()})

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "FleetManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# reload


@dataclass
class ShardState:
    """Everything the manifest knows about one shard."""

    shard_id: str
    status: str = PENDING
    #: completed failed attempts (carried across resumes)
    failures: int = 0
    #: completed successful attempts (0 or 1)
    completions: int = 0
    last_kind: str = ""
    last_detail: str = ""
    summary: Optional[dict] = None
    #: pids of attempts started but never finished (orphans of a dead
    #: fleet process; resume kills them before re-dispatching)
    inflight_pids: list = field(default_factory=list)

    @property
    def attempts(self) -> int:
        return self.failures + self.completions


@dataclass
class PoolState:
    """Everything the manifest knows about the sweep's warm pool."""

    #: workers ever spawned (pool-spawn records)
    spawns: int = 0
    #: pool-exit reason → count
    exits: dict = field(default_factory=dict)
    #: worker id → pid of workers with a spawn but no exit record —
    #: alive in a running sweep, orphans of a dead one
    live: dict = field(default_factory=dict)
    #: shard ids currently leased to a warm worker (open shard-starts
    #: carrying a ``pool_worker`` field)
    leased: list = field(default_factory=list)
    breaker_open: bool = False

    @property
    def recycled(self) -> int:
        return self.exits.get("recycle", 0)

    @property
    def alive(self) -> int:
        return len(self.live)


@dataclass
class FleetState:
    """The sweep reconstructed from its manifest (resume's world view)."""

    spec: FleetSpec
    shards: dict[str, ShardState]
    pool: PoolState = field(default_factory=PoolState)

    def shard_ids(self) -> list[str]:
        return [sh.shard_id for sh in self.spec.expand()]

    def incomplete(self) -> list[str]:
        """Shards resume must (re-)dispatch, in expansion order."""
        return [sid for sid in self.shard_ids()
                if self.shards[sid].status == PENDING]

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, DONE: 0, QUARANTINED: 0}
        for sid in self.shard_ids():
            out[self.shards[sid].status] += 1
        return out

    def orphan_pids(self) -> list[int]:
        """Pids a dead fleet may have left running: in-flight attempt
        workers plus live warm-pool daemons (deduplicated — a leased
        warm worker appears in both ledgers)."""
        pids = [pid for sid in self.shard_ids()
                for pid in self.shards[sid].inflight_pids]
        pids += list(self.pool.live.values())
        return list(dict.fromkeys(pids))


def load_state(root: Union[str, Path]) -> FleetState:
    """Rebuild the sweep state from the manifest, tolerating a torn tail."""
    paths = fleet_paths(root)
    if not paths.manifest.exists():
        raise FileNotFoundError(f"no fleet manifest at {paths.manifest}")
    spec: Optional[FleetSpec] = None
    shards: dict[str, ShardState] = {}
    open_starts: dict[str, list[int]] = {}
    open_leases: dict[str, int] = {}
    pool = PoolState()
    for obj in read_jsonl(paths.manifest):
        kind = obj.get("type")
        if kind == "fleet-meta":
            spec = FleetSpec.from_dict(obj["spec"])
            for sid in obj["shards"]:
                shards[sid] = ShardState(shard_id=sid)
        elif kind == "shard-start":
            st = shards.setdefault(obj["shard"],
                                   ShardState(shard_id=obj["shard"]))
            open_starts.setdefault(obj["shard"], []).append(obj.get("pid", 0))
            if obj.get("pool_worker") is not None:
                open_leases[obj["shard"]] = obj["pool_worker"]
            else:
                open_leases.pop(obj["shard"], None)
        elif kind == "pool-spawn":
            pool.spawns += 1
            pool.live[obj["worker"]] = obj.get("pid", 0)
        elif kind == "pool-exit":
            reason = obj.get("reason", "?")
            pool.exits[reason] = pool.exits.get(reason, 0) + 1
            pool.live.pop(obj["worker"], None)
        elif kind == "pool-breaker":
            pool.breaker_open = True
        elif kind == "shard-done":
            st = shards.setdefault(obj["shard"],
                                   ShardState(shard_id=obj["shard"]))
            st.status = DONE
            st.completions += 1
            st.summary = obj.get("summary")
            open_starts.pop(obj["shard"], None)
            open_leases.pop(obj["shard"], None)
        elif kind == "shard-fail":
            st = shards.setdefault(obj["shard"],
                                   ShardState(shard_id=obj["shard"]))
            st.failures += 1
            st.last_kind = obj.get("kind", "")
            st.last_detail = obj.get("detail", "")
            open_starts.pop(obj["shard"], None)
            open_leases.pop(obj["shard"], None)
        elif kind == "shard-quarantine":
            st = shards.setdefault(obj["shard"],
                                   ShardState(shard_id=obj["shard"]))
            st.status = QUARANTINED
            st.last_kind = obj.get("kind", st.last_kind)
            st.last_detail = obj.get("detail", st.last_detail)
            open_starts.pop(obj["shard"], None)
            open_leases.pop(obj["shard"], None)
        # unknown types: forward compatibility — skip
    pool.leased = sorted(open_leases)
    if spec is None:
        raise ValueError(f"{paths.manifest}: no fleet-meta record "
                         f"(not a fleet manifest, or its first write was "
                         f"torn)")
    for sid, pids in open_starts.items():
        if shards[sid].status == PENDING:
            shards[sid].inflight_pids = [p for p in pids if p > 0]
    return FleetState(spec=spec, shards=shards, pool=pool)


def kill_orphans(state: FleetState) -> int:
    """SIGKILL workers a dead fleet left running (best effort).

    Without this, a resumed sweep and a leftover orphan could both write
    one shard's campaign log.  Returns the number of processes signalled.
    """
    killed = 0
    for pid in state.orphan_pids():
        try:
            os.kill(pid, signal.SIGKILL)
            killed += 1
        except (OSError, ProcessLookupError):
            continue
    if killed:
        time.sleep(0.2)  # give the kernel a beat to tear them down
    return killed
