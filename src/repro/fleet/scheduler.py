"""The async fleet scheduler: supervised shard dispatch with retry,
backoff, and quarantine.

One :class:`FleetScheduler` drives one sweep session (fresh or resumed).
Shards run as disposable worker processes (``repro fleet worker``) — or,
with a warm pool configured (``--warm-pool`` / spec ``pool.warm``), as
**leases** on persistent ``repro fleet workerd`` daemons (see
:mod:`repro.fleet.pool`) — at most ``spec.workers`` concurrently; the
scheduler is a single-threaded asyncio loop that supervises them:

* a worker that exits nonzero, dies to a signal, overruns the shard
  timeout, or wedges (heartbeat staleness via the supervision era's
  :class:`~repro.supervise.pool.HeartbeatMonitor`) fails the attempt
  with a distinct kind — ``shard-crash`` / ``shard-timeout`` /
  ``shard-oom`` / ``shard-error``;
* failed shards retry after an exponential backoff with deterministic
  per-shard jitter (seeded from the fleet seed + shard id, so two runs
  of the same spec back off identically);
* a shard that fails ``max_failures`` times — counted across resumes,
  because failures are manifest records — is **quarantined**: recorded,
  skipped by every later resume, and its partial campaign log is left
  for the results store;
* every failure is contained: a crashing shard never takes down the
  scheduler or its sibling shards (process isolation plus a per-task
  exception firewall).

Crash safety is the manifest's job; the scheduler's job is to only act
on fsync'd facts — an attempt is recorded started before its outcome
can be recorded, and a shard is only skipped on resume if its terminal
record reached disk.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import random
import signal
import sys
from typing import Optional

from ..supervise import HeartbeatMonitor
from .manifest import (DONE, FleetManifest, FleetState, POOL_CRASH,
                       POOL_KILL, QUARANTINED, SHARD_CRASH, SHARD_ERROR,
                       SHARD_OOM, SHARD_TIMEOUT, fleet_paths)
from .pool import ProtocolError, WarmPool, read_frame_async, send_request
from .spec import ShardSpec
from .worker import EXIT_INTERNAL, EXIT_OOM

#: how often a waiting supervisor re-checks deadlines and stop requests
_POLL_S = 0.25


class FleetScheduler:
    """Dispatch the incomplete shards of one sweep until each is done or
    quarantined (or a test-only stop fires)."""

    def __init__(self, root, state: FleetState, manifest: FleetManifest,
                 workers: Optional[int] = None,
                 stop_after_shards: Optional[int] = None,
                 warm_pool: Optional[int] = None,
                 pool_recycle_tasks: Optional[int] = None,
                 pool_max_rss: Optional[int] = None,
                 echo=None):
        self.paths = fleet_paths(root)
        self.state = state
        self.manifest = manifest
        self.spec = state.spec
        self.policy = state.spec.failure
        self.workers = max(1, workers or state.spec.workers)
        #: test hook: abort the sweep (as a crash would) after this many
        #: shards reach a terminal state, leaving the rest incomplete
        self.stop_after_shards = stop_after_shards
        self.echo = echo or (lambda msg: None)
        self._monitor = HeartbeatMonitor(
            stale_after=self.policy.wedge_grace or 60.0,
            dir=str(self.paths.heartbeats))
        self._stop = False
        self._terminal = 0
        self._procs: dict[str, asyncio.subprocess.Process] = {}
        # CLI flags override the spec's pool policy field by field
        pp = state.spec.pool
        if warm_pool is not None:
            pp = dataclasses.replace(pp, warm=warm_pool)
        if pool_recycle_tasks is not None:
            pp = dataclasses.replace(pp, recycle_tasks=pool_recycle_tasks)
        if pool_max_rss is not None:
            pp = dataclasses.replace(pp, max_rss_mb=pool_max_rss)
        self.pool_policy = pp
        self._pool: Optional[WarmPool] = None
        if pp.warm > 0:
            self._pool = WarmPool(self.paths, pp, manifest,
                                  env=self._worker_env(), echo=self.echo)

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Drive the sweep to completion; returns the final status counts."""
        return asyncio.run(self._drive())

    async def _drive(self) -> dict:
        todo = [self.spec.shard(sid) for sid in self.state.incomplete()]
        self.echo(f"fleet: {len(todo)} shard(s) to run, "
                  f"{self.workers} concurrent")
        sem = asyncio.Semaphore(self.workers)
        tasks = [asyncio.create_task(self._shard_task(sem, shard))
                 for shard in todo]
        try:
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await self._kill_outstanding()
            if self._pool is not None:
                await self._pool.close()
        for shard, res in zip(todo, results):
            if isinstance(res, BaseException):
                # the per-task firewall failed — record the failure so
                # the sweep state stays honest, then keep going
                self._record_failure(shard, SHARD_ERROR,
                                     f"scheduler task died: {res!r}")
        counts = self.state.counts()
        counts["stopped"] = self._stop
        return counts

    # ------------------------------------------------------------------
    async def _shard_task(self, sem: asyncio.Semaphore,
                          shard: ShardSpec) -> None:
        """The supervised retry loop of one shard (exception-firewalled)."""
        sid = shard.shard_id
        jitter_rng = random.Random(f"{self.spec.seed}:{sid}")
        async with sem:
            while not self._stop:
                try:
                    outcome = await self._attempt(shard)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    outcome = (SHARD_ERROR, f"dispatch failed: {exc!r}")
                if outcome is None:          # stop fired mid-attempt
                    return
                kind, payload = outcome
                if kind == "ok":
                    st = self.state.shards[sid]
                    st.status = DONE
                    st.completions += 1
                    st.summary = payload["summary"]
                    self.manifest.shard_done(sid, st.attempts,
                                             payload["summary"])
                    self.echo(f"  done        {sid}")
                    self._note_terminal()
                    return
                if self._record_failure(shard, kind, payload):
                    return                   # quarantined
                st = self.state.shards[sid]
                delay = self._backoff_delay(st.failures, jitter_rng)
                self.echo(f"  retry in {delay:.2f}s  {sid} "
                          f"({kind}: {payload[:60]})")
                await asyncio.sleep(delay)

    def _record_failure(self, shard: ShardSpec, kind: str,
                        detail: str) -> bool:
        """Count one failed attempt; quarantine past the budget.

        Returns True when the shard just reached a terminal state.
        """
        sid = shard.shard_id
        st = self.state.shards[sid]
        st.failures += 1
        st.last_kind, st.last_detail = kind, detail
        self.manifest.shard_fail(sid, st.attempts, kind, detail)
        if st.failures >= self.policy.max_failures:
            st.status = QUARANTINED
            self.manifest.shard_quarantine(sid, st.failures, kind, detail)
            self.echo(f"  quarantined {sid} after {st.failures} failure(s) "
                      f"({kind})")
            self._note_terminal()
            return True
        return False

    def _backoff_delay(self, failures: int, rng: random.Random) -> float:
        base = min(self.policy.backoff_cap,
                   self.policy.backoff * (2.0 ** max(0, failures - 1)))
        return base * (1.0 + self.policy.jitter * rng.random())

    def _note_terminal(self) -> None:
        self._terminal += 1
        if (self.stop_after_shards is not None
                and self._terminal >= self.stop_after_shards):
            self._stop = True

    # ------------------------------------------------------------------
    # one attempt = one supervised worker process
    # ------------------------------------------------------------------
    def _worker_env(self) -> dict:
        """The child must resolve ``repro`` exactly as this process does."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        return env

    async def _attempt(self, shard: ShardSpec):
        """Run one attempt, warm when a pool worker is available.

        Returns ``("ok", result_payload)``, ``(fail_kind, detail)``, or
        ``None`` when the sweep-level stop fired while this attempt was
        in flight (the attempt is abandoned without a manifest verdict —
        exactly what a killed fleet process leaves behind).

        The warm path degrades per attempt: no idle worker, a failed
        spawn, or an open circuit breaker all fall through to the cold
        path, so a sweep never stalls on pool trouble.
        """
        if self._pool is not None and self._pool.available():
            worker = await self._pool.try_acquire()
            if worker is not None:
                return await self._attempt_warm(shard, worker)
        return await self._attempt_cold(shard)

    # -- warm path (leases on pool workers) ----------------------------

    async def _attempt_warm(self, shard: ShardSpec, worker):
        """Run one shard on a leased warm worker; supervise the lease."""
        sid = shard.shard_id
        st = self.state.shards[sid]
        self._monitor.clear(sid)
        try:
            self.paths.shard_result(sid).unlink()
        except OSError:
            pass
        self.manifest.shard_start(sid, st.attempts + 1, worker.pid,
                                  pool_worker=worker.wid)
        self.echo(f"  start       {sid} (attempt {st.attempts + 1}, "
                  f"warm worker {worker.wid}, pid {worker.pid})")
        try:
            send_request(worker, {"type": "run", "shard": sid})
        except OSError as exc:
            await self._pool.reap(worker, POOL_CRASH)
            if self._stop:
                return None
            return (SHARD_CRASH, f"warm worker {worker.wid} pipe closed "
                                 f"at dispatch: {exc}")
        try:
            outcome = await self._await_lease(sid, worker)
        finally:
            self._monitor.clear(sid)
        if isinstance(outcome, dict):
            # a completed response frame: the worker survives the shard
            await self._pool.release(worker, outcome,
                                     failed=outcome.get("status") != "ok")
            if self._stop:
                return None
            return self._classify_response(sid, outcome)
        if self._stop:
            return None
        return outcome

    async def _await_lease(self, sid: str, worker):
        """Supervise one lease: response frame, death, expiry, or stop.

        Returns the response frame (dict), a ``(kind, detail)`` failure
        (the worker is already reaped), or ``None`` when the stop fired
        (the worker is killed — it must not outlive the scheduler).
        """
        loop = asyncio.get_running_loop()
        deadline = (None if self.policy.shard_timeout is None
                    else loop.time() + self.policy.shard_timeout)
        while True:
            try:
                frame = await asyncio.wait_for(
                    read_frame_async(worker.proc.stdout), timeout=_POLL_S)
            except asyncio.TimeoutError:
                if self._stop:
                    await self._pool.reap(worker, POOL_KILL)
                    return None
                if deadline is not None and loop.time() > deadline:
                    await self._pool.reap(worker, POOL_KILL)
                    return (SHARD_TIMEOUT,
                            f"exceeded shard timeout "
                            f"{self.policy.shard_timeout}s (lease expired; "
                            f"warm worker {worker.wid} killed)")
                grace = self.policy.wedge_grace
                if grace is not None:
                    age = self._monitor.age_of(sid)
                    if age is not None and age > grace:
                        await self._pool.reap(worker, POOL_KILL)
                        return (SHARD_TIMEOUT,
                                f"wedged: no campaign progress for "
                                f"{age:.1f}s (grace {grace}s; warm worker "
                                f"{worker.wid} killed)")
                continue
            except ProtocolError as exc:
                await self._pool.reap(worker, POOL_KILL)
                self._pool.protocol_violation(
                    f"worker {worker.wid}: {exc}")
                return (SHARD_ERROR,
                        f"warm worker protocol violation: {exc}")
            if frame is None:
                # EOF mid-lease: the worker died under the shard —
                # kill-9, os._exit in the target, kernel OOM-kill...
                await self._pool.reap(worker, POOL_CRASH)
                return (SHARD_CRASH,
                        f"warm worker {worker.wid} died mid-shard "
                        f"({self._death_detail(worker.proc.returncode)})")
            if frame.get("type") == "done" and frame.get("shard") == sid:
                return frame
            await self._pool.reap(worker, POOL_KILL)
            self._pool.protocol_violation(
                f"worker {worker.wid}: unexpected frame "
                f"{frame.get('type')!r} for {frame.get('shard')!r}")
            return (SHARD_ERROR, "warm worker answered with a frame for "
                                 "the wrong shard")

    def _classify_response(self, sid: str, response: dict):
        """Map a warm worker's response onto the cold outcome kinds."""
        status = response.get("status")
        if status == "ok":
            payload = self._read_result(sid)
            if payload is None:
                return (SHARD_CRASH, "warm worker reported ok without "
                                     "publishing a result")
            return ("ok", payload)
        if status == "oom":
            return (SHARD_OOM,
                    f"worker exceeded the fleet rlimit "
                    f"({self.policy.max_rss_mb} MB cap)")
        detail = str(response.get("detail", "?")).strip()
        tail = detail.splitlines()[-1][-200:] if detail else "?"
        return (SHARD_ERROR, f"harness exception in worker: {tail}")

    @staticmethod
    def _death_detail(rc) -> str:
        if rc is None:
            return "pipe closed"
        if rc < 0:
            try:
                name = signal.Signals(-rc).name
            except ValueError:  # pragma: no cover - unknown signal
                name = "?"
            return f"signal {-rc} ({name})"
        return f"exit code {rc}"

    # -- cold path (one disposable process per attempt) ----------------

    async def _attempt_cold(self, shard: ShardSpec):
        """Run one disposable worker process; classify its death."""
        sid = shard.shard_id
        st = self.state.shards[sid]
        self._monitor.clear(sid)
        result_path = self.paths.shard_result(sid)
        try:
            result_path.unlink()
        except OSError:
            pass
        out = self.paths.shard_output(sid).open("wb")
        try:
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro", "fleet", "worker",
                "--dir", str(self.paths.root), "--shard", sid,
                stdout=out, stderr=out, env=self._worker_env())
        finally:
            out.close()
        self._procs[sid] = proc
        self.manifest.shard_start(sid, st.attempts + 1, proc.pid)
        self.echo(f"  start       {sid} (attempt {st.attempts + 1}, "
                  f"pid {proc.pid})")
        try:
            rc, timed_out_detail = await self._await_worker(sid, proc)
        finally:
            self._procs.pop(sid, None)
            self._monitor.clear(sid)
        if self._stop:
            return None
        if timed_out_detail is not None:
            return (SHARD_TIMEOUT, timed_out_detail)
        return self._classify_exit(sid, rc)

    async def _await_worker(self, sid: str, proc):
        """Wait for one worker under the shard timeout + wedge detector.

        Returns ``(returncode, None)`` for a natural exit or
        ``(None, detail)`` after the supervisor killed it.
        """
        loop = asyncio.get_running_loop()
        deadline = (None if self.policy.shard_timeout is None
                    else loop.time() + self.policy.shard_timeout)
        while True:
            try:
                rc = await asyncio.wait_for(proc.wait(), timeout=_POLL_S)
                return rc, None
            except asyncio.TimeoutError:
                pass
            if self._stop:
                await self._kill_proc(proc)
                return None, None
            if deadline is not None and loop.time() > deadline:
                await self._kill_proc(proc)
                return None, (f"exceeded shard timeout "
                              f"{self.policy.shard_timeout}s")
            grace = self.policy.wedge_grace
            if grace is not None:
                age = self._monitor.age_of(sid)
                if age is not None and age > grace:
                    await self._kill_proc(proc)
                    return None, (f"wedged: no campaign progress for "
                                  f"{age:.1f}s (grace {grace}s)")

    def _classify_exit(self, sid: str, rc: int):
        """Map a worker exit status onto a fleet outcome."""
        if rc == 0:
            payload = self._read_result(sid)
            if payload is None:
                return (SHARD_CRASH,
                        "worker exited 0 without publishing a result")
            return ("ok", payload)
        if rc < 0:
            try:
                name = signal.Signals(-rc).name
            except ValueError:  # pragma: no cover - unknown signal
                name = "?"
            return (SHARD_CRASH, f"worker died to signal {-rc} ({name})")
        if rc == EXIT_OOM:
            return (SHARD_OOM,
                    f"worker exceeded the fleet rlimit "
                    f"({self.policy.max_rss_mb} MB cap)")
        if rc == EXIT_INTERNAL:
            return (SHARD_ERROR,
                    f"harness exception in worker: {self._stderr_tail(sid)}")
        return (SHARD_CRASH, f"worker exited with code {rc}")

    def _read_result(self, sid: str) -> Optional[dict]:
        import json
        try:
            return json.loads(self.paths.shard_result(sid).read_text())
        except (OSError, ValueError):
            return None

    def _stderr_tail(self, sid: str, limit: int = 200) -> str:
        try:
            text = self.paths.shard_output(sid).read_text(errors="replace")
        except OSError:
            return "(no worker output captured)"
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        return lines[-1][-limit:] if lines else "(empty worker output)"

    # ------------------------------------------------------------------
    async def _kill_proc(self, proc) -> None:
        try:
            proc.kill()
        except ProcessLookupError:
            pass
        try:
            await proc.wait()
        except Exception:  # pragma: no cover - already reaped
            pass

    async def _kill_outstanding(self) -> None:
        """On stop/teardown, no worker may outlive the scheduler — an
        orphan would race the next resume for the shard's log file."""
        for proc in list(self._procs.values()):
            await self._kill_proc(proc)
        self._procs.clear()
