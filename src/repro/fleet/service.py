"""The CLI-facing fleet façade: run / resume / status / report / worker.

Exit-code contract (shared with ``repro run``):

* ``0`` — the sweep completed, no fleet-level failures, no bugs found;
* ``1`` — the sweep completed and found bugs (bugs are the *product* of
  a bug-finding sweep, but scripts still deserve a signal);
* ``2`` — unrecoverable fleet trouble: shards quarantined, shards still
  pending after the run (interrupted), a bad spec, or a missing fleet
  directory.  Automation keying on ``repro fleet run && ...`` never
  mistakes a half-done or poisoned sweep for a clean one.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable, Optional, Union

from .manifest import (DONE, FleetManifest, FleetState, QUARANTINED,
                       fleet_paths, kill_orphans, load_state)
from .results import merge_results, report_text, status_text
from .scheduler import FleetScheduler
from .spec import FleetSpecError, load_spec

Echo = Callable[[str], None]

#: exit status for unrecoverable fleet-level trouble
EXIT_UNRECOVERABLE = 2


def _echo_to(stream) -> Echo:
    def echo(msg: str) -> None:
        print(msg, file=stream, flush=True)
    return echo


def _exit_code(state: FleetState, report) -> int:
    counts = state.counts()
    if counts[QUARANTINED] or counts[DONE] < len(state.shard_ids()):
        return EXIT_UNRECOVERABLE
    return 1 if report.fleet_bugs else 0


def _finish(root, state: FleetState, echo: Echo) -> int:
    report = merge_results(root, state)
    echo("")
    echo(report_text(report).rstrip("\n"))
    return _exit_code(state, report)


def fleet_run(spec_path: Union[str, Path], root: Union[str, Path],
              workers: Optional[int] = None, overwrite: bool = False,
              stop_after_shards: Optional[int] = None,
              warm_pool: Optional[int] = None,
              pool_recycle_tasks: Optional[int] = None,
              pool_max_rss: Optional[int] = None,
              echo: Optional[Echo] = None) -> int:
    """Expand a fleet spec and drive the whole sweep; returns exit code."""
    echo = echo or _echo_to(sys.stdout)
    try:
        spec = load_spec(spec_path)
    except (FleetSpecError, OSError, ValueError) as exc:
        print(f"repro fleet: bad spec {spec_path}: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    paths = fleet_paths(root)
    try:
        manifest = FleetManifest.create(paths, spec, overwrite=overwrite)
    except FileExistsError:
        print(f"repro fleet: {paths.manifest} already exists "
              f"(use `repro fleet resume {paths.root}`, or --force to "
              f"start over)", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    with manifest:
        state = load_state(paths.root)
        scheduler = FleetScheduler(paths.root, state, manifest,
                                   workers=workers,
                                   stop_after_shards=stop_after_shards,
                                   warm_pool=warm_pool,
                                   pool_recycle_tasks=pool_recycle_tasks,
                                   pool_max_rss=pool_max_rss,
                                   echo=echo)
        scheduler.run()
    return _finish(paths.root, state, echo)


def fleet_resume(root: Union[str, Path], workers: Optional[int] = None,
                 stop_after_shards: Optional[int] = None,
                 warm_pool: Optional[int] = None,
                 pool_recycle_tasks: Optional[int] = None,
                 pool_max_rss: Optional[int] = None,
                 echo: Optional[Echo] = None) -> int:
    """Continue a killed sweep: re-run only its incomplete shards."""
    echo = echo or _echo_to(sys.stdout)
    try:
        state = load_state(root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro fleet: cannot resume {root}: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    orphans = kill_orphans(state)
    if orphans:
        echo(f"fleet: killed {orphans} orphaned worker(s) from the "
             f"previous run")
    # the dead run's heartbeat files go with its workers: a stale
    # heartbeat must never feed the new session's wedge detection
    stale = clear_heartbeats(root)
    if stale:
        echo(f"fleet: cleared {stale} stale heartbeat file(s)")
    echo(f"fleet: resuming {state.spec.name}: "
         f"{len(state.incomplete())} incomplete shard(s) of "
         f"{len(state.shard_ids())}")
    with FleetManifest.open_append(fleet_paths(root)) as manifest:
        scheduler = FleetScheduler(root, state, manifest, workers=workers,
                                   stop_after_shards=stop_after_shards,
                                   warm_pool=warm_pool,
                                   pool_recycle_tasks=pool_recycle_tasks,
                                   pool_max_rss=pool_max_rss,
                                   echo=echo)
        scheduler.run()
    return _finish(root, state, echo)


def clear_heartbeats(root: Union[str, Path]) -> int:
    """Delete every heartbeat file of a (dead) sweep session.

    Orphan workers are killed on resume, but their last heartbeats
    would otherwise survive on disk and could make the next session's
    wedge detector misread a dead worker's final sign of life as a
    fresh one.  Returns the number of files removed.
    """
    from ..supervise import HeartbeatMonitor
    paths = fleet_paths(root)
    if not paths.heartbeats.is_dir():
        return 0
    return HeartbeatMonitor(stale_after=1.0,
                            dir=str(paths.heartbeats)).cleanup()


def fleet_status(root: Union[str, Path],
                 echo: Optional[Echo] = None) -> int:
    """Print the operator view of a sweep (attempts, failures, orphans)."""
    echo = echo or _echo_to(sys.stdout)
    try:
        state = load_state(root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    echo(status_text(state).rstrip("\n"))
    return 0


def fleet_report(root: Union[str, Path], as_json: bool = False,
                 with_coverage: bool = False,
                 echo: Optional[Echo] = None) -> int:
    """Print the deterministic merged report; exit code as for run.

    ``with_coverage`` adds the per-target branch-coverage union section
    (JSON reports always carry the union counts).
    """
    echo = echo or _echo_to(sys.stdout)
    try:
        state = load_state(root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    report = merge_results(root, state)
    if as_json:
        echo(json.dumps(report.as_dict(), sort_keys=True, indent=2))
    else:
        echo(report_text(report, with_coverage=with_coverage).rstrip("\n"))
    return _exit_code(state, report)


def fleet_worker(root: Union[str, Path], shard_id: str) -> int:
    """The worker-process entry (dispatched by the scheduler)."""
    from .worker import run_shard
    return run_shard(root, shard_id)


def fleet_workerd(root: Union[str, Path], worker_id: int) -> int:
    """The warm-pool daemon entry (spawned by the scheduler's pool)."""
    from .worker import serve_pool
    return serve_pool(root, worker_id)
