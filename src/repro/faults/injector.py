"""The fault injector: executes one :class:`FaultPlan` against one job.

Determinism is the design constraint.  Every decision is drawn from a
*per-rank* pseudo-random stream seeded by ``(plan.seed, rank)``, and
each stream is only ever consumed from that rank's own thread in the
rank's program order — so the sequence of injected faults is a pure
function of the plan, immune to thread scheduling.

Hook points (wired into the substrate, all no-ops without an injector):

* ``Mailbox.deposit``   → :meth:`FaultInjector.on_send` (delay, drop,
  corrupt; counts as an MPI call of the *sender*)
* ``Mailbox.receive``   → :meth:`FaultInjector.on_call`
* ``CollectiveEngine.run`` → :meth:`on_call` + :meth:`on_collective`
* ``Compi._derive_next``   → :meth:`solver_timeout`
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Optional

from .plan import (FAULT_CORRUPT, FAULT_CRASH, FAULT_DELAY, FAULT_DROP,
                   FAULT_JITTER, FAULT_SOLVER_TIMEOUT, FaultPlan)


class InjectedFault(Exception):
    """A deterministic, injector-originated failure (rank crash model)."""

    def __init__(self, kind: str, rank: int, detail: str = ""):
        self.kind = kind
        self.rank = rank
        super().__init__(f"injected {kind} on rank {rank}"
                         + (f": {detail}" if detail else ""))


def _corrupt(payload: Any, rng: random.Random) -> Any:
    """Deterministically mutate a payload (bit-flip analog)."""
    flip = rng.randrange(1, 256)
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ flip
    if isinstance(payload, float):
        return payload * 2.0 + flip
    if isinstance(payload, str):
        return payload + "\x00corrupt"
    if isinstance(payload, list) and payload:
        out = list(payload)
        out[0] = _corrupt(out[0], rng)
        return out
    if isinstance(payload, tuple) and payload:
        return tuple(_corrupt(list(payload), rng))
    return ("corrupted", flip)


class FaultInjector:
    """Per-job executor of one fault plan.

    Create a fresh injector per job: MPI-call counters start at zero and
    the per-rank streams rewind, which is what makes a re-run under the
    same plan identical.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()          # guards lazy stream creation
        self._rngs: dict[int, random.Random] = {}
        self._calls: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _rng(self, rank: int) -> random.Random:
        rng = self._rngs.get(rank)
        if rng is None:
            with self._lock:
                rng = self._rngs.get(rank)
                if rng is None:
                    rng = random.Random((self.plan.seed * 2_654_435_761
                                         + rank * 97) & 0x7FFFFFFF)
                    self._rngs[rank] = rng
        return rng

    def _fire(self, kind: str, rank: int) -> Optional[random.Random]:
        """The rank's stream when spec ``kind`` applies and fires, else None.

        Always consumes one draw when the spec applies, so firing or not
        does not desynchronize the stream.
        """
        spec = self.plan.spec_for(kind)
        if spec is None or not spec.matches(rank):
            return None
        rng = self._rng(rank)
        return rng if rng.random() < spec.probability else None

    # ------------------------------------------------------------------
    # hook points
    # ------------------------------------------------------------------
    def on_call(self, rank: int) -> None:
        """One MPI call on ``rank``: crash-at-Nth-call and jitter."""
        count = self._calls.get(rank, 0) + 1
        self._calls[rank] = count
        crash = self.plan.spec_for(FAULT_CRASH)
        if crash is not None and crash.matches(rank) and count == crash.nth_call:
            raise InjectedFault(FAULT_CRASH, rank,
                                f"at MPI call #{count}")
        rng = self._fire(FAULT_JITTER, rank)
        if rng is not None:
            spec = self.plan.spec_for(FAULT_JITTER)
            time.sleep(rng.random() * spec.magnitude)

    def on_send(self, source: int, dest: int, tag: int,
                payload: Any) -> tuple[Any, bool]:
        """Sender-side message fault: returns ``(payload, deliver)``."""
        self.on_call(source)
        rng = self._fire(FAULT_DELAY, source)
        if rng is not None:
            time.sleep(self.plan.spec_for(FAULT_DELAY).magnitude)
        if self._fire(FAULT_DROP, source) is not None:
            return payload, False
        rng = self._fire(FAULT_CORRUPT, source)
        if rng is not None:
            return _corrupt(payload, rng), True
        return payload, True

    def on_collective(self, rank: int, op_name: str) -> None:
        """Collective entry on ``rank``: call accounting plus delay."""
        self.on_call(rank)
        rng = self._fire(FAULT_DELAY, rank)
        if rng is not None:
            time.sleep(self.plan.spec_for(FAULT_DELAY).magnitude)

    def solver_timeout(self) -> bool:
        """Should this iteration's constraint solve pretend to time out?

        Drawn from a dedicated stream (pseudo-rank ``-2``) so it cannot
        desynchronize the per-rank message streams.
        """
        return self._fire(FAULT_SOLVER_TIMEOUT, -2) is not None

    # ------------------------------------------------------------------
    def calls_made(self, rank: int) -> int:
        return self._calls.get(rank, 0)
