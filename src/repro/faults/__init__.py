"""Deterministic fault injection for the virtual MPI substrate.

A :class:`FaultPlan` is a seeded, serializable description of which
faults to inject (message delay/drop/corruption, rank crash at the Nth
MPI call, slow-rank jitter, simulated solver timeout).  A
:class:`FaultInjector` executes one plan against one job: every decision
comes from a per-rank deterministic stream, so two runs with the same
plan make identical choices regardless of thread scheduling.

:class:`FaultCampaign` re-runs logged error-inducing inputs under a
matrix of single-fault plans to measure how reproducible each bug is
when the communication substrate misbehaves.
"""

from .campaign import FaultCampaign, FaultTrial
from .injector import FaultInjector, InjectedFault
from .plan import (ALL_FAULT_KINDS, FAULT_CORRUPT, FAULT_CRASH, FAULT_DELAY,
                   FAULT_DROP, FAULT_JITTER, FAULT_SOLVER_TIMEOUT, FaultPlan,
                   FaultSpec)

__all__ = [
    "ALL_FAULT_KINDS", "FAULT_CORRUPT", "FAULT_CRASH", "FAULT_DELAY",
    "FAULT_DROP", "FAULT_JITTER", "FAULT_SOLVER_TIMEOUT", "FaultCampaign",
    "FaultInjector", "FaultPlan", "FaultSpec", "FaultTrial", "InjectedFault",
]
