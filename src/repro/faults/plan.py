"""Fault plans: seeded, serializable descriptions of injected faults.

Fault streams are indexed by the campaign's global run number: each
executed test advances the per-rank RNG streams, so reproducing a fault
schedule requires executing tests in exactly the committed order.  The
staged engine therefore disables the parallel executor whenever faults
are configured (speculative executions that get squashed would silently
shift every later fault) — ``make_executor`` falls back to the inline
executor, keeping injected campaigns bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Iterable, Optional, Sequence

#: a message send is delayed before delivery
FAULT_DELAY = "delay"
#: a message send is silently discarded
FAULT_DROP = "drop"
#: a message payload is mutated in flight
FAULT_CORRUPT = "corrupt"
#: a rank raises :class:`~repro.faults.injector.InjectedFault` at its
#: Nth MPI call (the crash-failure model)
FAULT_CRASH = "crash"
#: a rank sleeps a little at every MPI call (straggler model)
FAULT_JITTER = "jitter"
#: the concolic driver's constraint solve "times out" for an iteration
FAULT_SOLVER_TIMEOUT = "solver-timeout"

ALL_FAULT_KINDS = (FAULT_DELAY, FAULT_DROP, FAULT_CORRUPT, FAULT_CRASH,
                   FAULT_JITTER, FAULT_SOLVER_TIMEOUT)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``rank`` scopes the fault: the acting rank for crash/jitter, the
    *sending* rank for message faults; ``-1`` means every rank.
    ``probability`` is the per-opportunity firing chance (ignored by
    ``crash``, which fires exactly once at ``nth_call``).
    """

    kind: str
    rank: int = -1
    probability: float = 0.25
    nth_call: int = 5          # crash only: 1-based MPI-call index
    magnitude: float = 0.002   # delay/jitter sleep, seconds

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {ALL_FAULT_KINDS}")

    def matches(self, rank: int) -> bool:
        return self.rank < 0 or self.rank == rank

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(**d)


#: defaults used when a plan is built from bare kind names (CLI `--faults`)
_DEFAULT_SPECS = {
    FAULT_DELAY: FaultSpec(FAULT_DELAY, probability=0.25, magnitude=0.002),
    FAULT_DROP: FaultSpec(FAULT_DROP, probability=0.1),
    FAULT_CORRUPT: FaultSpec(FAULT_CORRUPT, probability=0.1),
    FAULT_CRASH: FaultSpec(FAULT_CRASH, rank=0, nth_call=5),
    FAULT_JITTER: FaultSpec(FAULT_JITTER, probability=0.5, magnitude=0.001),
    FAULT_SOLVER_TIMEOUT: FaultSpec(FAULT_SOLVER_TIMEOUT, probability=0.2),
}


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the faults to inject under it.

    The plan is pure data: it can ride inside a config snapshot, a
    campaign log, or a CLI flag, and two injectors built from equal
    plans behave identically.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_names(cls, names: Iterable[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from kind names with per-kind default parameters."""
        cleaned = [n.strip() for n in names if n.strip()]
        unknown = [n for n in cleaned if n not in _DEFAULT_SPECS]
        if unknown:
            raise ValueError(f"unknown fault kind(s) {unknown}; "
                             f"choose from {ALL_FAULT_KINDS}")
        return cls(seed=seed, specs=tuple(_DEFAULT_SPECS[n] for n in cleaned))

    def derive(self, salt: int) -> "FaultPlan":
        """Reseeded copy — one sub-plan per campaign iteration, so faults
        vary across iterations but are a pure function of (seed, salt)."""
        return replace(self, seed=(self.seed * 1_000_003 + salt) % (2 ** 31))

    def kinds(self) -> tuple[str, ...]:
        return tuple(s.kind for s in self.specs)

    def has(self, kind: str) -> bool:
        return any(s.kind == kind for s in self.specs)

    def spec_for(self, kind: str) -> Optional[FaultSpec]:
        for s in self.specs:
            if s.kind == kind:
                return s
        return None

    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(seed=int(d.get("seed", 0)),
                   specs=tuple(FaultSpec.from_dict(s)
                               for s in d.get("specs", ())))

    @staticmethod
    def matrix(seed: int = 0,
               kinds: Optional[Sequence[str]] = None) -> list["FaultPlan"]:
        """One single-fault plan per kind — the reproducibility matrix."""
        return [FaultPlan(seed=seed, specs=(_DEFAULT_SPECS[k],))
                for k in (kinds or ALL_FAULT_KINDS)]
