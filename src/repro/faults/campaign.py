"""Fault campaign: bug reproducibility under a fault matrix.

For each logged error-inducing input, re-run the target once per
single-fault plan and record whether the original bug still fires, what
was observed instead (a masked bug, a new injected failure, a clean
run), and under which plan.  This answers the production question "is
this bug robustly reproducible, or an artifact of a healthy network?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from .plan import ALL_FAULT_KINDS, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..core.compi import BugRecord
    from ..core.config import CompiConfig
    from ..instrument.loader import InstrumentedProgram


@dataclass(frozen=True)
class FaultTrial:
    """One cell of the reproducibility matrix."""

    fault_kind: str            # "baseline" for the fault-free control run
    reproduced: bool           # did the original bug (kind) fire again?
    observed_kind: Optional[str]   # what the run classified as (None = clean)
    observed_location: str = ""

    def cell(self) -> str:
        if self.reproduced:
            return "reproduced"
        return self.observed_kind or "clean"


@dataclass
class FaultReport:
    """All trials for one bug."""

    bug_kind: str
    bug_location: str
    trials: list[FaultTrial] = field(default_factory=list)

    @property
    def reproducibility(self) -> float:
        """Fraction of *fault* trials (baseline excluded) that reproduced."""
        fault_trials = [t for t in self.trials if t.fault_kind != "baseline"]
        if not fault_trials:
            return 0.0
        return sum(t.reproduced for t in fault_trials) / len(fault_trials)


class FaultCampaign:
    """Drives the fault matrix over a set of logged bugs."""

    def __init__(self, program: "InstrumentedProgram", config: "CompiConfig",
                 seed: int = 0, kinds: Optional[Sequence[str]] = None):
        self.program = program
        self.config = config.with_(faults=(), fault_seed=seed)
        self.seed = seed
        self.kinds = tuple(kinds or ALL_FAULT_KINDS)

    def _run_once(self, bug: "BugRecord",
                  plan: Optional[FaultPlan]) -> FaultTrial:
        from ..core.runner import TestRunner

        runner = TestRunner(self.program, self.config, fault_plan=plan)
        rec = runner.run(bug.testcase)
        kind = rec.error.kind if rec.error else None
        loc = rec.error.location if rec.error else ""
        reproduced = rec.error is not None and (
            kind == bug.kind
            and (not bug.location or loc == bug.location))
        return FaultTrial(
            fault_kind=plan.specs[0].kind if plan else "baseline",
            reproduced=reproduced, observed_kind=kind, observed_location=loc)

    def check_bug(self, bug: "BugRecord") -> FaultReport:
        """Baseline control plus one trial per fault kind."""
        report = FaultReport(bug_kind=bug.kind, bug_location=bug.location)
        report.trials.append(self._run_once(bug, None))
        for plan in FaultPlan.matrix(self.seed, self.kinds):
            report.trials.append(self._run_once(bug, plan))
        return report

    def run(self, bugs: Sequence["BugRecord"]) -> list[FaultReport]:
        return [self.check_bug(b) for b in bugs]
