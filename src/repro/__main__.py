"""Command-line interface: run COMPI campaigns from a shell.

Examples::

    python -m repro targets
    python -m repro run --target demo --iterations 40
    python -m repro run --target hpl --time-budget 20 --seed 3 --nprocs 4
    python -m repro compare --target imb --variants R,Random --iterations 50
"""

from __future__ import annotations

import argparse
import importlib
import sys

from .baselines import VARIANTS, make_variant
from .core import CompiConfig, campaign_summary, format_table
from .instrument import instrument_program

#: name → (modules..., entry) resolved lazily from the target packages
TARGETS = {
    "demo": (["repro.targets.demo"], "repro.targets.demo"),
    "seq_demo": (["repro.targets.seq_demo"], "repro.targets.seq_demo"),
    "killer": (["repro.targets.killer"], "repro.targets.killer"),
    "race": (["repro.targets.race"], "repro.targets.race"),
    "susy": ("repro.targets.susy", None),
    "hpl": ("repro.targets.hpl", None),
    "imb": ("repro.targets.imb", None),
}


def load_target(name: str):
    """Instrument and load one named target."""
    try:
        spec = TARGETS[name]
    except KeyError:
        raise SystemExit(f"unknown target {name!r}; run `python -m repro "
                         f"targets` for the list") from None
    modules, entry = spec
    if isinstance(modules, str):
        pkg = importlib.import_module(modules)
        modules, entry = pkg.MODULES, pkg.ENTRY
    return instrument_program(list(modules), entry_module=entry)


def build_config(args: argparse.Namespace) -> CompiConfig:
    """Map parsed CLI flags onto a CompiConfig.

    Robustness flags use ``getattr`` defaults so a namespace built
    without them (tests, embedding code) still maps cleanly.
    """
    faults = getattr(args, "faults", None) or ""
    fault_kinds = tuple(f.strip() for f in faults.split(",") if f.strip())
    from .faults import ALL_FAULT_KINDS
    unknown = [k for k in fault_kinds if k not in ALL_FAULT_KINDS]
    if unknown:
        raise SystemExit(f"unknown fault kind(s): {', '.join(unknown)} "
                         f"(valid: {', '.join(ALL_FAULT_KINDS)})")
    portfolio_arms: tuple[str, ...] = ()
    portfolio_spec = getattr(args, "portfolio", None)
    if portfolio_spec:
        from .portfolio import parse_portfolio
        try:
            portfolio_arms = parse_portfolio(portfolio_spec)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    return CompiConfig(
        seed=args.seed,
        init_nprocs=args.nprocs,
        nprocs_cap=args.nprocs_cap,
        test_timeout=args.test_timeout,
        reduction=not args.no_reduction,
        two_way=not args.one_way,
        framework=not args.no_framework,
        faults=fault_kinds,
        fault_seed=getattr(args, "fault_seed", 0),
        workers=getattr(args, "workers", 1),
        speculation_width=getattr(args, "speculation_width", None),
        speculation_depth=getattr(args, "speculation_depth", 4),
        probe_batching=getattr(args, "probe_batching", True),
        persistent_solver=getattr(args, "persistent_solver", True),
        solver_cache=getattr(args, "solver_cache", True),
        solver_cache_path=getattr(args, "solver_cache_path", None),
        max_rss_mb=getattr(args, "max_rss", None),
        max_cpu_s=getattr(args, "max_cpu", None),
        sandbox=getattr(args, "sandbox", None),
        minimize_crashes=getattr(args, "minimize", True),
        quarantine_kills=getattr(args, "quarantine_kills", 1),
        portfolio=portfolio_arms,
        portfolio_exploration=getattr(args, "portfolio_exploration", 0.5),
        explore_schedules=getattr(args, "explore_schedules", False),
        schedule_budget=getattr(args, "schedule_budget", 64),
        schedule_depth=getattr(args, "schedule_depth", 8),
    )


def add_common(p: argparse.ArgumentParser) -> None:
    """Attach the flags shared by run/compare/replay."""
    p.add_argument("--target", required=True, choices=sorted(TARGETS))
    p.add_argument("--iterations", type=int, default=None)
    p.add_argument("--time-budget", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nprocs", type=int, default=4,
                   help="initial process count (paper default: 8)")
    p.add_argument("--nprocs-cap", type=int, default=8,
                   help="cap on derived process counts (paper: 16)")
    p.add_argument("--test-timeout", type=float, default=10.0,
                   help="per-test hang timeout in seconds")
    p.add_argument("--no-reduction", action="store_true",
                   help="disable constraint set reduction (§IV-C)")
    p.add_argument("--one-way", action="store_true",
                   help="one-way instrumentation: every rank runs heavy")
    p.add_argument("--no-framework", action="store_true",
                   help="standard concolic testing (fixed focus/nprocs)")
    p.add_argument("--faults", default="", metavar="KINDS",
                   help="comma list of fault kinds to inject "
                        "(delay, drop, corrupt, crash, jitter, "
                        "solver-timeout)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the deterministic fault streams")
    p.add_argument("--workers", type=int, default=1,
                   help="candidate tests run concurrently in a process "
                        "pool; results commit in serial order, so the "
                        "campaign is identical to --workers 1 "
                        "(fault injection forces serial)")
    p.add_argument("--speculation-width", type=int, default=None,
                   help="speculative candidates per step "
                        "(default: --workers)")
    p.add_argument("--speculation-depth", type=int, default=4,
                   help="speculative generations chained per pipeline: "
                        "after an adopted prediction the batch is "
                        "refilled with siblings of the fresh trace "
                        "(1 = no refill; inline execution ignores it)")
    p.add_argument("--probe-batching", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="record concrete-only branch probes into "
                        "preallocated per-sink hit arrays flushed once "
                        "per run (--no-probe-batching restores the "
                        "per-call recorder path; identical results)")
    p.add_argument("--persistent-solver",
                   action=argparse.BooleanOptionalAction, default=True,
                   help="keep the simplified invariant stem and "
                        "path-prefix ladder alive in the solve session "
                        "across iterations (--no-persistent-solver "
                        "rebuilds per negation; identical results)")
    p.add_argument("--solver-cache", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="counterexample cache between the solve session "
                        "and the solver (--no-solver-cache disables)")
    p.add_argument("--solver-cache-path", default=None, metavar="PATH",
                   help="JSONL disk tier for the solver cache; persists "
                        "verdicts across --resume and campaigns")
    p.add_argument("--max-rss", type=int, default=None, metavar="MB",
                   help="address-space rlimit per test run; allocation "
                        "failures classify as the distinct 'oom' kind")
    p.add_argument("--max-cpu", type=float, default=None, metavar="SECONDS",
                   help="CPU-time rlimit per test run; SIGXCPU deaths "
                        "classify as 'cpu-cap'")
    p.add_argument("--sandbox", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="fork-isolate inline test runs so a hard-dying "
                        "target cannot kill the campaign (auto-on when "
                        "--max-rss/--max-cpu is set)")
    p.add_argument("--minimize", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="ddmin-minimize each new crash signature into a "
                        "reproducer artifact under <log>.repro/ "
                        "(--no-minimize disables)")
    p.add_argument("--quarantine-kills", type=int, default=1,
                   metavar="N",
                   help="confirmed worker kills from one input before it "
                        "is quarantined (default: 1)")
    p.add_argument("--portfolio", default="", metavar="ARMS",
                   help="run several strategies as bandit arms over one "
                        "shared frontier, e.g. dfs2,bounded,random,cfg "
                        "('default' = that mix; empty = single strategy)")
    p.add_argument("--portfolio-exploration", type=float, default=0.5,
                   metavar="C",
                   help="UCB exploration constant for the portfolio "
                        "bandit (default: 0.5)")
    p.add_argument("--explore-schedules", action="store_true",
                   help="also search message-interleaving space: every "
                        "wildcard-receive match becomes a decision point "
                        "and unexplored alternatives are replayed "
                        "depth-first (forces the inline executor; "
                        "incompatible with --portfolio)")
    p.add_argument("--schedule-budget", type=int, default=64, metavar="N",
                   help="max alternative schedules explored per campaign "
                        "(default: 64)")
    p.add_argument("--schedule-depth", type=int, default=8, metavar="D",
                   help="match decisions per run eligible for forking "
                        "(default: 8)")


def budget_kwargs(args: argparse.Namespace) -> dict:
    """Budget kwargs for Compi.run from the CLI flags (default: 50 iterations)."""
    if args.iterations is None and args.time_budget is None:
        return {"iterations": 50}
    out = {}
    if args.iterations is not None:
        out["iterations"] = args.iterations
    if args.time_budget is not None:
        out["time_budget"] = args.time_budget
    return out


def cmd_targets(_args: argparse.Namespace) -> int:
    """`targets` subcommand: list the available targets."""
    rows = []
    for name, spec in sorted(TARGETS.items()):
        modules = spec[0]
        if isinstance(modules, str):
            modules = importlib.import_module(modules).MODULES
        rows.append([name, len(modules), modules[-1]])
    print(format_table(["target", "modules", "entry"], rows,
                       title="available targets"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """`run` subcommand: one COMPI campaign.

    Exit codes: 0 = clean campaign, 1 = campaign completed and found
    bugs, 2 = unrecoverable harness error (the campaign itself died).
    """
    if args.resume and not args.save_log:
        raise SystemExit("--resume needs --save-log PATH "
                         "(the log of the campaign to continue)")
    try:
        return _run_campaign(args)
    except (SystemExit, KeyboardInterrupt):
        raise
    except Exception as exc:
        import traceback
        traceback.print_exc()
        print(f"repro run: unrecoverable error: {exc!r}", file=sys.stderr)
        return 2


def _run_campaign(args: argparse.Namespace) -> int:
    program = load_target(args.target)
    try:
        from .core import Compi
        from .core.persist import CampaignLog

        config = build_config(args)
        if args.resume:
            from pathlib import Path
            if not Path(args.save_log).exists():
                raise SystemExit(f"no campaign log at {args.save_log}; "
                                 f"start one with --save-log (no --resume)")
            compi = Compi.resume(program, args.save_log)
            log = CampaignLog(args.save_log, mode="a")
        else:
            compi = Compi(program, config)
            log = (CampaignLog(args.save_log,
                               mode="w" if args.overwrite_log else "x")
                   if args.save_log else None)
        try:
            if log is not None:
                try:
                    with log:
                        result = compi.run(**budget_kwargs(args), log=log)
                except FileExistsError:
                    raise SystemExit(
                        f"campaign log {log.path} already exists; pass "
                        f"--overwrite-log to replace it or --resume to "
                        f"continue it") from None
                print(f"campaign log: {log.path}")
            else:
                result = compi.run(**budget_kwargs(args))
        finally:
            compi.close()
        print(campaign_summary(result))
        return 0 if not result.unique_bugs() else 1
    finally:
        program.unload()


def cmd_faults(args: argparse.Namespace) -> int:
    """`faults` subcommand: bug reproducibility under a fault matrix."""
    from .faults import ALL_FAULT_KINDS, FaultCampaign

    if args.list:
        print(format_table(["kind"], [[k] for k in ALL_FAULT_KINDS],
                           title="injectable fault kinds"))
        return 0
    if not args.log:
        raise SystemExit("give --log PATH (a campaign log with bugs) "
                         "or --list")
    from .core.persist import load_campaign

    bugs = load_campaign(args.log)["bugs"]
    seen: set = set()
    unique = [b for b in bugs
              if b.dedup_key not in seen and not seen.add(b.dedup_key)]
    if not unique:
        print("no bugs recorded in this log")
        return 0
    kinds = None
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    program = load_target(args.target)
    try:
        campaign = FaultCampaign(program, build_config(args),
                                 seed=args.fault_seed, kinds=kinds)
        reports = campaign.run(unique)
    finally:
        program.unload()
    headers = ["bug", "baseline"] + list(campaign.kinds) + ["repro rate"]
    rows = []
    for bug, rep in zip(unique, reports):
        label = f"{bug.kind}@{bug.location}" if bug.location else bug.kind
        cells = [t.cell() for t in rep.trials]
        rows.append([label] + cells + [f"{100 * rep.reproducibility:.0f}%"])
    print(format_table(headers, rows,
                       title=f"{args.target}: bug reproducibility under "
                             f"faults (seed={args.fault_seed})"))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a bug from a campaign log: the §V workflow's last mile —
    the logged error-inducing input is re-executed for analysis."""
    from .core.persist import load_campaign
    from .core.runner import TestRunner

    loaded = load_campaign(args.log)
    bugs = loaded["bugs"]
    if not bugs:
        print("no bugs recorded in this log")
        return 0
    if args.bug >= len(bugs):
        raise SystemExit(f"log has {len(bugs)} bugs; --bug {args.bug} "
                         f"is out of range")
    bug = bugs[args.bug]
    print(f"replaying bug #{args.bug}: {bug.kind} "
          f"(np={bug.testcase.setup.nprocs}, focus={bug.testcase.setup.focus})")
    print(f"inputs: {dict(sorted(bug.testcase.inputs.items()))}")
    if bug.schedule:
        # load_campaign already re-pinned the testcase: the runner will
        # replay the recorded wildcard match decisions
        print(f"schedule: {bug.schedule}")

    program = load_target(args.target)
    try:
        rec = TestRunner(program, build_config(args)).run(bug.testcase)
        if rec.error is None:
            print("replay did NOT reproduce the error "
                  "(fixed, or environment-dependent)")
            return 1
        print(f"reproduced: {rec.error.kind} on rank {rec.error.global_rank}")
        print(f"  {rec.error.message}")
        if rec.error.location:
            print(f"  at {rec.error.location}")
        if args.traceback and rec.error.traceback:
            print(rec.error.traceback)
        return 0
    finally:
        program.unload()


def cmd_cache(args: argparse.Namespace) -> int:
    """`cache` subcommand: inspect a solver-cache disk tier."""
    from pathlib import Path

    from .solvercache import CounterexampleCache

    if args.action == "stats":
        path = Path(args.path)
        if not path.exists():
            raise SystemExit(f"no solver-cache tier at {path}")
        cache = CounterexampleCache(capacity=2 ** 31, path=path)
        sat = cache.sat_entries
        unsat = cache.unsat_entries
        rows = [
            ["entries", len(cache)],
            ["sat models", sat],
            ["unsat verdicts", unsat],
            ["file size (bytes)", path.stat().st_size],
        ]
        print(format_table(["metric", "value"], rows,
                           title=f"solver cache tier: {path}"))
        return 0
    path = Path(args.path)
    if not path.exists():
        raise SystemExit(f"no solver-cache tier at {path}")
    path.unlink()
    print(f"cleared solver cache tier {path}")
    return 0


def _pick_artifact(artifacts: list[dict], signature: str | None,
                   index: int) -> dict:
    if signature:
        hits = [a for a in artifacts if signature in a["signature"]]
        if not hits:
            raise SystemExit(f"no reproducer artifact matching {signature!r}")
        if len(hits) > 1:
            names = ", ".join(a["signature"] for a in hits)
            raise SystemExit(f"--signature {signature!r} is ambiguous "
                             f"({names})")
        return hits[0]
    if index >= len(artifacts):
        raise SystemExit(f"{len(artifacts)} artifact(s) recorded; "
                         f"--index {index} is out of range")
    return artifacts[index]


def cmd_triage(args: argparse.Namespace) -> int:
    """`triage` subcommand: inspect / replay minimized crash reproducers."""
    import json

    from .supervise import load_artifacts, repro_dir

    directory = repro_dir(args.log)
    artifacts = load_artifacts(directory)
    if args.action == "list":
        if not artifacts:
            print(f"no reproducer artifacts under {directory}")
            return 0
        rows = [[a["signature"], a["kind"], a["iteration"],
                 "yes" if a["minimized"] else "no",
                 len(a.get("removed_inputs", [])),
                 dict(sorted(a["minimized_inputs"].items()))]
                for a in artifacts]
        print(format_table(
            ["signature", "kind", "iter", "minimized", "dropped", "inputs"],
            rows, title=f"crash reproducers: {directory}"))
        return 0

    art = _pick_artifact(artifacts, args.signature, args.index)
    if args.action == "show":
        shown = {k: v for k, v in art.items() if k != "_path"}
        print(json.dumps(shown, indent=2, sort_keys=True))
        print(f"# artifact: {art['_path']}")
        return 0

    # replay: re-execute the (minimized) reproducer in the sandbox
    if not args.target:
        raise SystemExit("triage replay needs --target (the artifact "
                         f"records program {art['program']!r})")
    from .core.conflicts import TestSetup
    from .core.runner import ErrorInfo, TestRunner
    from .core.testcase import TestCase
    from .supervise import ResourceLimits, crash_signature, run_sandboxed

    inputs = art["inputs"] if args.original else art["minimized_inputs"]
    limits = ResourceLimits(max_rss_mb=art["limits"]["max_rss_mb"],
                            max_cpu_s=art["limits"]["max_cpu_s"])
    config = CompiConfig(seed=art.get("seed", 0),
                         max_rss_mb=limits.max_rss_mb,
                         max_cpu_s=limits.max_cpu_s, sandbox=True)
    schedule: tuple = ()
    if art.get("schedule"):
        from .schedules import decode_schedule
        schedule = decode_schedule(art["schedule"])
    tc = TestCase(inputs={k: int(v) for k, v in inputs.items()},
                  setup=TestSetup(art["nprocs"], art["focus"]),
                  schedule=schedule)
    print(f"replaying {art['signature']} "
          f"(np={art['nprocs']}, focus={art['focus']})")
    print(f"inputs: {dict(sorted(tc.inputs.items()))}")
    if art.get("schedule"):
        print(f"schedule: {art['schedule']}")
    program = load_target(args.target)
    try:
        runner = TestRunner(program, config)
        outcome, death = run_sandboxed(runner, tc, config.test_timeout,
                                       limits)
    finally:
        program.unload()
    if death is not None:
        err = ErrorInfo(kind=death.kind, global_rank=-1,
                        message=death.message(limits))
    elif outcome is not None and outcome.error is not None:
        err = outcome.error
    else:
        print("replay did NOT reproduce the crash "
              "(fixed, or environment-dependent)")
        return 1
    got = crash_signature(err)
    print(f"reproduced: {err.kind} — {err.message[:90]}")
    if err.location:
        print(f"  at {err.location}")
    if got == art["signature"]:
        print(f"signature match: {got}")
        return 0
    print(f"DIFFERENT signature: got {got}, artifact has "
          f"{art['signature']}")
    return 1


def _add_pool_flags(p: argparse.ArgumentParser) -> None:
    """Warm-pool overrides shared by `fleet run` and `fleet resume`."""
    p.add_argument("--warm-pool", type=int, default=None, metavar="N",
                   help="keep N persistent warm workers instead of "
                        "spawning one process per shard attempt "
                        "(default: spec's pool.warm, 0 = disabled)")
    p.add_argument("--pool-recycle-tasks", type=int, default=None,
                   metavar="K",
                   help="recycle each warm worker after K shards "
                        "(default: spec's pool.recycle_tasks)")
    p.add_argument("--pool-max-rss", type=int, default=None, metavar="MB",
                   help="recycle a warm worker whose RSS self-check "
                        "exceeds MB (default: spec's pool.max_rss_mb)")


def cmd_fleet(args: argparse.Namespace) -> int:
    """`fleet` subcommand group: declarative sharded campaign sweeps."""
    from .fleet import service

    if args.fleet_command == "run":
        return service.fleet_run(args.spec, args.dir, workers=args.workers,
                                 overwrite=args.force,
                                 stop_after_shards=args.stop_after,
                                 warm_pool=args.warm_pool,
                                 pool_recycle_tasks=args.pool_recycle_tasks,
                                 pool_max_rss=args.pool_max_rss)
    if args.fleet_command == "resume":
        return service.fleet_resume(args.dir, workers=args.workers,
                                    stop_after_shards=args.stop_after,
                                    warm_pool=args.warm_pool,
                                    pool_recycle_tasks=args.pool_recycle_tasks,
                                    pool_max_rss=args.pool_max_rss)
    if args.fleet_command == "status":
        return service.fleet_status(args.dir)
    if args.fleet_command == "report":
        return service.fleet_report(args.dir, as_json=args.json,
                                    with_coverage=args.coverage)
    if args.fleet_command == "workerd":
        # internal: one persistent warm-pool daemon (see fleet/pool.py)
        return service.fleet_workerd(args.dir, args.worker)
    # worker: internal per-shard entry, dispatched by the scheduler
    return service.fleet_worker(args.dir, args.shard)


def cmd_compare(args: argparse.Namespace) -> int:
    """`compare` subcommand: run several variants with a common denominator."""
    names = [v.strip() for v in args.variants.split(",") if v.strip()]
    for v in names:
        if v not in VARIANTS:
            raise SystemExit(f"unknown variant {v!r}; choose from {VARIANTS}")
    results = {}
    for v in names:
        program = load_target(args.target)
        try:
            tester = make_variant(program, v, build_config(args))
            results[v] = tester.run(**budget_kwargs(args))
        finally:
            program.unload()
    reachable = max(r.reachable_branches for r in results.values()) or 1
    rows = [[v, len(r.iterations), r.coverage.covered_static,
             f"{100 * r.coverage.covered_static / reachable:.1f}%",
             len(r.unique_bugs())]
            for v, r in results.items()]
    print(format_table(
        ["variant", "tests", "covered", "of reachable", "bugs"],
        rows, title=f"{args.target}: variant comparison"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="COMPI (IPDPS 2018) reproduction — concolic testing "
                    "for MPI applications")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list available targets")

    p_run = sub.add_parser("run", help="run a COMPI campaign")
    add_common(p_run)
    p_run.add_argument("--save-log", default=None, metavar="PATH",
                       help="stream the campaign to a JSONL log (plus a "
                            "checkpoint sidecar for --resume)")
    p_run.add_argument("--overwrite-log", action="store_true",
                       help="allow --save-log to replace an existing file")
    p_run.add_argument("--resume", action="store_true",
                       help="continue the campaign recorded at --save-log")

    p_cmp = sub.add_parser("compare", help="compare testing variants")
    add_common(p_cmp)
    p_cmp.add_argument("--variants", default="R,Random",
                       help=f"comma list from {', '.join(VARIANTS)}")

    p_rep = sub.add_parser("replay",
                           help="replay a logged error-inducing input")
    add_common(p_rep)
    p_rep.add_argument("--log", required=True,
                       help="campaign JSONL log (see repro.core.persist)")
    p_rep.add_argument("--bug", type=int, default=0,
                       help="bug index within the log")
    p_rep.add_argument("--traceback", action="store_true",
                       help="print the full recorded traceback")

    p_flt = sub.add_parser("faults",
                           help="re-check logged bugs under a fault matrix")
    add_common(p_flt)
    p_flt.add_argument("--log", default=None,
                       help="campaign JSONL log whose bugs to re-check")
    p_flt.add_argument("--kinds", default=None,
                       help="comma subset of fault kinds (default: all)")
    p_flt.add_argument("--list", action="store_true",
                       help="list the injectable fault kinds and exit")

    p_tri = sub.add_parser("triage",
                           help="inspect / replay minimized crash "
                                "reproducer artifacts")
    p_tri.add_argument("action", choices=("list", "show", "replay"),
                       help="list artifacts; show one as JSON; replay one "
                            "in the sandbox and re-check its signature")
    p_tri.add_argument("--log", required=True,
                       help="campaign JSONL log (artifacts live in "
                            "<log>.repro/)")
    p_tri.add_argument("--signature", default=None,
                       help="signature (or unique substring) to select")
    p_tri.add_argument("--index", type=int, default=0,
                       help="artifact index when --signature is not given")
    p_tri.add_argument("--target", default=None, choices=sorted(TARGETS),
                       help="target to replay against (replay only)")
    p_tri.add_argument("--original", action="store_true",
                       help="replay the original crashing inputs instead "
                            "of the minimized ones")

    p_fleet = sub.add_parser(
        "fleet", help="declarative sharded campaign sweeps (fault-tolerant)")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_fr = fleet_sub.add_parser(
        "run", help="expand a fleet spec and run every shard")
    p_fr.add_argument("spec", help="fleet spec file (YAML, or JSON when "
                                   "PyYAML is unavailable)")
    p_fr.add_argument("--dir", required=True, metavar="DIR",
                      help="fleet state directory (manifest + shard logs)")
    p_fr.add_argument("--workers", type=int, default=None,
                      help="concurrent shard workers (default: spec's)")
    p_fr.add_argument("--force", action="store_true",
                      help="replace an existing sweep in --dir")
    p_fr.add_argument("--stop-after", type=int, default=None,
                      help=argparse.SUPPRESS)  # test hook: die mid-sweep
    _add_pool_flags(p_fr)

    p_fres = fleet_sub.add_parser(
        "resume", help="continue a killed sweep (incomplete shards only)")
    p_fres.add_argument("dir", help="fleet state directory")
    p_fres.add_argument("--workers", type=int, default=None,
                        help="concurrent shard workers (default: spec's)")
    p_fres.add_argument("--stop-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    _add_pool_flags(p_fres)

    p_fst = fleet_sub.add_parser(
        "status", help="show shard statuses, attempts, and failures")
    p_fst.add_argument("dir", help="fleet state directory")

    p_frep = fleet_sub.add_parser(
        "report", help="merge shard logs into the deterministic report")
    p_frep.add_argument("dir", help="fleet state directory")
    p_frep.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    p_frep.add_argument("--coverage", action="store_true",
                        help="include the per-target branch-coverage "
                             "union across shards")

    p_fw = fleet_sub.add_parser("worker")  # internal: one shard attempt
    p_fw.add_argument("--dir", required=True)
    p_fw.add_argument("--shard", required=True)

    p_fwd = fleet_sub.add_parser("workerd")  # internal: warm-pool daemon
    p_fwd.add_argument("--dir", required=True)
    p_fwd.add_argument("--worker", type=int, required=True)

    p_cache = sub.add_parser("cache",
                             help="inspect the solver-cache disk tier")
    p_cache.add_argument("action", choices=("stats", "clear"),
                         help="stats: summarize a tier; clear: delete it")
    p_cache.add_argument("--path", required=True,
                         help="JSONL tier written via --solver-cache-path")

    args = parser.parse_args(argv)
    if args.command == "targets":
        return cmd_targets(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "faults":
        return cmd_faults(args)
    if args.command == "cache":
        return cmd_cache(args)
    if args.command == "triage":
        return cmd_triage(args)
    if args.command == "fleet":
        return cmd_fleet(args)
    return cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
