"""Canonical schedule identifiers.

A *schedule* is the sequence of nondeterministic message-match decisions
one execution made.  Each decision is identified by its **site** — the
pair ``(rank, index)`` where ``index`` is that rank's decision counter
(0, 1, 2, ... in program order) — plus the **choice** taken there: the
global source rank and (communicator-keyed) tag of the message that was
matched.

The schedule ID is the canonical text encoding of those tuples, ordered
by site.  Site order is a valid canonical linearization because per-rank
indices follow program order and decisions on *different* ranks are only
taken when the rest of the job is quiescent (see
:mod:`repro.schedules.controller`), so they commute.  The ID is a pure
function of the decisions — independent of seeds, wall time, thread
timing, or iteration number — which is what lets a triage artifact or a
checkpoint re-pin the exact interleaving later.

Wire format (one entry per decision, ``;``-separated)::

    r<rank>.<index>=s<source>.t<tag>

e.g. ``r0.0=s2.t1048577;r0.1=s1.t1048577``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: schedule-entry tuple: (rank, index, source, tag)
Entry = tuple[int, int, int, int]


@dataclass(frozen=True)
class Decision:
    """One committed match decision, with the alternatives that existed."""

    rank: int                         # deciding (receiving) global rank
    index: int                        # per-rank decision counter
    source: int                       # chosen global source rank
    tag: int                          # chosen (communicator-keyed) tag
    #: every (source, tag) pair that was matchable at commit time,
    #: sorted — the alternatives the ScheduleTree will enumerate
    candidates: tuple[tuple[int, int], ...] = ()
    #: True when the choice was prescribed (replay / DFS prefix)
    forced: bool = False
    #: True when a prescribed choice could not be satisfied and the
    #: controller fell back to the canonical choice (divergence)
    fallback: bool = False

    @property
    def site(self) -> tuple[int, int]:
        return (self.rank, self.index)

    def entry(self) -> Entry:
        return (self.rank, self.index, self.source, self.tag)

    def record(self) -> tuple:
        """Plain-tuple form for pickling/JSON round trips."""
        return (self.rank, self.index, self.source, self.tag,
                tuple(self.candidates), self.forced, self.fallback)


def canonical_decisions(decisions: Iterable[Decision]) -> tuple[Decision, ...]:
    """Decisions in canonical (site) order."""
    return tuple(sorted(decisions, key=lambda d: d.site))


def schedule_entries(decisions: Iterable[Decision]) -> tuple[Entry, ...]:
    return tuple(d.entry() for d in canonical_decisions(decisions))


def encode_schedule(entries: Sequence[Entry]) -> str:
    """Entries -> canonical schedule ID string ('' for the root schedule)."""
    ordered = sorted(tuple(e) for e in entries)
    return ";".join(f"r{r}.{i}=s{s}.t{t}" for (r, i, s, t) in ordered)


def decode_schedule(sid: str) -> tuple[Entry, ...]:
    """Schedule ID string -> entry tuples (inverse of encode_schedule)."""
    if not sid:
        return ()
    out = []
    for part in sid.split(";"):
        site_s, choice_s = part.split("=", 1)
        if not (site_s.startswith("r") and choice_s.startswith("s")):
            raise ValueError(f"malformed schedule entry: {part!r}")
        rank_s, index_s = site_s[1:].split(".", 1)
        src_s, tag_s = choice_s[1:].split(".t", 1)
        out.append((int(rank_s), int(index_s), int(src_s), int(tag_s)))
    return tuple(sorted(out))


def normalize_prescription(value) -> tuple[Entry, ...]:
    """Coerce a prescription from any serialized form (string ID, list of
    lists from JSON, tuple of tuples) into canonical entry tuples."""
    if value is None:
        return ()
    if isinstance(value, str):
        return decode_schedule(value)
    return tuple(sorted((int(r), int(i), int(s), int(t))
                        for (r, i, s, t) in value))
