"""Schedule-space exploration: message-interleaving search + replay.

COMPI's campaigns explore the *input* space; this package explores the
*schedule* space — the nondeterministic message-match decisions at
wildcard receives — with deterministic replay.  See docs/SCHEDULES.md.

* :mod:`~repro.schedules.schedule`   — decision records, canonical
  schedule IDs (encode/decode)
* :mod:`~repro.schedules.controller` — the injectable match policy
  (lazy matching; quiesce-stable free decisions; prescription replay)
* :mod:`~repro.schedules.tree`       — ScheduleTree + DFS frontier
"""

from .controller import ReplayController, ScheduleController
from .schedule import (Decision, decode_schedule, encode_schedule,
                       normalize_prescription, schedule_entries)
from .tree import ScheduleExplorer, ScheduleTree

__all__ = [
    "Decision",
    "ReplayController",
    "ScheduleController",
    "ScheduleExplorer",
    "ScheduleTree",
    "decode_schedule",
    "encode_schedule",
    "normalize_prescription",
    "schedule_entries",
]
