"""Schedule tree and DFS frontier over message-interleaving space.

:class:`ScheduleTree` mirrors the role :class:`repro.search.base.ExecutionTree`
plays for the *input* space: it records, per decision prefix, which
choices have been taken or queued, and enumerates the unexplored
alternatives.  A node is one decision prefix; observing an executed
schedule walks the tree along the decisions actually taken and, at each
step, emits a prescription for every candidate ``(source, tag)`` pair
that was matchable there but has not been tried yet — the prefix's
choices plus the one flipped decision, with everything past the flip
left free (the controller decides those canonically, so each
prescription denotes exactly one schedule).

:class:`ScheduleExplorer` owns one tree per distinct input vector
(different inputs give decision sites different meanings, so their
schedule spaces must not be conflated), a LIFO frontier (= DFS order),
and the depth/budget knobs.  Its whole state round-trips through the
campaign checkpoint, which is what makes ``--resume`` continue the
frontier bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Optional

from .schedule import Entry


class _Node:
    """One decision prefix: which follow-up choices exist/are queued."""

    __slots__ = ("children", "explored")

    def __init__(self):
        self.children: dict[tuple, "_Node"] = {}  # (site, choice) -> node
        self.explored: set[tuple[int, int]] = set()  # choices taken/queued

    def count(self) -> int:
        return 1 + sum(c.count() for c in self.children.values())

    def dump(self) -> dict:
        return {"explored": sorted(self.explored),
                "children": [[list(k[0]) + list(k[1]), c.dump()]
                             for k, c in sorted(self.children.items())]}

    @classmethod
    def load(cls, d: dict) -> "_Node":
        node = cls()
        node.explored = {(int(s), int(t)) for s, t in d["explored"]}
        for key, sub in d["children"]:
            r, i, s, t = (int(x) for x in key)
            node.children[((r, i), (s, t))] = cls.load(sub)
        return node


class ScheduleTree:
    """Prefix tree over match decisions for ONE input vector."""

    def __init__(self, depth: int):
        self.depth = max(1, int(depth))
        self.root = _Node()
        self.schedules_seen = 0

    def observe(self, decisions: tuple) -> list[tuple[Entry, ...]]:
        """Walk an executed schedule; return prescriptions for every
        newly discovered alternative, shallowest first.

        ``decisions`` are canonical plain records
        ``(rank, index, source, tag, candidates, forced, fallback)``.
        """
        self.schedules_seen += 1
        fresh: list[tuple[Entry, ...]] = []
        node = self.root
        prefix: list[Entry] = []
        for rec in decisions[:self.depth]:
            rank, index, source, tag = rec[0], rec[1], rec[2], rec[3]
            candidates = tuple(tuple(c) for c in rec[4])
            choice = (source, tag)
            for alt in sorted(candidates):
                if alt == choice or alt in node.explored:
                    continue
                node.explored.add(alt)
                fresh.append(tuple(prefix) +
                             ((rank, index, alt[0], alt[1]),))
            node.explored.add(choice)
            key = ((rank, index), choice)
            child = node.children.get(key)
            if child is None:
                child = _Node()
                node.children[key] = child
            node = child
            prefix.append((rank, index, source, tag))
        return fresh

    def node_count(self) -> int:
        return self.root.count()

    def state_dict(self) -> dict:
        return {"depth": self.depth, "seen": self.schedules_seen,
                "root": self.root.dump()}

    @classmethod
    def from_state(cls, d: dict) -> "ScheduleTree":
        tree = cls(d["depth"])
        tree.schedules_seen = int(d.get("seen", 0))
        tree.root = _Node.load(d["root"])
        return tree


class ScheduleExplorer:
    """DFS frontier of unexplored interleavings across a campaign.

    The engine feeds every committed iteration through :meth:`note`;
    the scheduler drains :meth:`next_testcase` before deriving new
    input-space candidates, so discovered interleavings are exhausted
    depth-first (up to ``budget`` scheduled runs, ``depth`` decisions
    per run) while input search continues underneath.
    """

    def __init__(self, budget: int, depth: int):
        self.budget = max(0, int(budget))
        self.depth = max(1, int(depth))
        self._trees: dict[str, ScheduleTree] = {}
        #: LIFO of (base testcase, prescription) — pop order is DFS
        self._stack: list[tuple[Any, tuple[Entry, ...]]] = []
        self.launched = 0
        self.divergences = 0
        self.fallbacks = 0

    # -- feeding --------------------------------------------------------
    @staticmethod
    def _key(testcase: Any) -> str:
        return json.dumps([sorted(testcase.inputs.items()),
                           testcase.setup.nprocs, testcase.setup.focus])

    def note(self, testcase: Any, decisions: tuple,
             divergences: int = 0, fallbacks: int = 0) -> None:
        """Absorb one executed schedule (any origin, scheduled or not)."""
        self.divergences += int(divergences)
        self.fallbacks += int(fallbacks)
        if not decisions:
            return
        base = replace(testcase, schedule=())
        tree = self._trees.get(self._key(base))
        if tree is None:
            tree = ScheduleTree(self.depth)
            self._trees[self._key(base)] = tree
        for prescription in tree.observe(decisions):
            self._stack.append((base, prescription))

    # -- draining -------------------------------------------------------
    def next_testcase(self) -> Optional[Any]:
        if self.launched >= self.budget or not self._stack:
            return None
        base, prescription = self._stack.pop()
        self.launched += 1
        return replace(base, schedule=prescription, origin="schedule",
                       negated_site=None)

    def frontier_size(self) -> int:
        return len(self._stack)

    def telemetry(self) -> dict:
        return {
            "explored": self.launched,
            "frontier": len(self._stack),
            "trees": len(self._trees),
            "decision_nodes": sum(t.node_count()
                                  for t in self._trees.values()),
            "schedules_seen": sum(t.schedules_seen
                                  for t in self._trees.values()),
            "divergences": self.divergences,
            "fallbacks": self.fallbacks,
        }

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "budget": self.budget,
            "depth": self.depth,
            "launched": self.launched,
            "divergences": self.divergences,
            "fallbacks": self.fallbacks,
            "stack": [(tc, tuple(p)) for tc, p in self._stack],
            "trees": {k: t.state_dict() for k, t in self._trees.items()},
        }

    def load_state(self, state: dict) -> None:
        self.budget = int(state["budget"])
        self.depth = int(state["depth"])
        self.launched = int(state["launched"])
        self.divergences = int(state.get("divergences", 0))
        self.fallbacks = int(state.get("fallbacks", 0))
        self._stack = [(tc, tuple(tuple(e) for e in p))
                       for tc, p in state["stack"]]
        self._trees = {k: ScheduleTree.from_state(d)
                       for k, d in state["trees"].items()}
