"""Match-policy controllers: deterministic wildcard-receive scheduling.

Lazy matching, as in MPISE: receives with a concrete source are matched
eagerly (per-sender FIFO makes them deterministic — the non-overtaking
rule), and only ``ANY_SOURCE`` receives (and ``waitany`` over wildcard
``Irecv`` s) become *decision points*.  At a decision point the
controller either applies a **prescription** (replaying a recorded
schedule, or forcing a DFS prefix plus one flipped choice) or makes a
**free** decision.

Free decisions are the part that must be deterministic: "match whatever
arrived first" depends on thread timing and would break the repo's
fixed-seed ⇒ byte-identical-log invariant.  The controller therefore
only commits a free decision under *stable global quiesce*:

* every other live rank is either finished or registered blocked in the
  wait-for graph (so no message is in flight and none can be produced
  until we act), observed identical on two consecutive polls;
* among ranks simultaneously parked at free decision points with
  candidates, the lowest rank decides first (min-rank arbitration).

Under quiesce the candidate set is maximal and a pure function of the
program, its inputs, and the decisions taken so far — so the canonical
choice (minimum ``(source, tag)`` pair, then the earliest send within
that pair) reproduces bit-for-bit, and every alternative the
``ScheduleTree`` later forces is a message that provably *was* pending.

Two escape hatches keep pathological programs from hanging the run,
both counted and surfaced in telemetry:

* a rank that never blocks (uninstrumented compute loop) can make
  quiesce unreachable — after ``fallback`` seconds at a decision point
  the controller decides anyway (``fallbacks`` counter);
* a prescribed choice that never becomes matchable (the program
  diverged from the recorded run) is replaced by the canonical free
  choice once the world is provably quiescent without it
  (``divergences`` counter).

Lock order: mailbox condition -> controller lock -> wait-graph lock.
``select`` runs with the receiving mailbox's condition held (it indexes
the message list directly); it never touches another mailbox.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional, Sequence

from ..mpi.errors import MpiShutdown
from ..mpi.status import ANY_SOURCE, ANY_TAG
from ..mpi.waitgraph import RecvWait
from .schedule import (Decision, canonical_decisions, encode_schedule,
                       normalize_prescription, schedule_entries)

#: poll interval while parked at a decision point — short, so the
#: two-observation quiesce check settles fast
_DECISION_POLL = 0.01


class _Pending:
    """Per-rank stability state while parked at one decision point."""

    __slots__ = ("first", "key", "seen")

    def __init__(self, now: float):
        self.first = now          # when this rank first saw a candidate
        self.key = None           # (world token, candidate set) last poll
        self.seen = 0             # consecutive polls with identical key


class ScheduleController:
    """Injectable match policy for one job execution."""

    def __init__(self, prescription: Sequence = (), fallback: float = 1.0):
        self._prescription = {(r, i): (s, t)
                              for (r, i, s, t)
                              in normalize_prescription(prescription)}
        self._fallback = float(fallback)
        self._lock = threading.RLock()
        self._job: Optional[Any] = None
        self._counters: dict[int, int] = {}       # rank -> next decision index
        self._decisions: list[Decision] = []
        self._free_waiting: dict[int, bool] = {}  # rank -> has candidates
        self._pending: dict[int, _Pending] = {}
        self.divergences = 0
        self.fallbacks = 0

    # -- wiring ---------------------------------------------------------
    def bind_job(self, job: Any) -> None:
        self._job = job

    # -- results --------------------------------------------------------
    def decisions(self) -> tuple[Decision, ...]:
        with self._lock:
            return canonical_decisions(self._decisions)

    def decision_records(self) -> tuple[tuple, ...]:
        return tuple(d.record() for d in self.decisions())

    def schedule_id(self) -> str:
        return encode_schedule(schedule_entries(self.decisions()))

    # -- decision-point protocol ---------------------------------------
    def select(self, mailbox: Any, source: int, tag: int,
               tag_range: Optional[tuple[int, int]]) -> Optional[int]:
        """Called from ``Mailbox.receive`` (condition held) for indefinite
        ``ANY_SOURCE`` receives.  Returns the message index to pop, or
        ``None`` to keep waiting."""
        rank = mailbox.owner_rank
        cands = self._candidates(mailbox, source, tag, tag_range)
        with self._lock:
            choice = self._decide(rank, cands)
        if choice is None:
            return None
        return cands[choice][0]

    def waitany(self, requests: Sequence[Any]) -> Optional[tuple[int, Any]]:
        """Scheduled ``MPI_Waitany``: one decision point covering every
        pending wildcard request.  Returns ``(index, payload)``, or
        ``None`` when the request mix is not schedulable (the caller
        falls back to the legacy polling loop)."""
        metas = [getattr(r, "_sched", None) for r in requests]
        mbox = None
        for r, meta in zip(requests, metas):
            if r.done:
                continue
            if meta is None or meta[1] != ANY_SOURCE:
                return None
            if mbox is None:
                mbox = meta[0]
            elif meta[0] is not mbox:
                return None
        if mbox is None:  # everything already complete: lowest index wins
            return 0, requests[0].wait()
        rank = mbox.owner_rank
        waitgraph = self._job.waitgraph if self._job is not None else None
        registered = False
        try:
            with mbox._cond:
                while True:
                    for qi, r in enumerate(requests):
                        if r.done:
                            return qi, r.wait()
                    cands: dict = {}
                    owner: dict = {}
                    for qi, meta in enumerate(metas):
                        sub = self._candidates(mbox, ANY_SOURCE,
                                               meta[2], meta[3])
                        for key in sub:
                            if key not in cands:
                                cands[key] = sub[key]
                                owner[key] = qi
                    with self._lock:
                        choice = self._decide(rank, cands)
                    if choice is not None:
                        qi = owner[choice]
                        break
                    if mbox._stop.is_set():
                        raise MpiShutdown(
                            f"rank {rank} interrupted in waitany")
                    if waitgraph is not None and not registered:
                        waitgraph.block(rank, RecvWait(
                            rank=rank, source=ANY_SOURCE, tag=ANY_TAG,
                            tag_range=None))
                        registered = True
                    mbox._cond.wait(_DECISION_POLL)
        finally:
            if registered:
                waitgraph.unblock(rank)
        return qi, requests[qi].wait(_pin=choice)

    # -- internals ------------------------------------------------------
    @staticmethod
    def _candidates(mailbox: Any, source: int, tag: int,
                    tag_range: Optional[tuple[int, int]]) -> dict:
        """Matchable ``(source, tag) -> (earliest index, earliest seq)``.

        Taking the earliest *send* within the chosen pair preserves the
        per-sender FIFO (non-overtaking) rule whatever pair is chosen.
        """
        best: dict[tuple[int, int], tuple[int, int]] = {}
        for i, m in enumerate(mailbox._messages):
            if source != ANY_SOURCE and m.source != source:
                continue
            if tag != ANY_TAG:
                if m.tag != tag:
                    continue
            elif tag_range is not None and not (
                    tag_range[0] <= m.tag < tag_range[1]):
                continue
            key = (m.source, m.tag)
            cur = best.get(key)
            if cur is None or m.seq < cur[1]:
                best[key] = (i, m.seq)
        return best

    def _decide(self, rank: int,
                cands: dict) -> Optional[tuple[int, int]]:
        """One poll of the decision protocol (controller lock held)."""
        site = (rank, self._counters.get(rank, 0))
        forced = self._prescription.get(site)
        if forced is not None:
            if forced in cands:
                self._commit(site, forced, cands, forced=True)
                return forced
            if cands and self._stable_quiesce(rank, cands, free=False):
                # prescribed message provably can't arrive: diverge
                choice = min(cands)
                self.divergences += 1
                self._commit(site, choice, cands, forced=True, fallback=True)
                return choice
            return None
        self._free_waiting[rank] = bool(cands)
        if not cands:
            self._pending.pop(rank, None)
            return None
        if self._stable_quiesce(rank, cands, free=True):
            choice = min(cands)
            self._commit(site, choice, cands, forced=False)
            return choice
        return None

    def _commit(self, site: tuple[int, int], choice: tuple[int, int],
                cands: dict, forced: bool, fallback: bool = False) -> None:
        rank, index = site
        self._counters[rank] = index + 1
        self._decisions.append(Decision(
            rank=rank, index=index, source=choice[0], tag=choice[1],
            candidates=tuple(sorted(cands)), forced=forced,
            fallback=fallback))
        self._free_waiting.pop(rank, None)
        self._pending.pop(rank, None)

    def _world_token(self, rank: int) -> Optional[tuple]:
        """A stable token when every other live rank is finished or
        blocked; ``None`` while anyone may still be producing messages."""
        job = self._job
        if job is None or getattr(job, "waitgraph", None) is None:
            return None
        waits, version = job.waitgraph.snapshot()
        finished = job.finished_ranks()
        for r in range(job.size):
            if r == rank or r in finished:
                continue
            if r not in waits:
                return None
        return (version, tuple(sorted(finished)))

    def _stable_quiesce(self, rank: int, cands: dict, free: bool) -> bool:
        now = time.monotonic()
        state = self._pending.get(rank)
        if state is None:
            state = _Pending(now)
            self._pending[rank] = state
        token = self._world_token(rank)
        if token is not None:
            if free:
                eligible = [r for r, has in self._free_waiting.items() if has]
                if eligible and min(eligible) != rank:
                    return False  # a lower rank decides first
            elif any(has for r, has in self._free_waiting.items()
                     if r != rank):
                return False  # let free deciders move the world first
            key = (token, tuple(sorted(cands)))
            state.seen = state.seen + 1 if state.key == key else 1
            state.key = key
            if state.seen >= 2:
                return True
        else:
            state.key, state.seen = None, 0
        if free and now - state.first >= self._fallback:
            self.fallbacks += 1  # quiesce unreachable (compute-bound peer)
            return True
        return False


class ReplayController(ScheduleController):
    """A controller whose prescription is a *complete* recorded schedule.

    Mechanically identical to :class:`ScheduleController` — every
    decision site is found in the prescription, so the run re-pins the
    recorded interleaving end to end; ``divergences`` staying 0 is the
    signal that the replay was exact.
    """
