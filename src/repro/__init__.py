"""COMPI — Concolic Testing for MPI Applications (IPDPS 2018), a complete
Python reproduction.

Subpackages:

* ``repro.mpi``        — virtual in-process MPI runtime (threads as ranks)
* ``repro.instrument`` — AST instrumentation (the CIL analog)
* ``repro.concolic``   — symbolic proxies, traces, coverage, reduction
* ``repro.solver``     — linear-integer constraint solver (Yices stand-in)
* ``repro.search``     — DFS/BoundedDFS, random, CFG search strategies
* ``repro.core``       — the COMPI tool: config, loop, runner, reports
* ``repro.baselines``  — random testing and ablation variants
* ``repro.targets``    — SUSY-HMC / HPL / IMB-MPI1 reimplementations
* ``repro.analysis``   — SLOC and complexity accounting (Table III)

Quickstart::

    from repro import Compi, CompiConfig, instrument_program

    program = instrument_program(["repro.targets.demo"])
    result = Compi(program, CompiConfig(seed=0)).run(iterations=50)
    print(result.covered, "branches covered;", len(result.unique_bugs()), "bugs")
"""

from .core import Compi, CompiConfig
from .instrument import instrument_program

__version__ = "1.0.0"
__all__ = ["Compi", "CompiConfig", "instrument_program", "__version__"]
