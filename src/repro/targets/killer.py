"""A target that hard-kills its own process on a reachable input.

The virtual MPI substrate runs every rank as a thread of the campaign
process, so ``os._exit`` here takes the *whole tool* down — exactly the
failure mode real MPI targets exhibit (``MPI_Abort`` from C code, a
segfault in a native extension, a launcher ``exit()``).  This target
exists to exercise the supervision layer (:mod:`repro.supervise`): the
concolic search starts from the safe default ``x = 10``, negates the
``x > 0`` sanity branch, and the solver hands back an input that kills
the executing process mid-iteration.

* unsupervised serial campaigns die on it — run with ``--sandbox``;
* pool workers die with ``BrokenProcessPool`` — the parallel executor
  re-runs the suspect in the forked sandbox, confirms the kill,
  synthesizes a ``worker-killed`` outcome and quarantines the input.

The surviving branches (the ``y`` comparison and the work loop) give the
campaign ordinary coverage to keep making progress on after the killer
input is quarantined.
"""

import os

from repro.concolic.marking import compi_int

INPUT_SPEC = {
    "x": {"default": 10, "lo": -100, "hi": 100},
    "y": {"default": 5, "lo": -100, "hi": 100},
}


def main(mpi, args):
    """Sanity-check ``x``, hard-exit on failure, then do a little work."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)

    x = compi_int(args["x"], "x")
    y = compi_int(args["y"], "y")

    if x <= 0:                        # condition 0: the kill branch
        # a real target would MPI_Abort / exit() from native code here;
        # bypass Python teardown so no exception can be classified
        os._exit(1)

    if y > 10:                        # condition 1
        work = x + y
    else:
        work = x - y

    i = 0
    while i < x % 7:                  # condition 2: bounded work loop
        work += rank
        i += 1

    mpi.Finalize()
    return 0
