"""Panel factorization: recursive rfact over pfact base cases.

HPL factors each ``nb``-wide panel recursively: the panel splits into
``ndiv`` parts until narrower than ``nbmin``, then a base variant factors
the leaf — left-looking, Crout, or right-looking (``PFACT``); the
recursive combining step comes in the same three flavours (``RFACT``).
We reproduce that structure on the *gathered* panel (an ``m × w`` numpy
block, partial pivoting over rows).

Every variant computes the same factorization (PA = LU with unit-lower L
stored below the diagonal); they differ in update *order*, which makes
them distinct branch territory for a testing tool while staying
numerically verifiable.
"""

import numpy as np

TINY = 1e-300


def _pivot_and_scale(a, j, pivots):
    """Pick the partial pivot for column ``j``, swap, scale the column."""
    k = int(np.argmax(np.abs(a[j:, j]))) + j
    pivots.append(k)
    if k != j:
        a[[j, k], :] = a[[k, j], :]
    pivot = a[j, j]
    if abs(pivot) < TINY:
        a[j, j] = TINY if pivot >= 0 else -TINY
        pivot = a[j, j]
    a[j + 1:, j] /= pivot


def factor_left(a, pivots):
    """Left-looking: defer updates; catch a column up just before use."""
    w = a.shape[1]
    j = 0
    while j < w:
        if j > 0:
            # y ← L[:j,:j]⁻¹ a[:j,j]   (unit lower triangular solve)
            i = 1
            while i < j:
                a[i, j] -= a[i, :i] @ a[:i, j]
                i += 1
            a[j:, j] -= a[j:, :j] @ a[:j, j]
        _pivot_and_scale(a, j, pivots)
        j += 1
    return a


def factor_crout(a, pivots):
    """Crout: at step j update column j and row j, nothing trailing."""
    w = a.shape[1]
    j = 0
    while j < w:
        if j > 0:
            a[j:, j] -= a[j:, :j] @ a[:j, j]
        _pivot_and_scale(a, j, pivots)
        if j + 1 < w:
            a[j, j + 1:] -= a[j, :j] @ a[:j, j + 1:]
        j += 1
    return a


def factor_right(a, pivots):
    """Right-looking: eager rank-1 update of the trailing block."""
    w = a.shape[1]
    j = 0
    while j < w:
        _pivot_and_scale(a, j, pivots)
        if j + 1 < w:
            a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])
        j += 1
    return a


def _base_factor(a, pfact, pivots):
    if pfact == 0:
        factor_left(a, pivots)
    elif pfact == 1:
        factor_crout(a, pivots)
    else:
        factor_right(a, pivots)


def _trsm_lower_unit(l, b):
    """b ← L⁻¹ b for unit lower-triangular L (in place)."""
    n = l.shape[0]
    i = 1
    while i < n:
        b[i, :] -= l[i, :i] @ b[:i, :]
        i += 1


def _combine(a, done, jb, rfact):
    """After factoring ``a[done:, done:done+jb]``: transform the columns to
    its right and update the trailing block.  The three RFACT flavours
    order the work differently but compute the same thing."""
    w = a.shape[1]
    if done + jb >= w:
        return
    lower = a[done:done + jb, done:done + jb]
    right = a[done:done + jb, done + jb:]
    tail_rows = a[done + jb:, done:done + jb]
    if rfact == 0:
        # left-flavoured: solve, then update column block by column block
        _trsm_lower_unit(lower, right)
        col = done + jb
        while col < w:
            hi = min(col + jb, w)
            a[done + jb:, col:hi] -= tail_rows @ a[done:done + jb, col:hi]
            col = hi
    elif rfact == 1:
        # Crout-flavoured: interleave solve and update per column block
        col = done + jb
        while col < w:
            hi = min(col + jb, w)
            _trsm_lower_unit(lower, a[done:done + jb, col:hi])
            a[done + jb:, col:hi] -= tail_rows @ a[done:done + jb, col:hi]
            col = hi
    else:
        # right-flavoured: one solve, one eager GEMM
        _trsm_lower_unit(lower, right)
        a[done + jb:, done + jb:] -= tail_rows @ right


def _apply_subpivots(a, done, jb, sub_piv, pivots):
    """Extend the sub-panel's row swaps to the full panel width."""
    w = a.shape[1]
    jj = 0
    while jj < len(sub_piv):
        k = sub_piv[jj]
        if k != jj:
            r1, r2 = done + jj, done + k
            a[[r1, r2], :done] = a[[r2, r1], :done]
            if done + jb < w:
                a[[r1, r2], done + jb:] = a[[r2, r1], done + jb:]
        pivots.append(done + k)
        jj += 1


def _recurse(a, pfact, rfact, nbmin, ndiv, pivots):
    w = a.shape[1]
    if w <= nbmin or w <= 1:
        _base_factor(a, pfact, pivots)
        return
    part = max(1, w // ndiv)
    done = 0
    while done < w:
        jb = min(part, w - done)
        sub = a[done:, done:done + jb]
        sub_piv = []
        _recurse(sub, pfact, rfact, nbmin, ndiv, sub_piv)
        _apply_subpivots(a, done, jb, sub_piv, pivots)
        _combine(a, done, jb, rfact)
        done += jb


def factor_panel(a, pfact, rfact, nbmin, ndiv):
    """Recursively factor the gathered panel ``a`` in place.

    Returns the pivot list: ``pivots[j]`` is the panel-local row swapped
    into position ``j`` at elimination step ``j``.
    """
    pivots = []
    _recurse(a, int(pfact), int(rfact), max(1, int(nbmin)), max(2, int(ndiv)),
             pivots)
    return pivots


def reconstruct(a_factored, pivots, original):
    """Testing helper: verify PA = LU.

    Applies ``pivots`` to ``original`` and compares with L@U from the
    factored panel.  Returns the max abs error.
    """
    m, w = a_factored.shape
    perm = original.copy()
    for j, k in enumerate(pivots):
        if k != j:
            perm[[j, k], :] = perm[[k, j], :]
    l = np.tril(a_factored[:, :w], -1)[:m, :]
    np.fill_diagonal(l[:w, :], 0.0)
    l_full = np.eye(m, w) + l
    u = np.triu(a_factored[:w, :w])
    return float(np.max(np.abs(l_full @ u - perm[:, :w])))
