"""Distributed block-cyclic LU factorization + solve + verification.

The computational core of the HPL target.  Data layout: the augmented
matrix ``[A | b]`` (``n × (n+1)``) is split into ``nb × nb`` blocks;
block ``(I, J)`` lives on grid rank ``(I mod P, J mod Q)``.  The right-
looking factorization loop per panel ``k``:

1. the owning grid column gathers panel ``k`` to the diagonal row's rank,
   which factors it (recursive RFACT over PFACT base cases);
2. factored panel + pivots broadcast down the column, then across the
   rows with the selected BCAST variant (optionally transposed — L1FORM);
3. every rank applies the pivot swaps to its trailing columns (SWAP
   variants) and refreshes its panel-column blocks;
4. the pivot row's grid row triangular-solves its trailing blocks into U
   (optionally transposed — UFORM) and broadcasts them down the columns;
5. everyone GEMM-updates its trailing blocks; with DEPTH=1 the next
   panel's column is updated *first* (lookahead code path).

The b column rides along as the last column of the trailing matrix, so
after the loop it holds ``y = L⁻¹Pb``; back-substitution and the residual
check happen on the gathered result at grid rank (0,0).
"""

import numpy as np

from .bcast import bcast_panel
from .swap import apply_swaps

TAG_GATHER = 21
EPS = np.finfo(np.float64).eps


# ----------------------------------------------------------------------
# deterministic matrix generation (the HPL_pdmatgen analog)
# ----------------------------------------------------------------------
def gen_block(i0, i1, j0, j1, n, seed):
    """Entries of the augmented matrix for global index ranges.

    Pseudo-random in [-0.5, 0.5) from a trigonometric hash; the diagonal
    gets ``+n`` so the system is diagonally dominant (no pathological
    pivots in testing runs).  Column ``n`` is the right-hand side b.
    """
    ii = np.arange(i0, i1, dtype=np.float64)[:, None]
    jj = np.arange(j0, j1, dtype=np.float64)[None, :]
    v = np.sin(ii * 12.9898 + jj * 78.233 + float(seed) * 0.6180339887) * 43758.5453
    a = v - np.floor(v) - 0.5
    diag = (ii == jj)
    if np.any(diag):
        a = a + diag * float(n)
    return a


def block_extents(I, J, n, nb):
    """Global (row, col) index ranges of block (I, J)."""
    i0, i1 = I * nb, min((I + 1) * nb, n)
    j0, j1 = J * nb, min((J + 1) * nb, n + 1)
    return i0, i1, j0, j1


class LocalBlocks:
    """This rank's slice of the block-cyclic matrix."""

    def __init__(self, n, nb, grid, seed):
        self.n = int(n)
        self.nb = int(nb)
        self.grid = grid
        self.blocks = {}
        nblk_rows = _nblocks(self.n, self.nb)
        nblk_cols = _nblocks(self.n + 1, self.nb)
        I = 0
        while I < nblk_rows:
            if I % grid.nprow == grid.myrow:
                J = 0
                while J < nblk_cols:
                    if J % grid.npcol == grid.mycol:
                        i0, i1, j0, j1 = block_extents(I, J, self.n, self.nb)
                        if i1 > i0 and j1 > j0:
                            self.blocks[(I, J)] = gen_block(i0, i1, j0, j1,
                                                            self.n, seed)
                    J += 1
            I += 1

    # -- row access over the trailing column range ----------------------
    def get_row(self, r, col_from):
        """Concatenated local slice of global row ``r`` restricted to
        global columns >= ``col_from`` (None if no such columns here)."""
        I = r // self.nb
        parts = []
        for (bi, bj), blk in sorted(self.blocks.items()):
            if bi != I:
                continue
            i0, i1, j0, j1 = block_extents(bi, bj, self.n, self.nb)
            lo = max(j0, col_from)
            if lo >= j1:
                continue
            parts.append(blk[r - i0, lo - j0:])
        if not parts:
            return None
        return np.concatenate(parts)

    def set_row(self, r, data, col_from):
        I = r // self.nb
        at = 0
        for (bi, bj), blk in sorted(self.blocks.items()):
            if bi != I:
                continue
            i0, i1, j0, j1 = block_extents(bi, bj, self.n, self.nb)
            lo = max(j0, col_from)
            if lo >= j1:
                continue
            w = j1 - lo
            blk[r - i0, lo - j0:] = data[at:at + w]
            at += w


def _nblocks(count, nb):
    return (count + nb - 1) // nb


# ----------------------------------------------------------------------
# the factorization driver
# ----------------------------------------------------------------------
def factorize(mpi, grid, local, params, timers=None):
    """Right-looking LU over the block-cyclic layout (in place).

    ``timers`` is an optional :class:`~repro.targets.hpl.timers.PhaseTimers`
    collecting the per-phase breakdown real HPL reports.
    """
    from .timers import PhaseTimers

    timers = timers or PhaseTimers()
    n, nb = local.n, local.nb
    depth = int(params.depth)
    sym_n = params.n                     # symbolic: the loop bound below is
    # the C original's `for (j = 0; j < N; j += NB)` — comparing against
    # the *marked* N keeps the panel loop's exit constraint linear in N
    k = 0
    while k * nb < sym_n:
        kq = k % grid.npcol
        krow = k % grid.nprow
        w = min(nb, n - k * nb)          # panel width (A columns only)
        trailing_from = k * nb + w
        with timers.phase("pfact"):
            panel, pivots = _factor_and_spread(mpi, grid, local, params, k,
                                               kq, krow, w)
        _refresh_panel_column(grid, local, k, kq, panel, w)
        with timers.phase("swap"):
            apply_swaps(grid.col_comm, grid.myrow, grid.nprow, nb, k, pivots,
                        lambda r: local.get_row(r, trailing_from),
                        lambda r, d: local.set_row(r, d, trailing_from),
                        params.swap, params.swap_threshold, w)
        with timers.phase("bcast"):
            u_blocks = _compute_and_spread_u(grid, local, params, k, krow, w,
                                             trailing_from, panel)
        with timers.phase("update"):
            if depth == 1 and (k + 1) * nb < n:
                # lookahead: bring the next panel's column up to date first
                _update_trailing(local, grid, k, w, trailing_from, panel,
                                 u_blocks, only_block_col=k + 1)
                _update_trailing(local, grid, k, w, trailing_from, panel,
                                 u_blocks, skip_block_col=k + 1)
            else:
                _update_trailing(local, grid, k, w, trailing_from, panel,
                                 u_blocks)
        k += 1


def _gather_panel(grid, local, k, w):
    """Column members ship their panel rows to the column root (grid row
    k % P); returns (panel, row_offsets) on the root, (None, None) off it."""
    n, nb = local.n, local.nb
    mine = []
    for (bi, bj), blk in sorted(local.blocks.items()):
        if bj != k:                      # only the panel's block column
            continue
        if bi < k:
            continue
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        mine.append((i0, blk[:, :w].copy()))
    gathered = grid.col_comm.Gather(mine, root=k % grid.nprow)
    if gathered is None:
        return None
    pieces = []
    for contrib in gathered:
        pieces.extend(contrib)
    pieces.sort(key=lambda t: t[0])
    panel = np.concatenate([p for (_i0, p) in pieces], axis=0)
    return panel


def _factor_and_spread(mpi, grid, local, params, k, kq, krow, w):
    """Gather → factor → column bcast → row bcast.  Returns (panel, pivots)
    everywhere on the grid."""
    from .panel import factor_panel

    if grid.mycol == kq:
        panel = _gather_panel(grid, local, k, w)
        if grid.myrow == krow:
            pivots = factor_panel(panel, params.pfact, params.rfact,
                                  params.nbmin, params.ndiv)
        else:
            panel, pivots = None, None
        package = grid.col_comm.Bcast((panel, pivots), root=krow)
        panel, pivots = package
        if int(params.l1form) == 1:
            # transposed-L storage: ship the panel transposed
            payload = (np.ascontiguousarray(panel.T), pivots, True)
        else:
            payload = (panel, pivots, False)
    else:
        payload = None
    payload = bcast_panel(mpi, grid.row_comm, kq, payload, params.bcast)
    panel, pivots, transposed = payload
    if transposed:
        panel = np.ascontiguousarray(panel.T)
    return panel, pivots


def _refresh_panel_column(grid, local, k, kq, panel, w):
    """Owners of block column ``k`` overwrite their blocks with the
    factored panel values (rows are panel-internal, already pivoted)."""
    if grid.mycol != kq:
        return
    n, nb = local.n, local.nb
    base = k * nb
    for (bi, bj), blk in sorted(local.blocks.items()):
        if bj != k or bi < k:
            continue
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        blk[:, :w] = panel[i0 - base:i1 - base, :]


def _compute_and_spread_u(grid, local, params, k, krow, w, trailing_from,
                          panel):
    """Pivot grid row solves U for its trailing blocks, then broadcasts
    each down its column.  Returns {J: U_block} for this rank's columns."""
    n, nb = local.n, local.nb
    l_kk = panel[:w, :w]
    u_blocks = {}
    my_u = {}
    if grid.myrow == krow:
        for (bi, bj), blk in sorted(local.blocks.items()):
            if bi != k:
                continue
            i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
            lo = max(j0, trailing_from)
            if lo >= j1:
                continue
            u = blk[:, lo - j0:]
            _trsm_lower_unit_rows(l_kk, u)
            blk[:, lo - j0:] = u
            my_u[bj] = u
    # Column broadcast of each U block from the pivot row.  The column
    # list must be derived from the GLOBAL layout (not from the blocks
    # this rank happens to store): every member of the column communicator
    # has to join every Bcast, even a grid row with no local blocks.
    nblk_cols = _nblocks(n + 1, nb)
    cols_here = [J for J in range(nblk_cols)
                 if J % grid.npcol == grid.mycol
                 and max(J * nb, trailing_from) < min((J + 1) * nb, n + 1)]
    for J in cols_here:
        payload = my_u.get(J) if grid.myrow == krow else None
        if int(params.uform) == 1 and payload is not None:
            payload = ("T", np.ascontiguousarray(payload.T))
        elif payload is not None:
            payload = ("N", payload)
        got = grid.col_comm.Bcast(payload, root=krow)
        form, data = got
        u_blocks[J] = np.ascontiguousarray(data.T) if form == "T" else data
    return u_blocks


def _has_trailing(bi, bj, local, trailing_from):
    _i0, _i1, j0, j1 = block_extents(bi, bj, local.n, local.nb)
    return max(j0, trailing_from) < j1


def _update_trailing(local, grid, k, w, trailing_from, panel, u_blocks,
                     only_block_col=None, skip_block_col=None):
    """A[I, J](trailing) -= L[I] @ U[J] for local blocks below the pivot."""
    n, nb = local.n, local.nb
    base = k * nb
    for (bi, bj), blk in sorted(local.blocks.items()):
        if bi <= k:
            continue
        if only_block_col is not None and bj != only_block_col:
            continue
        if skip_block_col is not None and bj == skip_block_col:
            continue
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        lo = max(j0, trailing_from)
        if lo >= j1:
            continue
        l_part = panel[i0 - base:i1 - base, :w]
        # u_blocks[bj] covers exactly this block's trailing column range
        # (both sides computed lo = max(j0, trailing_from))
        blk[:, lo - j0:] -= l_part @ u_blocks[bj]


def _trsm_lower_unit_rows(l, b):
    """b ← L⁻¹ b for unit-lower L (in place, row recurrence)."""
    m = l.shape[0]
    i = 1
    while i < m:
        b[i, :] -= l[i, :i] @ b[:i, :]
        i += 1


# ----------------------------------------------------------------------
# back substitution + verification (on the gathered result)
# ----------------------------------------------------------------------
def gather_matrix(grid, local):
    """Assemble the full factored augmented matrix at grid rank (0, 0)."""
    contrib = [(bi, bj, blk) for (bi, bj), blk in sorted(local.blocks.items())]
    gathered = grid.grid_comm.Gather(contrib, root=0)
    if gathered is None:
        return None
    n, nb = local.n, local.nb
    full = np.zeros((n, n + 1))
    for part in gathered:
        for bi, bj, blk in part:
            i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
            full[i0:i1, j0:j1] = blk
    return full


def back_substitute(full, n):
    """Solve U x = y from the factored augmented matrix."""
    x = np.zeros(n)
    y = full[:, n]
    i = n - 1
    while i >= 0:
        s = y[i] - full[i, i + 1:n] @ x[i + 1:]
        x[i] = s / full[i, i]
        i -= 1
    return x


def residual_check(n, seed, x, threshold):
    """HPL's scaled residual: ||Ax-b||∞ / (eps·(||A||∞·||x||∞+||b||∞)·n)."""
    a = gen_block(0, n, 0, n, n, seed)
    b = gen_block(0, n, n, n + 1, n, seed)[:, 0]
    r = a @ x - b
    denom = EPS * (np.abs(a).sum(axis=1).max() * np.abs(x).max()
                   + np.abs(b).max()) * max(n, 1)
    resid = float(np.abs(r).max() / denom) if denom > 0 else 0.0
    return resid, resid < float(threshold)
