"""P×Q process grid construction (``HPL_grid_init`` analog).

Ranks ``0 .. p*q-1`` form the grid; surplus ranks sit out (HPL does the
same when the world is larger than P×Q).  ``pmap`` selects row-major or
column-major placement.  Row and column communicators come from
``MPI_Comm_split`` — which is exactly where COMPI's ``rc`` (local rank)
marking and the local→global mapping table come into play.
"""


class Grid:
    """One rank's view of the process grid."""

    __slots__ = ("nprow", "npcol", "myrow", "mycol", "row_comm", "col_comm",
                 "in_grid", "grid_comm")

    def __init__(self, nprow, npcol, myrow, mycol, row_comm, col_comm,
                 in_grid, grid_comm):
        self.nprow = nprow
        self.npcol = npcol
        self.myrow = myrow
        self.mycol = mycol
        self.row_comm = row_comm
        self.col_comm = col_comm
        self.in_grid = in_grid
        self.grid_comm = grid_comm


def grid_init(mpi, rank, size, p, q, pmap):
    """Build the grid.  ``rank``/``size`` may be symbolic (rw/sw marks).

    Returns a :class:`Grid`; ranks outside the grid get ``in_grid=False``
    and ``None`` communicators (every rank must still make the same
    ``Split`` calls — MPI collectives are collective).
    """
    p = int(p)
    q = int(q)
    ingrid = rank < p * q               # symbolic: needs rank variation
    if ingrid:
        if pmap == 0:                   # row-major
            myrow = int(rank) // q
            mycol = int(rank) % q
        else:                           # column-major
            myrow = int(rank) % p
            mycol = int(rank) // p
        grid_comm = mpi.COMM_WORLD.Split(color=0, key=myrow * q + mycol)
        row_comm = mpi.COMM_WORLD.Split(color=myrow, key=mycol)
        col_comm = mpi.COMM_WORLD.Split(color=p + mycol, key=myrow)
        # register the split communicators with the concolic layer: local
        # rank / size queries are the rc marking sites (§III-A)
        _ = mpi.Comm_rank(row_comm)
        _ = mpi.Comm_rank(col_comm)
        return Grid(p, q, myrow, mycol, row_comm, col_comm, True, grid_comm)
    # surplus ranks: participate in the splits with negative colors
    mpi.COMM_WORLD.Split(color=-1)
    mpi.COMM_WORLD.Split(color=-1)
    mpi.COMM_WORLD.Split(color=-1)
    return Grid(p, q, -1, -1, None, None, False, None)
