"""HPL-like High-Performance-Linpack target (paper target #2).

A dense-LU benchmark reimplementation faithful to HPL's *testing-relevant*
structure: ~24 marked integer inputs, a long staged sanity-check ladder
(the reason BoundedDFS wins Fig. 4), a P×Q process grid built from
communicator splits, block-cyclic distribution, recursive panel
factorization with pfact/rfact/nbmin/ndiv variants, six panel-broadcast
algorithms, row-swap variants, and a residual verification stage.

Instrument with::

    from repro.targets.hpl import MODULES
    program = instrument_program(MODULES)
"""

MODULES = [
    "repro.targets.hpl.params",
    "repro.targets.hpl.sanity",
    "repro.targets.hpl.grid",
    "repro.targets.hpl.panel",
    "repro.targets.hpl.bcast",
    "repro.targets.hpl.swap",
    "repro.targets.hpl.timers",
    "repro.targets.hpl.lu",
    "repro.targets.hpl.equil",
    "repro.targets.hpl.main",
]

ENTRY = "repro.targets.hpl.main"
