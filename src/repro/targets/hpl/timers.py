"""Per-phase wall-time accounting (the ``HPL_timer`` analog).

Real HPL reports a breakdown of where factorization time goes (panel
factorization, broadcast, row swapping, trailing update, solve).  The
:class:`PhaseTimers` accumulates per-phase wall time on each rank; the
end-of-run report reduces with MAX across the grid — the critical-path
convention HPL uses.
"""

import time
from contextlib import contextmanager

from repro.mpi.datatypes import MAX

PHASES = ("gather", "pfact", "bcast", "swap", "update", "solve")


class PhaseTimers:
    """Accumulating wall-clock timers, one per factorization phase."""

    def __init__(self):
        self.totals = {p: 0.0 for p in PHASES}
        self.counts = {p: 0 for p in PHASES}

    @contextmanager
    def phase(self, name):
        if name not in self.totals:
            raise KeyError(f"unknown phase {name!r}; know {PHASES}")
        t0 = time.monotonic()
        try:
            yield
        finally:
            self.totals[name] += time.monotonic() - t0
            self.counts[name] += 1

    def report(self, comm):
        """Critical-path (MAX-reduced) per-phase totals — collective."""
        out = {}
        for p in PHASES:
            out[p] = comm.Allreduce(self.totals[p], MAX)
        return out

    def local_summary(self):
        return {p: (self.totals[p], self.counts[p]) for p in PHASES}
