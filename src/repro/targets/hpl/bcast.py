"""Six panel-broadcast algorithms (HPL's BCAST parameter, values 0-5).

HPL offers increasing-ring, modified increasing-ring, increasing-2-ring,
modified increasing-2-ring, long (bandwidth-reducing), and modified long.
Each is a genuinely different message pattern over the row communicator;
all deliver the root's payload to every row member.

The virtual-relative rank ``vrel = (me - root) mod n`` linearizes the ring
so the code below reads like the HPL sources.
"""


def bcast_panel(mpi, row_comm, root, payload, variant):
    """Broadcast ``payload`` from local rank ``root`` over ``row_comm``."""
    n = row_comm.Get_size()
    me = row_comm.Get_rank()
    me = int(me)
    root = int(root)
    variant = int(variant)
    if n == 1:
        return payload
    if variant == 0:
        return _ring(row_comm, me, root, n, payload, modified=False)
    if variant == 1:
        return _ring(row_comm, me, root, n, payload, modified=True)
    if variant == 2:
        return _two_ring(row_comm, me, root, n, payload, modified=False)
    if variant == 3:
        return _two_ring(row_comm, me, root, n, payload, modified=True)
    if variant == 4:
        return _long(row_comm, me, root, n, payload, modified=False)
    return _long(row_comm, me, root, n, payload, modified=True)


TAG = 7


def _ring(comm, me, root, n, payload, modified):
    """Increasing ring: root → root+1 → ... → root+n-1.

    The *modified* variant has the root send to both its successor and the
    last ring member, halving the pipeline latency for the tail.
    """
    vrel = (me - root) % n
    if vrel == 0:
        comm.Send(payload, dest=(me + 1) % n, tag=TAG)
        if modified:
            if n > 2:
                comm.Send(payload, dest=(root + n - 1) % n, tag=TAG)
        return payload
    data, _ = comm.Recv(source=(me - 1) % n if not (modified and vrel == n - 1)
                        else root, tag=TAG)
    is_tail = vrel == n - 1
    if not is_tail:
        if not (modified and vrel == n - 2 and n > 2):
            comm.Send(data, dest=(me + 1) % n, tag=TAG)
        else:
            # modified ring: the tail already got it straight from the root
            pass
    return data


def _two_ring(comm, me, root, n, payload, modified):
    """Two rings: root feeds a chain over each half of the row.

    First chain covers virtual ranks ``1..half-1``, second covers
    ``half..n-1``.  The modified flavour also feeds the first chain's
    tail directly from the root (when that chain has length > 1).
    """
    vrel = (me - root) % n
    half = (n + 1) // 2
    tail = half - 1
    if vrel == 0:
        if half > 1:
            comm.Send(payload, dest=(root + 1) % n, tag=TAG)
        if n > half:
            comm.Send(payload, dest=(root + half) % n, tag=TAG)
        if modified and tail > 1:
            comm.Send(payload, dest=(root + tail) % n, tag=TAG)
        return payload
    if vrel < half:
        # first chain member
        if modified and vrel == tail and tail > 1:
            data, _ = comm.Recv(source=root, tag=TAG)
        else:
            data, _ = comm.Recv(source=(me - 1) % n, tag=TAG)
        nxt = vrel + 1
        if nxt < half and not (modified and nxt == tail and tail > 1):
            comm.Send(data, dest=(me + 1) % n, tag=TAG)
    else:
        # second chain member
        if vrel == half:
            data, _ = comm.Recv(source=root, tag=TAG)
        else:
            data, _ = comm.Recv(source=(me - 1) % n, tag=TAG)
        if vrel + 1 < n:
            comm.Send(data, dest=(me + 1) % n, tag=TAG)
    return data


def _long(comm, me, root, n, payload, modified):
    """Bandwidth-reducing "long" variant: scatter chunks along the ring,
    then allgather them back (HPL's spread + roll).

    The payload must be a list of row-chunks; scalars/arrays are wrapped.
    The modified flavour rolls in the opposite direction.
    """
    chunks = _split(payload, n)
    vrel = (me - root) % n
    # spread: root sends chunk i to virtual rank i
    if vrel == 0:
        i = 1
        while i < n:
            comm.Send(chunks[i], dest=(root + i) % n, tag=TAG)
            i += 1
        mine = {0: chunks[0]}
    else:
        data, _ = comm.Recv(source=root, tag=TAG)
        mine = {vrel: data}
    # roll: n-1 steps of neighbour exchange accumulate all chunks
    step = 0
    while step < n - 1:
        if modified:
            dst = (me - 1) % n
            src = (me + 1) % n
            send_idx = (vrel + step) % n
            recv_idx = (vrel + step + 1) % n
        else:
            dst = (me + 1) % n
            src = (me - 1) % n
            send_idx = (vrel - step) % n
            recv_idx = (vrel - step - 1) % n
        got, _ = comm.Sendrecv(mine[send_idx], dest=dst, sendtag=TAG,
                               source=src, recvtag=TAG)
        mine[recv_idx] = got
        step += 1
    return _join(mine, n)


def _split(payload, n):
    """Split a panel payload into ``n`` roughly equal chunks."""
    import numpy as np

    if isinstance(payload, np.ndarray):
        return [c for c in np.array_split(payload, n, axis=0)]
    if isinstance(payload, (list, tuple)):
        out = []
        size = len(payload)
        base = size // n
        extra = size % n
        at = 0
        for i in range(n):
            cnt = base + (1 if i < extra else 0)
            out.append(list(payload[at:at + cnt]))
            at += cnt
        return out
    # opaque object: only chunk 0 carries it
    return [payload] + [None] * (n - 1)


def _join(mine, n):
    import numpy as np

    parts = [mine[i] for i in range(n)]
    if all(isinstance(p, np.ndarray) for p in parts):
        return np.concatenate(parts, axis=0)
    if all(isinstance(p, list) for p in parts):
        out = []
        for p in parts:
            out.extend(p)
        return out
    return next(p for p in parts if p is not None)
