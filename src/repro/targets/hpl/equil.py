"""Row/column equilibration (HPL's EQUIL option), done for real.

Poorly scaled systems lose accuracy in LU; equilibration rescales
``A' = R·A·C`` with power-of-two diagonal scalings so every row and
column has magnitude ~1, solves ``A'·y = R·b``, and recovers
``x = C·y``.  Powers of two keep the arithmetic exact (mantissas
untouched).

Everything is computed distributedly on the block-cyclic layout:

* row maxima combine across the grid *row* communicator (the ranks that
  share block rows);
* column maxima combine across the grid *column* communicator;
* the right-hand-side column is row-scaled but never column-scaled
  (it is data, not a solution column).
"""

import math

import numpy as np

from repro.mpi.datatypes import MAX

from .lu import block_extents


def _pow2_scale(m):
    """Scale factor 2^-round(log2 m), or 1.0 for zero/degenerate rows."""
    if m <= 0.0 or not math.isfinite(m):
        return 1.0
    return 2.0 ** (-round(math.log2(m)))


def _my_global_rows(local, grid):
    """Rows of every block row this grid row owns — derived from the
    GLOBAL layout, not from stored blocks: a rank may own no blocks yet
    must still join its communicator's reductions with matching shapes."""
    n, nb = local.n, local.nb
    rows = []
    I = grid.myrow
    while I * nb < n:
        rows.extend(range(I * nb, min((I + 1) * nb, n)))
        I += grid.nprow
    return rows


def _my_global_cols(local, grid):
    n, nb = local.n, local.nb
    cols = []
    J = grid.mycol
    while J * nb < n:                  # A columns only; b never col-scales
        cols.extend(range(J * nb, min((J + 1) * nb, n)))
        J += grid.npcol
    return cols


def equilibrate(grid, local):
    """Scale the local blocks in place; returns {global_col: scale}.

    Collective over the grid's row and column communicators.
    """
    n, nb = local.n, local.nb

    # --- row scaling -----------------------------------------------------
    my_rows = _my_global_rows(local, grid)
    row_max = np.zeros(len(my_rows))
    index_of_row = {r: i for i, r in enumerate(my_rows)}
    for (bi, bj), blk in local.blocks.items():
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        a_cols = min(j1, n) - j0       # exclude the b column from maxima
        if a_cols <= 0:
            continue
        m = np.max(np.abs(blk[:, :a_cols]), axis=1)
        for i in range(i0, i1):
            idx = index_of_row[i]
            row_max[idx] = max(row_max[idx], m[i - i0])
    row_max = grid.row_comm.Allreduce(row_max, MAX)
    row_scale = {r: _pow2_scale(row_max[i]) for i, r in enumerate(my_rows)}
    for (bi, bj), blk in local.blocks.items():
        i0, i1, _j0, _j1 = block_extents(bi, bj, n, nb)
        scales = np.array([row_scale[i] for i in range(i0, i1)])
        blk *= scales[:, None]          # b column row-scales too: b' = R b

    # --- column scaling -----------------------------------------------------
    my_cols = _my_global_cols(local, grid)
    col_max = np.zeros(len(my_cols))
    index_of_col = {c: i for i, c in enumerate(my_cols)}
    for (bi, bj), blk in local.blocks.items():
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        for j in range(j0, min(j1, n)):
            idx = index_of_col[j]
            col_max[idx] = max(col_max[idx],
                               float(np.max(np.abs(blk[:, j - j0]))))
    col_max = grid.col_comm.Allreduce(col_max, MAX)
    col_scale = {c: _pow2_scale(col_max[i]) for i, c in enumerate(my_cols)}
    for (bi, bj), blk in local.blocks.items():
        i0, i1, j0, j1 = block_extents(bi, bj, n, nb)
        for j in range(j0, min(j1, n)):
            blk[:, j - j0] *= col_scale[j]

    return col_scale


def gather_col_scales(grid, col_scale):
    """Assemble the full column-scale vector at grid rank (0, 0)."""
    gathered = grid.grid_comm.Gather(dict(col_scale), root=0)
    if gathered is None:
        return None
    full = {}
    for part in gathered:
        full.update(part)
    return full


def unscale_solution(x, col_scales_full):
    """x_j = c_j · y_j — recover the original system's solution."""
    out = np.array(x, copy=True)
    for j, c in col_scales_full.items():
        if j < len(out):
            out[j] *= c
    return out
