"""HPL target entry point: read → sanity → grid → solve → verify.

The classic SPMD shape the paper's Figure 2 sketches, at HPL scale.
Returns 0 for valid runs (including graceful sanity rejections, like real
HPL's early exit) and 2 when the residual check FAILs — COMPI logs
nonzero exits as error-inducing inputs (§V).
"""

from .grid import grid_init
from .lu import (LocalBlocks, back_substitute, factorize, gather_matrix,
                 residual_check)
from .params import read_params
from .sanity import check_params

INPUT_SPEC = {
    "ntests": {"default": 1, "lo": -4, "hi": 12},
    "n": {"default": 64, "lo": -1200, "hi": 1200},
    "nb": {"default": 8, "lo": -64, "hi": 600},
    "pmap": {"default": 0, "lo": -2, "hi": 3},
    "p": {"default": 2, "lo": -4, "hi": 20},
    "q": {"default": 2, "lo": -4, "hi": 20},
    "threshold": {"default": 16, "lo": -16, "hi": 64},
    "npfacts": {"default": 1, "lo": -2, "hi": 5},
    "pfact": {"default": 2, "lo": -2, "hi": 4},
    "nbmin": {"default": 4, "lo": -4, "hi": 32},
    "ndiv": {"default": 2, "lo": 0, "hi": 10},
    "nrfacts": {"default": 1, "lo": -2, "hi": 5},
    "rfact": {"default": 2, "lo": -2, "hi": 4},
    "bcast": {"default": 0, "lo": -2, "hi": 7},
    "depth": {"default": 0, "lo": -2, "hi": 3},
    "swap": {"default": 0, "lo": -2, "hi": 4},
    "swap_threshold": {"default": 64, "lo": -8, "hi": 1300},
    "l1form": {"default": 0, "lo": -2, "hi": 3},
    "uform": {"default": 0, "lo": -2, "hi": 3},
    "equil": {"default": 1, "lo": -2, "hi": 3},
    "align": {"default": 8, "lo": -8, "hi": 2048},
    "seed": {"default": 42, "lo": 0, "hi": 10 ** 6},
    "verify": {"default": 1, "lo": -2, "hi": 3},
    "frac": {"default": 60, "lo": -10, "hi": 120},
}


def main(mpi, args):
    """HPL entry point; see the module docstring for the phase shape."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)
    size = mpi.Comm_size(mpi.COMM_WORLD)

    params = read_params(args)
    err = check_params(params, size)
    if err != 0:
        # invalid HPL.dat: print-and-exit in real HPL; graceful 0 here
        mpi.Finalize()
        return 0

    grid = grid_init(mpi, rank, size, params.p, params.q, params.pmap)
    exit_code = 0
    if grid.in_grid:
        ntests = int(params.ntests)
        t = 0
        while t < ntests:
            exit_code = _one_solve(mpi, grid, params, t)
            if exit_code != 0:
                break
            t += 1
    mpi.COMM_WORLD.Barrier()
    mpi.Finalize()
    return exit_code


def _one_solve(mpi, grid, params, test_index):
    from .equil import equilibrate, gather_col_scales, unscale_solution

    n = int(params.n)
    nb = int(params.nb)
    seed = int(params.seed) + test_index
    if n == 0:
        return 0                         # empty system: nothing to do
    local = LocalBlocks(n, nb, grid, seed)
    col_scales_full = None
    if params.equil == 1:
        # real equilibration: solve R·A·C y = R·b, recover x = C·y
        col_scale = equilibrate(grid, local)
        col_scales_full = gather_col_scales(grid, col_scale)
    factorize(mpi, grid, local, params)
    full = gather_matrix(grid, local)
    status = 0
    if full is not None:                 # grid rank (0, 0)
        x = back_substitute(full, n)
        if col_scales_full is not None:
            x = unscale_solution(x, col_scales_full)
        if params.verify == 1:
            resid, passed = residual_check(n, seed, x, params.threshold)
            if passed:
                status = 0
            else:
                status = 2               # FAILED residual → nonzero exit
        else:
            status = 0
    status = grid.grid_comm.Bcast(status, root=0)
    return status
