"""HPL's staged sanity check: every parameter and key combinations.

Real HPL's ``HPL_pdinfo`` validates each HPL.dat field in sequence and
bails out on the first bad one.  This ladder shape is the paper's central
search-strategy argument (§II-B): only a systematic strategy that keeps
already-passed checks satisfied while flipping the *deepest* failing one
climbs all the way down; random/CFG strategies keep breaking early rungs.

Each check is its own conditional so every rung contributes two branches.
Returns 0 when the configuration is valid, otherwise a distinct positive
error code (HPL prints a message and exits; we return the code).
"""


def check_params(params, size):
    """Validate params against the world ``size`` (a marked sw variable)."""
    # --- test battery ----------------------------------------------------
    if params.ntests < 1:
        return 1
    if params.ntests > 8:
        return 2
    # --- problem size ----------------------------------------------------
    if params.n < 0:
        return 3
    if params.n > 100000:
        return 4
    # --- blocking factor ---------------------------------------------------
    if params.nb < 1:
        return 5
    if params.nb > 512:
        return 6
    # --- process mapping / grid -------------------------------------------
    if params.pmap < 0:
        return 7
    if params.pmap > 1:
        return 8
    if params.p < 1:
        return 9
    if params.q < 1:
        return 10
    if params.p * params.q > size:
        return 11
    # --- residual threshold -----------------------------------------------
    if params.threshold < 0:
        return 12
    # --- panel factorization ------------------------------------------------
    if params.npfacts < 1:
        return 13
    if params.npfacts > 3:
        return 14
    if params.pfact < 0:
        return 15
    if params.pfact > 2:
        return 16
    if params.nbmin < 1:
        return 17
    if params.ndiv < 2:
        return 18
    if params.ndiv > 8:
        return 19
    if params.nrfacts < 1:
        return 20
    if params.nrfacts > 3:
        return 21
    if params.rfact < 0:
        return 22
    if params.rfact > 2:
        return 23
    # --- broadcast / lookahead ---------------------------------------------
    if params.bcast < 0:
        return 24
    if params.bcast > 5:
        return 25
    if params.depth < 0:
        return 26
    if params.depth > 1:
        return 27
    # --- swapping ---------------------------------------------------------
    if params.swap < 0:
        return 28
    if params.swap > 2:
        return 29
    if params.swap_threshold < 0:
        return 30
    # --- storage forms -----------------------------------------------------
    if params.l1form < 0:
        return 31
    if params.l1form > 1:
        return 32
    if params.uform < 0:
        return 33
    if params.uform > 1:
        return 34
    if params.equil < 0:
        return 35
    if params.equil > 1:
        return 36
    # --- memory alignment ---------------------------------------------------
    if params.align < 1:
        return 37
    if params.align > 1024:
        return 38
    # --- misc ---------------------------------------------------------------
    if params.verify < 0:
        return 39
    if params.verify > 1:
        return 40
    if params.frac < 0:
        return 41
    if params.frac > 100:
        return 42
    # --- combinations ---------------------------------------------------------
    if params.nb > params.n + 1:
        return 43
    if params.nbmin > params.nb:
        return 44
    if params.swap_threshold > params.n + 1:
        return 45
    return 0
