"""Distributed row swapping (HPL's SWAP parameter).

After a panel is factored, its pivot row swaps must be applied to every
trailing column on every rank.  HPL offers binary-exchange and
spread-roll algorithms selected by SWAP (with a threshold for the mixed
mode).  We implement two genuinely different protocols with identical
outcomes:

* **eager** (SWAP=0): apply pivots one at a time; each swap is a local
  copy or a pairwise ``Sendrecv`` between the two owning grid rows.
* **batched** (SWAP=1): compute the panel's net row permutation first,
  then move every affected row directly to its final place with one
  send/recv per (row, peer) — fewer, larger messages.
* SWAP=2 picks eager for narrow panels (``width <= swap_threshold``)
  and batched otherwise, like HPL's mixed mode.

``row_slice(rank_blocks, r)`` abstracts "the trailing part of global row
r on this rank" so the same protocol serves any column range.
"""

import numpy as np

TAG_SWAP = 11


def apply_swaps(col_comm, myrow, nprow, nb, k, pivots, get_row, set_row,
                variant, swap_threshold, width):
    """Apply the panel's pivots to this rank's trailing columns.

    ``get_row(r)``/``set_row(r, data)`` access the local slice of global
    row ``r`` (or return None when this rank owns no trailing columns in
    that row — then the rank still participates in no exchanges).
    ``col_comm`` local ranks coincide with grid rows (split key=myrow).
    """
    variant = int(variant)
    if variant == 0:
        eager = True
    elif variant == 1:
        eager = False
    else:
        eager = width <= int(swap_threshold)
    if eager:
        _eager_swaps(col_comm, myrow, nprow, nb, k, pivots, get_row, set_row)
    else:
        _batched_swaps(col_comm, myrow, nprow, nb, k, pivots, get_row, set_row)


def _owner(r, nb, nprow):
    return (r // nb) % nprow


def _eager_swaps(col_comm, myrow, nprow, nb, k, pivots, get_row, set_row):
    base = k * nb
    j = 0
    while j < len(pivots):
        r1 = base + j
        r2 = base + pivots[j]
        j += 1
        if r1 == r2:
            continue
        o1 = _owner(r1, nb, nprow)
        o2 = _owner(r2, nb, nprow)
        if o1 == myrow and o2 == myrow:
            a = get_row(r1)
            b = get_row(r2)
            if a is not None:
                set_row(r1, b)
                set_row(r2, a)
        elif o1 == myrow:
            mine = get_row(r1)
            if mine is not None:
                theirs, _ = col_comm.Sendrecv(mine, dest=o2, sendtag=TAG_SWAP,
                                              source=o2, recvtag=TAG_SWAP)
                set_row(r1, theirs)
        elif o2 == myrow:
            mine = get_row(r2)
            if mine is not None:
                theirs, _ = col_comm.Sendrecv(mine, dest=o1, sendtag=TAG_SWAP,
                                              source=o1, recvtag=TAG_SWAP)
                set_row(r2, theirs)


def net_permutation(nb, k, pivots):
    """Final row sources: ``{dest_row: src_row}`` over affected rows only.

    Applying pivot ``j`` swaps current rows ``base+j`` and
    ``base+pivots[j]``; composing all swaps yields where each affected
    row's final content originates.
    """
    base = k * nb
    perm: dict[int, int] = {}

    def cur(r):
        return perm.get(r, r)

    j = 0
    while j < len(pivots):
        r1 = base + j
        r2 = base + pivots[j]
        if r1 != r2:
            perm[r1], perm[r2] = cur(r2), cur(r1)
        j += 1
    return {dst: src for dst, src in perm.items() if dst != src}


def _batched_swaps(col_comm, myrow, nprow, nb, k, pivots, get_row, set_row):
    moves = net_permutation(nb, k, pivots)
    if not moves:
        return
    # snapshot every local source row before anything is overwritten
    snapshots = {}
    for dst, src in moves.items():
        if _owner(src, nb, nprow) == myrow:
            row = get_row(src)
            if row is not None:
                snapshots[src] = np.array(row, copy=True)
    # sends never block (eager protocol), so send everything first
    for dst in sorted(moves):
        src = moves[dst]
        if _owner(src, nb, nprow) == myrow and _owner(dst, nb, nprow) != myrow:
            if src in snapshots:
                col_comm.Send(snapshots[src], dest=_owner(dst, nb, nprow),
                              tag=TAG_SWAP)
    # now place every destination row I own
    for dst in sorted(moves):
        src = moves[dst]
        if _owner(dst, nb, nprow) != myrow:
            continue
        if get_row(dst) is None:
            continue
        if _owner(src, nb, nprow) == myrow:
            set_row(dst, snapshots[src])
        else:
            data, _ = col_comm.Recv(source=_owner(src, nb, nprow), tag=TAG_SWAP)
            set_row(dst, data)
