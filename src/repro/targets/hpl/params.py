"""HPL input parameters: reading + marking (the HPL.dat analog).

24 integer inputs are marked symbolic, mirroring the paper's "we marked
24 variables in HPL".  The pivotal one — the matrix width ``n`` — is
marked with an input cap (``COMPI_int_with_limit``); the cap value lives
in the module-level ``CAPS`` table so experiments (Fig. 6/8) can re-run
the same target under different caps by mutating the loaded module.
"""

from repro.concolic.marking import compi_int, compi_int_with_limit

#: caps applied at marking time (Fig. 8 varies CAPS["n"])
CAPS = {
    "n": 300,
}


class HplParams:
    """Plain container; values may be concolic SymInts on the focus rank."""

    __slots__ = (
        "ntests", "n", "nb", "pmap", "p", "q", "threshold", "npfacts",
        "pfact", "nbmin", "ndiv", "nrfacts", "rfact", "bcast", "depth",
        "swap", "swap_threshold", "l1form", "uform", "equil", "align",
        "seed", "verify", "frac",
    )

    def __init__(self, **kw):
        for k in self.__slots__:
            setattr(self, k, kw[k])


def read_params(args):
    """Mark every input-taking variable (the developer's one-time effort)."""
    return HplParams(
        ntests=compi_int(args["ntests"], "ntests"),
        n=compi_int_with_limit(args["n"], "n", cap=CAPS["n"]),
        nb=compi_int(args["nb"], "nb"),
        pmap=compi_int(args["pmap"], "pmap"),
        p=compi_int(args["p"], "p"),
        q=compi_int(args["q"], "q"),
        threshold=compi_int(args["threshold"], "threshold"),
        npfacts=compi_int(args["npfacts"], "npfacts"),
        pfact=compi_int(args["pfact"], "pfact"),
        nbmin=compi_int(args["nbmin"], "nbmin"),
        ndiv=compi_int(args["ndiv"], "ndiv"),
        nrfacts=compi_int(args["nrfacts"], "nrfacts"),
        rfact=compi_int(args["rfact"], "rfact"),
        bcast=compi_int(args["bcast"], "bcast"),
        depth=compi_int(args["depth"], "depth"),
        swap=compi_int(args["swap"], "swap"),
        swap_threshold=compi_int(args["swap_threshold"], "swap_threshold"),
        l1form=compi_int(args["l1form"], "l1form"),
        uform=compi_int(args["uform"], "uform"),
        equil=compi_int(args["equil"], "equil"),
        align=compi_int(args["align"], "align"),
        seed=compi_int(args["seed"], "seed"),
        verify=compi_int(args["verify"], "verify"),
        frac=compi_int(args["frac"], "frac"),
    )
