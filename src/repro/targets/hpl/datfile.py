"""HPL.dat rendering and parsing.

Real HPL reads its 24+ parameters from a positional text file
(``HPL.dat``); the paper's targets "read inputs ... from either a
user-specified file or a command line" (§I-A).  This module provides both
directions:

* :func:`render` — write a testcase's inputs as an HPL.dat-style file;
* :func:`parse` — read one back into the args dict the target consumes,
  with real parser behaviour: positional lines, a value followed by a
  comment, count-prefixed value lists (of which the *first* entry is the
  one the paper marks — "we treat each array as one regular variable").

The concolic campaign can round-trip through this layer
(``CompiConfig``-independent; see ``read_args_from_dat``) so input flow
matches the C original's file-based shape.
"""

from __future__ import annotations

from typing import Union

#: (args key, HPL.dat label, is_list) in file order — mirrors HPL.dat
FIELDS = [
    ("ntests", "# of problems sizes (N)", False),
    ("n", "Ns", True),
    ("nb", "NBs", True),
    ("pmap", "PMAP process mapping (0=Row-,1=Column-major)", False),
    ("p", "Ps", True),
    ("q", "Qs", True),
    ("threshold", "threshold", False),
    ("npfacts", "# of panel fact", False),
    ("pfact", "PFACTs (0=left, 1=Crout, 2=Right)", True),
    ("nbmin", "NBMINs (>= 1)", True),
    ("ndiv", "NDIVs", True),
    ("nrfacts", "# of recursive panel fact.", False),
    ("rfact", "RFACTs (0=left, 1=Crout, 2=Right)", True),
    ("bcast", "BCASTs (0=1rg,1=1rM,2=2rg,3=2rM,4=Lng,5=LnM)", True),
    ("depth", "DEPTHs (>=0)", True),
    ("swap", "SWAP (0=bin-exch,1=long,2=mix)", False),
    ("swap_threshold", "swapping threshold", False),
    ("l1form", "L1 in (0=transposed,1=no-transposed) form", False),
    ("uform", "U  in (0=transposed,1=no-transposed) form", False),
    ("equil", "Equilibration (0=no,1=yes)", False),
    ("align", "memory alignment in double (> 0)", False),
    ("seed", "random seed", False),
    ("verify", "verification (0=no,1=yes)", False),
    ("frac", "fraction of memory to use (%)", False),
]

HEADER = [
    "HPLinpack benchmark input file",
    "(reproduction of the COMPI/IPDPS-2018 evaluation target)",
]


class DatError(ValueError):
    """Malformed HPL.dat content."""


def render(args: dict) -> str:
    """Serialize args (any superset of the field keys) to HPL.dat text."""
    lines = list(HEADER)
    for key, label, is_list in FIELDS:
        try:
            value = int(args[key])
        except KeyError:
            raise DatError(f"missing parameter {key!r}") from None
        if is_list:
            lines.append(f"1            # of {key} entries")
            lines.append(f"{value}            {label}")
        else:
            lines.append(f"{value}            {label}")
    return "\n".join(lines) + "\n"


def parse(text: str) -> dict:
    """Parse HPL.dat text back to an args dict (first entry of lists)."""
    lines = [l for l in text.splitlines()]
    if len(lines) < 2:
        raise DatError("file too short: missing header")
    pos = 2                      # skip the two header lines
    out: dict[str, int] = {}
    for key, _label, is_list in FIELDS:
        if is_list:
            count = _value_at(lines, pos, f"count of {key}")
            pos += 1
            if count < 1:
                raise DatError(f"{key}: list count {count} < 1")
            values = []
            i = 0
            while i < count:
                values.append(_value_at(lines, pos, key))
                pos += 1
                i += 1
            out[key] = values[0]     # the paper marks one per array
        else:
            out[key] = _value_at(lines, pos, key)
            pos += 1
    return out


def _value_at(lines: list[str], pos: int, what: str) -> int:
    if pos >= len(lines):
        raise DatError(f"unexpected end of file reading {what}")
    token = lines[pos].split()
    if not token:
        raise DatError(f"blank line where {what} expected (line {pos + 1})")
    try:
        return int(token[0])
    except ValueError:
        raise DatError(
            f"non-integer {token[0]!r} for {what} (line {pos + 1})") from None


def read_args_from_dat(path: Union[str, "object"]) -> dict:
    """Load an HPL.dat file into the target's args dict."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse(fh.read())


def write_dat(args: dict, path) -> None:
    """Write the args dict to ``path`` in HPL.dat format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render(args))
