"""The paper's Figure 2 MPI code skeleton: read inputs → sanity check →
distribute workloads → loop-based solver.

Branch map (condition ids in instrumentation order):

* sanity checks on ``x``, ``y`` and their combination ``x*y``;
* ``rank == 0`` master/worker split — ``3F``/``4T`` are only executed by
  non-zero ranks, so a tool recording just the focus process misses them;
* ``y >= 100`` nested under the worker arm — covering ``4F`` requires the
  *focus* to be a non-zero rank (COMPI's framework, §III);
* the ``while`` solver loop.
"""

from repro.concolic.marking import compi_int

INPUT_SPEC = {
    "x": {"default": 10, "lo": -2000, "hi": 2000},
    "y": {"default": 50, "lo": -2000, "hi": 2000},
}


def main(mpi, args):
    """Entry point: the Fig. 2 read/sanity/distribute/solve skeleton."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)
    size = mpi.Comm_size(mpi.COMM_WORLD)

    x = compi_int(args["x"], "x")
    y = compi_int(args["y"], "y")

    # --- sanity check -------------------------------------------------
    if x <= 0:                        # condition 0
        mpi.Finalize()
        return 1
    if y <= 0:                        # condition 1
        mpi.Finalize()
        return 1
    if x * 50 + y > 100000:           # condition 2: combination check
        mpi.Finalize()
        return 1

    # --- distribute workloads ------------------------------------------
    if rank == 0:                     # condition 3
        shares = [int(x) // int(size)] * int(size)
        total = 0
        i = 0
        while i < int(size) - 1:      # condition 4 (master gathers)
            part, _ = mpi.COMM_WORLD.Recv(source=mpi.ANY_SOURCE, tag=1)
            total += part
            i += 1
    else:
        if y >= 100:                  # condition 5: 5F needs focus != 0
            work = int(x) // int(size) + 1
        else:
            work = int(x) // int(size)
        mpi.COMM_WORLD.Send(work, dest=0, tag=1)

    # --- loop-based solver ----------------------------------------------
    i = 0
    while i < x:                      # condition 6: symbolic loop bound
        i += 1

    mpi.Finalize()
    return 0
