"""A resource-hog target for sandbox rlimit tests (not for campaigns).

Inputs are deliberately **unmarked** (no ``compi_int``): the concolic
search must never be able to steer a campaign into a multi-gigabyte
allocation or a CPU spin, and random restarts draw from the spec
defaults' neighborhood only for *marked* variables.  Tests construct
explicit :class:`~repro.core.testcase.TestCase` values instead:

* ``mem = 1`` — allocate far past any sane ``max_rss_mb`` cap; under
  ``RLIMIT_AS`` this raises ``MemoryError`` in-process (classified
  ``oom``) or draws a kernel SIGKILL;
* ``spin = 1`` — burn CPU without yielding; under ``RLIMIT_CPU`` the
  kernel delivers SIGXCPU (classified ``cpu-cap``).
"""

INPUT_SPEC = {
    "mem": {"default": 0, "lo": 0, "hi": 1},
    "spin": {"default": 0, "lo": 0, "hi": 1},
}

#: bytes the mem hog tries to allocate (~6 GB, far over test caps)
HOG_BYTES = 6 * 1024 ** 3


def main(mpi, args):
    mpi.Init()
    if int(args.get("mem", 0)):
        blob = bytearray(HOG_BYTES)
        blob[-1] = 1  # force the pages to exist
    if int(args.get("spin", 0)):
        acc = 0
        while True:  # runs until SIGXCPU (or the watchdog timeout)
            acc = (acc * 1103515245 + 12345) % (2 ** 31)
    mpi.Finalize()
    return 0
