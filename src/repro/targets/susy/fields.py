"""Field allocation — home of the paper's three segmentation faults.

The real bugs (SUSY issue #15, confirmed and fixed by the developers)
all share one line shape::

    Twist_Fermion **src = malloc(Nroot * sizeof(**src));

an array of *pointers* sized by the wrong ``sizeof``.  In this
reproduction ``sizeof(**src)`` is the 4-byte packed struct header while a
pointer needs 8 bytes (see ``repro.targets.cmem``), so storing the
``Nroot`` pointers overruns the allocation — a segfault — the moment the
affected phase runs.  The fix, as adopted upstream, is
``sizeof(Twist_Fermion*)``.

The three buggy sites sit on three distinct input-gated paths (warmup,
multi-shift solve, measurement), so each needs different inputs to fire —
which is what makes them a *testing* result rather than a crash on every
run.  ``BUGS_ENABLED = False`` switches all three allocations to the
fixed size for post-fix coverage experiments.
"""

import numpy as np

from ..cmem import SIZEOF_PTR, malloc

#: our packed Twist_Fermion struct header: 4 bytes (smaller than a pointer)
SIZEOF_TWIST_FERMION = 4

#: flip to False to run the developer-fixed program
BUGS_ENABLED = True


def _alloc_pointer_array(count):
    """The buggy/fixed allocation selector for a pointer array."""
    if BUGS_ENABLED:
        return malloc(count * SIZEOF_TWIST_FERMION)   # BUG: wrong sizeof
    return malloc(count * SIZEOF_PTR)                 # the adopted fix


def new_field(layout, seed, salt):
    """A scalar field on the local sublattice, deterministic per rank."""
    shape = layout.local_dims
    rng = np.random.default_rng((int(seed) * 977 + salt * 131
                                 + layout.rank) % (2 ** 31))
    return rng.normal(0.0, 1.0, size=shape)


def alloc_warmup_sources(layout, nroot, seed):
    """BUG SITE #1 — warmup-phase pseudofermion sources.

    Reached whenever ``warms >= 1``.
    """
    src = _alloc_pointer_array(int(nroot))
    n = 0
    while n < int(nroot):
        src.store(n, new_field(layout, seed, 100 + n), SIZEOF_PTR)
        n += 1
    return src


def alloc_multishift_solutions(layout, nroot, seed):
    """BUG SITE #2 — multi-shift solver solution vectors (``psim``).

    Reached when a trajectory runs a rational approximation with more
    than one root (``ntraj >= 1 and nroot >= 2``).
    """
    psim = _alloc_pointer_array(int(nroot))
    n = 0
    while n < int(nroot):
        psim.store(n, np.zeros(layout.local_dims), SIZEOF_PTR)
        n += 1
    return psim


def alloc_measurement_buffers(layout, nblocks, seed):
    """BUG SITE #3 — blocked measurement accumulators.

    Reached when a measurement actually happens
    (``ntraj >= meas_freq`` on the single-root path).
    """
    buf = _alloc_pointer_array(int(nblocks))
    n = 0
    while n < int(nblocks):
        buf.store(n, np.zeros(4), SIZEOF_PTR)
        n += 1
    return buf
