"""SUSY-HMC-like lattice field theory target (paper target #1).

A skeleton reimplementation of the RHMC component of SUSY LATTICE
(Schaich & DeGrand): 4D lattice with full domain decomposition, input
sanity checks, warmup + trajectory phases (leapfrog molecular dynamics,
multi-shift iterative solves, Metropolis accept/reject, measurements),
and — crucially for the paper's §VI-A — the **four real bugs** COMPI
found, reproduced mechanism-for-mechanism:

* three wrong-``malloc``-size allocations (``sizeof(**src)`` instead of
  ``sizeof(Twist_Fermion*)``) on three distinct input-gated paths →
  segmentation faults;
* one division-by-zero that manifests only with 2 or 4 processes (not
  1 or 3) and only under a specific input (``gauge_fix=1``).

Set ``repro.targets.susy.fields.BUGS_ENABLED = False`` (on the
*instrumented* module) to test the post-fix program, as the paper's
coverage experiments effectively do ("developers should fix such known
bugs and then continue testing").
"""

MODULES = [
    "repro.targets.susy.params",
    "repro.targets.susy.sanity",
    "repro.targets.susy.layout",
    "repro.targets.susy.fields",
    "repro.targets.susy.rhmc",
    "repro.targets.susy.observables",
    "repro.targets.susy.checkpoint",
    "repro.targets.susy.main",
]

ENTRY = "repro.targets.susy.main"
