"""SUSY-HMC input validation (the lattice code's setup() checks)."""


def check_params(p):
    """Return 0 when valid, a distinct positive code otherwise."""
    if p.nx < 1:
        return 1
    if p.ny < 1:
        return 2
    if p.nz < 1:
        return 3
    if p.nt < 1:
        return 4
    if p.nx > 64:
        return 5
    if p.ny > 64:
        return 6
    if p.nz > 64:
        return 7
    if p.nt > 64:
        return 8
    if p.warms < 0:
        return 9
    if p.warms > 100:
        return 10
    if p.ntraj < 0:
        return 11
    if p.ntraj > 1000:
        return 12
    if p.nsteps < 1:
        return 13
    if p.nsteps > 100:
        return 14
    if p.nroot < 1:
        return 15
    if p.nroot > 16:
        return 16
    if p.gauge_fix < 0:
        return 17
    if p.gauge_fix > 1:
        return 18
    if p.lambda_i < 0:
        return 19
    if p.lambda_i > 1000:
        return 20
    if p.kappa_i < 0:
        return 21
    if p.kappa_i > 1000:
        return 22
    if p.meas_freq < 1:
        return 23
    if p.meas_freq > 1000:
        return 24
    return 0
