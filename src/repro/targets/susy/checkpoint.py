"""Lattice checkpointing (the ``save_lattice``/``reload_lattice`` analog).

Lattice campaigns checkpoint the gauge field regularly and verify on
reload.  The reproduction saves each rank's sublattice plus a geometry
header, reloads, and validates — the same branch structure (missing file,
format version, geometry mismatch, checksum) real lattice I/O code has.

To keep concolic campaigns deterministic across iterations, checkpoints
go to a per-run temporary directory and are removed afterwards; a save →
load → verify round trip still exercises the full path.
"""

import json
import os
import shutil
import tempfile

import numpy as np

FORMAT_VERSION = 2


class CheckpointError(Exception):
    """Malformed or mismatched checkpoint."""


def save(layout, phi, directory, traj):
    """Write this rank's sublattice + (rank 0) a geometry header."""
    os.makedirs(directory, exist_ok=True)
    if layout.rank == 0:
        header = {
            "version": FORMAT_VERSION,
            "grid": list(layout.grid),
            "local_dims": list(layout.local_dims),
            "traj": int(traj),
        }
        with open(os.path.join(directory, "header.json"), "w") as fh:
            json.dump(header, fh)
    np.save(_rank_file(directory, layout.rank), phi)
    return directory


def load(layout, directory):
    """Reload and validate this rank's sublattice."""
    header_path = os.path.join(directory, "header.json")
    if not os.path.exists(header_path):
        raise CheckpointError(f"no checkpoint header in {directory}")
    with open(header_path) as fh:
        header = json.load(fh)
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"format version {header.get('version')} != {FORMAT_VERSION}")
    if list(layout.grid) != header["grid"]:
        raise CheckpointError(
            f"machine grid {layout.grid} != saved {header['grid']}")
    if list(layout.local_dims) != header["local_dims"]:
        raise CheckpointError("sublattice geometry mismatch")
    path = _rank_file(directory, layout.rank)
    if not os.path.exists(path):
        raise CheckpointError(f"missing sublattice file for rank {layout.rank}")
    phi = np.load(path)
    if phi.shape != tuple(layout.local_dims):
        raise CheckpointError(
            f"sublattice shape {phi.shape} != {tuple(layout.local_dims)}")
    return phi, header["traj"]


def roundtrip_verify(world, layout, phi, traj):
    """Save → barrier → load → verify; used inside the measurement phase.

    Returns True when the reloaded field is bit-identical.  The temporary
    directory is removed on every path.
    """
    # one shared directory: rank 0 creates it and broadcasts the path
    directory = world.Bcast(
        tempfile.mkdtemp(prefix="susy-ckpt-") if layout.rank == 0 else None,
        root=0)
    try:
        save(layout, phi, directory, traj)
        world.Barrier()                   # writers before readers
        reloaded, saved_traj = load(layout, directory)
        if saved_traj != traj:
            return False
        if not np.array_equal(reloaded, phi):
            return False
        return True
    finally:
        world.Barrier()                   # readers before cleanup
        if layout.rank == 0:
            shutil.rmtree(directory, ignore_errors=True)


def _rank_file(directory, rank):
    return os.path.join(directory, f"lat_rank{int(rank)}.npy")
