"""SUSY-HMC inputs: 13 marked integer variables.

The paper marks 13 variables in SUSY-HMC and highlights "the lattice
size of each of the four dimensions — we change the four as well as set
input caps for them with the same value" (the ``NC`` of Fig. 8, default
5).  Couplings are integers scaled by 100 (COMPI does not handle floats).
"""

from repro.concolic.marking import compi_int, compi_int_with_limit

#: the shared lattice-dimension cap NC (Fig. 8 varies this) and the
#: trajectory-count cap.  In the C original the lattice volume dominates
#: run time, so the paper caps only the four dimensions; our lattice
#: kernels are vectorized, so the trajectory count is cost-pivotal too
#: and gets its own (fixed) cap.
CAPS = {
    "dim": 5,
    "ntraj": 30,
}


class SusyParams:
    """Container for the 13 marked SUSY-HMC inputs."""
    __slots__ = ("nx", "ny", "nz", "nt", "warms", "ntraj", "nsteps", "nroot",
                 "gauge_fix", "lambda_i", "kappa_i", "meas_freq", "seed")

    def __init__(self, **kw):
        for k in self.__slots__:
            setattr(self, k, kw[k])


def read_params(args):
    """Mark all 13 SUSY-HMC input variables (dims + ntraj capped)."""
    cap = CAPS["dim"]
    return SusyParams(
        nx=compi_int_with_limit(args["nx"], "nx", cap=cap),
        ny=compi_int_with_limit(args["ny"], "ny", cap=cap),
        nz=compi_int_with_limit(args["nz"], "nz", cap=cap),
        nt=compi_int_with_limit(args["nt"], "nt", cap=cap),
        warms=compi_int(args["warms"], "warms"),
        ntraj=compi_int_with_limit(args["ntraj"], "ntraj", cap=CAPS["ntraj"]),
        nsteps=compi_int(args["nsteps"], "nsteps"),
        nroot=compi_int(args["nroot"], "nroot"),
        gauge_fix=compi_int(args["gauge_fix"], "gauge_fix"),
        lambda_i=compi_int(args["lambda_i"], "lambda_i"),
        kappa_i=compi_int(args["kappa_i"], "kappa_i"),
        meas_freq=compi_int(args["meas_freq"], "meas_freq"),
        seed=compi_int(args["seed"], "seed"),
    )
