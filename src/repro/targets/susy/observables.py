"""Physics observables: what the measurement phase actually computes.

Mirrors the measurement set of lattice scalar codes (and structurally the
SUSY LATTICE measurement pass): link-energy per direction (the plaquette
analog for a scalar field), time-slice two-point correlators, and the
Binder cumulant.  Every observable is a local numpy reduction followed by
a global ``Allreduce`` — the communication pattern that makes measurement
phases MPI-relevant for a testing tool.
"""

import numpy as np

from repro.mpi.datatypes import SUM

from .rhmc import shifted


def link_energy(world, layout, phi):
    """Per-direction gradient energy  E_d = <phi(x) * phi(x+e_d)>."""
    out = []
    vol = float(layout.volume)
    d = 0
    while d < 4:
        local = float(np.sum(phi * shifted(world, layout, phi, d, +1)))
        out.append(world.Allreduce(local, SUM) / vol)
        d += 1
    return out


def timeslice_correlator(world, layout, phi, max_dt=None):
    """C(dt) = (1/Nt) Σ_t S(t) S(t+dt), with S(t) the t-slice sum of φ.

    The time direction may be split across ranks (our decomposition is
    1D-time), so slice sums are assembled with one Allreduce over a
    globally indexed vector.
    """
    nt_global = layout.grid[3] * layout.local_dims[3]
    slice_sums = np.zeros(nt_global)
    t0 = layout.coords[3] * layout.local_dims[3]
    lt = layout.local_dims[3]
    t = 0
    while t < lt:
        slice_sums[t0 + t] = float(np.sum(phi[:, :, :, t]))
        t += 1
    slice_sums = world.Allreduce(slice_sums, SUM)
    if max_dt is None:
        max_dt = nt_global // 2
    corr = []
    dt = 0
    while dt <= max_dt:
        acc = 0.0
        t = 0
        while t < nt_global:
            acc += slice_sums[t] * slice_sums[(t + dt) % nt_global]
            t += 1
        corr.append(acc / nt_global)
        dt += 1
    return corr


def binder_cumulant(world, layout, phi):
    """U = 1 - <φ⁴> / (3 <φ²>²) over the global volume."""
    vol = float(layout.volume)
    m2 = world.Allreduce(float(np.sum(phi * phi)), SUM) / vol
    m4 = world.Allreduce(float(np.sum(phi ** 4)), SUM) / vol
    if m2 == 0.0:
        return 0.0
    return 1.0 - m4 / (3.0 * m2 * m2)


def measure_all(world, layout, phi):
    """The full measurement pass: returns a dict of observables."""
    return {
        "link_energy": link_energy(world, layout, phi),
        "correlator": timeslice_correlator(world, layout, phi),
        "binder": binder_cumulant(world, layout, phi),
    }
