"""4D lattice domain decomposition (the ``layout.c`` analog).

Factorizes the process count into a ``(px, py, pz, pt)`` machine grid
(largest lattice dimension absorbs each prime factor), checks
divisibility, and computes per-rank sublattice geometry.

**Bug #4 lives here** (the paper's floating-point exception, SUSY issue
#16): the gauge-fixing slice computation divides by the parity of the
process count on the small-machine path.  With ``gauge_fix=1`` the job
crashes with a division by zero on 2 or 4 processes but runs fine on
1 or 3 — reproducing "its triggering requires not only specific input
values but also a specific number of processes".
"""


class Layout:
    """One rank's lattice geometry: grid, coords, local extents."""
    __slots__ = ("grid", "coords", "local_dims", "volume", "local_volume",
                 "rank", "gauge_sweeps")

    def __init__(self, grid, coords, local_dims, rank):
        self.grid = grid
        self.coords = coords
        self.local_dims = local_dims
        self.rank = rank
        self.volume = 1
        self.local_volume = 1
        d = 0
        while d < 4:
            self.volume *= grid[d] * local_dims[d]
            self.local_volume *= local_dims[d]
            d += 1

    def neighbor(self, dim, direction):
        """World rank of the ±1 neighbour along ``dim`` (periodic)."""
        c = list(self.coords)
        c[dim] = (c[dim] + direction) % self.grid[dim]
        return coords_to_rank(c, self.grid)


def _prime_factors(n):
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def factor_grid(nprocs, dims):
    """Greedy 4D machine-grid factorization: each prime factor goes to the
    dimension with the largest remaining per-rank extent."""
    grid = [1, 1, 1, 1]
    for f in _prime_factors(int(nprocs)):
        best, best_len = -1, -1
        d = 0
        while d < 4:
            per_rank = dims[d] // grid[d]
            if per_rank % f == 0 and per_rank > best_len:
                best, best_len = d, per_rank
            d += 1
        if best < 0:
            return None                  # indivisible layout
        grid[best] *= f
    return tuple(grid)


def coords_to_rank(coords, grid):
    """Row-major rank of 4D machine-grid coordinates."""
    return ((coords[0] * grid[1] + coords[1]) * grid[2] + coords[2]) \
        * grid[3] + coords[3]


def rank_to_coords(rank, grid):
    """Inverse of coords_to_rank."""
    ct = rank % grid[3]
    rank //= grid[3]
    cz = rank % grid[2]
    rank //= grid[2]
    cy = rank % grid[1]
    cx = rank // grid[1]
    return (cx, cy, cz, ct)


def setup_layout(rank, nprocs, p):
    """Build this rank's :class:`Layout`, or None when indivisible.

    The machine decomposes along the **time direction only** (the default
    layout of many lattice codes, including our skeleton): the job needs
    ``nt % nprocs == 0``.  With the dimension cap at NC=5 this is why a
    *fixed* 8-process job can never produce a sound layout — the paper's
    No_Fwk-on-SUSY failure (Table VI) — while COMPI's framework derives a
    workable process count instead.

    ``rank``/``nprocs`` may be symbolic (rw/sw); geometry math concretizes
    them (divisions), while the comparisons below stay symbolic.
    """
    dims = (int(p.nx), int(p.ny), int(p.nz), int(p.nt))
    if nprocs > p.nt:
        return None                      # more time-slices than nt
    if int(p.nt) % int(nprocs) != 0:
        return None                      # indivisible time extent
    grid = (1, 1, 1, int(nprocs))

    sweeps = 0
    if p.gauge_fix == 1:
        # --- BUG #4 (division by zero; SUSY issue #16) -----------------
        # Small machines take a "cheap parity sweep" path.  The sweep
        # count divides by (nprocs - 2*(nprocs//2)) — the process-count
        # parity — which is 0 for 2 and 4 processes.  1 and 3 processes
        # divide by 1 and survive; larger machines take the other path.
        if nprocs <= 4:
            parity = int(nprocs) - 2 * (int(nprocs) // 2)
            sweeps = dims[3] // parity    # ZeroDivisionError on np ∈ {2,4}
        else:
            sweeps = dims[3]

    coords = rank_to_coords(int(rank), grid)
    local_dims = tuple(dims[d] // grid[d] for d in range(4))
    layout = Layout(grid, coords, local_dims, int(rank))
    layout.gauge_sweeps = int(sweeps)
    return layout
