"""The RHMC solver loop: leapfrog molecular dynamics on a λφ⁴ lattice.

A faithful *skeleton* of SUSY LATTICE's update loop: per trajectory the
momenta are refreshed, a leapfrog integrator evolves the field under the
force of the action, a multi-shift iterative solve stands in for the
rational-approximation fermion solves, and a Metropolis test accepts or
rejects.  All lattice operations are domain-decomposed: nearest-neighbour
terms cross rank boundaries via halo exchanges on the 4D machine grid,
and global sums are ``Allreduce`` calls.

The physics is a scalar proxy (φ⁴ with hopping term) — what matters for
the reproduction is the *shape*: input-dependent phase structure, nested
loops with data-dependent exit conditions, and collective-heavy inner
solvers.
"""

import math

import numpy as np

TAG_HALO = 31


def lcg(seed, k):
    """Deterministic uniform in [0,1) — the accept/reject 'randomness'."""
    state = (int(seed) * 6364136223846793005 + k * 1442695040888963407
             + 1013904223) % (2 ** 63)
    return (state >> 11) / float(2 ** 52)


def shifted(world, layout, field, dim, direction):
    """``field`` shifted by ±1 along ``dim`` with periodic boundaries,
    exchanging halos when the machine grid splits that dimension."""
    if layout.grid[dim] == 1:
        return np.roll(field, -direction, axis=dim)
    if direction > 0:
        send_face = np.take(field, 0, axis=dim)
        dest = layout.neighbor(dim, -1)
        src = layout.neighbor(dim, +1)
    else:
        send_face = np.take(field, -1, axis=dim)
        dest = layout.neighbor(dim, +1)
        src = layout.neighbor(dim, -1)
    recv_face, _ = world.Sendrecv(np.ascontiguousarray(send_face), dest=dest,
                                  sendtag=TAG_HALO, source=src,
                                  recvtag=TAG_HALO)
    out = np.roll(field, -direction, axis=dim)
    idx = [slice(None)] * 4
    idx[dim] = -1 if direction > 0 else 0
    out[tuple(idx)] = recv_face
    return out


def action(world, layout, phi, lam, kappa):
    """Global action S[φ] via local sums + Allreduce."""
    local = float(np.sum(0.5 * phi * phi + 0.25 * lam * phi ** 4))
    d = 0
    while d < 4:
        local -= kappa * float(np.sum(phi * shifted(world, layout, phi, d, +1)))
        d += 1
    from repro.mpi.datatypes import SUM

    return world.Allreduce(local, SUM)


def force(world, layout, phi, lam, kappa):
    """-dS/dφ for the leapfrog momentum update."""
    f = -(phi + lam * phi ** 3)
    d = 0
    while d < 4:
        f += kappa * (shifted(world, layout, phi, d, +1)
                      + shifted(world, layout, phi, d, -1))
        d += 1
    return f


def multishift_solve(world, layout, phi, rhs, shifts, lam, kappa,
                     tol=1e-6, max_iter=40):
    """Solve (-Δ + 1 + s_i) x_i = rhs for every shift s_i.

    A damped-Jacobi iteration per shift with a global residual norm —
    the stand-in for the rational-approximation multi-shift CG.  Returns
    (solutions, iterations_used).
    """
    from repro.mpi.datatypes import SUM

    sols = []
    total_iters = 0
    i = 0
    while i < len(shifts):
        s = shifts[i]
        diag = 1.0 + s + 8.0 * kappa + 1e-3
        x = np.zeros_like(rhs)
        it = 0
        while it < max_iter:
            ax = (1.0 + s) * x
            d = 0
            while d < 4:
                ax -= kappa * (shifted(world, layout, x, d, +1)
                               + shifted(world, layout, x, d, -1))
                d += 1
            r = rhs - ax
            rnorm2 = world.Allreduce(float(np.sum(r * r)), SUM)
            if rnorm2 < tol * tol:
                break
            x = x + r / diag
            it += 1
        sols.append(x)
        total_iters += it
        i += 1
    return sols, total_iters


def leapfrog(world, layout, phi, mom, nsteps, dt, lam, kappa):
    """Standard leapfrog integration of (φ, π)."""
    mom = mom + 0.5 * dt * force(world, layout, phi, lam, kappa)
    step = 0
    while step < nsteps:
        phi = phi + dt * mom
        if step + 1 < nsteps:
            mom = mom + dt * force(world, layout, phi, lam, kappa)
        step += 1
    mom = mom + 0.5 * dt * force(world, layout, phi, lam, kappa)
    return phi, mom


def hamiltonian(world, layout, phi, mom, lam, kappa):
    """H = kinetic(π) + S[φ], summed globally."""
    from repro.mpi.datatypes import SUM

    kinetic = world.Allreduce(float(np.sum(0.5 * mom * mom)), SUM)
    return kinetic + action(world, layout, phi, lam, kappa)


def run_trajectory(world, layout, phi, traj_index, p, lam, kappa):
    """One HMC trajectory: returns (new_phi, accepted, md_iters)."""
    rng = np.random.default_rng((int(p.seed) + 7919 * traj_index
                                 + layout.rank) % (2 ** 31))
    mom = rng.normal(0.0, 1.0, size=phi.shape)
    h_old = hamiltonian(world, layout, phi, mom, lam, kappa)
    dt = 0.01 / max(1, int(p.nsteps))
    new_phi, new_mom = leapfrog(world, layout, phi, mom, int(p.nsteps), dt,
                                lam, kappa)
    h_new = hamiltonian(world, layout, new_phi, new_mom, lam, kappa)
    delta_h = h_new - h_old
    # Metropolis: identical decision on every rank (shared seed + ΔH)
    u = lcg(int(p.seed), 1000 + traj_index)
    if delta_h < 0:
        accepted = True
    elif u < math.exp(-min(delta_h, 50.0)):
        accepted = True
    else:
        accepted = False
    return (new_phi if accepted else phi), accepted, int(p.nsteps)


def gauge_fix_sweeps(world, layout, phi, sweeps):
    """Relaxation sweeps along the time direction (the gauge-fixing
    analog for the scalar proxy: damp the t-gradient iteratively).

    Runs only when the input requests gauge fixing and the small-machine
    parity path (bug #4's home) survived.  Each sweep is a halo-coupled
    smoothing step, so the communication pattern matches the per-sweep
    link updates of real gauge fixing.
    """
    s = 0
    out = phi
    while s < int(sweeps):
        up = shifted(world, layout, out, 3, +1)
        down = shifted(world, layout, out, 3, -1)
        out = 0.5 * out + 0.25 * (up + down)
        s += 1
    return out


def measure(world, layout, phi, lam, kappa):
    """Basic observables: ⟨φ⟩, ⟨φ²⟩, action density."""
    from repro.mpi.datatypes import SUM

    vol = float(layout.volume)
    phibar = world.Allreduce(float(np.sum(phi)), SUM) / vol
    phi2 = world.Allreduce(float(np.sum(phi * phi)), SUM) / vol
    s = action(world, layout, phi, lam, kappa) / vol
    return phibar, phi2, s
