"""SUSY-HMC entry point: setup → warmup → trajectories → measurements.

Follows the SPMD shape of the original ``susy_hmc``: read and validate
inputs, lay out the 4D lattice over the machine, then run warmup and
measurement trajectories.  The four seeded bugs fire on their respective
input-gated paths (see ``fields.py`` and ``layout.py``).
"""

from .checkpoint import roundtrip_verify
from .fields import (alloc_measurement_buffers, alloc_multishift_solutions,
                     alloc_warmup_sources, new_field)
from .layout import setup_layout
from .observables import measure_all
from .params import read_params
from .rhmc import (gauge_fix_sweeps, measure, multishift_solve,
                   run_trajectory)
from .sanity import check_params

INPUT_SPEC = {
    "nx": {"default": 2, "lo": -8, "hi": 8},
    "ny": {"default": 2, "lo": -8, "hi": 8},
    "nz": {"default": 2, "lo": -8, "hi": 8},
    "nt": {"default": 4, "lo": -8, "hi": 8},
    "warms": {"default": 0, "lo": -4, "hi": 120},
    "ntraj": {"default": 2, "lo": -4, "hi": 1200},
    "nsteps": {"default": 3, "lo": -4, "hi": 120},
    "nroot": {"default": 1, "lo": -4, "hi": 20},
    "gauge_fix": {"default": 0, "lo": -2, "hi": 3},
    "lambda_i": {"default": 100, "lo": -100, "hi": 1100},
    "kappa_i": {"default": 12, "lo": -100, "hi": 1100},
    "meas_freq": {"default": 10, "lo": -4, "hi": 1100},
    "seed": {"default": 11, "lo": 0, "hi": 10 ** 6},
}


def main(mpi, args):
    """SUSY-HMC entry point; see the module docstring for the phases."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)
    size = mpi.Comm_size(mpi.COMM_WORLD)
    world = mpi.COMM_WORLD

    p = read_params(args)
    err = check_params(p)
    if err != 0:
        mpi.Finalize()
        return 0                          # graceful rejection

    layout = setup_layout(rank, size, p)  # bug #4 path is inside
    if layout is None:
        mpi.Finalize()
        return 0                          # indivisible machine grid

    lam = int(p.lambda_i) / 100.0
    kappa = int(p.kappa_i) / 100.0
    phi = new_field(layout, p.seed, salt=1)

    if p.gauge_fix == 1:
        # the parity path in setup_layout survived: run the actual sweeps
        phi = gauge_fix_sweeps(world, layout, phi, layout.gauge_sweeps)

    # --- warmup phase (bug site #1) -------------------------------------
    w = 0
    while w < p.warms:
        src = alloc_warmup_sources(layout, p.nroot, p.seed)
        phi, _accepted, _ = run_trajectory(world, layout, phi, w, p, lam,
                                           kappa)
        w += 1

    # --- measurement trajectories ----------------------------------------
    accepted_count = 0
    traj = 0
    while traj < p.ntraj:
        if p.nroot >= 2:
            # rational approximation: multi-shift solve (bug site #2)
            psim = alloc_multishift_solutions(layout, p.nroot, p.seed)
            shifts = [0.1 * (s + 1) for s in range(int(p.nroot))]
            rhs = new_field(layout, p.seed, salt=50 + traj)
            _sols, _iters = multishift_solve(world, layout, phi, rhs, shifts,
                                             lam, kappa)
        phi, accepted, _ = run_trajectory(world, layout, phi, 10_000 + traj,
                                          p, lam, kappa)
        if accepted:
            accepted_count += 1
        if (traj + 1) % int(p.meas_freq) == 0:
            bufs = alloc_measurement_buffers(layout, 4, p.seed)  # bug site #3
            phibar, phi2, s = measure(world, layout, phi, lam, kappa)
            obs = measure_all(world, layout, phi)
            # checkpoint round trip — lattice codes verify their saves;
            # a mismatch is a real (assertion) bug class
            assert roundtrip_verify(world, layout, phi, traj), \
                "checkpoint verification failed"
            if rank == 0:
                _ = (phibar, phi2, s, obs)
        traj += 1

    world.Barrier()
    mpi.Finalize()
    return 0
