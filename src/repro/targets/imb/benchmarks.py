"""The ten MPI-1 benchmark kernels.

Each kernel times ``iters`` repetitions of its pattern for one message
size on one active communicator, IMB-style: a warmup loop first, then the
timed loop between two ``Wtime`` reads, reporting µs/op.  PingPong and
PingPing are strictly 2-process; the others run on any active subset.
"""

import numpy as np

TAG = 41


def make_buffer(nbytes):
    """A float64 message buffer of ~nbytes."""
    return np.zeros(max(1, int(nbytes) // 8), dtype=np.float64)


class BufferPool:
    """IMB's ``-off_cache`` mode: rotate between distinct buffers so every
    iteration touches cold memory; without it one hot buffer is reused."""

    def __init__(self, nbytes, off_cache):
        count = 2 if int(off_cache) == 1 else 1
        self._bufs = [make_buffer(nbytes) for _ in range(count)]
        self._i = 0

    def next(self):
        buf = self._bufs[self._i % len(self._bufs)]
        self._i += 1
        return buf


def time_loop(mpi, fn, iters, warmup):
    """Warmup then time ``iters`` calls of fn; returns µs per op."""
    w = 0
    while w < warmup:
        fn()
        w += 1
    t0 = mpi.Wtime()
    i = 0
    while i < iters:
        fn()
        i += 1
    t1 = mpi.Wtime()
    return (t1 - t0) / max(1, int(iters)) * 1e6    # µs per op


def pingpong(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """2-process round trip: rank 0 sends, rank 1 echoes."""
    me = comm.Get_rank()
    pool = BufferPool(nbytes, off_cache)
    if me == 0:
        def fn():
            comm.Send(pool.next(), dest=1, tag=TAG)
            comm.Recv(source=1, tag=TAG)
    elif me == 1:
        def fn():
            comm.Recv(source=0, tag=TAG)
            comm.Send(pool.next(), dest=0, tag=TAG)
    else:
        return None
    return time_loop(mpi, fn, iters, warmup)


def pingping(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """2-process simultaneous exchange (both Sendrecv)."""
    me = comm.Get_rank()
    if me > 1:
        return None
    peer = 1 - me
    pool = BufferPool(nbytes, off_cache)

    def fn():
        comm.Sendrecv(pool.next(), dest=peer, sendtag=TAG, source=peer, recvtag=TAG)

    return time_loop(mpi, fn, iters, warmup)


def sendrecv_chain(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Periodic chain: everyone Sendrecvs with both neighbours."""
    me = comm.Get_rank()
    n = comm.Get_size()
    pool = BufferPool(nbytes, off_cache)

    def fn():
        comm.Sendrecv(pool.next(), dest=(me + 1) % n, sendtag=TAG,
                      source=(me - 1) % n, recvtag=TAG)

    return time_loop(mpi, fn, iters, warmup)


def exchange(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """IMB Exchange: Isend to both neighbours, then two Recvs."""
    me = comm.Get_rank()
    n = comm.Get_size()
    pool = BufferPool(nbytes, off_cache)
    left, right = (me - 1) % n, (me + 1) % n

    def fn():
        comm.Isend(pool.next(), dest=left, tag=TAG)
        comm.Isend(pool.next(), dest=right, tag=TAG)
        comm.Recv(source=left, tag=TAG)
        comm.Recv(source=right, tag=TAG)

    return time_loop(mpi, fn, iters, warmup)


def bcast_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Broadcast from local root 0."""
    pool = BufferPool(nbytes, off_cache)

    def fn():
        comm.Bcast(pool.next(), root=0)

    return time_loop(mpi, fn, iters, warmup)


def allreduce_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Allreduce(SUM) over the active group."""
    pool = BufferPool(nbytes, off_cache)

    def fn():
        comm.Allreduce(pool.next(), mpi.SUM)

    return time_loop(mpi, fn, iters, warmup)


def reduce_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Reduce(SUM) to local root 0."""
    pool = BufferPool(nbytes, off_cache)

    def fn():
        comm.Reduce(pool.next(), mpi.SUM, root=0)

    return time_loop(mpi, fn, iters, warmup)


def allgather_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Allgather with per-rank chunks summing to ~nbytes."""
    pool = BufferPool(max(1, nbytes // max(1, comm.Get_size())), off_cache)

    def fn():
        comm.Allgather(pool.next())

    return time_loop(mpi, fn, iters, warmup)


def alltoall_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Alltoall with per-destination chunks summing to ~nbytes."""
    n = comm.Get_size()
    pool = BufferPool(max(1, nbytes // max(1, n)), off_cache)

    def fn():
        comm.Alltoall([pool.next()] * n)

    return time_loop(mpi, fn, iters, warmup)


def barrier_bench(mpi, comm, nbytes, iters, warmup, off_cache=0):
    """Pure Barrier (no message payload)."""
    def fn():
        comm.Barrier()

    return time_loop(mpi, fn, iters, warmup)


#: (name, kernel, two_process_only, uses_message_sizes)
ALL_BENCHMARKS = [
    ("PingPong", pingpong, True, True),
    ("PingPing", pingping, True, True),
    ("Sendrecv", sendrecv_chain, False, True),
    ("Exchange", exchange, False, True),
    ("Bcast", bcast_bench, False, True),
    ("Allreduce", allreduce_bench, False, True),
    ("Reduce", reduce_bench, False, True),
    ("Allgather", allgather_bench, False, True),
    ("Alltoall", alltoall_bench, False, True),
    ("Barrier", barrier_bench, False, False),
]
