"""IMB-MPI1 inputs: 15 marked integer variables (selectors + controls)."""

from repro.concolic.marking import compi_int, compi_int_with_limit

#: iteration-count cap (the paper's NC for IMB-MPI1, default 100)
CAPS = {
    "iters": 100,
}


class ImbParams:
    """Container for the 15 marked IMB inputs."""
    __slots__ = ("iters", "msg_exp", "npmin", "warmup", "off_cache",
                 "run_pingpong", "run_pingping", "run_sendrecv",
                 "run_exchange", "run_bcast", "run_allreduce", "run_reduce",
                 "run_allgather", "run_alltoall", "run_barrier")

    def __init__(self, **kw):
        for k in self.__slots__:
            setattr(self, k, kw[k])


def read_params(args):
    """Mark all 15 IMB input variables."""
    return ImbParams(
        iters=compi_int_with_limit(args["iters"], "iters", cap=CAPS["iters"]),
        msg_exp=compi_int(args["msg_exp"], "msg_exp"),
        npmin=compi_int(args["npmin"], "npmin"),
        warmup=compi_int(args["warmup"], "warmup"),
        off_cache=compi_int(args["off_cache"], "off_cache"),
        run_pingpong=compi_int(args["run_pingpong"], "run_pingpong"),
        run_pingping=compi_int(args["run_pingping"], "run_pingping"),
        run_sendrecv=compi_int(args["run_sendrecv"], "run_sendrecv"),
        run_exchange=compi_int(args["run_exchange"], "run_exchange"),
        run_bcast=compi_int(args["run_bcast"], "run_bcast"),
        run_allreduce=compi_int(args["run_allreduce"], "run_allreduce"),
        run_reduce=compi_int(args["run_reduce"], "run_reduce"),
        run_allgather=compi_int(args["run_allgather"], "run_allgather"),
        run_alltoall=compi_int(args["run_alltoall"], "run_alltoall"),
        run_barrier=compi_int(args["run_barrier"], "run_barrier"),
    )
