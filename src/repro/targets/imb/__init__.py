"""IMB-MPI1-like benchmark target (paper target #3).

The MPI-1 half of the Intel MPI Benchmarks: a driver that parses
benchmark selections and control parameters, then times point-to-point
and collective patterns over doubling message sizes and doubling active-
process subsets.  The key input for the paper is the iteration count
(``iters``), capped at NC=100 by default (Fig. 8 varies 50-1600).
"""

MODULES = [
    "repro.targets.imb.params",
    "repro.targets.imb.sanity",
    "repro.targets.imb.benchmarks",
    "repro.targets.imb.main",
]

ENTRY = "repro.targets.imb.main"
