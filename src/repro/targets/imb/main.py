"""IMB-MPI1 driver: parse → sanity → per-benchmark subset/size sweeps.

For every selected benchmark the driver iterates active-process subsets
(``npmin`` doubling up to the world size, IMB's convention) and message
sizes (doubling up to ``2^msg_exp`` bytes), timing ``iters`` repetitions
of the kernel on a split communicator.  The subsets are where a testing
tool needs focus/process-count variation: ranks outside the active subset
never execute the kernel branches.
"""

from .benchmarks import ALL_BENCHMARKS
from .params import read_params
from .sanity import check_params

#: per-(benchmark, subset) budget for the message-size sweep, seconds
#: (the IMB ``-time`` flag; fixed here, not an input)
SWEEP_TIME_LIMIT = 5.0

INPUT_SPEC = {
    "iters": {"default": 4, "lo": -8, "hi": 1600},
    "msg_exp": {"default": 6, "lo": -4, "hi": 26},
    "npmin": {"default": 2, "lo": -4, "hi": 20},
    "warmup": {"default": 1, "lo": -4, "hi": 120},
    "off_cache": {"default": 0, "lo": -2, "hi": 3},
    "run_pingpong": {"default": 1, "lo": -2, "hi": 3},
    "run_pingping": {"default": 0, "lo": -2, "hi": 3},
    "run_sendrecv": {"default": 0, "lo": -2, "hi": 3},
    "run_exchange": {"default": 0, "lo": -2, "hi": 3},
    "run_bcast": {"default": 1, "lo": -2, "hi": 3},
    "run_allreduce": {"default": 1, "lo": -2, "hi": 3},
    "run_reduce": {"default": 0, "lo": -2, "hi": 3},
    "run_allgather": {"default": 0, "lo": -2, "hi": 3},
    "run_alltoall": {"default": 0, "lo": -2, "hi": 3},
    "run_barrier": {"default": 0, "lo": -2, "hi": 3},
}


def _selected(p):
    return [
        (p.run_pingpong, 0), (p.run_pingping, 1), (p.run_sendrecv, 2),
        (p.run_exchange, 3), (p.run_bcast, 4), (p.run_allreduce, 5),
        (p.run_reduce, 6), (p.run_allgather, 7), (p.run_alltoall, 8),
        (p.run_barrier, 9),
    ]


def main(mpi, args):
    """IMB-MPI1 entry point: parse, validate, sweep benchmarks."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)
    size = mpi.Comm_size(mpi.COMM_WORLD)

    p = read_params(args)
    err = check_params(p, size)
    if err != 0:
        mpi.Finalize()
        return 0

    results = []
    for flag, index in _selected(p):
        if flag == 1:
            name, kernel, two_proc, uses_sizes = ALL_BENCHMARKS[index]
            _run_benchmark(mpi, rank, size, p, name, kernel, two_proc,
                           uses_sizes, results)

    if rank == 0 and results:
        _ = len(results)                 # IMB would print the table here
    mpi.COMM_WORLD.Barrier()
    mpi.Finalize()
    return 0


def _run_benchmark(mpi, rank, size, p, name, kernel, two_proc, uses_sizes,
                   results):
    """Sweep active subsets × message sizes for one kernel."""
    subsets = _active_subsets(int(p.npmin), int(size), two_proc)
    for np_active in subsets:
        active = rank < np_active        # symbolic: focus must vary
        if active:
            comm = mpi.COMM_WORLD.Split(color=0, key=int(rank))
            _ = mpi.Comm_rank(comm)      # rc marking site
        else:
            comm = mpi.COMM_WORLD.Split(color=-1)
        if active:
            if uses_sizes:
                nbytes = 4
                limit = 2 ** int(p.msg_exp)
                sweep_start = mpi.Wtime()
                while nbytes <= limit:
                    us = kernel(mpi, comm, nbytes, p.iters, p.warmup,
                                p.off_cache)
                    if us is not None:
                        stats = _time_stats(mpi, comm, us)
                        results.append((name, np_active, nbytes, us, stats))
                    # IMB's -time cutoff: abandon larger sizes once the
                    # sweep exceeds its budget.  The decision must be
                    # COLLECTIVE (root decides, everyone follows) or the
                    # subset's ranks would diverge mid-sweep and deadlock.
                    over = (mpi.Wtime() - sweep_start > SWEEP_TIME_LIMIT
                            if comm.Get_rank() == 0 else None)
                    if comm.Bcast(over, root=0):
                        break
                    nbytes *= 4
            else:
                us = kernel(mpi, comm, 0, p.iters, p.warmup, p.off_cache)
                if us is not None:
                    stats = _time_stats(mpi, comm, us)
                    results.append((name, np_active, 0, us, stats))
        mpi.COMM_WORLD.Barrier()


def _time_stats(mpi, comm, us):
    """IMB's reported t_min/t_avg/t_max across the active group —
    collective over the subset communicator."""
    tmin = comm.Allreduce(us, mpi.MIN)
    tmax = comm.Allreduce(us, mpi.MAX)
    tavg = comm.Allreduce(us, mpi.SUM) / int(comm.Get_size())
    return (tmin, tavg, tmax)


def _active_subsets(npmin, size, two_proc):
    if two_proc:
        return [2] if size >= 2 else []
    subsets = []
    np_active = max(2, npmin)
    while np_active < size:
        subsets.append(np_active)
        np_active *= 2
    if size >= max(2, npmin):
        subsets.append(size)
    return subsets
