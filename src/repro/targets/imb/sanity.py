"""IMB argument validation (the command-line parser's checks)."""


def check_params(p, size):
    """Validate the inputs; 0 = OK, else a distinct error code."""
    if p.iters < 1:
        return 1
    if p.iters > 10000:
        return 2
    if p.msg_exp < 0:
        return 3
    if p.msg_exp > 22:
        return 4
    if p.npmin < 2:
        return 5
    if p.npmin > size:
        return 6
    if p.warmup < 0:
        return 7
    if p.warmup > 100:
        return 8
    if p.off_cache < 0:
        return 9
    if p.off_cache > 1:
        return 10
    if p.run_pingpong < 0 or _not_flag(p.run_pingpong):
        return 11
    if p.run_pingping < 0 or _not_flag(p.run_pingping):
        return 12
    if p.run_sendrecv < 0 or _not_flag(p.run_sendrecv):
        return 13
    if p.run_exchange < 0 or _not_flag(p.run_exchange):
        return 14
    if p.run_bcast < 0 or _not_flag(p.run_bcast):
        return 15
    if p.run_allreduce < 0 or _not_flag(p.run_allreduce):
        return 16
    if p.run_reduce < 0 or _not_flag(p.run_reduce):
        return 17
    if p.run_allgather < 0 or _not_flag(p.run_allgather):
        return 18
    if p.run_alltoall < 0 or _not_flag(p.run_alltoall):
        return 19
    if p.run_barrier < 0 or _not_flag(p.run_barrier):
        return 20
    return 0


def _not_flag(v):
    return v > 1
