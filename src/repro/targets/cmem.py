"""C memory-allocation emulation for the seeded SUSY-HMC bugs.

The paper's three segmentation faults share one mechanism: memory is
allocated with the *wrong element size*::

    Twist_Fermion **src = malloc(Nroot * sizeof(**src));

The buffer is sized in bytes from one struct type but indexed as an array
of another, so a write past the byte capacity corrupts memory — a crash
(segmentation fault) at some index.  :class:`CArray` reproduces exactly
that failure mode in Python: a byte-capacity buffer with element-size
indexing that raises :class:`SegfaultError` on out-of-bounds access, the
analog COMPI's error classifier maps to "segmentation fault".
"""

from __future__ import annotations

from typing import Any, Optional

#: byte sizes of the emulated C types
SIZEOF_PTR = 8


class SegfaultError(Exception):
    """Out-of-bounds access on emulated C memory (SIGSEGV analog)."""


def malloc(nbytes: int) -> "CArray":
    """``malloc(nbytes)`` — see :class:`CArray`."""
    return CArray(nbytes)


class CArray:
    """A byte-addressed allocation accessed as an element array.

    ``a.store(i, value, elem_size)`` writes element ``i`` of size
    ``elem_size`` bytes; if ``(i + 1) * elem_size`` exceeds the allocated
    byte capacity the process "segfaults".  (Real C would merely corrupt
    memory and *usually* crash; the deterministic raise models the crash
    the paper's developers observed and fixed.)
    """

    def __init__(self, nbytes: int):
        if nbytes < 0:
            raise SegfaultError(f"malloc of negative size {nbytes}")
        self.nbytes = int(nbytes)
        self._slots: dict[int, Any] = {}

    def _check(self, index: int, elem_size: int) -> None:
        if index < 0 or (index + 1) * elem_size > self.nbytes:
            raise SegfaultError(
                f"write of {elem_size}-byte element at index {index} "
                f"overruns {self.nbytes}-byte allocation")

    def store(self, index: int, value: Any, elem_size: int = SIZEOF_PTR) -> None:
        self._check(int(index), elem_size)
        self._slots[int(index)] = value

    def load(self, index: int, elem_size: int = SIZEOF_PTR) -> Any:
        self._check(int(index), elem_size)
        return self._slots.get(int(index))

    def __len__(self) -> int:
        return self.nbytes
