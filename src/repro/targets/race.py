"""A message-race target: bugs reachable only under rare interleavings.

The master folds worker contributions with an **order-sensitive**
accumulator (``total = total*2 + part``) received through wildcard
receives.  The workers relay a token — worker *i* sends its part only
after worker *i-1* has sent both its part and the token — so under the
substrate's default (canonical) matching the parts always arrive, and
match, in rank order ``1, 2, ..., size-1``.  A plain campaign therefore
*never* sees the seeded bugs, no matter how many iterations it runs:
they live in schedule space, not input space.

Two bugs hide behind non-canonical match orders
(``--explore-schedules`` finds both by re-running the same inputs under
forced alternative wildcard matches, see :mod:`repro.schedules`):

* **deadlock** — if the *first* wildcard match delivers worker 2's part,
  the master posts ``Recv(source=1, tag=9)`` expecting a "priority"
  retransmit that no worker ever sends: an orphan wait, flagged by the
  wait-for-graph detector with the full per-rank pending-op list;
* **assertion** — any other non-canonical order folds a different
  ``total`` than the rank-order reference and trips the master's
  consistency assert.

The concolic inputs gate ordinary branch work (sanity checks + a work
loop) so the input-space search keeps making progress alongside the
schedule search.
"""

from repro.concolic.marking import compi_int

INPUT_SPEC = {
    "x": {"default": 10, "lo": -100, "hi": 100},
    "y": {"default": 5, "lo": -100, "hi": 100},
}

#: tag for worker parts (and the master's phantom retransmit request)
TAG_PART = 1
#: tag for the worker-to-worker relay token
TAG_TOKEN = 2
#: tag of the retransmit the master (wrongly) expects from worker 1
TAG_PRIORITY = 9


def main(mpi, args):
    """Token-relay reduction with an order-sensitive fold at the master."""
    mpi.Init()
    rank = mpi.Comm_rank(mpi.COMM_WORLD)
    size = mpi.Comm_size(mpi.COMM_WORLD)

    x = compi_int(args["x"], "x")
    y = compi_int(args["y"], "y")

    if x <= 0:                        # condition 0: sanity check
        mpi.Finalize()
        return 1

    if size >= 3 and rank == 0:       # condition 1: master arm
        total = 0
        first = None
        i = 0
        while i < int(size) - 1:      # condition 2: gather loop
            part, status = mpi.COMM_WORLD.Recv(source=mpi.ANY_SOURCE,
                                               tag=TAG_PART)
            if first is None:
                first = status.source
                if first == 2:        # condition 3: the race branch
                    # mistaken belief: worker 2 overtaking worker 1
                    # means worker 1 retransmits with priority.  Nobody
                    # ever sends (source=1, tag=9) — an orphan wait the
                    # deadlock detector reports with per-rank pending ops.
                    part, _ = mpi.COMM_WORLD.Recv(source=1,
                                                  tag=TAG_PRIORITY)
            total = total * 2 + int(part)
            i += 1
        # rank-order reference: the only fold the author ever saw
        expected = 0
        for r in range(1, int(size)):
            expected = expected * 2 + r
        assert total == expected, (
            f"order-sensitive fold diverged: total={total} "
            f"expected={expected} (first sender was rank {first})")
    elif size >= 3:
        if rank > 1:                  # condition 4: wait for the relay
            mpi.COMM_WORLD.Recv(source=rank - 1, tag=TAG_TOKEN)
        mpi.COMM_WORLD.Send(int(rank), dest=0, tag=TAG_PART)
        if rank < int(size) - 1:      # condition 5: pass the token on
            mpi.COMM_WORLD.Send(1, dest=rank + 1, tag=TAG_TOKEN)

    if y > 50:                        # condition 6
        work = x + y
    else:
        work = x - y

    i = 0
    while i < x % 5:                  # condition 7: bounded work loop
        work += rank
        i += 1

    mpi.Finalize()
    return 0
