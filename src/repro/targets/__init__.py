"""Target programs for the COMPI evaluation.

* ``seq_demo`` / ``demo`` — the paper's Fig. 1 / Fig. 2 worked examples
* ``susy``  — SUSY-HMC-like lattice RHMC code (with the 4 seeded bugs)
* ``hpl``   — HPL-like distributed dense LU benchmark
* ``imb``   — IMB-MPI1-like MPI benchmark driver
* ``cmem``  — C memory-allocation emulation (segfault analog)
"""

from . import cmem

__all__ = ["cmem"]
