"""The paper's Figure 1 sequential example program.

Two conditionals; a bug hides on the false arm of the first.  Concolic
testing starting from random inputs covers ``0T`` and (typically) ``1F``,
negates ``x != 100`` to reach the bug at ``0F``, and eventually drives
``1T`` — 100% branch coverage.
"""

from repro.concolic.marking import compi_int

INPUT_SPEC = {
    "x": {"default": 10, "lo": -1000, "hi": 1000},
    "y": {"default": 50, "lo": -1000, "hi": 1000},
}


def main(mpi, args):
    """Sequential program: ``mpi`` is unused (run on a single rank), but
    the entry signature matches the harness convention."""
    x = compi_int(args["x"], "x")
    y = compi_int(args["y"], "y")
    if x != 100:                 # condition 0
        result = 0               # 0T
    else:
        raise AssertionError("bug: reached branch 0F")   # 0F — the bug
    if x * 3 + y > 200:          # condition 1
        result += 2              # 1T
    else:
        result += 1              # 1F
    return result
