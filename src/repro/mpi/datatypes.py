"""Reduction operators and payload copying for the virtual MPI runtime.

Payloads travel between ranks as Python objects.  To preserve MPI value
semantics (a message is a *copy* of the send buffer, never a view into
it), every payload is deep-copied at the send boundary — numpy arrays via
``np.array(..., copy=True)``, everything else via ``copy.deepcopy``.

Reduction operators mirror the MPI predefined ops.  They work elementwise
over numpy arrays, over (nested) lists/tuples of numbers, and over plain
scalars, which covers everything the target programs exchange.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


def copy_payload(obj: Any) -> Any:
    """Return a defensive copy of a message payload."""
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, (int, float, complex, str, bytes, bool, type(None))):
        return obj
    return copy.deepcopy(obj)


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative binary reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return _apply(self.fn, a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


def _apply(fn: Callable[[Any, Any], Any], a: Any, b: Any) -> Any:
    """Apply ``fn`` elementwise over matching payload structures."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return fn(np.asarray(a), np.asarray(b))
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            raise TypeError("mismatched reduction payload structure")
        out = [_apply(fn, x, y) for x, y in zip(a, b)]
        return type(a)(out) if isinstance(a, tuple) else out
    return fn(a, b)


def _land(a, b):
    return (np.logical_and(a, b) if isinstance(a, np.ndarray) else bool(a) and bool(b))


def _lor(a, b):
    return (np.logical_or(a, b) if isinstance(a, np.ndarray) else bool(a) or bool(b))


def _maxloc(a, b):
    """MPI_MAXLOC over (value, index) pairs: max value, tie → lower index."""
    (av, ai), (bv, bi) = a, b
    if av > bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


def _minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if av < bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


SUM = ReduceOp("SUM", lambda a, b: a + b)
PROD = ReduceOp("PROD", lambda a, b: a * b)
MIN = ReduceOp("MIN", lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b))
MAX = ReduceOp("MAX", lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b))
LAND = ReduceOp("LAND", _land)
LOR = ReduceOp("LOR", _lor)
BAND = ReduceOp("BAND", lambda a, b: a & b)
BOR = ReduceOp("BOR", lambda a, b: a | b)
BXOR = ReduceOp("BXOR", lambda a, b: a ^ b)

# MAXLOC/MINLOC operate on (value, index) pairs, not elementwise payloads,
# so they bypass the structural _apply via their own ReduceOp instances.
MAXLOC = ReduceOp("MAXLOC", _maxloc)
MINLOC = ReduceOp("MINLOC", _minloc)
# _apply would recurse into the (value, index) tuple; override behaviour by
# marking the pairwise ops.  The collectives engine special-cases these.
PAIRWISE_OPS = {MAXLOC.name, MINLOC.name}


def reduce_pair(op: ReduceOp, a: Any, b: Any) -> Any:
    """Combine two contributions under ``op`` honouring pairwise ops."""
    if op.name in PAIRWISE_OPS:
        return op.fn(a, b)
    return op(a, b)
