"""Per-rank process context: the "MPI library" a target program sees.

Target programs are written against this API the way the paper's C
targets are written against MPI::

    def main(mpi, args):
        mpi.Init()
        rank = mpi.Comm_rank(mpi.COMM_WORLD)
        size = mpi.Comm_size(mpi.COMM_WORLD)
        ...
        mpi.Finalize()

``Comm_rank`` / ``Comm_size`` are instrumented exactly like COMPI
instruments ``MPI_Comm_rank`` / ``MPI_Comm_size``: when a *sink* (the
concolic recorder attached to this rank) is present, the returned value is
passed through it, which lets the heavy sink mark the value symbolic
(``rw``/``rc``/``sw`` in the paper's Table I) and record local→global rank
mappings.  Without a sink the plain integer comes back.
"""

from __future__ import annotations

import time
from typing import Any, Optional, TYPE_CHECKING

from . import datatypes
from .comm import Communicator
from .errors import MpiInternalError
from .status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Job


class MpiContext:
    """Everything one simulated rank can do."""

    #: re-exported reduction ops so targets can say ``mpi.SUM``
    SUM = datatypes.SUM
    PROD = datatypes.PROD
    MIN = datatypes.MIN
    MAX = datatypes.MAX
    LAND = datatypes.LAND
    LOR = datatypes.LOR
    BAND = datatypes.BAND
    BOR = datatypes.BOR
    BXOR = datatypes.BXOR
    MAXLOC = datatypes.MAXLOC
    MINLOC = datatypes.MINLOC
    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(self, job: "Job", global_rank: int, sink: Optional[Any] = None):
        self.job = job
        self.global_rank = global_rank
        self.sink = sink
        self.COMM_WORLD = Communicator(
            job, comm_id=0, group=tuple(range(job.size)),
            my_global_rank=global_rank, name="MPI_COMM_WORLD")
        self._initialized = False
        self._finalized = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def Init(self) -> None:
        if self._initialized:
            raise MpiInternalError("MPI_Init called twice")
        self._initialized = True
        if self.sink is not None and hasattr(self.sink, "on_init"):
            self.sink.on_init(self)

    def Finalize(self) -> None:
        if not self._initialized:
            raise MpiInternalError("MPI_Finalize before MPI_Init")
        if self._finalized:
            raise MpiInternalError("MPI_Finalize called twice")
        self._finalized = True

    @property
    def initialized(self) -> bool:
        return self._initialized

    # ------------------------------------------------------------------
    # instrumented query points (COMPI's automatic marking sites)
    # ------------------------------------------------------------------
    def Comm_rank(self, comm: Communicator) -> Any:
        """Return the calling rank in ``comm``.

        With a heavy sink attached, the result is a symbolic value marked
        ``rw`` (if ``comm`` is the world — a compile-time constant in MPI,
        which is how COMPI distinguishes the two cases) or ``rc``.
        """
        value = comm.Get_rank()
        if self.sink is not None and hasattr(self.sink, "on_comm_rank"):
            return self.sink.on_comm_rank(comm, value)
        return value

    def Comm_size(self, comm: Communicator) -> Any:
        """Return ``comm``'s size; world size is marked ``sw`` by the sink.

        Sizes of non-world communicators are *not* marked (the paper does
        not mark them either) but are reported to the sink so it can emit
        the concrete ``y_i < s_i`` bound for local ranks.
        """
        value = comm.Get_size()
        if self.sink is not None and hasattr(self.sink, "on_comm_size"):
            return self.sink.on_comm_size(comm, value)
        return value

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def Wtime(self) -> float:
        return time.monotonic() - self.job.start_time

    def Abort(self, errorcode: int = 1) -> None:
        self.job.abort(errorcode, origin=self.global_rank)

    def Comm_split(self, comm: Communicator, color: int, key: int = 0) -> Optional[Communicator]:
        """``MPI_Comm_split`` through the context (so targets read naturally)."""
        return comm.Split(int(color), int(key))
