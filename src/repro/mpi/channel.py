"""Per-rank mailboxes with MPI matching semantics.

Every rank owns one :class:`Mailbox`.  Senders deposit messages directly
into the destination's mailbox (eager/buffered protocol: a send never
blocks).  Receivers block until a message matching ``(source, tag)`` is
available, honouring ``ANY_SOURCE`` / ``ANY_TAG`` wildcards and FIFO
ordering per (source, tag) pair — the MPI non-overtaking rule.

All blocking waits poll the job-wide *stop event* so that a watchdog
timeout or a crash on a sibling rank unwinds blocked ranks promptly via
:class:`~repro.mpi.errors.MpiShutdown`.

Two optional collaborators plug in here (both ``None`` in plain runs):

* a :class:`~repro.mpi.waitgraph.WaitForGraph` — indefinite receives
  register what they wait for, enabling structural deadlock detection;
* a :class:`~repro.faults.injector.FaultInjector` — ``deposit`` routes
  through its send hook (delay/drop/corrupt), and both sides count as
  MPI calls for the crash/jitter fault models.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Optional

from .errors import MpiShutdown
from .status import ANY_SOURCE, ANY_TAG, Message, Status
from .waitgraph import RecvWait, WaitForGraph

# How long a blocked receiver sleeps between stop-event checks.  Small
# enough that teardown is prompt; the condition variable wakes receivers
# immediately on a matching send, so this only bounds *teardown* latency.
_POLL_INTERVAL = 0.05

# Poll interval while a scheduled wildcard receive is parked at a
# decision point: the controller's quiesce check needs two *consecutive*
# stable observations, so re-polling fast keeps decision latency low.
_SCHED_POLL = 0.01

_send_seq = itertools.count()


class Mailbox:
    """Unbounded mailbox for one receiving rank."""

    def __init__(self, owner_rank: int, stop_event: threading.Event,
                 waitgraph: Optional[WaitForGraph] = None,
                 injector: Optional[Any] = None,
                 policy: Optional[Any] = None):
        self.owner_rank = owner_rank
        self._stop = stop_event
        self._waitgraph = waitgraph
        self._injector = injector
        #: injectable match policy (repro.schedules.ScheduleController):
        #: indefinite ANY_SOURCE receives route their match step through
        #: it, turning each into a controllable decision point.  ``None``
        #: (the default) keeps the classic eager earliest-send matching.
        self._policy = policy
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: list[Message] = []

    def deposit(self, source: int, tag: int, payload: Any) -> None:
        """Called from the *sender's* thread: enqueue and wake receivers."""
        if self._injector is not None:
            payload, deliver = self._injector.on_send(
                source, self.owner_rank, tag, payload)
            if not deliver:
                return
        msg = Message(source=source, tag=tag, payload=payload, seq=next(_send_seq))
        with self._cond:
            self._messages.append(msg)
            self._cond.notify_all()

    def _match_index(self, source: int, tag: int,
                     tag_range: Optional[tuple[int, int]] = None) -> Optional[int]:
        """Index of the earliest (by send order) matching message.

        ``tag_range=(lo, hi)`` implements a communicator-scoped ANY_TAG:
        match any tag with ``lo <= tag < hi``.
        """
        best: Optional[int] = None
        best_seq = None
        for i, m in enumerate(self._messages):
            if source != ANY_SOURCE and m.source != source:
                continue
            if tag != ANY_TAG:
                if m.tag != tag:
                    continue
            elif tag_range is not None and not (tag_range[0] <= m.tag < tag_range[1]):
                continue
            if best_seq is None or m.seq < best_seq:
                best, best_seq = i, m.seq
        return best

    def receive(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                timeout: Optional[float] = None,
                tag_range: Optional[tuple[int, int]] = None) -> tuple[Any, Status]:
        """Block until a matching message arrives; return (payload, status).

        ``timeout=None`` blocks until match or job shutdown.  A finite
        timeout raises :class:`TimeoutError` if nothing matched in time —
        used by ``Request.test()`` probes, never by plain ``Recv``.
        """
        if self._injector is not None:
            self._injector.on_call(self.owner_rank)
        deadline = None if timeout is None else time.monotonic() + timeout
        registered = False
        scheduled = (self._policy is not None and timeout is None
                     and source == ANY_SOURCE)
        try:
            with self._cond:
                while True:
                    if scheduled:
                        # lazy matching: wildcard receives are decision
                        # points; the controller picks (or defers) the match
                        idx = self._policy.select(self, source, tag, tag_range)
                    else:
                        idx = self._match_index(source, tag, tag_range)
                    if idx is not None:
                        msg = self._messages.pop(idx)
                        return msg.payload, Status(source=msg.source, tag=msg.tag)
                    if self._stop.is_set():
                        raise MpiShutdown(
                            f"rank {self.owner_rank} interrupted while receiving "
                            f"(source={source}, tag={tag})")
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError("no matching message")
                        self._cond.wait(min(_POLL_INTERVAL, remaining))
                    else:
                        # an indefinite wait: tell the deadlock detector
                        # what would wake us before going to sleep
                        if self._waitgraph is not None and not registered:
                            self._waitgraph.block(self.owner_rank, RecvWait(
                                rank=self.owner_rank, source=source, tag=tag,
                                tag_range=tag_range))
                            registered = True
                        self._cond.wait(_SCHED_POLL if scheduled
                                        else _POLL_INTERVAL)
        finally:
            if registered:
                self._waitgraph.unblock(self.owner_rank)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              tag_range: Optional[tuple[int, int]] = None) -> Optional[Status]:
        """Non-destructive match test (``MPI_Iprobe`` analog)."""
        with self._lock:
            idx = self._match_index(source, tag, tag_range)
            if idx is None:
                return None
            m = self._messages[idx]
            return Status(source=m.source, tag=m.tag)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._messages)
