"""Rendezvous engine for collective operations.

Each communicator numbers its collective calls with a per-rank local
sequence counter; because SPMD programs must call collectives in the same
order on every member rank, call *k* on one rank pairs with call *k* on
all the others.  A :class:`Rendezvous` collects one contribution per
member, and the last arriver runs the combining function once; everyone
then reads the published result.

This centralizes barrier/bcast/reduce/gather/scatter/alltoall logic: each
collective is just a combine function over the gathered contributions.

Ranks that wait inside a rendezvous register a
:class:`~repro.mpi.waitgraph.CollectiveWait` so the deadlock detector can
see which members are still missing; an attached fault injector gets a
hook per collective entry (call accounting, delay, crash).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from .errors import MpiInternalError, MpiShutdown
from .waitgraph import CollectiveWait, WaitForGraph

_POLL_INTERVAL = 0.05


class Rendezvous:
    """One collective-operation instance awaiting ``size`` contributions."""

    def __init__(self, size: int, op_name: str):
        self.size = size
        self.op_name = op_name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._contribs: dict[int, Any] = {}
        self._result: Any = None
        self._ready = False

    def arrive(self, local_rank: int, contribution: Any,
               combine: Callable[[dict[int, Any]], Any],
               stop_event: threading.Event,
               op_name: str,
               waitgraph: Optional[WaitForGraph] = None,
               global_rank: Optional[int] = None,
               group: Optional[tuple[int, ...]] = None) -> Any:
        """Deposit this rank's contribution and wait for the result.

        ``combine`` maps {local_rank: contribution} to the shared result.
        The result is shared: per-rank slicing (scatter, gather-to-root)
        happens in the caller.
        """
        registered = False
        try:
            with self._cond:
                if op_name != self.op_name:
                    raise MpiInternalError(
                        f"collective mismatch: rank {local_rank} called {op_name} "
                        f"but the in-flight operation is {self.op_name}")
                if local_rank in self._contribs:
                    raise MpiInternalError(
                        f"rank {local_rank} arrived twice at {self.op_name}")
                self._contribs[local_rank] = contribution
                if len(self._contribs) == self.size:
                    self._result = combine(self._contribs)
                    self._ready = True
                    self._cond.notify_all()
                else:
                    if (waitgraph is not None and global_rank is not None
                            and group is not None):
                        waitgraph.block(global_rank, CollectiveWait(
                            rank=global_rank, op_name=self.op_name,
                            rendezvous=self, group=group))
                        registered = True
                    while not self._ready:
                        if stop_event.is_set():
                            raise MpiShutdown(
                                f"rank {local_rank} interrupted in {self.op_name}")
                        self._cond.wait(_POLL_INTERVAL)
                return self._result
        finally:
            if registered:
                waitgraph.unblock(global_rank)


class CollectiveEngine:
    """Creates/locates rendezvous instances keyed by (comm id, call seq)."""

    def __init__(self, stop_event: threading.Event,
                 waitgraph: Optional[WaitForGraph] = None,
                 injector: Optional[Any] = None):
        self._stop = stop_event
        self._waitgraph = waitgraph
        self._injector = injector
        self._lock = threading.Lock()
        self._inflight: dict[tuple[int, int], Rendezvous] = {}

    def run(self, comm_id: int, seq: int, size: int, local_rank: int,
            contribution: Any, combine: Callable[[dict[int, Any]], Any],
            op_name: str, global_rank: Optional[int] = None,
            group: Optional[tuple[int, ...]] = None) -> Any:
        if self._injector is not None and global_rank is not None:
            self._injector.on_collective(global_rank, op_name)
        key = (comm_id, seq)
        with self._lock:
            rv = self._inflight.get(key)
            if rv is None:
                rv = Rendezvous(size, op_name)
                self._inflight[key] = rv
        result = rv.arrive(local_rank, contribution, combine, self._stop,
                           op_name, waitgraph=self._waitgraph,
                           global_rank=global_rank, group=group)
        # Last reader garbage-collects the instance.  It is safe to leave
        # stale entries briefly; they are keyed by monotonically increasing
        # sequence numbers and never reused.
        with self._lock:
            done = self._inflight.get(key)
            if done is rv and rv._ready and len(rv._contribs) == size:
                self._inflight.pop(key, None)
        return result
