"""Virtual in-process MPI runtime (substrate for the COMPI reproduction).

Public surface::

    from repro.mpi import run_spmd, mpiexec, ProcSet, MpiContext

``run_spmd(program, size)`` is the quick way to run one SPMD callable on
``size`` ranks; :func:`~repro.mpi.launch.mpiexec` is the full MPMD launch
used by COMPI's two-way instrumentation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .comm import Communicator
from .context import MpiContext
from .datatypes import (BAND, BOR, BXOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC,
                        PROD, SUM, ReduceOp)
from .errors import (MpiAbort, MpiError, MpiInternalError, MpiInvalidRank,
                     MpiShutdown, MpiTimeout)
from .launch import ProcSet, focus_launch, mpiexec
from .runtime import Job, JobResult, RankOutcome, run_job
from .status import (ANY_SOURCE, ANY_TAG, Request, Status, waitall, waitany)
from .topology import CartComm, cart_create, dims_create
from .waitgraph import DeadlockInfo, WaitForGraph, detect_deadlock, find_cycle

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BAND", "BOR", "BXOR", "CartComm",
    "Communicator", "DeadlockInfo", "Job", "JobResult", "LAND", "LOR", "MAX",
    "MAXLOC", "MIN", "MINLOC", "MpiAbort", "MpiContext", "MpiError",
    "MpiInternalError", "MpiInvalidRank", "MpiShutdown", "MpiTimeout",
    "ProcSet", "PROD", "RankOutcome", "ReduceOp", "Request", "Status", "SUM",
    "WaitForGraph", "cart_create", "detect_deadlock", "dims_create",
    "find_cycle", "focus_launch", "mpiexec", "run_job", "run_spmd", "waitall",
    "waitany",
]


def run_spmd(program: Callable[[MpiContext], Optional[int]], size: int,
             timeout: Optional[float] = None,
             sink_factory: Optional[Callable[[int], Any]] = None,
             injector: Optional[Any] = None,
             detect_deadlocks: bool = True,
             match_policy: Optional[Any] = None) -> JobResult:
    """Run one SPMD ``program(mpi)`` on ``size`` identical ranks."""
    return mpiexec([ProcSet(size, program, sink_factory)], timeout=timeout,
                   injector=injector, detect_deadlocks=detect_deadlocks,
                   match_policy=match_policy)
