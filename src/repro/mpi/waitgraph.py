"""Wait-for graph over blocked ranks: structural deadlock detection.

The watchdog timeout can only say "the job did not finish in time" — it
cannot tell an infinite compute loop from a genuine communication
deadlock.  This module closes that gap the way MPISE's scheduler does:
every indefinitely-blocking wait (a ``Recv`` with no timeout, a
collective rendezvous) registers *what it is waiting for*; when every
live rank is blocked and none of the registered waits can make progress,
the job is structurally deadlocked and the rank cycle (e.g. ``0→1→0``)
is extracted for the bug report.

Key property of the substrate that makes this sound: sends never block
(eager/buffered protocol).  So if all live ranks are blocked in receives
or collectives and no pending message or completed rendezvous can wake
any of them, no future progress is possible — deadlock — regardless of
whether a cycle exists (a rank waiting on an already-terminated peer is
an *orphan wait*, equally permanent).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from .status import ANY_SOURCE

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Job, RankOutcome


@dataclass(frozen=True)
class RecvWait:
    """A rank blocked in an indefinite receive."""

    rank: int
    source: int                              # global source rank or ANY_SOURCE
    tag: int
    tag_range: Optional[tuple[int, int]] = None

    def describe(self) -> str:
        src = "ANY_SOURCE" if self.source == ANY_SOURCE else str(self.source)
        return f"Recv(source={src}, tag={self.tag})"


@dataclass(frozen=True)
class CollectiveWait:
    """A rank blocked in a collective rendezvous."""

    rank: int
    op_name: str
    rendezvous: Any                          # collectives.Rendezvous
    group: tuple[int, ...]                   # local rank -> global rank

    def describe(self) -> str:
        return f"collective {self.op_name}"


@dataclass(frozen=True)
class DeadlockInfo:
    """Diagnosis of a detected communication deadlock."""

    #: rank cycle including the closing repeat, e.g. ``(0, 1, 0)``;
    #: ``None`` when the deadlock is an orphan wait (no cycle exists,
    #: e.g. a rank receiving from a peer that already terminated)
    cycle: Optional[tuple[int, ...]]
    #: per-rank description of what each blocked rank was waiting for
    waits: dict[int, str] = field(default_factory=dict)

    def describe(self) -> str:
        if self.cycle:
            return "cycle " + "→".join(str(r) for r in self.cycle)
        blocked = ", ".join(f"rank {r}: {w}" for r, w in sorted(self.waits.items()))
        return f"orphan wait ({blocked})"


class WaitForGraph:
    """Registry of blocked ranks, updated from inside blocking waits.

    ``version`` increments on every block/unblock; the detector uses it
    to discard a diagnosis computed while the picture was shifting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waits: dict[int, Any] = {}
        self._version = 0

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def block(self, rank: int, wait: Any) -> None:
        with self._lock:
            self._waits[rank] = wait
            self._version += 1

    def unblock(self, rank: int) -> None:
        with self._lock:
            if self._waits.pop(rank, None) is not None:
                self._version += 1

    def snapshot(self) -> tuple[dict[int, Any], int]:
        with self._lock:
            return dict(self._waits), self._version


def find_cycle(edges: dict[int, set[int]]) -> Optional[list[int]]:
    """Find any directed cycle; returns it closed (``[0, 1, 0]``) or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in edges}
    parent: dict[int, int] = {}

    for start in sorted(edges):
        if color[start] != WHITE:
            continue
        stack: list[tuple[int, iter]] = [(start, iter(sorted(edges[start])))]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in edges:
                    continue
                if color[nxt] == GREY:
                    # unwind the grey chain from `node` back to `nxt`
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(edges[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def detect_deadlock(job: "Job",
                    outcomes: Sequence["RankOutcome"]) -> Optional[DeadlockInfo]:
    """Diagnose the job: DeadlockInfo when no live rank can ever progress.

    Conservative by construction: returns ``None`` unless *every* live
    rank is registered blocked, *no* blocked wait can be satisfied by
    current state (pending message / completed rendezvous), and the
    registry did not change while we looked.
    """
    graph = job.waitgraph
    if graph is None or job.stop_event.is_set():
        # a stopping job's blocked ranks are about to unwind, not deadlocked
        return None
    waits, v0 = graph.snapshot()
    live = [r for r, o in enumerate(outcomes) if not o.finished]
    if not live or any(r not in waits for r in live):
        return None  # someone is computing (or already done)

    edges: dict[int, set[int]] = {}
    details: dict[int, str] = {}
    for r in live:
        w = waits[r]
        if isinstance(w, RecvWait):
            # a matching message is already queued: the rank will wake
            if job.mailboxes[r].probe(source=w.source, tag=w.tag,
                                      tag_range=w.tag_range) is not None:
                return None
            if w.source == ANY_SOURCE:
                targets = {x for x in live if x != r}
            else:
                targets = {w.source}
        elif isinstance(w, CollectiveWait):
            rv = w.rendezvous
            with rv._lock:
                if rv._ready:
                    return None  # result published: the rank will wake
                arrived = set(rv._contribs)
            targets = {w.group[lr] for lr in range(len(w.group))
                       if lr not in arrived}
        else:  # pragma: no cover - unknown wait kinds are not diagnosable
            return None
        edges[r] = targets
        details[r] = w.describe()

    if graph.version != v0:
        return None  # the picture moved under us: not a stable deadlock

    live_edges = {r: {t for t in tgts if t in edges} for r, tgts in edges.items()}
    cycle = find_cycle(live_edges)
    return DeadlockInfo(cycle=tuple(cycle) if cycle else None, waits=details)
