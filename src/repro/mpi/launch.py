"""MPMD launch specification — the ``mpiexec`` command-line analog.

COMPI launches the instrumented SPMD program in MPMD style (§III-D)::

    mpiexec -n 1 ./ex1 : -n s-1 ./ex2            # focus at global rank 0
    mpiexec -n i ./ex2 : -n 1 ./ex1 : -n s-i ./ex2   # focus at rank i

Global ranks are assigned in launch order, so placing the heavy program's
single-process block at position *i* puts the focus at global rank *i*.
:func:`mpiexec` mirrors that: a list of :class:`ProcSet` blocks, flattened
in order into per-rank entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from .context import MpiContext
from .runtime import JobResult, run_job

Entry = Callable[[MpiContext], Optional[int]]


@dataclass
class ProcSet:
    """``-n count program`` block of an MPMD launch line."""

    count: int
    entry: Entry
    #: factory producing the per-rank sink, called with the global rank;
    #: ``None`` → no sink (plain uninstrumented execution)
    sink_factory: Optional[Callable[[int], Any]] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"ProcSet count must be >= 0, got {self.count}")


def mpiexec(procsets: list[ProcSet], timeout: Optional[float] = None,
            grace: float = 2.0, injector: Optional[Any] = None,
            detect_deadlocks: bool = True,
            match_policy: Optional[Any] = None) -> JobResult:
    """Launch the MPMD job described by ``procsets`` and wait for it."""
    entries: list[Entry] = []
    sinks: list[Any] = []
    for ps in procsets:
        for _ in range(ps.count):
            global_rank = len(entries)
            entries.append(ps.entry)
            sinks.append(ps.sink_factory(global_rank) if ps.sink_factory else None)
    if not entries:
        raise ValueError("empty launch specification")
    return run_job(entries, sinks=sinks, timeout=timeout, grace=grace,
                   injector=injector, detect_deadlocks=detect_deadlocks,
                   match_policy=match_policy)


def focus_launch(size: int, focus: int, heavy: ProcSet, light: ProcSet,
                 timeout: Optional[float] = None) -> JobResult:
    """Build the paper's focus-placement launch line and run it.

    ``heavy``/``light`` carry entry+sink factories; their ``count`` fields
    are ignored and recomputed from ``size`` and ``focus``.
    """
    if not (0 <= focus < size):
        raise ValueError(f"focus {focus} outside job of size {size}")
    blocks = [
        ProcSet(focus, light.entry, light.sink_factory),
        ProcSet(1, heavy.entry, heavy.sink_factory),
        ProcSet(size - focus - 1, light.entry, light.sink_factory),
    ]
    return mpiexec([b for b in blocks if b.count > 0], timeout=timeout)
