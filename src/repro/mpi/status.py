"""Message status and non-blocking request objects."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Receive status: who sent the message and under which tag."""

    source: int
    tag: int


@dataclass
class Message:
    """An in-flight message inside a mailbox."""

    source: int
    tag: int
    payload: Any
    seq: int  # global send order, used for FIFO matching per (source, tag)


class Request:
    """Handle for a non-blocking operation (``Isend``/``Irecv``).

    ``Isend`` requests complete immediately (the runtime buffers sends,
    i.e. every send is a buffered send — the common eager-protocol model).
    ``Irecv`` requests complete when a matching message is consumed; the
    payload is returned from :meth:`wait`.
    """

    def __init__(self, completer: Optional[Callable[[Optional[float]], tuple[Any, Status]]] = None,
                 payload: Any = None, status: Optional[Status] = None):
        self._completer = completer
        self._payload = payload
        self._status = status
        self._done = completer is None
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self._done

    def wait(self, timeout: Optional[float] = None,
             _pin: Optional[tuple[int, int]] = None) -> Any:
        """Block until the operation completes; return the received payload
        (``None`` for send requests).

        ``_pin=(source, tag)`` narrows a wildcard receive to one concrete
        match — used by the schedule controller to complete the request
        the decision point chose (ignored by completers that predate it).
        """
        with self._lock:
            if not self._done:
                assert self._completer is not None
                if _pin is not None and getattr(self._completer,
                                                "accepts_pin", False):
                    self._payload, self._status = self._completer(timeout,
                                                                  _pin)
                else:
                    self._payload, self._status = self._completer(timeout)
                self._done = True
                self._completer = None
            return self._payload

    def test(self) -> bool:
        """Non-blocking completion probe.

        For receive requests this attempts a zero-timeout match; a ``True``
        result means :meth:`wait` will return immediately.
        """
        with self._lock:
            if self._done:
                return True
        try:
            self.wait(timeout=0.0)
            return True
        except TimeoutError:
            return False

    @property
    def status(self) -> Optional[Status]:
        return self._status


@dataclass
class CompletedRequest(Request):
    """A request that was already satisfied at creation time."""

    def __init__(self, payload: Any = None, status: Optional[Status] = None):
        super().__init__(completer=None, payload=payload, status=status)


def waitall(requests: list[Request]) -> list[Any]:
    """``MPI_Waitall``: block until every request completes; returns the
    received payloads in request order (``None`` for sends)."""
    return [r.wait() for r in requests]


def waitany(requests: list[Request]) -> tuple[int, Any]:
    """``MPI_Waitany``: return (index, payload) of one completed request.

    Polls with ``test()`` like a real progress engine; completed requests
    must be removed by the caller (as in MPI, where the request becomes
    inactive).

    When the job runs under a schedule controller and every pending
    request is a wildcard ``Irecv``, the whole call is treated as one
    match decision point instead (see :mod:`repro.schedules`): the
    controller picks which request completes, deterministically or as
    prescribed by a replayed schedule.
    """
    import time as _time

    if not requests:
        raise ValueError("waitany on empty request list")
    controller = None
    for r in requests:
        if r.done:
            continue
        meta = getattr(r, "_sched", None)
        if meta is None:
            controller = None
            break
        policy = getattr(meta[0], "_policy", None)
        if policy is None:
            controller = None
            break
        controller = policy
    if controller is not None:
        result = controller.waitany(requests)
        if result is not None:
            return result
    while True:
        for i, r in enumerate(requests):
            if r.test():
                return i, r.wait()
        _time.sleep(0.001)
