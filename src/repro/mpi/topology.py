"""Cartesian process topologies (``MPI_Cart_create`` family).

Lattice codes and grid solvers lay ranks out on N-dimensional tori; MPI
provides first-class support (``MPI_Cart_create``, ``MPI_Cart_shift``,
``MPI_Cart_sub``).  The virtual runtime mirrors that surface so targets
can be written exactly like their C originals.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .comm import Communicator
from .errors import MpiInternalError


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> list[int]:
    """``MPI_Dims_create``: balanced factorization of ``nnodes``.

    Zero entries in ``dims`` are free; nonzero entries are constraints.
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise MpiInternalError(f"dims length {len(out)} != ndims {ndims}")
    fixed = 1
    for d in out:
        if d < 0:
            raise MpiInternalError(f"negative dimension {d}")
        if d > 0:
            fixed *= d
    if fixed == 0:
        raise MpiInternalError("zero-size fixed dimension")
    if nnodes % fixed != 0:
        raise MpiInternalError(
            f"nnodes {nnodes} not divisible by fixed dims {fixed}")
    rest = nnodes // fixed
    free = [i for i, d in enumerate(out) if d == 0]
    # distribute prime factors largest-first onto the currently smallest
    # free dimension (classic balanced heuristic)
    sizes = {i: 1 for i in free}
    for f in _prime_factors_desc(rest):
        if not free:
            if f != 1:
                raise MpiInternalError("no free dimension for factors")
            break
        tgt = min(free, key=lambda i: sizes[i])
        sizes[tgt] *= f
    for i in free:
        out[i] = sizes[i]
    return out


def _prime_factors_desc(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


class CartComm:
    """A cartesian view over a communicator.

    Built collectively via :func:`cart_create`; ranks not included in the
    grid receive ``None`` (as with ``MPI_COMM_NULL``).
    """

    def __init__(self, comm: Communicator, dims: Sequence[int],
                 periods: Sequence[bool]):
        self.comm = comm
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        self._strides = _row_major_strides(self.dims)

    # -- delegation -----------------------------------------------------
    def Get_rank(self) -> int:
        return self.comm.Get_rank()

    def Get_size(self) -> int:
        return self.comm.Get_size()

    # -- coordinates -----------------------------------------------------
    def coords(self, rank: Optional[int] = None) -> tuple[int, ...]:
        """``MPI_Cart_coords`` (row-major, like MPICH/OpenMPI)."""
        r = self.comm.Get_rank() if rank is None else int(rank)
        if not (0 <= r < self.Get_size()):
            raise MpiInternalError(f"rank {r} outside cart of {self.Get_size()}")
        out = []
        for stride, dim in zip(self._strides, self.dims):
            out.append((r // stride) % dim)
        return tuple(out)

    def rank_of(self, coords: Sequence[int]) -> int:
        """``MPI_Cart_rank`` with periodic wrapping where allowed."""
        if len(coords) != len(self.dims):
            raise MpiInternalError("coords/dims length mismatch")
        r = 0
        for c, stride, dim, periodic in zip(coords, self._strides, self.dims,
                                            self.periods):
            c = int(c)
            if periodic:
                c %= dim
            elif not (0 <= c < dim):
                raise MpiInternalError(
                    f"coordinate {c} outside non-periodic extent {dim}")
            r += (c % dim) * stride
        return r

    def shift(self, direction: int, disp: int = 1) -> tuple[Optional[int], Optional[int]]:
        """``MPI_Cart_shift``: (source, dest) ranks for a displacement.

        Non-periodic out-of-range neighbours come back as ``None``
        (``MPI_PROC_NULL``).
        """
        me = list(self.coords())
        dim = self.dims[direction]
        periodic = self.periods[direction]

        def neighbour(offset: int) -> Optional[int]:
            c = me[direction] + offset
            if not periodic and not (0 <= c < dim):
                return None
            coords = list(me)
            coords[direction] = c % dim
            return self.rank_of(coords)

        return neighbour(-disp), neighbour(+disp)

    def sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """``MPI_Cart_sub``: split into sub-grids keeping some dimensions."""
        if len(remain_dims) != len(self.dims):
            raise MpiInternalError("remain_dims length mismatch")
        me = self.coords()
        color = 0
        for c, keep, dim in zip(me, remain_dims, self.dims):
            if not keep:
                color = color * dim + c
        key = self.rank_of(me)
        sub = self.comm.Split(color=color, key=key)
        kept_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        kept_periods = [p for p, keep in zip(self.periods, remain_dims) if keep]
        return CartComm(sub, kept_dims or [1], kept_periods or [False])


def _row_major_strides(dims: Sequence[int]) -> tuple[int, ...]:
    strides = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    return tuple(strides)


def cart_create(comm: Communicator, dims: Sequence[int],
                periods: Optional[Sequence[bool]] = None,
                reorder: bool = False) -> Optional[CartComm]:
    """``MPI_Cart_create`` — collective on ``comm``.

    Ranks beyond ``prod(dims)`` get ``None``.  ``reorder`` is accepted
    for signature fidelity (rank order never changes in the simulator).
    """
    size = 1
    for d in dims:
        size *= int(d)
    if size > comm.Get_size():
        raise MpiInternalError(
            f"cart of {size} ranks on comm of {comm.Get_size()}")
    periods = list(periods) if periods is not None else [False] * len(dims)
    me = comm.Get_rank()
    in_grid = me < size
    sub = comm.Split(color=0 if in_grid else -1, key=me)
    if not in_grid:
        return None
    return CartComm(sub, dims, periods)
