"""Threaded SPMD/MPMD job runtime — the ``mpiexec`` of the simulator.

One Python thread per rank.  The job owns the mailboxes, the collective
engine, a stop event and a watchdog deadline.  Error handling follows
``MPI_ERRORS_ARE_FATAL``: the first uncaught exception on any rank stops
the whole job, unwinding ranks blocked in communication via
:class:`~repro.mpi.errors.MpiShutdown`.

The per-test timeout implements the paper's hang/infinite-loop detection:
COMPI "logs the derived error-inducing input ... if either the program
returns a non-zero value or fails to complete within the specified
timeout".  On top of the watchdog, the job maintains a wait-for graph
(:mod:`~repro.mpi.waitgraph`) over ranks blocked in communication: when
every live rank is provably stuck, the job is stopped early and the
result carries a :class:`~repro.mpi.waitgraph.DeadlockInfo` — a *true*
communication deadlock, distinct from a compute hang that only the
watchdog can catch.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .channel import Mailbox
from .collectives import CollectiveEngine
from .context import MpiContext
from .errors import MpiAbort, MpiShutdown
from .waitgraph import DeadlockInfo, WaitForGraph, detect_deadlock

#: how often the monitor loop checks for completion / deadlock
_MONITOR_POLL = 0.02


def _monitor_wait(all_done: threading.Event, period: float) -> None:
    """One monitor pause: wake early when the job completes.

    Split out so benchmarks/test_engine_hotpath.py can substitute the
    historical ``time.sleep(period)`` poll and measure what completion
    quantization used to cost (see docs/PERFORMANCE.md)."""
    all_done.wait(period)


class Job:
    """Shared state of one running MPI job."""

    def __init__(self, size: int, injector: Optional[Any] = None,
                 detect_deadlocks: bool = True,
                 match_policy: Optional[Any] = None):
        if size < 1:
            raise ValueError(f"job size must be >= 1, got {size}")
        self.size = size
        self.stop_event = threading.Event()
        self.injector = injector
        self.waitgraph = WaitForGraph() if detect_deadlocks else None
        self.deadlock: Optional[DeadlockInfo] = None
        #: injectable match policy (repro.schedules): wildcard receives
        #: become controllable decision points when set
        self.match_policy = match_policy
        self._finished_lock = threading.Lock()
        self._finished: set[int] = set()
        self.mailboxes = [Mailbox(r, self.stop_event,
                                  waitgraph=self.waitgraph, injector=injector,
                                  policy=match_policy)
                          for r in range(size)]
        self.collectives = CollectiveEngine(self.stop_event,
                                            waitgraph=self.waitgraph,
                                            injector=injector)
        self.start_time = time.monotonic()
        self._abort_lock = threading.Lock()
        self.abort_code: Optional[int] = None
        self.abort_origin: Optional[int] = None
        if match_policy is not None:
            match_policy.bind_job(self)

    def note_rank_finished(self, rank: int) -> None:
        """A rank's entry returned (or raised): it can send no more."""
        with self._finished_lock:
            self._finished.add(rank)

    def finished_ranks(self) -> frozenset[int]:
        with self._finished_lock:
            return frozenset(self._finished)

    def abort(self, errorcode: int = 1, origin: Optional[int] = None) -> None:
        """``MPI_Abort``: stop every rank.  The caller also raises locally."""
        with self._abort_lock:
            if self.abort_code is None:
                self.abort_code = int(errorcode)
                self.abort_origin = origin
        self.stop_event.set()
        raise MpiAbort(errorcode, origin)

    def request_stop(self) -> None:
        """Stop without recording an abort (used for fatal rank errors)."""
        self.stop_event.set()


@dataclass
class RankOutcome:
    """What happened on one rank."""

    global_rank: int
    exit_code: Optional[int] = None          # return value of the entry point
    error: Optional[BaseException] = None    # uncaught exception, if any
    error_traceback: str = ""
    elapsed: float = 0.0
    finished: bool = False                   # thread returned (ok or error)

    @property
    def ok(self) -> bool:
        return self.finished and self.error is None

    @property
    def interrupted(self) -> bool:
        """True when the rank was unwound by the runtime, not its own bug."""
        return isinstance(self.error, MpiShutdown)


@dataclass
class JobResult:
    """Aggregate result of one job execution."""

    size: int
    outcomes: list[RankOutcome]
    wall_time: float
    timed_out: bool
    abort_code: Optional[int] = None
    abort_origin: Optional[int] = None
    stragglers: int = 0  # threads abandoned after timeout (pure-compute hangs)
    #: set when the wait-for-graph monitor proved a communication deadlock
    deadlock: Optional[DeadlockInfo] = None

    @property
    def ok(self) -> bool:
        return (not self.timed_out and self.deadlock is None
                and self.abort_code is None
                and all(o.ok for o in self.outcomes))

    def first_error(self) -> Optional[RankOutcome]:
        """The lowest-rank outcome carrying a *real* error (not an unwind)."""
        for o in self.outcomes:
            if o.error is not None and not o.interrupted:
                return o
        return None


def run_job(entries: list[Callable[[MpiContext], Optional[int]]],
            sinks: Optional[list[Any]] = None,
            timeout: Optional[float] = None,
            grace: float = 2.0,
            injector: Optional[Any] = None,
            detect_deadlocks: bool = True,
            match_policy: Optional[Any] = None) -> JobResult:
    """Run one MPMD job: ``entries[r]`` is rank *r*'s entry point.

    ``sinks[r]``, when given, is attached to rank *r*'s context (the
    concolic recorder).  ``timeout`` bounds the whole job; on expiry the
    stop event is set and blocked ranks unwind.  Ranks stuck in
    *uninstrumented* pure-compute loops cannot be interrupted from outside
    (instrumented code paths poll the stop event from their branch
    probes); those threads are abandoned as daemon stragglers and counted.

    With ``detect_deadlocks`` (the default), a monitor checks the wait-for
    graph while waiting: a proven communication deadlock stops the job
    immediately — long before the watchdog — and is reported via
    ``JobResult.deadlock``.  ``injector`` attaches a fault injector
    (:mod:`repro.faults`) to every communication hook point;
    ``match_policy`` attaches a schedule controller
    (:mod:`repro.schedules`) that turns wildcard receives into
    deterministic, replayable decision points.
    """
    size = len(entries)
    job = Job(size, injector=injector, detect_deadlocks=detect_deadlocks,
              match_policy=match_policy)
    outcomes = [RankOutcome(global_rank=r) for r in range(size)]

    # completion signal: the monitor must wake the moment the last rank
    # returns, not at the next poll tick — with sub-millisecond target
    # executions, sleeping a fixed poll period quantizes every iteration
    # up to the period and dominates campaign wall time (the
    # docs/PERFORMANCE.md cost model).  The poll period only paces the
    # deadlock/watchdog checks.
    all_done = threading.Event()

    def runner(rank: int) -> None:
        sink = sinks[rank] if sinks is not None else None
        ctx = MpiContext(job, rank, sink=sink)
        if sink is not None and hasattr(sink, "bind_stop_event"):
            sink.bind_stop_event(job.stop_event)
        t0 = time.monotonic()
        out = outcomes[rank]
        try:
            out.exit_code = entries[rank](ctx)
        except BaseException as exc:  # noqa: BLE001 - we *are* the harness
            out.error = exc
            out.error_traceback = traceback.format_exc()
            # MPI_ERRORS_ARE_FATAL: a real error tears the job down so the
            # other ranks don't deadlock waiting for this one.
            if not isinstance(exc, MpiShutdown):
                job.request_stop()
        finally:
            out.elapsed = time.monotonic() - t0
            job.note_rank_finished(rank)
            out.finished = True
            # the thread that writes the final flag reads all others True
            # (attribute writes are ordered), so exactly the last
            # finisher fires the signal
            if all(o.finished for o in outcomes):
                all_done.set()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True,
                                name=f"mpi-rank-{r}")
               for r in range(size)]
    t_start = time.monotonic()
    for t in threads:
        t.start()

    deadline = None if timeout is None else t_start + timeout
    timed_out = False
    while True:
        if all(o.finished for o in outcomes):
            break
        if deadline is not None and time.monotonic() >= deadline:
            timed_out = True
            break
        if (job.waitgraph is not None and job.deadlock is None
                and not job.stop_event.is_set()):
            info = detect_deadlock(job, outcomes)
            if info is not None:
                job.deadlock = info
                break
        _monitor_wait(all_done, _MONITOR_POLL)

    if timed_out or job.deadlock is not None:
        job.request_stop()
        for t in threads:
            t.join(grace)
    else:
        for t in threads:  # all ranks returned; reap the threads
            t.join()
    stragglers = sum(1 for t in threads if t.is_alive())

    return JobResult(
        size=size,
        outcomes=outcomes,
        wall_time=time.monotonic() - t_start,
        timed_out=timed_out,
        abort_code=job.abort_code,
        abort_origin=job.abort_origin,
        stragglers=stragglers,
        deadlock=job.deadlock,
    )
