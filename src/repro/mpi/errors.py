"""Exception hierarchy for the virtual MPI runtime.

The runtime models the failure modes COMPI classifies during testing:

* :class:`MpiAbort` — a rank called ``Abort`` (analog of ``MPI_Abort``).
* :class:`MpiShutdown` — internal control-flow exception raised inside a
  blocking operation when the runtime's stop event is set (watchdog
  timeout or a sibling rank crashing).  Target code never catches it.
* :class:`MpiTimeout` — reported by the runtime when a test exceeded its
  wall-clock budget; the paper classifies this as an *infinite loop* bug.
* :class:`MpiInternalError` — misuse of the runtime API itself
  (mismatched collectives, bad ranks, messages to nowhere).
"""

from __future__ import annotations


class MpiError(Exception):
    """Base class for all virtual-MPI errors."""


class MpiAbort(MpiError):
    """Raised on every rank when some rank calls ``Abort(code)``."""

    def __init__(self, errorcode: int = 1, origin: int | None = None):
        self.errorcode = int(errorcode)
        self.origin = origin
        super().__init__(f"MPI_Abort(code={errorcode}, origin_rank={origin})")


class MpiShutdown(MpiError):
    """Internal unwind signal: the runtime is tearing the job down.

    Raised from inside blocking calls (recv, collectives, barrier) when the
    job's stop event is set.  It deliberately subclasses ``MpiError`` and
    not ``BaseException``: target programs are expected not to swallow
    ``MpiError`` (well-behaved MPI codes do not catch library errors).
    """


class MpiTimeout(MpiError):
    """The whole job exceeded its time budget (hang / infinite loop)."""


class MpiInternalError(MpiError):
    """Invalid use of the runtime (bad rank, type mismatch, ...)."""


class MpiInvalidRank(MpiInternalError):
    """Destination or source rank outside the communicator."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        super().__init__(f"invalid rank {rank} for communicator of size {size}")
