"""Communicators for the virtual MPI runtime.

A :class:`Communicator` is a *per-rank* view onto a group of global ranks:
each member rank holds its own ``Communicator`` object sharing a common
``comm_id`` and group.  Point-to-point operations translate local ranks to
global ranks and use the job's mailboxes; collectives go through the
shared :class:`~repro.mpi.collectives.CollectiveEngine`.

Supported surface (what the paper's targets need):

* ``Get_rank`` / ``Get_size``
* ``Send`` / ``Recv`` / ``Sendrecv`` / ``Isend`` / ``Irecv`` / ``Iprobe``
* ``Barrier``, ``Bcast``, ``Reduce``, ``Allreduce``, ``Scan``,
  ``Gather``, ``Allgather``, ``Scatter``, ``Alltoall``
* ``Split`` (→ new communicators; the basis for COMPI's `rc` marking)
* ``Dup``, ``Abort``
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Optional, TYPE_CHECKING

from .datatypes import ReduceOp, copy_payload, reduce_pair
from .errors import MpiInvalidRank
from .status import ANY_SOURCE, ANY_TAG, Request, Status

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Job

_comm_ids = itertools.count(1)


class Communicator:
    """One rank's handle on a communicator."""

    def __init__(self, job: "Job", comm_id: int, group: tuple[int, ...],
                 my_global_rank: int, name: str = "comm"):
        self.job = job
        self.comm_id = comm_id
        #: global ranks of the members, ordered by local rank
        self.group = group
        self.name = name
        self._global_rank = my_global_rank
        self._rank = group.index(my_global_rank)
        self._coll_seq = 0  # this rank's local collective-call counter

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return len(self.group)

    @property
    def is_world(self) -> bool:
        return self.comm_id == 0

    def local_to_global(self, local_rank: int) -> int:
        if not (0 <= local_rank < len(self.group)):
            raise MpiInvalidRank(local_rank, len(self.group))
        return self.group[local_rank]

    def global_to_local(self, global_rank: int) -> int:
        try:
            return self.group.index(global_rank)
        except ValueError:
            raise MpiInvalidRank(global_rank, len(self.group)) from None

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _tag_key(self, tag: int) -> int:
        """Namespace tags per communicator so comms don't cross-match."""
        if tag in (ANY_TAG,):
            return tag
        return (self.comm_id << 20) | (tag & 0xFFFFF)

    def _tag_range(self) -> tuple[int, int]:
        """Key range covering every tag of this communicator (for ANY_TAG)."""
        return (self.comm_id << 20, (self.comm_id + 1) << 20)

    def Send(self, payload: Any, dest: int, tag: int = 0) -> None:
        gdest = self.local_to_global(dest)
        self.job.mailboxes[gdest].deposit(
            source=self._global_rank, tag=self._tag_key(tag),
            payload=copy_payload(payload))

    def Recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[Any, Status]:
        gsource = source if source == ANY_SOURCE else self.local_to_global(source)
        payload, st = self.job.mailboxes[self._global_rank].receive(
            source=gsource, tag=self._tag_key(tag) if tag != ANY_TAG else ANY_TAG,
            tag_range=self._tag_range() if tag == ANY_TAG else None)
        return payload, Status(source=self.global_to_local(st.source),
                               tag=st.tag & 0xFFFFF)

    def Sendrecv(self, payload: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> tuple[Any, Status]:
        self.Send(payload, dest, sendtag)
        return self.Recv(source, recvtag)

    def Isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        self.Send(payload, dest, tag)  # buffered send: completes immediately
        return Request(payload=None, status=None)

    def Irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        gsource = source if source == ANY_SOURCE else self.local_to_global(source)
        ktag = self._tag_key(tag) if tag != ANY_TAG else ANY_TAG
        trange = self._tag_range() if tag == ANY_TAG else None
        mbox = self.job.mailboxes[self._global_rank]

        def completer(timeout: Optional[float],
                      _pin: Optional[tuple[int, int]] = None) -> tuple[Any, Status]:
            if _pin is not None:
                # schedule controller already chose the concrete match;
                # a concrete (source, tag) receive is deterministic (FIFO)
                payload, st = mbox.receive(source=_pin[0], tag=_pin[1],
                                           timeout=timeout)
            else:
                payload, st = mbox.receive(source=gsource, tag=ktag,
                                           timeout=timeout, tag_range=trange)
            return payload, Status(source=self.global_to_local(st.source),
                                   tag=st.tag & 0xFFFFF)

        completer.accepts_pin = True
        req = Request(completer=completer)
        #: (mailbox, global source, keyed tag, tag range) — lets waitany
        #: treat pending wildcard Irecvs as one schedule decision point
        req._sched = (mbox, gsource, ktag, trange)
        return req

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: wait until a matching message is available,
        without consuming it (``MPI_Probe``)."""
        import time as _time

        while True:
            st = self.Iprobe(source, tag)
            if st is not None:
                return st
            if self.job.stop_event.is_set():
                from .errors import MpiShutdown

                raise MpiShutdown(
                    f"rank {self._global_rank} interrupted in Probe")
            _time.sleep(0.001)

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        gsource = source if source == ANY_SOURCE else self.local_to_global(source)
        ktag = self._tag_key(tag) if tag != ANY_TAG else ANY_TAG
        st = self.job.mailboxes[self._global_rank].probe(
            source=gsource, tag=ktag,
            tag_range=self._tag_range() if tag == ANY_TAG else None)
        if st is None:
            return None
        return Status(source=self.global_to_local(st.source), tag=st.tag & 0xFFFFF)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _collective(self, contribution: Any, combine, op_name: str) -> Any:
        seq = self._coll_seq
        self._coll_seq += 1
        return self.job.collectives.run(
            comm_id=self.comm_id, seq=seq, size=len(self.group),
            local_rank=self._rank, contribution=contribution,
            combine=combine, op_name=op_name,
            global_rank=self._global_rank, group=self.group)

    def Barrier(self) -> None:
        self._collective(None, lambda contribs: None, "Barrier")

    def Bcast(self, payload: Any, root: int = 0) -> Any:
        self.local_to_global(root)  # validate
        result = self._collective(
            copy_payload(payload) if self._rank == root else None,
            lambda contribs: contribs[root], "Bcast")
        return copy_payload(result)

    def Reduce(self, payload: Any, op: ReduceOp, root: int = 0) -> Any:
        """Returns the reduced value on ``root``; ``None`` elsewhere."""
        self.local_to_global(root)

        def combine(contribs: dict[int, Any]) -> Any:
            acc = contribs[0]
            for r in range(1, len(self.group)):
                acc = reduce_pair(op, acc, contribs[r])
            return acc

        result = self._collective(copy_payload(payload), combine, f"Reduce[{op.name}]")
        return copy_payload(result) if self._rank == root else None

    def Allreduce(self, payload: Any, op: ReduceOp) -> Any:
        def combine(contribs: dict[int, Any]) -> Any:
            acc = contribs[0]
            for r in range(1, len(self.group)):
                acc = reduce_pair(op, acc, contribs[r])
            return acc

        result = self._collective(copy_payload(payload), combine,
                                  f"Allreduce[{op.name}]")
        return copy_payload(result)

    def Scan(self, payload: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction."""

        def combine(contribs: dict[int, Any]) -> list[Any]:
            out = [contribs[0]]
            for r in range(1, len(self.group)):
                out.append(reduce_pair(op, out[-1], contribs[r]))
            return out

        result = self._collective(copy_payload(payload), combine, f"Scan[{op.name}]")
        return copy_payload(result[self._rank])

    def Gather(self, payload: Any, root: int = 0) -> Optional[list[Any]]:
        self.local_to_global(root)
        result = self._collective(
            copy_payload(payload),
            lambda contribs: [contribs[r] for r in range(len(self.group))],
            "Gather")
        return copy_payload(result) if self._rank == root else None

    def Allgather(self, payload: Any) -> list[Any]:
        result = self._collective(
            copy_payload(payload),
            lambda contribs: [contribs[r] for r in range(len(self.group))],
            "Allgather")
        return copy_payload(result)

    def Scatter(self, payloads: Optional[list[Any]], root: int = 0) -> Any:
        self.local_to_global(root)
        if self._rank == root:
            if payloads is None or len(payloads) != len(self.group):
                raise MpiInvalidRank(len(payloads or []), len(self.group))
            contribution = copy_payload(list(payloads))
        else:
            contribution = None
        result = self._collective(contribution,
                                  lambda contribs: contribs[root], "Scatter")
        return copy_payload(result[self._rank])

    def Gatherv(self, payload: Any, root: int = 0) -> Optional[list[Any]]:
        """Variable-size gather: contributions may differ per rank (the
        count/displacement bookkeeping of ``MPI_Gatherv`` collapses to
        list concatenation at this abstraction level)."""
        return self.Gather(payload, root=root)

    def Scatterv(self, payloads: Optional[list[Any]], root: int = 0) -> Any:
        """Variable-size scatter — element *i* of ``payloads`` (any sizes)
        goes to local rank *i*."""
        return self.Scatter(payloads, root=root)

    def Reduce_scatter(self, payloads: list[Any], op: ReduceOp) -> Any:
        """``MPI_Reduce_scatter_block`` analog: elementwise-reduce the
        rank-indexed lists, then each rank keeps its own slot."""
        if len(payloads) != len(self.group):
            raise MpiInvalidRank(len(payloads), len(self.group))

        def combine(contribs: dict[int, Any]) -> list[Any]:
            n = len(self.group)
            out = []
            for slot in range(n):
                acc = contribs[0][slot]
                for r in range(1, n):
                    acc = reduce_pair(op, acc, contribs[r][slot])
                out.append(acc)
            return out

        result = self._collective(copy_payload(list(payloads)), combine,
                                  f"Reduce_scatter[{op.name}]")
        return copy_payload(result[self._rank])

    def Exscan(self, payload: Any, op: ReduceOp) -> Any:
        """Exclusive prefix reduction (rank 0 receives ``None``)."""

        def combine(contribs: dict[int, Any]) -> list[Any]:
            out: list[Any] = [None]
            acc = contribs[0]
            for r in range(1, len(self.group)):
                out.append(acc)
                acc = reduce_pair(op, acc, contribs[r])
            return out

        result = self._collective(copy_payload(payload), combine,
                                  f"Exscan[{op.name}]")
        return copy_payload(result[self._rank])

    def Alltoall(self, payloads: list[Any]) -> list[Any]:
        if len(payloads) != len(self.group):
            raise MpiInvalidRank(len(payloads), len(self.group))

        def combine(contribs: dict[int, Any]) -> dict[int, list[Any]]:
            n = len(self.group)
            return {r: [contribs[s][r] for s in range(n)] for r in range(n)}

        result = self._collective(copy_payload(list(payloads)), combine, "Alltoall")
        return copy_payload(result[self._rank])

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def Split(self, color: int, key: int = 0, name: str = "split") -> Optional["Communicator"]:
        """``MPI_Comm_split``: all members call; returns each rank's new
        communicator (or ``None`` for ``color < 0``, the UNDEFINED analog).

        A shared ``comm_id`` per colour group is allotted by the combine
        step so that every member of a group agrees on it.
        """
        def combine(contribs: dict[int, Any]) -> dict[int, tuple[int, tuple[int, ...]]]:
            groups: dict[int, list[tuple[int, int, int]]] = {}
            for local_rank, (c, k) in contribs.items():
                if c is None or c < 0:
                    continue
                groups.setdefault(c, []).append((k, local_rank, self.group[local_rank]))
            out: dict[int, tuple[int, tuple[int, ...]]] = {}
            for c in sorted(groups):
                members = sorted(groups[c])  # order by key, then old rank
                cid = next(_comm_ids)
                g = tuple(grank for (_k, _lr, grank) in members)
                for (_k, local_rank, _grank) in members:
                    out[local_rank] = (cid, g)
            return out

        result = self._collective((int(color), int(key)), combine, "Split")
        if self._rank not in result:
            return None
        cid, group = result[self._rank]
        return Communicator(self.job, cid, group, self._global_rank,
                            name=f"{name}#{cid}")

    def Dup(self) -> "Communicator":
        result = self._collective(None, lambda c: next(_comm_ids), "Dup")
        return Communicator(self.job, result, self.group, self._global_rank,
                            name=f"{self.name}.dup")

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def Abort(self, errorcode: int = 1) -> None:
        self.job.abort(errorcode, origin=self._global_rank)
