"""Backtracking integer constraint solver with previous-value preference.

This is the Yices stand-in.  It solves conjunctions of linear integer
constraints (``<=``, ``==``, ``!=`` after normalization) over finite box
domains by backtracking search with forward propagation:

* **variable order** — most-constrained first (smallest current interval);
* **value order** — the variable's *previous* value first, then values
  near interval bounds, zero/±1 neighbours of the previous value, the
  midpoint, and a few seeded random samples.

Trying the previous value first is what gives COMPI the *incremental
solving property* (§III-C): variables keep their old values unless the
negated constraint forces a change, so "the most up-to-date value" —
the variable whose value actually moved — identifies which rank variable
drives the focus change.

The solver is sound for SAT answers (every returned model is checked
against the full constraint set) and incomplete for UNSAT: hitting the
node limit reports ``None`` exactly like a solver timeout, which concolic
drivers already must treat as "couldn't negate this branch".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..concolic.expr import Constraint
from .intervals import Box, check_assignment, is_empty, propagate

DEFAULT_NODE_LIMIT = 20_000


@dataclass
class Problem:
    """One solver call: constraints + domains + previous model."""

    constraints: list[Constraint]
    domains: Box
    previous: dict[int, int] = field(default_factory=dict)

    def normalized_constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for c in self.constraints:
            out.extend(c.normalized())
        return out

    def digest(self) -> int:
        """Stable 32-bit fingerprint of the whole problem.

        Seeds the per-solve sampling RNG, making every solve a pure
        function of (problem, solver seed): repeating a query — or
        skipping it on a cache hit — cannot shift the samples any
        *other* query sees.  Uses only content, never ids or hashes
        subject to per-process randomization.
        """
        cons = sorted((c.op, c.lhs.const, tuple(sorted(c.lhs.coeffs.items())))
                      for c in self.normalized_constraints())
        doms = sorted(self.domains.items())
        prev = sorted(self.previous.items())
        return zlib.crc32(repr((cons, doms, prev)).encode())


@dataclass
class SolveStats:
    nodes: int = 0
    propagations: int = 0
    exhausted: bool = False


class Solver:
    """Reusable solver.

    Sampled value candidates draw from a *per-solve* RNG seeded by
    ``(sample_seed, problem digest)``: the model returned for a problem
    is a pure function of the problem and the solver's seed, never of
    which other problems were solved before it.  That purity is what
    lets the counterexample cache skip repeated solves without
    perturbing the rest of the campaign.  ``stats`` holds the *last*
    call's counters (the node budget needs per-call counts); the
    session-level cumulative view lives in
    :class:`repro.solvercache.SolverStats`.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 node_limit: int = DEFAULT_NODE_LIMIT,
                 sample_seed: Optional[int] = None):
        if sample_seed is None:
            # legacy construction path: derive a stable seed from the
            # supplied generator (one draw, deterministic per seed)
            src = rng or np.random.default_rng(0)
            sample_seed = int(src.integers(0, 2 ** 63))
        self.sample_seed = int(sample_seed)
        self.node_limit = node_limit
        self.stats = SolveStats()
        self._sample_rng = np.random.default_rng(self.sample_seed)

    # ------------------------------------------------------------------
    def solve(self, problem: Problem) -> Optional[dict[int, int]]:
        """Return a satisfying assignment for every domain variable, or
        ``None`` (UNSAT or node limit)."""
        self.stats = SolveStats()
        seed = getattr(self, "sample_seed", 0)  # pre-seed pickles
        self._sample_rng = np.random.default_rng((seed, problem.digest()))
        constraints = problem.normalized_constraints()
        box: Box = dict(problem.domains)
        for c in constraints:
            for v in c.vars():
                if v not in box:
                    raise KeyError(f"constraint variable v{v} has no domain")
        if not propagate(constraints, box):
            return None
        result = self._search(constraints, box, {}, problem.previous)
        if result is None:
            return None
        if not check_assignment(problem.constraints, result):  # paranoia
            return None
        return result

    # ------------------------------------------------------------------
    def _select_var(self, box: Box, assignment: dict[int, int]) -> Optional[int]:
        best, best_width = None, None
        for v, (lo, hi) in box.items():
            if v in assignment:
                continue
            width = hi - lo
            if best_width is None or width < best_width:
                best, best_width = v, width
        return best

    def _candidates(self, v: int, box: Box, previous: Mapping[int, int]) -> list[int]:
        lo, hi = box[v]
        cands: list[int] = []

        def push(x: int) -> None:
            if lo <= x <= hi and x not in cands:
                cands.append(x)

        # Previous value first (the incremental-solving property §III-C);
        # after that, domain *bounds* — an SMT solver handed a freshly
        # negated bound constraint typically returns a boundary model,
        # which is what makes input capping behave as in the paper (§IV-A:
        # generated inputs actually reach the cap).
        if v in previous:
            push(previous[v])
        push(hi)
        push(lo)
        if v in previous:
            push(previous[v] + 1)
            push(previous[v] - 1)
        push(0)
        push(1)
        push((lo + hi) // 2)
        span = hi - lo
        if span > 8:
            for _ in range(4):
                push(int(self._sample_rng.integers(lo, hi + 1)))
        else:
            for x in range(lo, hi + 1):
                push(x)
        return cands

    def _search(self, constraints: list[Constraint], box: Box,
                assignment: dict[int, int],
                previous: Mapping[int, int]) -> Optional[dict[int, int]]:
        # decide any singleton domains first (cheap, no branching)
        for v, (lo, hi) in box.items():
            if v not in assignment and lo == hi:
                assignment[v] = lo

        v = self._select_var(box, assignment)
        if v is None:
            full = dict(assignment)
            return full if check_assignment(constraints, full) else None

        for value in self._candidates(v, box, previous):
            self.stats.nodes += 1
            if self.stats.nodes > self.node_limit:
                self.stats.exhausted = True
                return None
            child_box: Box = dict(box)
            child_box[v] = (value, value)
            self.stats.propagations += 1
            if not propagate(constraints, child_box):
                continue
            if any(is_empty(iv) for iv in child_box.values()):
                continue
            child_assignment = dict(assignment)
            child_assignment[v] = value
            # quick disequality check on fully-assigned constraints
            if not self._partial_ok(constraints, child_assignment):
                continue
            result = self._search(constraints, child_box, child_assignment,
                                  previous)
            if result is not None:
                return result
            if self.stats.exhausted:
                return None
        return None

    @staticmethod
    def _partial_ok(constraints: list[Constraint],
                    assignment: dict[int, int]) -> bool:
        for c in constraints:
            vs = c.vars()
            if vs and vs <= assignment.keys():
                if not c.evaluate(assignment):
                    return False
        return True
