"""Incremental solving: dependency slicing + keep-old-values semantics.

The paper (§III-C) leans on two properties of the underlying incremental
solver:

1. only the *negated constraint and the constraints dependent upon it*
   (transitively, through shared variables) are re-solved;
2. variables outside that slice keep their previous values, so a value
   that **changed** is "more up-to-date" than one that stayed — the signal
   used to resolve rank conflicts.

:func:`dependent_slice` computes the transitive variable-sharing closure;
:func:`solve_incremental` solves the slice and merges the result over the
previous model, reporting exactly which variables changed.

Between the slicer and the backtracking solver sits the optional
**counterexample cache** (:mod:`repro.solvercache`): the sliced query is
canonicalized into a renaming/order-invariant key, and a cached SAT
model is replayed (after re-validation through ``check_assignment``) or
a cached UNSAT verdict short-circuits the solve.  See docs/SOLVER.md.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Optional

from ..concolic.expr import Constraint
from ..solvercache import (CacheEntry, SolverStats, canonical_key,
                           canonicalize_model, decanonicalize)
from .intervals import Box, check_assignment
from .search import Problem, Solver
from .simplify import SimplifyMemo, simplify


def dependent_slice(constraints: list[Constraint],
                    seed_vars: frozenset[int]) -> tuple[list[Constraint], frozenset[int]]:
    """All constraints transitively sharing a variable with ``seed_vars``.

    Returns (sliced constraints, the closed variable set).
    """
    vars_closed = set(seed_vars)
    picked = [False] * len(constraints)
    # hoist the per-constraint variable sets out of the fixpoint loop:
    # each pass used to recompute frozensets for every unpicked
    # constraint, which dominated slicing time on long prefixes
    cvars = [c.vars() for c in constraints]
    changed = True
    while changed:
        changed = False
        for i, cv in enumerate(cvars):
            if picked[i]:
                continue
            if cv and not cv.isdisjoint(vars_closed):
                picked[i] = True
                new = cv - vars_closed
                if new:
                    vars_closed |= new
                changed = True
    return [c for i, c in enumerate(constraints) if picked[i]], frozenset(vars_closed)


@dataclass
class IncrementalResult:
    """Outcome of one incremental solve."""

    assignment: dict[int, int]          # full model (slice ∪ kept old values)
    changed: set[int] = field(default_factory=set)  # vids whose value moved
    slice_size: int = 0
    #: the model came from the counterexample cache (telemetry only)
    cached: bool = False


def _slice_query(constraints: list[Constraint], negated: Constraint,
                 domains: Box, previous: dict[int, int],
                 simplifier) -> tuple[list[Constraint], frozenset[int],
                                      Box, dict[int, int]]:
    """Simplify the context, slice around the negation, restrict the
    domains and previous values to the closed variable set."""
    all_constraints = simplifier(list(constraints)) + [negated]
    sliced, closed_vars = dependent_slice(all_constraints, negated.vars())
    slice_domains: Box = {}
    for v in closed_vars:
        if v not in domains:
            raise KeyError(f"variable v{v} has no domain")
        slice_domains[v] = domains[v]
    slice_prev = {v: previous[v] for v in closed_vars if v in previous}
    return sliced, closed_vars, slice_domains, slice_prev


def _valid_model(sliced: list[Constraint], slice_domains: Box,
                 model: dict[int, int]) -> bool:
    """Soundness gate for replayed cache models: full variable cover,
    in-domain values, and every sliced constraint satisfied."""
    if set(model) != set(slice_domains):
        return False
    for v, val in model.items():
        lo, hi = slice_domains[v]
        if not lo <= val <= hi:
            return False
    return check_assignment(sliced, model)


def solve_incremental(constraints: list[Constraint], negated: Constraint,
                      domains: Box, previous: dict[int, int],
                      solver: Optional[Solver] = None,
                      simplifier=None, cache=None,
                      stats: Optional[SolverStats] = None,
                      ) -> Optional[IncrementalResult]:
    """Solve ``constraints ∧ negated`` incrementally against ``previous``.

    ``constraints`` is the retained context (path prefix + MPI semantic
    constraints + caps); ``negated`` is the flipped branch constraint.
    Only the dependency slice around ``negated`` is actually solved;
    every other variable keeps its previous value.  Returns ``None`` when
    the slice is UNSAT (or the solver gave up).

    ``simplifier`` substitutes a memoized :func:`simplify` (results are
    identical either way); ``cache`` is a counterexample cache (or a
    speculative fork view) consulted before — and fed after — the
    backtracking solve; ``stats`` accumulates session telemetry.
    """
    solver = solver or Solver()
    t0 = time.perf_counter()
    sliced, closed_vars, slice_domains, slice_prev = _slice_query(
        constraints, negated, domains, previous, simplifier or simplify)

    def _result(model: dict[int, int], cached: bool) -> IncrementalResult:
        assignment = dict(previous)
        assignment.update(model)
        changed = {v for v, val in model.items() if previous.get(v) != val}
        return IncrementalResult(assignment=assignment, changed=changed,
                                 slice_size=len(sliced), cached=cached)

    key = order = None
    if cache is not None:
        key, order = canonical_key(sliced, slice_domains, slice_prev)
        entry = cache.get(key)
        if entry is not None:
            if not entry.sat:
                if stats is not None:
                    stats.unsat_hits += 1
                    stats.note_request(len(sliced), time.perf_counter() - t0)
                return None
            model = decanonicalize(entry.model, order)
            if _valid_model(sliced, slice_domains, model):
                if stats is not None:
                    stats.cache_hits += 1
                    stats.note_request(len(sliced), time.perf_counter() - t0)
                return _result(model, cached=True)
            # stale or corrupted entry: fall through to a fresh solve,
            # whose verdict will replace it
            if stats is not None:
                stats.stale_hits += 1

    model = solver.solve(Problem(constraints=sliced, domains=slice_domains,
                                 previous=slice_prev))
    if cache is not None:
        if model is not None:
            cache.put(key, CacheEntry(sat=True,
                                      model=canonicalize_model(model, order)))
            if stats is not None:
                stats.stores += 1
        elif not solver.stats.exhausted:
            # a give-up under the node budget is not a verdict; only
            # completed searches are cached as UNSAT
            cache.put(key, CacheEntry(sat=False))
            if stats is not None:
                stats.stores += 1
    if stats is not None:
        stats.note_fresh_solve(solver.stats, sat=model is not None)
        stats.note_request(len(sliced), time.perf_counter() - t0)
    if model is None:
        return None
    return _result(model, cached=False)


def _identity(constraints: list[Constraint]) -> list[Constraint]:
    """Pass-through simplifier for pre-simplified contexts.

    :meth:`SolveSession.solve_at` hands :func:`solve_incremental` a
    context that is already ``simplify(stem + prefix)`` (maintained by
    the stem frame's ladder); because :func:`simplify` is idempotent,
    skipping the redundant pass yields the exact same constraint list —
    hence identical slices and identical cache keys."""
    return constraints


class _StemFrame:
    """One pushed invariant stem plus its simplified path-prefix ladder.

    ``raw`` is the stem as the scheduler built it (MPI semantic
    constraints + discovered caps — everything invariant across the
    negations of one trace).  ``ladder[k]`` caches
    ``simplify(raw + path[:k])`` for the longest path the frame has
    seen; consecutive negations of one trace differ only in prefix
    length, so each extends the ladder by at most a few constraints
    instead of re-simplifying the whole context (the
    :class:`~repro.solver.simplify.SimplifyMemo` compositionality
    property, applied per prefix level).

    Ladder entries are pure functions of ``(raw, path[:k])``: mutation
    is cache warming, never semantics, which is why forked sessions may
    share frames with the committed stream.
    """

    __slots__ = ("raw", "_path", "_ladder")

    def __init__(self, stem: list[Constraint]):
        self.raw: tuple[Constraint, ...] = tuple(stem)
        self._path: list[Constraint] = []
        self._ladder: list[list[Constraint]] = [simplify(list(stem))]

    def context_at(self, prefix: list[Constraint]) -> list[Constraint]:
        """``simplify(stem + prefix)``, reusing the longest shared
        prefix with the previous call (bit-for-bit equal to a fresh
        :func:`simplify` of the concatenation)."""
        path, ladder = self._path, self._ladder
        common = 0
        limit = min(len(prefix), len(path))
        while common < limit and prefix[common] == path[common]:
            common += 1
        del path[common:]
        del ladder[common + 1:]
        for c in prefix[common:]:
            ladder.append(simplify(ladder[-1] + [c]))
            path.append(c)
        return list(ladder[len(prefix)])


class SolveSession:
    """A sequence of incremental solves over one (stateful) solver.

    The session owns the solver, the counterexample cache, the
    simplification memo, and the cumulative :class:`SolverStats` that
    the campaign report surfaces.  The engine scheduler funnels every
    committed (serial) negation through one long-lived session, and
    gives each speculative batch a :meth:`fork` — a snapshot solver plus
    a write-buffered cache view, so neither solver state nor cache
    contents (nor LRU recency, nor the disk tier) can be perturbed by
    speculation.  A forked session is reused across the whole batch
    (one snapshot per batch, not per candidate), which is what makes
    k-wide speculation cheap enough to schedule every step.

    **Persistent incremental solving** (``CompiConfig.persistent_solver``):
    instead of re-simplifying ``stem + prefix`` from scratch on every
    :meth:`solve`, the scheduler pushes the trace's invariant stem once
    (:meth:`stem` / :meth:`push_stem`) and solves each negation through
    :meth:`solve_at`, which extends the frame's prefix ladder
    incrementally.  Determinism contract: for any call sequence,
    ``solve_at(frame, prefix, negated, ...)`` produces bit-for-bit the
    results of ``solve(list(frame.raw) + prefix, negated, ...)`` —
    same sliced query, same cache keys, same solver node walk — because
    ladder entries equal a fresh ``simplify`` of the concatenation and
    :func:`simplify` is idempotent.  The frames themselves are pure
    caches: they are not checkpointed, and a resumed session rebuilds
    them on first use.
    """

    def __init__(self, solver: Optional[Solver] = None, cache=None,
                 stats: Optional[SolverStats] = None):
        self.solver = solver or Solver()
        self.cache = cache
        self.stats = stats if stats is not None else SolverStats()
        self.solves = 0
        self._memo = SimplifyMemo()
        self._stems: list[_StemFrame] = []

    def solve(self, constraints: list[Constraint], negated: Constraint,
              domains: Box,
              previous: dict[int, int]) -> Optional[IncrementalResult]:
        self.solves += 1
        return solve_incremental(constraints, negated, domains,
                                 previous=previous, solver=self.solver,
                                 simplifier=self._memo, cache=self.cache,
                                 stats=self.stats)

    # -- persistent stems ------------------------------------------------
    def push_stem(self, stem: list[Constraint]) -> _StemFrame:
        """Push an invariant stem; subsequent :meth:`solve_at` calls
        against the returned frame solve ``stem + prefix ∧ negated``."""
        frame = _StemFrame(stem)
        self._stems.append(frame)
        return frame

    def pop_stem(self) -> None:
        """Drop the top stem frame (a pure cache — no solver state to
        undo)."""
        self._stems.pop()

    def stem(self, stem: list[Constraint]) -> _StemFrame:
        """The session's frame for ``stem``, replacing the top frame.

        The scheduler calls this once per trace: when the stem is
        unchanged from the previous trace (the common case — MPI
        semantics and caps rarely move) the existing frame and its warm
        ladder are reused; otherwise the top frame is swapped out.
        """
        if self._stems:
            top = self._stems[-1]
            if top.raw == tuple(stem):
                return top
            frame = _StemFrame(stem)
            self._stems[-1] = frame
            return frame
        return self.push_stem(stem)

    def solve_at(self, frame: _StemFrame, prefix: list[Constraint],
                 negated: Constraint, domains: Box,
                 previous: dict[int, int]) -> Optional[IncrementalResult]:
        """Solve ``frame.raw + prefix ∧ negated`` via the prefix ladder.

        Bit-for-bit equivalent to :meth:`solve` on the concatenated
        context (see the class docstring for why)."""
        self.solves += 1
        return solve_incremental(frame.context_at(prefix), negated, domains,
                                 previous=previous, solver=self.solver,
                                 simplifier=_identity, cache=self.cache,
                                 stats=self.stats)

    def fork(self) -> "SolveSession":
        """An independent session whose solver state is a snapshot of
        this one — speculation runs here.  The fork reads the shared
        cache but buffers its writes, and keeps throwaway telemetry:
        only the committed stream feeds the campaign report.  Stem
        frames are shared with the parent (ladder entries are pure
        functions of stem + prefix, so cross-warming is sound)."""
        fork_cache = self.cache.fork() if self.cache is not None else None
        forked = SolveSession(copy.deepcopy(self.solver), cache=fork_cache,
                              stats=SolverStats())
        forked._stems = list(self._stems)
        return forked
