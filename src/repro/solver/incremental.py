"""Incremental solving: dependency slicing + keep-old-values semantics.

The paper (§III-C) leans on two properties of the underlying incremental
solver:

1. only the *negated constraint and the constraints dependent upon it*
   (transitively, through shared variables) are re-solved;
2. variables outside that slice keep their previous values, so a value
   that **changed** is "more up-to-date" than one that stayed — the signal
   used to resolve rank conflicts.

:func:`dependent_slice` computes the transitive variable-sharing closure;
:func:`solve_incremental` solves the slice and merges the result over the
previous model, reporting exactly which variables changed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from ..concolic.expr import Constraint
from .intervals import Box
from .search import Problem, Solver
from .simplify import simplify


def dependent_slice(constraints: list[Constraint],
                    seed_vars: frozenset[int]) -> tuple[list[Constraint], frozenset[int]]:
    """All constraints transitively sharing a variable with ``seed_vars``.

    Returns (sliced constraints, the closed variable set).
    """
    vars_closed = set(seed_vars)
    picked = [False] * len(constraints)
    changed = True
    while changed:
        changed = False
        for i, c in enumerate(constraints):
            if picked[i]:
                continue
            cv = c.vars()
            if cv and not cv.isdisjoint(vars_closed):
                picked[i] = True
                new = cv - vars_closed
                if new:
                    vars_closed |= new
                changed = True
    return [c for i, c in enumerate(constraints) if picked[i]], frozenset(vars_closed)


@dataclass
class IncrementalResult:
    """Outcome of one incremental solve."""

    assignment: dict[int, int]          # full model (slice ∪ kept old values)
    changed: set[int] = field(default_factory=set)  # vids whose value moved
    slice_size: int = 0

    @property
    def sat(self) -> bool:
        return True


def solve_incremental(constraints: list[Constraint], negated: Constraint,
                      domains: Box, previous: dict[int, int],
                      solver: Optional[Solver] = None) -> Optional[IncrementalResult]:
    """Solve ``constraints ∧ negated`` incrementally against ``previous``.

    ``constraints`` is the retained context (path prefix + MPI semantic
    constraints + caps); ``negated`` is the flipped branch constraint.
    Only the dependency slice around ``negated`` is actually solved;
    every other variable keeps its previous value.  Returns ``None`` when
    the slice is UNSAT (or the solver gave up).
    """
    solver = solver or Solver()
    # preprocessing: drop duplicate and subsumed context constraints (the
    # solution set is unchanged; the dependency slice gets much smaller
    # on loop-generated prefixes)
    all_constraints = simplify(list(constraints)) + [negated]
    sliced, closed_vars = dependent_slice(all_constraints, negated.vars())
    slice_domains: Box = {}
    for v in closed_vars:
        if v not in domains:
            raise KeyError(f"variable v{v} has no domain")
        slice_domains[v] = domains[v]
    slice_prev = {v: previous[v] for v in closed_vars if v in previous}

    model = solver.solve(Problem(constraints=sliced, domains=slice_domains,
                                 previous=slice_prev))
    if model is None:
        return None

    assignment = dict(previous)
    assignment.update(model)
    changed = {v for v, val in model.items() if previous.get(v) != val}
    return IncrementalResult(assignment=assignment, changed=changed,
                             slice_size=len(sliced))


class SolveSession:
    """A sequence of incremental solves over one (stateful) solver.

    The solver draws from an RNG stream, so *who* solves *what* in *which
    order* is part of the campaign's deterministic identity.  The engine
    scheduler therefore funnels every committed (serial) negation through
    one long-lived session, and gives each speculative batch a
    :meth:`fork` — a deep-copied solver whose draws cannot perturb the
    committed stream.  A forked session is reused across the whole batch
    (one snapshot per batch, not per candidate), which is what makes
    k-wide speculation cheap enough to schedule every step.
    """

    def __init__(self, solver: Optional[Solver] = None):
        self.solver = solver or Solver()
        self.solves = 0

    def solve(self, constraints: list[Constraint], negated: Constraint,
              domains: Box,
              previous: dict[int, int]) -> Optional[IncrementalResult]:
        self.solves += 1
        return solve_incremental(constraints, negated, domains,
                                 previous=previous, solver=self.solver)

    def fork(self) -> "SolveSession":
        """An independent session whose solver state (RNG position, node
        budget) is a snapshot of this one — speculation runs here."""
        return SolveSession(copy.deepcopy(self.solver))
