"""Linear integer constraint solver (the offline Yices stand-in)."""

from .incremental import (IncrementalResult, SolveSession, dependent_slice,
                          solve_incremental)
from .intervals import INF, Box, check_assignment, propagate
from .search import DEFAULT_NODE_LIMIT, Problem, Solver, SolveStats
from .simplify import SimplifyMemo, simplify

__all__ = [
    "Box", "DEFAULT_NODE_LIMIT", "INF", "IncrementalResult", "Problem",
    "SimplifyMemo", "SolveSession", "SolveStats", "Solver",
    "check_assignment", "dependent_slice", "propagate", "simplify",
    "solve_incremental",
]
