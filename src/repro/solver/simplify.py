"""Constraint-set simplification: deduplication and subsumption.

Path prefixes repeat themselves: the same sanity-check constraint shows
up once per execution, and loop boundaries contribute families like
``x - k <= 0`` for many ``k`` where only the tightest matters.  Both are
sound to drop before solving:

* **duplicates** — identical (lhs, op) pairs;
* **subsumption** — for constraints sharing a left-hand side,
  ``lhs + c1 ⋈ 0`` implies ``lhs + c2 ⋈ 0`` when c1 dominates c2 for ⋈
  (``<=``: c1 ≥ c2; ``==`` implies any ``<=`` it satisfies...; we keep
  the conservative ``<=``-family rule plus exact-duplicate removal for
  ``==``/``!=``).

This shrinks the dependency slice the incremental solver walks — the same
engineering Yices' preprocessing performs.
"""

from __future__ import annotations

from ..concolic.expr import Constraint, LinearExpr


def _coeff_key(lhs: LinearExpr) -> tuple:
    return tuple(sorted(lhs.coeffs.items()))


def simplify(constraints: list[Constraint]) -> list[Constraint]:
    """Return an equivalent, usually smaller, constraint list.

    Preserves satisfiability and the solution set exactly; ordering of
    the survivors follows first appearance.
    """
    # bucket normalized <= constraints per coefficient vector, keeping
    # only the tightest constant; pass others through a dedup set
    tightest_le: dict[tuple, int] = {}
    seen_exact: set[tuple] = set()
    order: list[tuple[str, tuple, Constraint]] = []

    for c in constraints:
        for n in c.normalized():
            key = _coeff_key(n.lhs)
            if n.op == "<=":
                # lhs + const <= 0 : larger const = tighter
                prev = tightest_le.get(key)
                if prev is None or n.lhs.const > prev:
                    tightest_le[key] = n.lhs.const
                    order.append(("le", key, n))
            else:
                exact = (n.op, key, n.lhs.const)
                if exact not in seen_exact:
                    seen_exact.add(exact)
                    order.append(("other", exact, n))

    out: list[Constraint] = []
    emitted_le: set[tuple] = set()
    for kind, key, c in order:
        if kind == "le":
            if key in emitted_le:
                continue
            # emit the final tightest version for this coefficient vector
            if c.lhs.const == tightest_le[key]:
                out.append(c)
                emitted_le.add(key)
            else:
                # a tighter one appears later; emit it there
                tight = Constraint(LinearExpr(dict(key), tightest_le[key]),
                                   "<=")
                out.append(tight)
                emitted_le.add(key)
        else:
            out.append(c)
    return out


class SimplifyMemo:
    """Memoized :func:`simplify` for the mostly-unchanged retained prefix.

    Consecutive incremental solves re-simplify near-identical context
    lists: the path prefix grows (or shrinks back) by a few constraints
    between negations while the MPI-semantic and capping tails repeat
    verbatim — O(n) re-simplification per negation, O(n²) over a
    campaign.  Two observations make memoization sound and cheap:

    * :func:`simplify` is *compositional over extension*:
      ``simplify(simplify(A) + B) == simplify(A + B)`` — the survivors
      of ``A`` carry exactly the per-key tightest constants and the
      first-appearance order that a joint pass would compute;
    * the common case is an exact repeat or a pure extension of the
      previous call's input, so re-simplifying only ``survivors + tail``
      replaces a full pass over the raw prefix.

    Falls back to a plain :func:`simplify` whenever the new input is
    not an extension, so results are bit-for-bit identical to the
    unmemoized function in every case.
    """

    def __init__(self) -> None:
        self._key: tuple = ()
        self._out: list[Constraint] = []

    def __call__(self, constraints: list[Constraint]) -> list[Constraint]:
        key = tuple(constraints)
        if key == self._key:
            return list(self._out)
        n = len(self._key)
        if n and len(key) >= n and key[:n] == self._key:
            out = simplify(self._out + list(key[n:]))
        else:
            out = simplify(list(key))
        self._key, self._out = key, out
        return list(out)
