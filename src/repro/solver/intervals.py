"""Integer box domains and bound propagation.

The solver works over *boxes* — per-variable integer intervals.  Bound
propagation tightens the box against the canonical constraints
(``<= 0`` / ``== 0``; disequalities don't propagate) until fixpoint or a
round limit.  An empty interval proves UNSAT for the box.

All arithmetic is exact integer arithmetic; ``±INF`` are large sentinels
(the inputs COMPI manipulates are ints well inside the sentinel range
because every variable gets a finite default domain from its kind/cap).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..concolic.expr import Constraint

INF = 10 ** 18

Interval = tuple[int, int]
Box = dict[int, Interval]


def floor_div(a: int, b: int) -> int:
    """Floor division (explicit name for bound arithmetic)."""
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division via negated floor division."""
    return -((-a) // b)


def interval_min(coeff: int, iv: Interval) -> int:
    """Minimum of coeff*x over x in the interval."""
    lo, hi = iv
    return coeff * lo if coeff > 0 else coeff * hi


def interval_max(coeff: int, iv: Interval) -> int:
    """Maximum of coeff*x over x in the interval."""
    lo, hi = iv
    return coeff * hi if coeff > 0 else coeff * lo


def is_empty(iv: Interval) -> bool:
    """True when the interval contains no integers."""
    return iv[0] > iv[1]


def propagate_le(constraint: Constraint, box: Box) -> Optional[bool]:
    """Tighten ``box`` in place against ``lhs <= 0``.

    Returns ``True`` if anything changed, ``None`` if the box became
    empty (UNSAT), ``False`` otherwise.
    """
    lhs = constraint.lhs
    changed = False
    # Precompute the minimum of the whole lhs; if > 0 the constraint is
    # unsatisfiable over this box.
    total_min = lhs.const + sum(interval_min(c, box[v]) for v, c in lhs.coeffs.items())
    if total_min > 0:
        return None
    for v, c in lhs.coeffs.items():
        # c*v <= -(const + sum_{u != v} min(cu*u))
        others = total_min - interval_min(c, box[v])
        limit = -others
        lo, hi = box[v]
        if c > 0:
            new_hi = floor_div(limit, c)
            if new_hi < hi:
                box[v] = (lo, new_hi)
                changed = True
        else:
            new_lo = ceil_div(limit, c)
            if new_lo > lo:
                box[v] = (new_lo, hi)
                changed = True
        if is_empty(box[v]):
            return None
    return changed


def propagate(constraints: Iterable[Constraint], box: Box,
              max_rounds: int = 50) -> bool:
    """Run LE/EQ propagation to fixpoint.  Returns False on proven UNSAT."""
    cs: list[Constraint] = []
    for c in constraints:
        for n in c.normalized():
            cs.append(n)
    for _ in range(max_rounds):
        any_change = False
        for c in cs:
            if c.op == "<=":
                r = propagate_le(c, box)
                if r is None:
                    return False
                any_change |= bool(r)
            elif c.op == "==":
                r1 = propagate_le(Constraint(c.lhs, "<="), box)
                if r1 is None:
                    return False
                r2 = propagate_le(Constraint(c.lhs.scale(-1), "<="), box)
                if r2 is None:
                    return False
                any_change |= bool(r1) or bool(r2)
            # "!=" does not propagate intervals
        if not any_change:
            return True
    return True


def check_assignment(constraints: Iterable[Constraint],
                     assignment: Mapping[int, int]) -> bool:
    """Do all constraints hold under the (full) assignment?"""
    return all(c.evaluate(assignment) for c in constraints)
