"""Portfolio search: concurrent strategy arms over one shared frontier.

COMPI (§V, Fig. 4) compares search strategies one campaign at a time and
crowns two-phase DFS; but no single strategy dominates every target, and
committing to one up front wastes the others entirely.  This subsystem
runs several strategies **as bandit arms of one campaign**:

* every arm's strategy reads and writes one shared
  :class:`~repro.search.base.ExecutionTree` + coverage frontier (and the
  one counterexample cache), so work one arm did is never re-derived by
  a sibling;
* a deterministic UCB bandit (:mod:`.bandit`) reallocates the iteration
  budget toward the arm currently buying the most coverage per unit of
  (deterministic, event-count-proxied) cost;
* the :class:`~.scheduler.PortfolioScheduler` multiplexes the N
  arm-schedulers into the staged engine's speculate→verify→squash
  pipeline — multiple schedulers, one executor, one collector — with
  commit-order attribution of which arm produced each iteration.

Determinism: the bandit never reads wall-clock time (see
``docs/ARCHITECTURE.md``), so portfolio campaigns keep the engine's
crown-jewel invariants — fixed seed ⇒ ``--workers N`` ≡ serial,
cache-on ≡ cache-off, and ``--resume`` ≡ uninterrupted.
"""

from .arms import (ARM_NAMES, DEFAULT_PORTFOLIO, build_arm_strategy,
                   canonical_arm, parse_portfolio)
from .bandit import UcbBandit
from .scheduler import (ArmState, ArmStats, PortfolioScheduler,
                        build_portfolio_scheduler, iteration_cost)

__all__ = [
    "ARM_NAMES", "ArmState", "ArmStats", "DEFAULT_PORTFOLIO",
    "PortfolioScheduler", "UcbBandit", "build_arm_strategy",
    "build_portfolio_scheduler", "canonical_arm", "iteration_cost",
    "parse_portfolio",
]
