"""Arm registry: canonical names → strategy factories.

Arms are the strategies COMPI's Fig. 4 compares, constructed over a
**shared** :class:`~repro.search.base.ExecutionTree` so a flip one arm
explored or proved infeasible is never re-derived by a sibling.  The
canonical names (``dfs2``, ``bounded``, ``dfs``, ``random``,
``uniform``, ``cfg``) are what ``--portfolio`` accepts; the fleet-spec
strategy names (``two-phase``, ``random-branch``, …) are accepted as
aliases so one vocabulary works everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..search.base import ExecutionTree, SearchStrategy
from ..search.cfg import CfgDirectedSearch
from ..search.dfs import BoundedDFS, TwoPhaseDFS
from ..search.random_strategies import RandomBranchSearch, UniformRandomSearch

#: canonical arm names, in the order Fig. 4 presents the strategies
ARM_NAMES = ("dfs2", "bounded", "dfs", "random", "uniform", "cfg")

#: the issue's flagship mix: both systematic DFS variants plus the two
#: strategies that occasionally luck past a plateau
DEFAULT_PORTFOLIO = ("dfs2", "bounded", "random", "cfg")

_ALIASES = {
    "two-phase": "dfs2",
    "twophase": "dfs2",
    "random-branch": "random",
    "uniform-random": "uniform",
}


def canonical_arm(name: str) -> str:
    """Resolve ``name`` (canonical or alias) to its canonical arm name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in ARM_NAMES:
        raise ValueError(
            f"unknown portfolio arm {name!r}; choose from "
            f"{', '.join(ARM_NAMES)} (aliases: {', '.join(sorted(_ALIASES))})")
    return key


def parse_portfolio(spec) -> tuple[str, ...]:
    """Parse a ``--portfolio`` value into a canonical arm tuple.

    Accepts a comma- or plus-separated string (``dfs2,bounded,random``,
    ``dfs2+cfg``) or an iterable of names; the bare word ``default``
    (or an empty-after-split string such as ``"portfolio:"`` yields)
    expands to :data:`DEFAULT_PORTFOLIO`.  Order is preserved — it is
    the bandit's bootstrap order — and duplicates are rejected because
    two identical arms would shadow each other on the shared frontier.
    """
    if isinstance(spec, str):
        raw = [p for p in spec.replace("+", ",").split(",") if p.strip()]
        if not raw or raw == ["default"]:
            return DEFAULT_PORTFOLIO
        names = [canonical_arm(p) for p in raw]
    else:
        names = [canonical_arm(p) for p in spec]
        if not names:
            return DEFAULT_PORTFOLIO
    seen = set()
    for n in names:
        if n in seen:
            raise ValueError(f"duplicate portfolio arm {n!r}")
        seen.add(n)
    return tuple(names)


def build_arm_strategy(name: str, config, program,
                       rng: Optional[np.random.Generator] = None,
                       tree: Optional[ExecutionTree] = None) -> SearchStrategy:
    """Construct one arm's strategy over the (shared) ``tree``.

    Mirrors :func:`repro.fleet.spec.build_strategy` but threads the
    shared tree through; ``program`` is needed only by ``cfg`` (for the
    site registry).
    """
    arm = canonical_arm(name)
    if arm == "dfs2":
        return TwoPhaseDFS(observe_iterations=config.observe_iterations,
                           fixed_bound=config.fixed_depth_bound,
                           slack=config.bound_slack, rng=rng, tree=tree)
    if arm == "bounded":
        return BoundedDFS(depth_bound=config.fixed_depth_bound or 500,
                          rng=rng, tree=tree)
    if arm == "dfs":
        return BoundedDFS(depth_bound=None, rng=rng, tree=tree)
    if arm == "random":
        return RandomBranchSearch(rng=rng, tree=tree)
    if arm == "uniform":
        return UniformRandomSearch(rng=rng, tree=tree)
    if arm == "cfg":
        return CfgDirectedSearch(program.registry, rng=rng, tree=tree)
    raise AssertionError(f"unreachable arm {arm!r}")
