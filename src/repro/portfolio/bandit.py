"""Deterministic UCB1 bandit over strategy arms.

Budget allocation follows the classic UCB1 recipe (Auer et al. 2002):
pick the arm maximising ``mean_reward + c * sqrt(ln T / n_i)``.  The
reward of one pull is the *coverage gain per cost unit* of the iteration
that arm produced; means are normalised by the current **best arm mean**,
so the most productive arm always scores exploit 1.0 and the rest score
their productivity relative to it.  (Normalising by the best single-pull
reward instead — the obvious choice — turns out to squash every mean
toward zero after one lucky high-gain pull, leaving the exploration term
to allocate near-uniformly; relative means keep the exploit signal alive
at any reward scale, so one exploration constant works across targets.)

Two deliberate deviations keep campaigns replayable:

* **No wall-clock.**  The cost of a pull is the deterministic proxy
  computed by :func:`repro.portfolio.scheduler.iteration_cost` (trace
  event count), never measured seconds — measured time would make the
  arm sequence depend on machine load and break the engine's
  ``--workers N`` ≡ serial and ``--resume`` ≡ uninterrupted invariants.
  Measured solver seconds are still *recorded* per arm, as telemetry.
* **Seeded tie-breaks.**  Ties are broken by a dedicated, picklable
  ``random.Random`` stream seeded from the campaign seed, so two runs
  of the same campaign pick the same arms and the whole bandit state
  survives a checkpoint bit-for-bit.
"""

from __future__ import annotations

import math
import random

#: scores within this of the maximum count as tied (floating-point guard)
_TIE_EPS = 1e-12


class UcbBandit:
    """UCB1 allocator over a fixed, ordered set of arms."""

    def __init__(self, arms, exploration: float = 0.5, seed: int = 0):
        names = tuple(arms)
        if not names:
            raise ValueError("bandit needs at least one arm")
        self.arm_names = names
        self.exploration = float(exploration)
        n = len(names)
        self.pulls = [0] * n
        self.gain = [0.0] * n   # cumulative coverage gained
        self.cost = [0.0] * n   # cumulative deterministic cost units
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def update(self, arm: int, gain: float, cost: float) -> None:
        """Credit one committed iteration to ``arm``."""
        cost = max(float(cost), 1e-9)
        self.pulls[arm] += 1
        self.gain[arm] += float(gain)
        self.cost[arm] += cost

    def mean(self, arm: int) -> float:
        """Long-run coverage per cost unit for ``arm`` (0 if unpulled)."""
        if self.cost[arm] <= 0:
            return 0.0
        return self.gain[arm] / self.cost[arm]

    def scores(self) -> list[float]:
        """Current UCB score per arm (``inf`` for unpulled arms)."""
        total = sum(self.pulls)
        best_mean = max((self.mean(i) for i in range(len(self.arm_names))
                         if self.pulls[i]), default=0.0)
        out: list[float] = []
        for i in range(len(self.arm_names)):
            if self.pulls[i] == 0:
                out.append(math.inf)
                continue
            exploit = self.mean(i) / best_mean if best_mean > 0 else 0.0
            explore = self.exploration * math.sqrt(
                math.log(total + 1) / self.pulls[i])
            out.append(exploit + explore)
        return out

    def select(self) -> int:
        """Index of the arm to pull next.

        Bootstrap phase: unpulled arms go first, in declaration order —
        every arm gets one iteration before scores mean anything.
        """
        for i, p in enumerate(self.pulls):
            if p == 0:
                return i
        scores = self.scores()
        best = max(scores)
        tied = [i for i, s in enumerate(scores) if s >= best - _TIE_EPS]
        if len(tied) == 1:
            return tied[0]
        return tied[self.rng.randrange(len(tied))]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "arm_names": self.arm_names,
            "exploration": self.exploration,
            "pulls": list(self.pulls),
            "gain": list(self.gain),
            "cost": list(self.cost),
            "rng": self.rng,  # random.Random pickles with full stream state
        }

    def load_state(self, state: dict) -> None:
        if tuple(state["arm_names"]) != self.arm_names:
            raise ValueError(
                f"checkpoint portfolio {state['arm_names']} does not match "
                f"configured arms {self.arm_names}")
        self.exploration = state["exploration"]
        self.pulls = list(state["pulls"])
        self.gain = list(state["gain"])
        self.cost = list(state["cost"])
        self.rng = state["rng"]
