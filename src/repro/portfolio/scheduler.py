"""PortfolioScheduler: N arm-schedulers multiplexed into one pipeline.

The staged engine (:mod:`repro.engine`) talks to *a* scheduler through a
narrow surface — ``pending``, ``observe``, ``advance``, ``speculate``,
``resume_candidate`` plus a handful of state attributes.  This module
generalises the single-strategy :class:`~repro.engine.scheduler.Scheduler`
to a **portfolio**: each arm keeps its own full ``Scheduler`` (strategy,
campaign RNG, pending candidate), but all arms share

* one :class:`~repro.search.base.ExecutionTree` (the frontier),
* one :class:`~repro.solver.incremental.SolveSession` (solver +
  counterexample cache + simplify memo — safe to share because PR-3's
  per-solve seeded RNG makes solving order-independent),
* one caps dict (input caps harvested from traces), and
* the engine's one coverage map / collector.

Commit-order attribution: every candidate leaving this scheduler is
tagged with its arm's name, the collector copies the tag onto the
committed iteration record, and the bandit is credited strictly in
commit order — so the arm sequence is a pure function of the campaign
seed and the committed stream, never of wall-clock or worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..concolic.coverage import CoverageMap
from ..concolic.trace import TraceResult
from ..engine.scheduler import Candidate, Scheduler
from ..search.base import ExecutionTree
from .arms import build_arm_strategy, parse_portfolio
from .bandit import UcbBandit

#: trace events per cost unit: a path twice as long to execute and solve
#: costs about twice as much budget (deterministic wall-clock proxy)
_EVENTS_PER_COST_UNIT = 256.0


def iteration_cost(trace: Optional[TraceResult]) -> float:
    """Deterministic cost of one committed iteration.

    The bandit optimises coverage gain *per second*, but measured
    seconds would break replayability (see :mod:`.bandit`).  The trace
    event count is the deterministic stand-in: it dominates both
    execution time (events executed) and solver time (constraints
    recorded), and is identical across worker counts, cache settings,
    and resumes.  Errored runs (no trace) cost the baseline 1.0.
    """
    if trace is None:
        return 1.0
    return 1.0 + trace.event_count / _EVENTS_PER_COST_UNIT


@dataclass
class ArmStats:
    """Per-arm telemetry, updated at commit time.

    ``cost`` is deterministic budget units (what the bandit sees);
    ``solver_time``/``solver_solves`` are measured deltas of the shared
    session's committed-stream stats — telemetry only, never fed back
    into allocation.
    """

    name: str
    pulls: int = 0
    coverage_gained: int = 0
    cost: float = 0.0
    solver_time: float = 0.0
    solver_solves: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "pulls": self.pulls,
            "coverage_gained": self.coverage_gained,
            "cost": round(self.cost, 4),
            "solver_time": round(self.solver_time, 6),
            "solver_solves": self.solver_solves,
        }


@dataclass
class ArmState:
    """One portfolio arm: its scheduler plus its telemetry."""

    name: str
    scheduler: Scheduler
    stats: ArmStats = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.stats is None:
            self.stats = ArmStats(name=self.name)


class PortfolioScheduler:
    """Multiplex N arm-schedulers; duck-types the engine's Scheduler."""

    def __init__(self, config, arms: list[tuple[str, Scheduler]],
                 bandit: UcbBandit, session):
        if not arms:
            raise ValueError("portfolio needs at least one arm")
        self.config = config
        self.bandit = bandit
        self.session = session
        self.arms = [ArmState(name=n, scheduler=s) for n, s in arms]
        # one caps dict shared by every arm (assignment, not copy)
        shared_caps: dict[str, int] = {}
        for a in self.arms:
            a.scheduler.caps = shared_caps
        self._caps = shared_caps
        self._last_covered = 0
        self.active = self.bandit.select()
        #: the arm whose candidate the engine last committed/launched —
        #: speculation is only valid while the active arm hasn't switched
        self._committed = self.active
        for a in self.arms:
            a.scheduler.pending.arm = a.name

    # ------------------------------------------------------------------
    # engine surface: state the engine / facade reads or writes
    # ------------------------------------------------------------------
    @property
    def _active_arm(self) -> ArmState:
        return self.arms[self.active]

    @property
    def pending(self) -> Candidate:
        return self._active_arm.scheduler.pending

    @pending.setter
    def pending(self, value: Candidate) -> None:
        value.arm = self._active_arm.name
        self._active_arm.scheduler.pending = value

    @property
    def strategy(self):
        return self._active_arm.scheduler.strategy

    @property
    def rng(self):
        return self._active_arm.scheduler.rng

    @property
    def caps(self) -> dict[str, int]:
        return self._caps

    @caps.setter
    def caps(self, value: dict[str, int]) -> None:
        # re-share: every arm must keep aliasing the same dict
        self._caps = value
        for a in self.arms:
            a.scheduler.caps = value

    @property
    def restarts(self) -> int:
        return sum(a.scheduler.restarts for a in self.arms)

    @property
    def solver_fault_rng(self):
        return self._active_arm.scheduler.solver_fault_rng

    @solver_fault_rng.setter
    def solver_fault_rng(self, value) -> None:
        self._active_arm.scheduler.solver_fault_rng = value

    @property
    def solver_stats(self):
        return self.session.stats

    # ------------------------------------------------------------------
    # pipeline stages (commit order only)
    # ------------------------------------------------------------------
    def observe(self, expect, trace: Optional[TraceResult]) -> None:
        """Fold a committed execution into the *owning* arm's state.

        The active arm runs the full observation (caps harvest,
        divergence check, shared-tree insert); sibling arms only learn
        the path length (:meth:`SearchStrategy.note_foreign_execution`)
        — the tree insert already reached them through sharing.
        """
        self._active_arm.scheduler.observe(expect, trace)
        if trace is None:
            return
        for i, arm in enumerate(self.arms):
            if i != self.active:
                arm.scheduler.strategy.note_foreign_execution(trace.path)

    def advance(self, tc, trace: Optional[TraceResult],
                error_kind: Optional[str], coverage: CoverageMap,
                iteration: int) -> Candidate:
        """Commit one iteration: credit the bandit, maybe switch arms.

        The *reward* is the coverage this committed iteration gained
        (delta of the shared map) per deterministic cost unit.  The
        active arm derives its own next candidate first — keeping its
        RNG/solver stream identical to a single-strategy campaign — and
        only then does the bandit pick which arm's pending candidate
        the engine runs next.
        """
        arm = self._active_arm
        gained = coverage.covered_branches - self._last_covered
        self._last_covered = coverage.covered_branches
        cost = iteration_cost(trace)
        stats = self.session.stats
        solves0, time0 = stats.solves, stats.solve_time
        nxt = arm.scheduler.advance(tc, trace, error_kind, coverage,
                                    iteration)
        nxt.arm = arm.name
        arm.scheduler.pending = nxt
        arm.stats.pulls += 1
        arm.stats.coverage_gained += gained
        arm.stats.cost += cost
        arm.stats.solver_solves += stats.solves - solves0
        arm.stats.solver_time += stats.solve_time - time0
        self.bandit.update(self.active, gained, cost)
        self._committed = self.active
        self.active = self.bandit.select()
        return self._active_arm.scheduler.pending

    def speculate(self, tc, trace: Optional[TraceResult],
                  serial: Candidate, width: int, coverage: CoverageMap,
                  iteration: int, avoid=None) -> list[Candidate]:
        """Speculative siblings — only while the arm did not switch.

        If the bandit just handed the budget to a different arm, the
        serial candidate belongs to the *new* arm while ``trace`` came
        from the old one; predicted negations of the old path would
        never be adopted, so speculation yields nothing.
        """
        if self.active != self._committed:
            return []
        out = self._active_arm.scheduler.speculate(
            tc, trace, serial, width, coverage, iteration, avoid=avoid)
        for cand in out:
            cand.arm = self._active_arm.name
        return out

    def resume_candidate(self) -> Candidate:
        cand = self._active_arm.scheduler.resume_candidate()
        cand.arm = self._active_arm.name
        return cand

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def portfolio_snapshot(self) -> dict:
        """JSON-ready per-arm telemetry (report / JSONL log / result)."""
        total_pulls = sum(a.stats.pulls for a in self.arms)
        scores = self.bandit.scores()
        rows = []
        for i, a in enumerate(self.arms):
            row = a.stats.as_dict()
            row["share"] = round(a.stats.pulls / total_pulls, 4) \
                if total_pulls else 0.0
            row["restarts"] = a.scheduler.restarts
            row["ucb_score"] = (None if math.isinf(scores[i])
                                else round(scores[i], 4))
            rows.append(row)
        return {
            "arms": rows,
            "active": self._active_arm.name,
            "exploration": self.bandit.exploration,
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything resume needs to restore arm state bit-for-bit.

        All arms are pickled inside *one* dict (alongside the bandit and
        shared caps), so pickle preserves the identity of the shared
        execution tree across the round-trip — the restored strategies
        still point at one tree object.
        """
        return {
            "version": 1,
            "active": self.active,
            "committed": self._committed,
            "last_covered": self._last_covered,
            "caps": self._caps,
            "bandit": self.bandit.state_dict(),
            "arms": [{
                "name": a.name,
                "strategy": a.scheduler.strategy,
                "rng": a.scheduler.rng,
                "pending": a.scheduler.pending,
                "restarts": a.scheduler.restarts,
                "solver_fault_rng": a.scheduler.solver_fault_rng,
                "stats": a.stats,
            } for a in self.arms],
        }

    def load_state(self, state: dict) -> None:
        names = [entry["name"] for entry in state["arms"]]
        ours = [a.name for a in self.arms]
        if names != ours:
            raise ValueError(
                f"checkpoint portfolio arms {names} do not match "
                f"configured arms {ours}")
        self.bandit.load_state(state["bandit"])
        self.active = state["active"]
        self._committed = state["committed"]
        self._last_covered = state["last_covered"]
        self.caps = state["caps"]  # setter re-shares across arms
        for arm, entry in zip(self.arms, state["arms"]):
            sched = arm.scheduler
            sched.strategy = entry["strategy"]
            sched.rng = entry["rng"]
            sched.pending = entry["pending"]
            sched.restarts = entry["restarts"]
            sched.solver_fault_rng = entry["solver_fault_rng"]
            arm.stats = entry["stats"]


def build_portfolio_scheduler(config, specs, program, session,
                              initial_setup, fault_plan=None
                              ) -> PortfolioScheduler:
    """Wire up arms, shared tree, and bandit from ``config.portfolio``.

    Seed derivation keeps arm streams disjoint and stable: arm *i* gets
    strategy-RNG salt ``300 + i`` and campaign-RNG salt ``400 + i``; the
    bandit's tie-break stream gets salt ``7``.  (A single-strategy
    campaign uses salts 1–3, so portfolio and classic campaigns never
    share streams.)
    """
    names = parse_portfolio(config.portfolio)
    tree = ExecutionTree()
    arms: list[tuple[str, Scheduler]] = []
    for i, name in enumerate(names):
        strategy = build_arm_strategy(
            name, config, program,
            rng=np.random.default_rng(config.rng_seed(300 + i)), tree=tree)
        sched = Scheduler(
            config=config, specs=specs, strategy=strategy, session=session,
            rng=np.random.default_rng(config.rng_seed(400 + i)),
            initial_setup=initial_setup, fault_plan=fault_plan)
        arms.append((name, sched))
    bandit = UcbBandit(names, exploration=config.portfolio_exploration,
                       seed=config.rng_seed(7))
    return PortfolioScheduler(config, arms, bandit, session)
