"""AST source-to-source instrumentation (the CIL pass).

Given a target module's source, the transformer

* wraps every ``if``/``while``/ternary test in a branch probe::

      if cond:              →    if __compi_branch__(17, cond):

* wraps every ``for`` iterable in a probe generator (the CIL for→while
  lowering: each iteration is the True arm, exhaustion the False arm)::

      for x in xs:          →    for x in __compi_iter__(18, xs):

* inserts a function-entry probe as the first statement of every function
  (after the docstring), plus one for the module toplevel;

* optionally rewrites intra-package imports so a multi-module target is
  instrumented as a closed unit (every submodule resolves to its
  instrumented sibling, never the plain original).

Site/function IDs come from a :class:`~repro.instrument.sites.SiteRegistry`
in deterministic preorder, so repeated instrumentation of the same source
yields identical IDs — the property that lets heavy and light executions
agree on branch identity.

Not wrapped (documented design deltas from CIL): ``assert`` statements,
comprehension ``if`` clauses, and ``and``/``or`` operands.  All of these
still record when their condition is *symbolic*, via the implicit-branch
mechanism in :mod:`repro.concolic.sym`.
"""

from __future__ import annotations

import ast
from typing import Optional

from .sites import SiteRegistry

BRANCH_PROBE = "__compi_branch__"
FUNC_PROBE = "__compi_func__"
ITER_PROBE = "__compi_iter__"


class InstrumentTransformer(ast.NodeTransformer):
    """One module's instrumentation pass."""

    def __init__(self, registry: SiteRegistry, module_name: str,
                 import_map: Optional[dict[str, str]] = None,
                 package_root: Optional[str] = None):
        self.registry = registry
        self.module_name = module_name
        #: original absolute module name → instrumented module name
        self.import_map = import_map or {}
        #: absolute package prefix used to resolve relative imports
        self.package_root = package_root
        self._func_stack: list[int] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _probe_call(self, name: str, *args: ast.expr) -> ast.Call:
        return ast.Call(func=ast.Name(id=name, ctx=ast.Load()),
                        args=list(args), keywords=[])

    def _wrap_test(self, test: ast.expr, lineno: int, kind: str) -> ast.expr:
        sid = self.registry.new_site(self.module_name, self._func_stack[-1],
                                     lineno, kind)
        return self._probe_call(BRANCH_PROBE, ast.Constant(value=sid), test)

    def _entry_stmt(self, fid: int) -> ast.stmt:
        return ast.Expr(value=self._probe_call(FUNC_PROBE, ast.Constant(value=fid)))

    @staticmethod
    def _insert_after_docstring(body: list[ast.stmt], stmt: ast.stmt) -> list[ast.stmt]:
        if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant) \
                and isinstance(body[0].value.value, str):
            return [body[0], stmt] + body[1:]
        return [stmt] + body

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def visit_Module(self, node: ast.Module) -> ast.Module:
        fid = self.registry.new_function(self.module_name, "<module>", 1)
        self._func_stack.append(fid)
        self.generic_visit(node)
        self._func_stack.pop()
        node.body = self._insert_after_docstring(node.body, self._entry_stmt(fid))
        return node

    def _visit_function(self, node):
        qual = node.name
        fid = self.registry.new_function(self.module_name, qual, node.lineno)
        self._func_stack.append(fid)
        self.generic_visit(node)
        self._func_stack.pop()
        node.body = self._insert_after_docstring(node.body, self._entry_stmt(fid))
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        return self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        return self._visit_function(node)

    # ------------------------------------------------------------------
    # branch sites
    # ------------------------------------------------------------------
    def visit_If(self, node: ast.If) -> ast.If:
        self.generic_visit(node)
        node.test = self._wrap_test(node.test, node.lineno, "if")
        return node

    def visit_While(self, node: ast.While) -> ast.While:
        self.generic_visit(node)
        node.test = self._wrap_test(node.test, node.lineno, "while")
        return node

    def visit_For(self, node: ast.For) -> ast.For:
        """CIL lowers ``for`` to ``while``: each loop iteration is a True
        branch evaluation and exhaustion is the False arm.  We wrap the
        iterable in a probe generator that records exactly that."""
        self.generic_visit(node)
        sid = self.registry.new_site(self.module_name, self._func_stack[-1],
                                     node.lineno, "for")
        node.iter = self._probe_call(ITER_PROBE, ast.Constant(value=sid),
                                     node.iter)
        return node

    def visit_IfExp(self, node: ast.IfExp) -> ast.IfExp:
        self.generic_visit(node)
        node.test = self._wrap_test(node.test, node.lineno, "ifexp")
        return node

    # ------------------------------------------------------------------
    # intra-package import rewriting
    # ------------------------------------------------------------------
    def _map_absolute(self, name: str) -> Optional[str]:
        return self.import_map.get(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> ast.ImportFrom:
        self.generic_visit(node)
        if node.level > 0 and self.package_root is not None:
            # resolve `from .sanity import f` against the package root
            base = self.package_root.split(".")
            # level 1 = current package; deeper levels pop components
            base = base[: len(base) - (node.level - 1)]
            absolute = ".".join(base + ([node.module] if node.module else []))
            mapped = self._map_absolute(absolute)
            if mapped is not None:
                return ast.ImportFrom(module=mapped, names=node.names, level=0)
            # relative import of a module OUTSIDE the instrumented unit:
            # rewrite to the absolute original (the instrumented copy lives
            # under a private package where the relative path dangles)
            return ast.ImportFrom(module=absolute, names=node.names, level=0)
        if node.module is not None:
            mapped = self._map_absolute(node.module)
            if mapped is not None:
                return ast.ImportFrom(module=mapped, names=node.names, level=0)
        return node

    def visit_Import(self, node: ast.Import) -> ast.Import:
        self.generic_visit(node)
        names = []
        for alias in node.names:
            mapped = self._map_absolute(alias.name)
            if mapped is not None:
                names.append(ast.alias(name=mapped,
                                       asname=alias.asname or alias.name.split(".")[-1]))
            else:
                names.append(alias)
        return ast.Import(names=names)


def instrument_source(source: str, module_name: str, registry: SiteRegistry,
                      import_map: Optional[dict[str, str]] = None,
                      package_root: Optional[str] = None,
                      filename: str = "<instrumented>") -> "ast.Module":
    """Parse, instrument and fix up one module's source; returns the AST."""
    tree = ast.parse(source, filename=filename)
    tx = InstrumentTransformer(registry, module_name, import_map, package_root)
    tree = tx.visit(tree)
    ast.fix_missing_locations(tree)
    return tree
