"""Static program information derived from the instrumentation pass.

Provides the site graph used by the CFG-directed search strategy (one of
CREST's four strategies, Fig. 4's losing baseline) and the per-function
branch accounting behind Table III's *reachable branches* estimate.

The site graph is a deliberate approximation: within one function,
conditional sites are chained in AST preorder (which follows control flow
for the straight-line-with-nesting shape sanity checks have); functions
are connected through nothing — cross-function distances are infinite.
The paper only uses CFG search to show it fails to pass sanity checks, so
fidelity of the *scoring idea* (distance from executed branches to
uncovered ones) matters more than call-graph completeness.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from .sites import SiteRegistry

INFINITE = 10 ** 9


class SiteGraph:
    """Undirected chain graph over static branch sites."""

    def __init__(self, registry: SiteRegistry):
        self.registry = registry
        self.adj: dict[int, list[int]] = {s.sid: [] for s in registry.sites}
        for fid in range(len(registry.functions)):
            sids = registry.sites_of_function(fid)
            for a, b in zip(sids, sids[1:]):
                self.adj[a].append(b)
                self.adj[b].append(a)

    def distance_to_any(self, start: int, targets: set[int],
                        limit: int = INFINITE) -> int:
        """BFS hop count from ``start`` to the nearest site in ``targets``."""
        if start not in self.adj:
            return INFINITE
        if start in targets:
            return 0
        seen = {start}
        frontier = deque([(start, 0)])
        while frontier:
            node, d = frontier.popleft()
            if d >= limit:
                continue
            for nxt in self.adj[node]:
                if nxt in seen:
                    continue
                if nxt in targets:
                    return d + 1
                seen.add(nxt)
                frontier.append((nxt, d + 1))
        return INFINITE


def uncovered_sites(registry: SiteRegistry,
                    covered_branches: Iterable[tuple[int, bool]]) -> set[int]:
    """Sites with at least one uncovered direction."""
    seen: dict[int, set[bool]] = {}
    for sid, direction in covered_branches:
        if sid >= 0:
            seen.setdefault(sid, set()).add(direction)
    out: set[int] = set()
    for s in registry.sites:
        dirs = seen.get(s.sid, set())
        if len(dirs) < 2:
            out.add(s.sid)
    return out
