"""Instrumentation phase: AST transforms, site registry, program loading."""

from .loader import InstrumentedProgram, instrument_program, make_probes
from .sites import FuncInfo, SiteInfo, SiteRegistry
from .static_info import INFINITE, SiteGraph, uncovered_sites
from .transform import (BRANCH_PROBE, FUNC_PROBE, InstrumentTransformer,
                        instrument_source)

__all__ = [
    "BRANCH_PROBE", "FUNC_PROBE", "FuncInfo", "INFINITE",
    "InstrumentTransformer", "InstrumentedProgram", "SiteGraph", "SiteInfo",
    "SiteRegistry", "instrument_program", "instrument_source", "make_probes",
    "uncovered_sites",
]
