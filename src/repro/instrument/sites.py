"""Static site registry: branch condition IDs and function IDs.

The instrumentation phase (the CIL analog, §V) assigns every conditional
statement a *condition id* in a deterministic AST walk; a branch is then
``[condition_id][T/F]`` exactly as in the paper's notation.  The registry
also powers Table III:

* *total branches* — 2 × (number of static conditional sites);
* *reachable branches* — 2 × (sites of every function entered during
  testing), via :meth:`SiteRegistry.branches_per_function`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SiteInfo:
    """One static conditional (``if``/``while``/ternary)."""

    sid: int
    module: str
    func_fid: int
    lineno: int
    kind: str  # 'if' | 'while' | 'ifexp'


@dataclass(frozen=True)
class FuncInfo:
    """One function (or module toplevel) known to the instrumenter."""

    fid: int
    module: str
    qualname: str
    lineno: int


class SiteRegistry:
    """Mutable registry filled during instrumentation, read-only after."""

    def __init__(self) -> None:
        self.sites: list[SiteInfo] = []
        self.functions: list[FuncInfo] = []
        self._func_sites: dict[int, list[int]] = {}

    # -- creation (instrumentation phase) -------------------------------
    def new_function(self, module: str, qualname: str, lineno: int) -> int:
        fid = len(self.functions)
        self.functions.append(FuncInfo(fid, module, qualname, lineno))
        self._func_sites[fid] = []
        return fid

    def new_site(self, module: str, func_fid: int, lineno: int, kind: str) -> int:
        sid = len(self.sites)
        self.sites.append(SiteInfo(sid, module, func_fid, lineno, kind))
        self._func_sites[func_fid].append(sid)
        return sid

    # -- queries ----------------------------------------------------------
    @property
    def total_sites(self) -> int:
        return len(self.sites)

    @property
    def total_branches(self) -> int:
        """Paper's "total number of branches": T and F arm per conditional."""
        return 2 * len(self.sites)

    def site(self, sid: int) -> SiteInfo:
        return self.sites[sid]

    def function(self, fid: int) -> FuncInfo:
        return self.functions[fid]

    def sites_of_function(self, fid: int) -> list[int]:
        return list(self._func_sites.get(fid, ()))

    def branches_per_function(self) -> dict[int, int]:
        return {fid: 2 * len(sids) for fid, sids in self._func_sites.items()}

    def function_of_site(self, sid: int) -> int:
        return self.sites[sid].func_fid

    def describe(self, sid: int) -> str:
        if sid < 0:
            return f"implicit#{sid}"
        s = self.sites[sid]
        fn = self.functions[s.func_fid].qualname
        return f"{s.module}:{s.lineno}:{fn}[{s.kind}]"
