"""Compile and load instrumented target programs.

A *target program* is a package (or single module) of plain Python written
against the virtual-MPI context API.  :func:`instrument_program` performs
the paper's instrumentation phase: every listed module is transformed (see
:mod:`repro.instrument.transform`), compiled, and executed into a fresh
module object registered under a private name, with intra-package imports
rewired so the instrumented unit is closed.

The probes dispatch through the thread-local sink
(:mod:`repro.concolic.context`).  This is how *two-way instrumentation*
runs in one process: the focus rank's thread carries a
:class:`~repro.concolic.trace.HeavySink` (full symbolic execution — the
``ex1`` build), the other ranks carry :class:`~repro.concolic.trace.LightSink`
(coverage-only — the ``ex2`` build).  Both observe identical site IDs
because they share one deterministic instrumentation.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import itertools
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..concolic.context import current_sink
from ..concolic.sym import SymBool, SymInt
from .sites import SiteRegistry
from .transform import (BRANCH_PROBE, FUNC_PROBE, ITER_PROBE,
                        instrument_source)

_program_ids = itertools.count()


def make_probes(registry: SiteRegistry) -> dict[str, Callable]:
    """Build the runtime probe functions injected into instrumented code."""

    def __compi_branch__(sid: int, val: Any) -> bool:
        sink = current_sink()
        if sink is None:
            if isinstance(val, (SymBool, SymInt)):
                return bool(val.concrete)
            return bool(val)
        if isinstance(val, SymBool):
            if val.constraint is not None:
                return val.observe(sid)
            sink.on_branch(sid, val.concrete, None)
            return val.concrete
        if isinstance(val, SymInt):
            # C truthiness `if (x)` ≡ `x != 0`
            sb = val != 0
            if isinstance(sb, SymBool) and sb.constraint is not None:
                return sb.observe(sid)
            sink.on_branch(sid, val.concrete != 0, None)
            return val.concrete != 0
        outcome = bool(val)
        sink.on_branch(sid, outcome, None)
        return outcome

    def __compi_func__(fid: int) -> None:
        sink = current_sink()
        if sink is not None:
            sink.on_function(fid)

    def __compi_iter__(sid: int, iterable: Any):
        """Probe generator for ``for`` loops: one True branch per item,
        one False branch at exhaustion (the CIL for→while lowering)."""
        sink = current_sink()
        if sink is None:
            yield from iterable
            return
        for item in iterable:
            sink.on_branch(sid, True, None)
            yield item
        sink.on_branch(sid, False, None)

    return {BRANCH_PROBE: __compi_branch__, FUNC_PROBE: __compi_func__,
            ITER_PROBE: __compi_iter__}


@dataclass
class InstrumentedProgram:
    """A loaded, instrumented target: what COMPI launches as ex1/ex2."""

    name: str
    registry: SiteRegistry
    modules: dict[str, types.ModuleType]
    entry_module: str
    entry_name: str = "main"

    @property
    def entry(self) -> Callable:
        """The target's ``main(mpi, args)`` entry point."""
        return getattr(self.modules[self.entry_module], self.entry_name)

    @property
    def total_branches(self) -> int:
        return self.registry.total_branches

    def unload(self) -> None:
        """Drop the instrumented modules from ``sys.modules``."""
        for mod in self.modules.values():
            sys.modules.pop(mod.__name__, None)


def _module_source(module_name: str) -> tuple[str, str]:
    mod = importlib.import_module(module_name)
    path = inspect.getsourcefile(mod)
    if path is None:  # pragma: no cover - only for exotic loaders
        raise ImportError(f"no source for {module_name}")
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read(), path


def instrument_program(module_names: list[str], entry_module: Optional[str] = None,
                       entry_name: str = "main",
                       package_root: Optional[str] = None,
                       name: Optional[str] = None) -> InstrumentedProgram:
    """Instrument ``module_names`` (dependency order, entry last by default).

    ``package_root`` is the absolute package against which the modules'
    relative imports resolve (e.g. ``"repro.targets.hpl"``); it defaults to
    the parent package of the first module.
    """
    if not module_names:
        raise ValueError("no modules to instrument")
    entry_module = entry_module or module_names[-1]
    if entry_module not in module_names:
        raise ValueError(f"entry module {entry_module} not in module list")
    if package_root is None:
        package_root = module_names[0].rsplit(".", 1)[0]
    prog_id = next(_program_ids)
    prefix = f"_compi_p{prog_id}"
    name = name or entry_module.rsplit(".", 1)[-1]

    registry = SiteRegistry()
    probes = make_probes(registry)
    import_map = {m: f"{prefix}.{m}" for m in module_names}

    # parent placeholder packages so `import _compi_p0.repro...` resolves
    created: dict[str, types.ModuleType] = {}

    def ensure_package(dotted: str) -> None:
        parts = dotted.split(".")
        for i in range(1, len(parts)):
            pkg = ".".join(parts[:i])
            if pkg not in sys.modules:
                m = types.ModuleType(pkg)
                m.__path__ = []  # mark as package
                sys.modules[pkg] = m
                created[pkg] = m

    modules: dict[str, types.ModuleType] = {}
    try:
        for mod_name in module_names:
            source, path = _module_source(mod_name)
            tree = instrument_source(source, mod_name, registry,
                                     import_map=import_map,
                                     package_root=package_root,
                                     filename=path)
            code = compile(tree, filename=path, mode="exec")
            inst_name = import_map[mod_name]
            ensure_package(inst_name)
            module = types.ModuleType(inst_name)
            module.__file__ = path
            module.__dict__.update(probes)
            sys.modules[inst_name] = module
            created[inst_name] = module
            exec(code, module.__dict__)
            modules[mod_name] = module
    except Exception:
        for n in created:
            sys.modules.pop(n, None)
        raise

    return InstrumentedProgram(name=name, registry=registry, modules=modules,
                               entry_module=entry_module, entry_name=entry_name)
