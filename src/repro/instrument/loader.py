"""Compile and load instrumented target programs.

A *target program* is a package (or single module) of plain Python written
against the virtual-MPI context API.  :func:`instrument_program` performs
the paper's instrumentation phase: every listed module is transformed (see
:mod:`repro.instrument.transform`), compiled, and executed into a fresh
module object registered under a private name, with intra-package imports
rewired so the instrumented unit is closed.

The probes dispatch through the thread-local sink
(:mod:`repro.concolic.context`).  This is how *two-way instrumentation*
runs in one process: the focus rank's thread carries a
:class:`~repro.concolic.trace.HeavySink` (full symbolic execution — the
``ex1`` build), the other ranks carry :class:`~repro.concolic.trace.LightSink`
(coverage-only — the ``ex2`` build).  Both observe identical site IDs
because they share one deterministic instrumentation.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import itertools
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..concolic.context import tls
from ..concolic.sym import SymBool, SymInt
from ..mpi.errors import MpiShutdown
from .sites import SiteRegistry
from .transform import (BRANCH_PROBE, FUNC_PROBE, ITER_PROBE,
                        instrument_source)

_program_ids = itertools.count()


def make_probes(registry: SiteRegistry) -> dict[str, Callable]:
    """Build the runtime probe functions injected into instrumented code.

    These run once per branch evaluation of every instrumented target —
    the engine's hottest path — so each probe carries two recording
    routes:

    * **batched** — when the calling thread's sink has preallocated hit
      arrays (:meth:`~repro.concolic.trace.LightSink.preallocate`, wired
      by the runner under ``CompiConfig.probe_batching``), a *concrete*
      evaluation writes one byte into ``branch_hits[2*sid + outcome]``
      and returns.  The arrays are flushed into the coverage map once
      per run.
    * **per-call** — without arrays (direct sink construction, or
      ``probe_batching=False``), every evaluation dispatches the
      classic ``sink.on_branch`` / ``sink.on_function`` recorder call.

    Determinism contract: the two routes are observably identical —
    same coverage map, same trace (symbolic-relevant evaluations always
    take the full ``observe``/``on_branch`` path so path constraints,
    reduction and implicit sites are untouched), same serialized log
    bytes, same heavy-rank event log and event count, and the same
    stop-poll cadence (one poll per 256 probe calls, shared counter).
    ``tests/test_hotpath_determinism.py`` enforces this on the demo and
    race targets.
    """

    def __compi_branch__(sid: int, val: Any) -> bool:
        sink = getattr(tls, "sink", None)
        if sink is None:
            if isinstance(val, (SymBool, SymInt)):
                return bool(val.concrete)
            return bool(val)
        if val is True or val is False:
            # the light-rank common case: a plain comparison result —
            # skip the symbolic-proxy type checks entirely
            outcome = val
        elif isinstance(val, SymBool):
            if val.constraint is not None:
                return val.observe(sid)       # symbolic: full probe path
            outcome = val.concrete
        elif isinstance(val, SymInt):
            # C truthiness `if (x)` ≡ `x != 0`
            sb = val != 0
            if isinstance(sb, SymBool) and sb.constraint is not None:
                return sb.observe(sid)        # symbolic: full probe path
            outcome = val.concrete != 0
        else:
            outcome = True if val else False
        hits = sink.branch_hits
        if hits is None:
            sink.on_branch(sid, outcome, None)
            return outcome
        # batched fast path: concrete-only evaluation, no recorder call
        hits[sid + sid + outcome] = 1
        calls = sink._probe_calls + 1
        sink._probe_calls = calls
        if not calls % 256:
            stop = sink._stop
            if stop is not None and stop.is_set():
                raise MpiShutdown(
                    f"rank {sink.global_rank} cancelled in probe")
        if sink.heavy:
            sink.event_count += 1
            if sink.log_events:
                sink._event_log.append((sid, outcome))
        return outcome

    def __compi_func__(fid: int) -> None:
        sink = getattr(tls, "sink", None)
        if sink is None:
            return
        fhits = sink.func_hits
        if fhits is None:
            sink.on_function(fid)
        else:
            fhits[fid] = 1

    def __compi_iter__(sid: int, iterable: Any):
        """Probe generator for ``for`` loops: one True branch per item,
        one False branch at exhaustion (the CIL for→while lowering)."""
        sink = getattr(tls, "sink", None)
        if sink is None:
            yield from iterable
            return
        hits = sink.branch_hits
        if hits is None:
            for item in iterable:
                sink.on_branch(sid, True, None)
                yield item
            sink.on_branch(sid, False, None)
            return
        # batched fast path: loop iterations are always concrete (the
        # iterable is a real container; symbolic bounds go through
        # ``while`` probes), so record straight into the array
        heavy = sink.heavy
        true_idx = sid + sid + 1
        for item in iterable:
            hits[true_idx] = 1
            calls = sink._probe_calls + 1
            sink._probe_calls = calls
            if not calls % 256:
                stop = sink._stop
                if stop is not None and stop.is_set():
                    raise MpiShutdown(
                        f"rank {sink.global_rank} cancelled in probe")
            if heavy:
                sink.event_count += 1
                if sink.log_events:
                    sink._event_log.append((sid, True))
            yield item
        hits[true_idx - 1] = 1
        calls = sink._probe_calls + 1
        sink._probe_calls = calls
        if not calls % 256:
            stop = sink._stop
            if stop is not None and stop.is_set():
                raise MpiShutdown(
                    f"rank {sink.global_rank} cancelled in probe")
        if heavy:
            sink.event_count += 1
            if sink.log_events:
                sink._event_log.append((sid, False))

    return {BRANCH_PROBE: __compi_branch__, FUNC_PROBE: __compi_func__,
            ITER_PROBE: __compi_iter__}


@dataclass
class InstrumentedProgram:
    """A loaded, instrumented target: what COMPI launches as ex1/ex2."""

    name: str
    registry: SiteRegistry
    modules: dict[str, types.ModuleType]
    entry_module: str
    entry_name: str = "main"

    @property
    def entry(self) -> Callable:
        """The target's ``main(mpi, args)`` entry point."""
        return getattr(self.modules[self.entry_module], self.entry_name)

    @property
    def total_branches(self) -> int:
        return self.registry.total_branches

    def unload(self) -> None:
        """Drop the instrumented modules from ``sys.modules``."""
        for mod in self.modules.values():
            sys.modules.pop(mod.__name__, None)


def _module_source(module_name: str) -> tuple[str, str]:
    mod = importlib.import_module(module_name)
    path = inspect.getsourcefile(mod)
    if path is None:  # pragma: no cover - only for exotic loaders
        raise ImportError(f"no source for {module_name}")
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read(), path


def instrument_program(module_names: list[str], entry_module: Optional[str] = None,
                       entry_name: str = "main",
                       package_root: Optional[str] = None,
                       name: Optional[str] = None) -> InstrumentedProgram:
    """Instrument ``module_names`` (dependency order, entry last by default).

    ``package_root`` is the absolute package against which the modules'
    relative imports resolve (e.g. ``"repro.targets.hpl"``); it defaults to
    the parent package of the first module.

    Determinism contract: instrumentation is a pure function of the
    module *sources* — site IDs are assigned in AST visitation order, so
    two loads of the same modules (in this process, in a spawn worker's
    initializer, or across campaign resumes) produce identical site
    registries.  The engine's parallel executor depends on this: worker
    processes re-instrument by module name and must agree with the
    parent on every site ID.  The probes installed here are likewise
    trajectory-neutral — batched and per-call probe modes record
    identical traces and coverage (see :func:`make_probes` and
    docs/PERFORMANCE.md); only the clock changes.
    """
    if not module_names:
        raise ValueError("no modules to instrument")
    entry_module = entry_module or module_names[-1]
    if entry_module not in module_names:
        raise ValueError(f"entry module {entry_module} not in module list")
    if package_root is None:
        package_root = module_names[0].rsplit(".", 1)[0]
    prog_id = next(_program_ids)
    prefix = f"_compi_p{prog_id}"
    name = name or entry_module.rsplit(".", 1)[-1]

    registry = SiteRegistry()
    probes = make_probes(registry)
    import_map = {m: f"{prefix}.{m}" for m in module_names}

    # parent placeholder packages so `import _compi_p0.repro...` resolves
    created: dict[str, types.ModuleType] = {}

    def ensure_package(dotted: str) -> None:
        parts = dotted.split(".")
        for i in range(1, len(parts)):
            pkg = ".".join(parts[:i])
            if pkg not in sys.modules:
                m = types.ModuleType(pkg)
                m.__path__ = []  # mark as package
                sys.modules[pkg] = m
                created[pkg] = m

    modules: dict[str, types.ModuleType] = {}
    try:
        for mod_name in module_names:
            source, path = _module_source(mod_name)
            tree = instrument_source(source, mod_name, registry,
                                     import_map=import_map,
                                     package_root=package_root,
                                     filename=path)
            code = compile(tree, filename=path, mode="exec")
            inst_name = import_map[mod_name]
            ensure_package(inst_name)
            module = types.ModuleType(inst_name)
            module.__file__ = path
            module.__dict__.update(probes)
            sys.modules[inst_name] = module
            created[inst_name] = module
            exec(code, module.__dict__)
            modules[mod_name] = module
    except Exception:
        for n in created:
            sys.modules.pop(n, None)
        raise

    return InstrumentedProgram(name=name, registry=registry, modules=modules,
                               entry_module=entry_module, entry_name=entry_name)
