"""Counterexample cache: SAT models and UNSAT verdicts, two tiers.

Entries are keyed by the canonical query serialization
(:mod:`repro.solvercache.canonical`) and store either a SAT model over
canonical indices or an UNSAT verdict:

* **memory tier** — a bounded LRU (`OrderedDict`); insertion and
  eviction are deterministic functions of the committed query stream,
  which is what keeps a cached campaign reproducible for a fixed seed;
* **disk tier** (optional) — a JSONL file loaded at construction and
  appended on every committed store, so verdicts survive ``--resume``
  and carry across campaigns on the same target.  The reader tolerates
  a torn final line (the one a crash can cut mid-record), matching the
  campaign log's crash model.

Speculative solving must not perturb the committed stream: a
:meth:`CounterexampleCache.fork` returns a read-through view whose
reads skip LRU recency updates and whose writes land in a private
buffer that is discarded with the fork (see docs/SOLVER.md, the fork
write-buffer rule).

A SAT hit is **never trusted blindly** — the caller replays the
de-canonicalized model through ``check_assignment`` before use, so a
stale or corrupted entry degrades to a miss, not to an unsound model.
UNSAT verdicts cannot be re-checked; they stay sound because full
canonical serializations (not digests) are the keys, so key equality
implies rename-equivalence.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

DEFAULT_CAPACITY = 4096


@dataclass
class CacheEntry:
    """One cached verdict: a canonical-index model, or UNSAT."""

    sat: bool
    model: Optional[dict[int, int]] = None  # canonical index -> value

    def to_json(self, key: str) -> str:
        obj: dict = {"k": key, "sat": self.sat}
        if self.model is not None:
            obj["m"] = {str(i): v for i, v in self.model.items()}
        return json.dumps(obj, sort_keys=True)

    @staticmethod
    def from_json(obj: dict) -> tuple[str, "CacheEntry"]:
        model = None
        if obj.get("m") is not None:
            model = {int(i): int(v) for i, v in obj["m"].items()}
        return obj["k"], CacheEntry(sat=bool(obj["sat"]), model=model)


class CounterexampleCache:
    """Bounded LRU of query verdicts with an optional JSONL disk tier."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 path: Optional[Union[str, Path]] = None):
        self.capacity = max(1, int(capacity))
        self.path = Path(path) if path is not None else None
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: entries evicted from the memory tier over this cache's life
        self.evictions = 0
        if self.path is not None and self.path.exists():
            self._load_disk_tier()

    # ------------------------------------------------------------------
    def get(self, key: str, touch: bool = True) -> Optional[CacheEntry]:
        """Look up a verdict; ``touch=False`` skips the LRU recency
        update (speculative reads must not reorder evictions)."""
        entry = self._entries.get(key)
        if entry is not None and touch:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: CacheEntry, persist: bool = True) -> None:
        """Store a verdict; appends to the disk tier when configured.

        A changed entry for an existing key (e.g. a replaced stale
        model) is re-appended: on reload, later lines win."""
        changed = self._entries.get(key) != entry
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        if persist and changed and self.path is not None:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(entry.to_json(key) + "\n")

    def fork(self) -> "SpeculativeCacheView":
        """Read-through, write-buffered view for speculative solving."""
        return SpeculativeCacheView(self)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def sat_entries(self) -> int:
        return sum(1 for e in self._entries.values() if e.sat)

    @property
    def unsat_entries(self) -> int:
        return len(self._entries) - self.sat_entries

    # ------------------------------------------------------------------
    def _load_disk_tier(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        last = len(lines) - 1
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                key, entry = CacheEntry.from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError):
                if i == last:
                    break  # torn tail from an interrupted append
                raise
            # load without re-persisting (the entry is already on disk)
            self.put(key, entry, persist=False)


class SpeculativeCacheView:
    """The fork write-buffer: reads fall through to the base cache
    (without touching recency); writes stay private to the fork and die
    with it, so a squashed speculation leaves no trace in the committed
    cache, its eviction order, or its disk tier."""

    def __init__(self, base: CounterexampleCache):
        self._base = base
        self._buffer: dict[str, CacheEntry] = {}

    def get(self, key: str, touch: bool = True) -> Optional[CacheEntry]:
        entry = self._buffer.get(key)
        if entry is not None:
            return entry
        return self._base.get(key, touch=False)

    def put(self, key: str, entry: CacheEntry, persist: bool = True) -> None:
        self._buffer[key] = entry

    def fork(self) -> "SpeculativeCacheView":
        return SpeculativeCacheView(self._base)

    def __len__(self) -> int:
        return len(self._buffer) + len(self._base)
