"""Query canonicalization: a key invariant under renaming and order.

Loop-heavy targets re-issue near-identical dependency slices thousands
of times per campaign: the ``while i < x`` family produces, after
constraint-set reduction, the *same* shaped query every iteration — only
the variable ids differ (each execution mints fresh vids).  To reuse a
counterexample across those repeats, the cache key must identify a
sliced query up to

* **variable renaming** — vids are per-execution artifacts; and
* **constraint order** — slicing walks the prefix in path order, which
  permutes with the negation position.

The canonical form is computed by color refinement (1-WL over the
constraint/variable incidence structure):

1. every variable starts with a color derived from its *semantic*
   attributes — its domain interval and its previous value (both are
   part of the query, so both belong in the key);
2. colors refine through the constraints a variable appears in: each
   round, a variable's new color folds in the (op, const, own
   coefficient, sorted co-occurring colors) signature of every
   incident constraint, and colors compress to dense ranks;
3. after refinement stabilizes, variables sort by (final color,
   original vid) and take canonical indices 0..n-1 in that order.

The serialized key is the *full* canonical query — constraints, domains
and previous values rewritten over canonical indices — so two queries
share a key **iff** their canonical serializations are identical, which
implies they are rename-equivalent.  Tie-breaking on the original vid
(step 3) can split truly symmetric variables differently across two
renamings of the same query; that costs a cache *miss*, never a false
hit, so soundness does not rest on the refinement being a perfect
graph canonicalization.
"""

from __future__ import annotations

from ..concolic.expr import Constraint
from ..solver.intervals import Box

#: refinement rounds; slices are shallow, colors stabilize fast
_REFINE_ROUNDS = 3


def _initial_colors(vids: list[int], domains: Box,
                    previous: dict[int, int]) -> dict[int, tuple]:
    return {
        v: (domains[v],
            ("prev", previous[v]) if v in previous else ("free",))
        for v in vids
    }


def _compress(colors: dict[int, tuple]) -> dict[int, int]:
    """Map colors to dense ranks (ordered by repr, which is total and
    deterministic over the nested int/str/tuple colors we build)."""
    ranks = {c: i for i, c in
             enumerate(sorted(set(colors.values()), key=repr))}
    return {v: ranks[c] for v, c in colors.items()}


def _refine(vids: list[int], constraints: list[Constraint],
            colors: dict[int, int]) -> dict[int, int]:
    incident: dict[int, list[Constraint]] = {v: [] for v in vids}
    for c in constraints:
        for v in c.lhs.coeffs:
            incident[v].append(c)
    for _ in range(_REFINE_ROUNDS):
        nxt: dict[int, tuple] = {}
        for v in vids:
            sigs = []
            for c in incident[v]:
                coeffs = c.lhs.coeffs
                others = tuple(sorted((coeffs[u], colors[u])
                                      for u in coeffs if u != v))
                sigs.append((c.op, c.lhs.const, coeffs[v], others))
            nxt[v] = (colors[v], tuple(sorted(sigs)))
        compressed = _compress(nxt)
        if compressed == colors:
            break
        colors = compressed
    return colors


def canonical_key(constraints: list[Constraint], domains: Box,
                  previous: dict[int, int]) -> tuple[str, list[int]]:
    """Canonicalize one sliced query.

    Returns ``(key, order)`` where ``key`` is the canonical
    serialization and ``order[i]`` is the actual vid holding canonical
    index ``i`` (the mapping a cached model is replayed through).
    Constraints are expanded to normalized form first, so ``x < 5`` and
    ``x + 1 <= 5`` canonicalize identically.
    """
    normalized: list[Constraint] = []
    for c in constraints:
        normalized.extend(c.normalized())
    vids = sorted(set(domains))
    colors = _compress(_initial_colors(vids, domains, previous))
    colors = _refine(vids, normalized, colors)
    order = sorted(vids, key=lambda v: (colors[v], v))
    canon = {v: i for i, v in enumerate(order)}

    cons_part = sorted(
        (c.op, c.lhs.const,
         tuple(sorted((canon[v], k) for v, k in c.lhs.coeffs.items())))
        for c in normalized)
    dom_part = [(canon[v], domains[v][0], domains[v][1]) for v in order]
    prev_part = sorted((canon[v], val) for v, val in previous.items()
                       if v in canon)
    key = repr((cons_part, dom_part, prev_part))
    return key, order


def decanonicalize(model: dict[int, int], order: list[int]) -> dict[int, int]:
    """Rewrite a cached canonical-index model onto the query's vids."""
    return {order[i]: val for i, val in model.items()}


def canonicalize_model(model: dict[int, int],
                       order: list[int]) -> dict[int, int]:
    """Rewrite a solver model onto canonical indices for storage."""
    canon = {v: i for i, v in enumerate(order)}
    return {canon[v]: val for v, val in model.items()}
