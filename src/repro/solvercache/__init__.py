"""Solver acceleration: canonicalizing query cache + solver telemetry.

This package sits between :class:`repro.solver.incremental.SolveSession`
and the backtracking :class:`repro.solver.search.Solver`:

* :mod:`.canonical` — normalizes a sliced query (constraints, domains,
  relevant previous values) into a key invariant under variable
  renaming and constraint order;
* :mod:`.cache` — the counterexample cache: an in-memory LRU of SAT
  models / UNSAT verdicts with an optional JSONL disk tier, plus the
  write-buffered fork view speculative solving uses;
* :mod:`.telemetry` — cumulative solver statistics surfaced in the
  campaign report and the solver-cache benchmark.

See docs/SOLVER.md for the canonicalization algorithm, the tier and
determinism model, and the fork write-buffer rule.
"""

from .cache import (DEFAULT_CAPACITY, CacheEntry, CounterexampleCache,
                    SpeculativeCacheView)
from .canonical import canonical_key, canonicalize_model, decanonicalize
from .telemetry import SolverStats

__all__ = [
    "DEFAULT_CAPACITY", "CacheEntry", "CounterexampleCache",
    "SolverStats", "SpeculativeCacheView", "canonical_key",
    "canonicalize_model", "decanonicalize",
]
