"""Solver telemetry: cumulative per-session solving statistics.

The backtracking solver keeps per-call counters (it needs them for its
node budget); this aggregate is the campaign-lifetime view the report
surfaces — cache effectiveness (hits / misses / unsat-hits / stale
hits), search effort (nodes, propagations, exhaustions), slice sizes,
and a latency EWMA over ``SolveSession.solve`` calls.

Counters are deterministic functions of the committed query stream.
The latency fields are wall-clock and therefore *not* part of any
determinism contract — they feed the benchmark JSON and the report,
nothing that steers the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class SolverStats:
    """Cumulative statistics for one solve session."""

    #: total incremental solve requests
    solves: int = 0
    #: requests answered by replaying a cached SAT model
    cache_hits: int = 0
    #: requests short-circuited by a cached UNSAT verdict
    unsat_hits: int = 0
    #: requests that missed the cache (or ran with it disabled)
    cache_misses: int = 0
    #: SAT hits whose model failed re-validation (degraded to a miss)
    stale_hits: int = 0
    #: fresh solves that returned a model
    sat_solves: int = 0
    #: fresh solves that returned UNSAT / gave up
    unsat_solves: int = 0
    #: verdicts written to the cache
    stores: int = 0
    #: cumulative backtracking nodes across fresh solves
    nodes: int = 0
    #: cumulative propagation passes across fresh solves
    propagations: int = 0
    #: fresh solves that hit the node budget
    exhaustions: int = 0
    #: cumulative dependency-slice sizes (constraints per request)
    slice_constraints: int = 0
    #: largest dependency slice seen
    max_slice: int = 0
    #: wall-clock spent inside solve requests, seconds
    solve_time: float = 0.0
    #: EWMA of per-request latency, seconds
    latency_ewma: float = 0.0
    #: EWMA smoothing factor
    latency_alpha: float = 0.2

    # ------------------------------------------------------------------
    def note_request(self, slice_size: int, latency: float) -> None:
        """Book-keeping common to every solve request (hit or miss)."""
        self.solves += 1
        self.slice_constraints += slice_size
        self.max_slice = max(self.max_slice, slice_size)
        self.solve_time += latency
        if self.latency_ewma == 0.0:
            self.latency_ewma = latency
        else:
            a = self.latency_alpha
            self.latency_ewma = a * latency + (1 - a) * self.latency_ewma

    def note_fresh_solve(self, solver_stats, sat: bool) -> None:
        """Fold one backtracking solve's per-call counters in."""
        self.cache_misses += 1
        self.nodes += solver_stats.nodes
        self.propagations += solver_stats.propagations
        if solver_stats.exhausted:
            self.exhaustions += 1
        if sat:
            self.sat_solves += 1
        else:
            self.unsat_solves += 1

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.cache_hits + self.unsat_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.solves if self.solves else 0.0

    @property
    def avg_slice(self) -> float:
        return self.slice_constraints / self.solves if self.solves else 0.0

    @property
    def solves_per_sec(self) -> float:
        return self.solves / self.solve_time if self.solve_time > 0 else 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> "SolverStats":
        """A detached copy (reports must not alias live counters)."""
        return SolverStats(**{f.name: getattr(self, f.name)
                              for f in fields(self)})

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_rate"] = round(self.hit_rate, 4)
        out["avg_slice"] = round(self.avg_slice, 2)
        return out
