"""Search strategy framework: execution tree + strategy interface.

The *search strategy* decides which constraint on the last executed path
to negate (and therefore which branch to try to flip) — "the brain" of
COMPI (§V).  CREST ships four: bounded DFS, random branch search, uniform
random search, and CFG-directed search; COMPI picks two-phase
DFS/BoundedDFS because MPI programs front-load a deep *sanity check* that
non-systematic strategies cannot get past (§II-B, Fig. 4).

The :class:`ExecutionTree` persists across iterations and remembers, for
every path prefix, which flip directions were already explored or proved
infeasible, giving DFS its systematic behaviour without re-deriving state
from log files each iteration.

Strategies are also the *arms* of the portfolio meta-scheduler
(:mod:`repro.portfolio`): several strategies can be constructed over one
**shared** :class:`ExecutionTree`, so a flip one arm explored (or proved
infeasible) is never re-derived by a sibling arm.  Arm-local observation
state (``max_path_seen``, strategy RNGs, derived bounds) stays per
strategy; only the frontier is shared.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ..concolic.coverage import CoverageMap
from ..concolic.trace import PathEntry


class TreeNode:
    """One branch point reached by some execution prefix."""

    __slots__ = ("children", "taken", "infeasible")

    def __init__(self) -> None:
        self.children: dict[bool, TreeNode] = {}
        self.taken: set[bool] = set()       # directions actually executed
        self.infeasible: set[bool] = set()  # directions proven/assumed UNSAT


class ExecutionTree:
    """The explored execution tree over *constrained* branches."""

    def __init__(self) -> None:
        self.root = TreeNode()
        self.paths_inserted = 0
        self.divergences = 0

    def insert(self, path: list[PathEntry]) -> None:
        node = self.root
        for entry in path:
            node.taken.add(entry.outcome)
            node.infeasible.discard(entry.outcome)  # it ran: clearly feasible
            node = node.children.setdefault(entry.outcome, TreeNode())
        self.paths_inserted += 1

    def node_at(self, path: list[PathEntry], depth: int) -> TreeNode:
        """Node reached after following ``path[:depth]``."""
        node = self.root
        for entry in path[:depth]:
            nxt = node.children.get(entry.outcome)
            if nxt is None:  # prefix was never inserted — insert lazily
                nxt = node.children.setdefault(entry.outcome, TreeNode())
            node = nxt
        return node

    def flip_status(self, path: list[PathEntry], position: int) -> str:
        """'unexplored' | 'explored' | 'infeasible' for the flip at
        ``position`` along ``path``."""
        node = self.node_at(path, position)
        flip = not path[position].outcome
        if flip in node.taken:
            return "explored"
        if flip in node.infeasible:
            return "infeasible"
        return "unexplored"

    def mark_infeasible(self, path: list[PathEntry], position: int) -> None:
        node = self.node_at(path, position)
        node.infeasible.add(not path[position].outcome)

    def clear_infeasible(self) -> None:
        """Forget UNSAT verdicts.

        "Infeasible" is relative to the concrete values baked into the
        constraints by concolic simplification (e.g. ``p*q > size`` is
        linear in ``p`` only, with the *current* ``q`` as coefficient).
        After a restart the concrete context changes, so old verdicts may
        no longer hold and every flip deserves a fresh chance.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            node.infeasible.clear()
            stack.extend(node.children.values())

    def note_divergence(self) -> None:
        self.divergences += 1


@dataclass
class StrategyContext:
    """Read-only view handed to strategies when proposing a negation."""

    path: list[PathEntry]
    coverage: CoverageMap
    iteration: int


class SearchStrategy(ABC):
    """Interface all strategies implement."""

    name: str = "abstract"

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 tree: Optional[ExecutionTree] = None):
        self.rng = rng or np.random.default_rng(0)
        #: the explored-frontier bookkeeping; pass a shared tree to run
        #: this strategy as one arm of a portfolio over a common frontier
        self.tree = tree if tree is not None else ExecutionTree()
        self.max_path_seen = 0

    # -- lifecycle -------------------------------------------------------
    def register_execution(self, path: list[PathEntry]) -> None:
        """Record a completed execution's constrained path."""
        self.tree.insert(path)
        self.max_path_seen = max(self.max_path_seen, len(path))

    def note_foreign_execution(self, path: list[PathEntry]) -> None:
        """A *sibling arm* committed this path (shared-frontier portfolio).

        The shared tree already absorbed the insert through the committing
        arm's :meth:`register_execution`; only arm-local observation state
        (the maximum path length that feeds two-phase bound derivation)
        needs updating here.  Inserting again would double-count
        ``tree.paths_inserted``."""
        self.max_path_seen = max(self.max_path_seen, len(path))

    @abstractmethod
    def propose(self, ctx: StrategyContext) -> Iterator[int]:
        """Yield path positions to negate, best first.  The driver tries
        them in order; an UNSAT position gets :meth:`mark_infeasible` and
        the next one is pulled."""

    def propose_many(self, ctx: StrategyContext, k: int) -> list[int]:
        """Up to ``k`` candidate positions, best first (multi-negation).

        The staged engine's scheduler uses this to bound speculative
        solving: the serial driver keeps pulling :meth:`propose` until the
        first feasible flip, while speculation peeks at the next few
        ranked candidates without consuming the whole proposal stream
        (and therefore without tripping strategy end-of-stream state).
        """
        return list(itertools.islice(self.propose(ctx), max(0, k)))

    def mark_infeasible(self, path: list[PathEntry], position: int) -> None:
        self.tree.mark_infeasible(path, position)

    @property
    def exhausted(self) -> bool:
        """True when the strategy knows it has nothing left to explore
        (only systematic strategies can ever say so)."""
        return False
