"""Search strategies: DFS/BoundedDFS (COMPI default), random, CFG."""

from .base import ExecutionTree, SearchStrategy, StrategyContext, TreeNode
from .cfg import CfgDirectedSearch
from .dfs import BoundedDFS, TwoPhaseDFS
from .random_strategies import RandomBranchSearch, UniformRandomSearch

__all__ = [
    "BoundedDFS", "CfgDirectedSearch", "ExecutionTree", "RandomBranchSearch",
    "SearchStrategy", "StrategyContext", "TreeNode", "TwoPhaseDFS",
    "UniformRandomSearch",
]
