"""DFS / BoundedDFS and COMPI's two-phase bound selection (§II-B).

BoundedDFS negates the *deepest* branch on the current path (below the
depth bound) whose flip side is neither explored nor known-infeasible.
It is "slow yet steady": it traverses the execution tree systematically,
which is what gets concolic testing through an MPI program's sanity-check
ladder — each failing check is flipped in turn until the solver phase is
reached.

COMPI's refinement: run *pure DFS* for the first ``observe_iterations``
iterations to observe the maximal constraint-set size (the longest
execution path), then switch to BoundedDFS with a bound slightly above
the observed maximum, so the whole execution tree stays in sight while
runaway depths (unbounded loops) are cut off.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from .base import SearchStrategy, StrategyContext


class BoundedDFS(SearchStrategy):
    """Classic CREST bounded depth-first search."""

    def __init__(self, depth_bound: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None, tree=None):
        super().__init__(rng, tree=tree)
        self.depth_bound = depth_bound
        self.name = f"BoundedDFS({depth_bound if depth_bound else '∞'})"
        self._no_candidates = False

    def current_bound(self, ctx: StrategyContext) -> Optional[int]:
        return self.depth_bound

    def propose(self, ctx: StrategyContext) -> Iterator[int]:
        bound = self.current_bound(ctx)
        deepest = len(ctx.path) - 1
        if bound is not None:
            deepest = min(deepest, bound - 1)
        produced = False
        for pos in range(deepest, -1, -1):
            if self.tree.flip_status(ctx.path, pos) == "unexplored":
                produced = True
                yield pos
        self._no_candidates = not produced

    @property
    def exhausted(self) -> bool:
        return self._no_candidates


class TwoPhaseDFS(BoundedDFS):
    """COMPI's default: DFS to observe, then BoundedDFS with a derived bound.

    ``fixed_bound`` forces the phase-2 bound (the paper sets 500/600/300
    per program after observing); otherwise the bound is
    ``ceil(slack * max_path_seen)`` at the moment of the phase switch.
    """

    def __init__(self, observe_iterations: int = 50,
                 fixed_bound: Optional[int] = None, slack: float = 1.2,
                 rng: Optional[np.random.Generator] = None, tree=None):
        super().__init__(depth_bound=None, rng=rng, tree=tree)
        self.observe_iterations = observe_iterations
        self.fixed_bound = fixed_bound
        self.slack = slack
        self._derived_bound: Optional[int] = None
        self.name = f"TwoPhaseDFS(observe={observe_iterations})"

    def current_bound(self, ctx: StrategyContext) -> Optional[int]:
        if ctx.iteration < self.observe_iterations:
            return None  # phase 1: pure DFS, unbounded
        if self.fixed_bound is not None:
            return self.fixed_bound
        if self._derived_bound is None:
            # "slightly bigger than the observed considering longer
            # execution path might be observed later"
            self._derived_bound = max(1, math.ceil(self.slack * self.max_path_seen))
        return self._derived_bound
