"""Non-systematic CREST strategies: random branch & uniform random search.

Both pick branches to negate without respecting path order, which is why
they fail to climb an MPI program's sanity-check ladder (Fig. 4): flipping
an *early* check discards all progress past it, and the strategies keep
doing exactly that.

* **Random branch search** picks a random branch *site* seen on the path,
  then a random occurrence of it.
* **Uniform random search** picks a path *position* uniformly.

They are kept distinct (as in CREST) because their biases differ: random
branch search weights sites equally regardless of how often a loop
re-executes them; uniform random weights loop-heavy sites more.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .base import SearchStrategy, StrategyContext

_MAX_TRIES = 32


class RandomBranchSearch(SearchStrategy):
    """Pick a random covered site, then a random occurrence of it."""
    name = "RandomBranch"

    def propose(self, ctx: StrategyContext) -> Iterator[int]:
        if not ctx.path:
            return
        sites: dict[int, list[int]] = {}
        for pos, entry in enumerate(ctx.path):
            sites.setdefault(entry.site, []).append(pos)
        site_ids = sorted(sites)
        for _ in range(min(_MAX_TRIES, 4 * len(site_ids))):
            site = site_ids[int(self.rng.integers(len(site_ids)))]
            occurrences = sites[site]
            pos = occurrences[int(self.rng.integers(len(occurrences)))]
            if self.tree.flip_status(ctx.path, pos) != "infeasible":
                yield pos


class UniformRandomSearch(SearchStrategy):
    """Pick a path position uniformly at random."""
    name = "UniformRandom"

    def propose(self, ctx: StrategyContext) -> Iterator[int]:
        n = len(ctx.path)
        if n == 0:
            return
        for _ in range(min(_MAX_TRIES, 4 * n)):
            pos = int(self.rng.integers(n))
            if self.tree.flip_status(ctx.path, pos) != "infeasible":
                yield pos
