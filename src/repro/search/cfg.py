"""CFG-directed search: score negation candidates by static distance to
uncovered branches.

CREST's CFG strategy negates the branch whose flip side is statically
closest (over the control-flow graph) to a still-uncovered branch.  Our
site graph is the preorder chain approximation built by the
instrumenter (see :mod:`repro.instrument.static_info`); candidates are
scored by BFS hop count from the flipped site to the nearest site with an
uncovered direction, ties broken toward deeper path positions and then
randomly.

Like the other non-systematic strategies this fails on sanity-check
ladders (Fig. 4): the nearest uncovered branch is usually an *early*
check's unexplored arm, so the strategy keeps abandoning the deep path.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..instrument.static_info import INFINITE, SiteGraph, uncovered_sites
from ..instrument.sites import SiteRegistry
from .base import SearchStrategy, StrategyContext


class CfgDirectedSearch(SearchStrategy):
    """Negate the branch statically closest to an uncovered site."""
    name = "CFG"

    def __init__(self, registry: SiteRegistry,
                 rng: Optional[np.random.Generator] = None, tree=None):
        super().__init__(rng, tree=tree)
        self.registry = registry
        self.graph = SiteGraph(registry)

    def propose(self, ctx: StrategyContext) -> Iterator[int]:
        if not ctx.path:
            return
        targets = uncovered_sites(self.registry, ctx.coverage.branches)
        scored: list[tuple[int, int, float]] = []
        for pos, entry in enumerate(ctx.path):
            if self.tree.flip_status(ctx.path, pos) == "infeasible":
                continue
            if entry.site < 0:
                dist = INFINITE  # implicit sites have no static node
            else:
                dist = self.graph.distance_to_any(entry.site, targets)
            scored.append((dist, -pos, float(self.rng.random())))
        scored.sort()
        for dist, neg_pos, _tie in scored:
            yield -neg_pos
