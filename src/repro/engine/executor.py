"""Executor stage: how candidate test cases become execution outcomes.

Two implementations of one protocol:

* :class:`InlineExecutor` — evaluates candidates lazily in-process via
  the campaign's own :class:`~repro.core.runner.TestRunner`.  A pending
  run executes only when its result is first consumed, so speculation is
  free: a candidate the engine squashes was never run, and the committed
  behaviour is bit-for-bit the classic serial loop (same EWMA updates,
  same fault-stream indices, same everything).
* :class:`ParallelExecutor` — submits the whole candidate batch to a
  ``concurrent.futures.ProcessPoolExecutor`` (spawn start method).  Each
  worker re-instruments the target once (instrumentation is
  deterministic, so site IDs match the parent's), then runs test cases
  with the shared retry policy.  Results come back as picklable
  :class:`ExecOutcome` values and are consumed strictly in submission
  order; squashed speculations are cancelled (or discarded if already
  running).  Committed wall times are folded back into the parent
  runner's EWMA in commit order, keeping adaptive timeouts and the run
  counter checkpoint-compatible with the inline executor.

The per-batch timeout is pinned at submission time from the runner's
current EWMA state: workers cannot observe mid-batch EWMA movement, and
pinning keeps every speculative sibling under the same deadline.

Supervision (:mod:`repro.supervise`): both executors optionally take a
:class:`~repro.supervise.pool.CampaignSupervisor`.  The inline executor
then routes runs through the forked sandbox and honors the quarantine;
the parallel executor additionally survives worker death — a
``BrokenProcessPool`` (or a heartbeat-confirmed wedge) tears the pool
down, the suspect re-runs inline in the sandbox *in commit order*, and
only a sandbox-confirmed death charges a kill.  Because every committed
outcome is then either a pool result (pure function of the test case)
or the same sandboxed re-run the serial path would produce, ``--workers
N`` with supervision remains bit-for-bit identical to the serial
sandboxed campaign.  After ``breaker_rebuilds`` teardowns the circuit
breaker opens and new batches run sandboxed-inline instead of thrashing
pool rebuilds.  Without a supervisor the pre-supervision behaviour is
unchanged (a broken pool is fatal).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from ..concolic.coverage import CoverageMap
from ..concolic.trace import TraceResult
from ..core.config import CompiConfig
from ..core.runner import ErrorInfo, RunRecord, TestRunner
from ..core.testcase import TestCase
from ..instrument.loader import InstrumentedProgram
from ..supervise.pool import CampaignSupervisor, HeartbeatMonitor


@dataclass
class ExecOutcome:
    """Everything the collector/scheduler need from one execution.

    A picklable projection of :class:`~repro.core.runner.RunRecord`
    (which drags the full per-rank job result along) — this is what pool
    workers ship back over the process boundary.
    """

    testcase: TestCase
    trace: Optional[TraceResult]
    coverage: CoverageMap
    error: Optional[ErrorInfo]
    focus_log_size: int = 0
    nonfocus_log_sizes: list[int] = field(default_factory=list)
    wall_time: float = 0.0
    degraded: bool = False
    timeout_used: float = 0.0
    stragglers: int = 0
    timed_out: bool = False
    retries: int = 0
    #: why the trace harvest failed, when ``degraded`` (see RunRecord)
    harvest_error: str = ""
    #: canonical schedule ID of the executed interleaving ("" when no
    #: schedule controller was attached; see repro.schedules)
    schedule: str = ""
    #: canonical decision records feeding the ScheduleTree
    schedule_decisions: tuple = ()
    schedule_divergences: int = 0
    schedule_fallbacks: int = 0


def outcome_from_record(rec: RunRecord, retries: int = 0) -> ExecOutcome:
    """Project a runner record onto the executor-protocol outcome."""
    return ExecOutcome(
        testcase=rec.testcase,
        trace=rec.trace,
        coverage=rec.coverage,
        error=rec.error,
        focus_log_size=rec.focus_log_size,
        nonfocus_log_sizes=rec.nonfocus_log_sizes,
        wall_time=rec.wall_time,
        degraded=rec.degraded,
        timeout_used=rec.timeout_used,
        stragglers=rec.job.stragglers,
        timed_out=rec.job.timed_out,
        retries=retries,
        harvest_error=rec.harvest_error,
        schedule=rec.schedule,
        schedule_decisions=rec.schedule_decisions,
        schedule_divergences=rec.schedule_divergences,
        schedule_fallbacks=rec.schedule_fallbacks,
    )


class PendingRun(Protocol):
    """One submitted candidate execution, consumed at most once."""

    def result(self) -> ExecOutcome: ...

    def cancel(self) -> None: ...


class Executor(Protocol):
    """The executor stage of the staged campaign engine."""

    #: True when submitted siblings actually run concurrently (the engine
    #: only pays for speculative solving when this is set)
    parallel: bool

    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]: ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# inline (serial) executor
# ----------------------------------------------------------------------
class _LazyPending:
    """Runs the test on first ``result()``; cancelling costs nothing."""

    def __init__(self, thunk: Callable[[], ExecOutcome]):
        self._thunk = thunk
        self._outcome: Optional[ExecOutcome] = None

    def result(self) -> ExecOutcome:
        if self._outcome is None:
            self._outcome = self._thunk()
        return self._outcome

    def cancel(self) -> None:
        pass  # never started


class InlineExecutor:
    """Serial executor: the classic loop's behaviour, candidate by
    candidate, with lazy evaluation so squashed speculation is free.

    With a supervisor, runs are routed through the forked sandbox (when
    enabled) and quarantined inputs are skipped — lazily, in commit
    order, so quarantine decisions from iteration *n* govern iteration
    *n+1* exactly as they do under the parallel executor.
    """

    parallel = False

    def __init__(self, runner: TestRunner,
                 supervisor: Optional[CampaignSupervisor] = None):
        self.runner = runner
        self.supervisor = supervisor

    def _run(self, tc: TestCase) -> ExecOutcome:
        sup = self.supervisor
        if sup is not None and (sup.sandbox_inline or sup.is_quarantined(tc)):
            return sup.run_inline(tc, None)
        rec, retries = self.runner.run_with_retries(tc)
        return outcome_from_record(rec, retries)

    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]:
        return [_LazyPending(lambda tc=tc: self._run(tc))
                for tc in testcases]

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# process-pool executor
# ----------------------------------------------------------------------
class _WedgedPool(Exception):
    """Internal: heartbeats went stale past the wedge deadline."""


class _PoolPending:
    """A pool future plus everything recovery needs to re-run it:
    the test case, the pinned timeout, and the pool generation the
    future belongs to (recovery must not tear down a *rebuilt* pool
    when a stale broken future from the previous one is consumed)."""

    def __init__(self, executor: "ParallelExecutor", future: Future,
                 testcase: TestCase, timeout: float, generation: int):
        self._executor = executor
        self.future = future
        self.testcase = testcase
        self.timeout = timeout
        self.generation = generation
        self._outcome: Optional[ExecOutcome] = None

    def result(self) -> ExecOutcome:
        if self._outcome is None:
            self._outcome = self._executor._await(self)
        return self._outcome

    def cancel(self) -> None:
        # a running speculation cannot be interrupted; it finishes in its
        # worker and the result is simply never consumed
        self.future.cancel()


class ParallelExecutor:
    """Process-pool executor for speculative candidate batches.

    The pool uses the ``spawn`` start method: the parent runs target
    ranks on threads, and forking a thread-heavy interpreter is a
    deadlock lottery.  Workers bootstrap from the parent's ``sys.path``
    and re-instrument the target by module name in their initializer.

    Fault-injection campaigns never get this executor (the façade forces
    inline): fault streams are indexed by the global run number, which
    squashed speculation would perturb.
    """

    parallel = True

    def __init__(self, program: InstrumentedProgram, config: CompiConfig,
                 runner: TestRunner, workers: int,
                 supervisor: Optional[CampaignSupervisor] = None):
        self.config = config
        self.runner = runner
        self.workers = max(1, int(workers))
        self.supervisor = supervisor
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._monitor: Optional[HeartbeatMonitor] = None
        if supervisor is not None:
            self._monitor = HeartbeatMonitor(config.heartbeat_stale)
        # everything a worker needs to rebuild the program: module names
        # in instrumentation order, plus the entry coordinates
        cfg_dict = dataclasses.asdict(config)
        cfg_dict["faults"] = ()          # run-indexed streams: serial only
        cfg_dict["workers"] = 1          # no nested pools
        self._init_args = (
            list(sys.path),
            list(program.modules),
            program.entry_module,
            program.entry_name,
            program.name,
            cfg_dict,
            self._monitor.dir if self._monitor is not None else None,
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from .worker import worker_init
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=worker_init,
                initargs=self._init_args,
            )
        return self._pool

    def _note(self, outcome: ExecOutcome) -> None:
        self.runner.note_external_run(outcome.wall_time, outcome.timed_out)

    # ------------------------------------------------------------------
    # supervised consumption
    # ------------------------------------------------------------------
    def _await(self, pending: _PoolPending) -> ExecOutcome:
        """Consume one pending future, in commit order.

        Unsupervised, this is ``future.result()`` — a broken pool is
        fatal, as before supervision existed.  Supervised, worker death
        and heartbeat-confirmed wedges divert to :meth:`_recover`.
        """
        sup = self.supervisor
        try:
            if sup is None:
                outcome = pending.future.result()
            else:
                outcome = self._wait_supervised(pending)
        except (BrokenProcessPool, OSError):
            # OSError: the manager thread closes the pool's queues
            # *before* flagging it broken (cpython race), so a break can
            # surface as "handle is closed" instead of BrokenProcessPool
            if sup is None:
                raise
            outcome = self._recover(pending, wedged=False)
        except CancelledError:
            # a sibling's recovery tore the pool down and this queued
            # future was cancelled with it — re-run inline like any
            # other casualty of the broken pool
            if sup is None:
                raise
            outcome = self._recover(pending, wedged=False)
        except _WedgedPool:
            outcome = self._recover(pending, wedged=True)
        self._note(outcome)
        return outcome

    def _wait_supervised(self, pending: _PoolPending) -> ExecOutcome:
        """Wait with wedge detection: past the pinned timeout plus the
        grace window, stale heartbeats mean no worker is making progress
        — stop waiting and recover.  A fresh heartbeat means some worker
        is merely slow; keep waiting (the watchdog inside the worker
        bounds the run itself)."""
        poll = max(0.05, min(self.config.heartbeat_stale / 2.0, 1.0))
        deadline = (time.monotonic() + pending.timeout
                    + self.config.wedge_grace)
        while True:
            try:
                return pending.future.result(timeout=poll)
            except FuturesTimeoutError:
                if (time.monotonic() > deadline
                        and self._monitor is not None
                        and self._monitor.stale()):
                    raise _WedgedPool() from None

    def _recover(self, pending: _PoolPending, wedged: bool) -> ExecOutcome:
        """Broken-pool recovery, in commit order.

        Tear down the (current-generation) pool, then re-run the suspect
        inline in the forked sandbox.  Innocent siblings of a batch
        whose pool broke re-run clean and commit ordinary results; only
        the input whose sandboxed re-run dies again records a kill — the
        exact outcome the serial sandboxed campaign commits, which is
        what keeps parallel and serial runs bit-for-bit identical.
        """
        sup = self.supervisor
        assert sup is not None
        if pending.generation == self._generation:
            self._teardown(wedged=wedged)
        return sup.run_inline(pending.testcase, pending.timeout, note=False)

    def _teardown(self, wedged: bool) -> None:
        """Discard the broken pool; the next batch lazily rebuilds (or,
        with the breaker open, never does)."""
        pool, self._pool = self._pool, None
        self._generation += 1
        if pool is not None:
            # A *wedged* worker never drains the shutdown sentinel, so
            # the pool's manager thread blocks on it forever — and
            # concurrent.futures joins that manager thread at
            # interpreter exit, wedging the whole process.  The pool is
            # abandoned either way (suspects re-run inline), so kill its
            # workers outright and let the manager thread finish.
            # Snapshot first: shutdown() drops the _processes reference.
            procs = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    proc.kill()
                except (ValueError, OSError, AttributeError):
                    pass  # already reaped/closed
        if self.supervisor is not None:
            self.supervisor.note_rebuild(wedged=wedged)

    # ------------------------------------------------------------------
    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]:
        from .worker import worker_run
        sup = self.supervisor
        timeout = self.runner.current_timeout()
        if sup is not None and sup.breaker_open:
            # circuit open: sandboxed-inline lazy thunks, no pool
            return [_LazyPending(
                        lambda tc=tc: sup.run_inline(tc, timeout))
                    for tc in testcases]
        pendings: list[PendingRun] = []
        pool = self._ensure_pool()
        for tc in testcases:
            if sup is not None and sup.is_quarantined(tc):
                # known killer: never hand it to the pool
                pendings.append(_LazyPending(
                    lambda tc=tc: sup.run_inline(tc, timeout)))
                continue
            try:
                future = pool.submit(worker_run, tc, timeout)
            except (BrokenProcessPool, OSError):
                # batches are pipelined: a suspect from the *previous*
                # batch can break the pool before its future is ever
                # awaited, so the break surfaces here at submit time —
                # as BrokenProcessPool, or as a bare OSError when the
                # manager thread has closed the queues but not yet
                # flagged the pool broken (cpython race)
                if sup is None:
                    raise
                self._teardown(wedged=False)
                if sup.breaker_open:
                    pendings.append(_LazyPending(
                        lambda tc=tc: sup.run_inline(tc, timeout)))
                    continue
                pool = self._ensure_pool()
                try:
                    future = pool.submit(worker_run, tc, timeout)
                except (BrokenProcessPool, OSError):
                    # the rebuilt pool died on arrival too: give up on
                    # pooling this candidate, run it sandboxed inline
                    self._teardown(wedged=False)
                    pendings.append(_LazyPending(
                        lambda tc=tc: sup.run_inline(tc, timeout)))
                    continue
            pendings.append(_PoolPending(
                self, future, tc, timeout, self._generation))
        return pendings

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._monitor is not None:
            self._monitor.cleanup()


def make_executor(program: InstrumentedProgram, config: CompiConfig,
                  runner: TestRunner,
                  supervisor: Optional[CampaignSupervisor] = None) -> Executor:
    """Pick the executor for one campaign.

    Parallel execution requires ``workers > 1``, no fault injection
    (fault streams are run-number-indexed; see :mod:`repro.faults.plan`),
    and no schedule exploration (the schedule frontier grows from each
    committed run's decisions, so scheduled candidates must execute in
    commit order — forcing inline keeps serial ≡ ``--workers N``).
    """
    if (config.workers > 1 and not config.faults
            and not config.explore_schedules):
        return ParallelExecutor(program, config, runner, config.workers,
                                supervisor=supervisor)
    return InlineExecutor(runner, supervisor=supervisor)
