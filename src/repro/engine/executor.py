"""Executor stage: how candidate test cases become execution outcomes.

Two implementations of one protocol:

* :class:`InlineExecutor` — evaluates candidates lazily in-process via
  the campaign's own :class:`~repro.core.runner.TestRunner`.  A pending
  run executes only when its result is first consumed, so speculation is
  free: a candidate the engine squashes was never run, and the committed
  behaviour is bit-for-bit the classic serial loop (same EWMA updates,
  same fault-stream indices, same everything).
* :class:`ParallelExecutor` — submits the whole candidate batch to a
  ``concurrent.futures.ProcessPoolExecutor`` (spawn start method).  Each
  worker re-instruments the target once (instrumentation is
  deterministic, so site IDs match the parent's), then runs test cases
  with the shared retry policy.  Results come back as picklable
  :class:`ExecOutcome` values and are consumed strictly in submission
  order; squashed speculations are cancelled (or discarded if already
  running).  Committed wall times are folded back into the parent
  runner's EWMA in commit order, keeping adaptive timeouts and the run
  counter checkpoint-compatible with the inline executor.

The per-batch timeout is pinned at submission time from the runner's
current EWMA state: workers cannot observe mid-batch EWMA movement, and
pinning keeps every speculative sibling under the same deadline.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from ..concolic.coverage import CoverageMap
from ..concolic.trace import TraceResult
from ..core.config import CompiConfig
from ..core.runner import ErrorInfo, RunRecord, TestRunner
from ..core.testcase import TestCase
from ..instrument.loader import InstrumentedProgram


@dataclass
class ExecOutcome:
    """Everything the collector/scheduler need from one execution.

    A picklable projection of :class:`~repro.core.runner.RunRecord`
    (which drags the full per-rank job result along) — this is what pool
    workers ship back over the process boundary.
    """

    testcase: TestCase
    trace: Optional[TraceResult]
    coverage: CoverageMap
    error: Optional[ErrorInfo]
    focus_log_size: int = 0
    nonfocus_log_sizes: list[int] = field(default_factory=list)
    wall_time: float = 0.0
    degraded: bool = False
    timeout_used: float = 0.0
    stragglers: int = 0
    timed_out: bool = False
    retries: int = 0


def outcome_from_record(rec: RunRecord, retries: int = 0) -> ExecOutcome:
    """Project a runner record onto the executor-protocol outcome."""
    return ExecOutcome(
        testcase=rec.testcase,
        trace=rec.trace,
        coverage=rec.coverage,
        error=rec.error,
        focus_log_size=rec.focus_log_size,
        nonfocus_log_sizes=rec.nonfocus_log_sizes,
        wall_time=rec.wall_time,
        degraded=rec.degraded,
        timeout_used=rec.timeout_used,
        stragglers=rec.job.stragglers,
        timed_out=rec.job.timed_out,
        retries=retries,
    )


class PendingRun(Protocol):
    """One submitted candidate execution, consumed at most once."""

    def result(self) -> ExecOutcome: ...

    def cancel(self) -> None: ...


class Executor(Protocol):
    """The executor stage of the staged campaign engine."""

    #: True when submitted siblings actually run concurrently (the engine
    #: only pays for speculative solving when this is set)
    parallel: bool

    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]: ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# inline (serial) executor
# ----------------------------------------------------------------------
class _LazyPending:
    """Runs the test on first ``result()``; cancelling costs nothing."""

    def __init__(self, thunk: Callable[[], ExecOutcome]):
        self._thunk = thunk
        self._outcome: Optional[ExecOutcome] = None

    def result(self) -> ExecOutcome:
        if self._outcome is None:
            self._outcome = self._thunk()
        return self._outcome

    def cancel(self) -> None:
        pass  # never started


class InlineExecutor:
    """Serial executor: the classic loop's behaviour, candidate by
    candidate, with lazy evaluation so squashed speculation is free."""

    parallel = False

    def __init__(self, runner: TestRunner):
        self.runner = runner

    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]:
        def thunk(tc: TestCase) -> Callable[[], ExecOutcome]:
            def run() -> ExecOutcome:
                rec, retries = self.runner.run_with_retries(tc)
                return outcome_from_record(rec, retries)
            return run
        return [_LazyPending(thunk(tc)) for tc in testcases]

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# process-pool executor
# ----------------------------------------------------------------------
class _PoolPending:
    """A pool future plus commit-order bookkeeping on consumption."""

    def __init__(self, future: Future, note: Callable[[ExecOutcome], None]):
        self._future = future
        self._note = note
        self._outcome: Optional[ExecOutcome] = None

    def result(self) -> ExecOutcome:
        if self._outcome is None:
            self._outcome = self._future.result()
            self._note(self._outcome)
        return self._outcome

    def cancel(self) -> None:
        # a running speculation cannot be interrupted; it finishes in its
        # worker and the result is simply never consumed
        self._future.cancel()


class ParallelExecutor:
    """Process-pool executor for speculative candidate batches.

    The pool uses the ``spawn`` start method: the parent runs target
    ranks on threads, and forking a thread-heavy interpreter is a
    deadlock lottery.  Workers bootstrap from the parent's ``sys.path``
    and re-instrument the target by module name in their initializer.

    Fault-injection campaigns never get this executor (the façade forces
    inline): fault streams are indexed by the global run number, which
    squashed speculation would perturb.
    """

    parallel = True

    def __init__(self, program: InstrumentedProgram, config: CompiConfig,
                 runner: TestRunner, workers: int):
        self.config = config
        self.runner = runner
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        # everything a worker needs to rebuild the program: module names
        # in instrumentation order, plus the entry coordinates
        cfg_dict = dataclasses.asdict(config)
        cfg_dict["faults"] = ()          # run-indexed streams: serial only
        cfg_dict["workers"] = 1          # no nested pools
        self._init_args = (
            list(sys.path),
            list(program.modules),
            program.entry_module,
            program.entry_name,
            program.name,
            cfg_dict,
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from .worker import worker_init
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=worker_init,
                initargs=self._init_args,
            )
        return self._pool

    def _note(self, outcome: ExecOutcome) -> None:
        self.runner.note_external_run(outcome.wall_time, outcome.timed_out)

    def submit_batch(self, testcases: list[TestCase]) -> list[PendingRun]:
        from .worker import worker_run
        pool = self._ensure_pool()
        timeout = self.runner.current_timeout()
        return [_PoolPending(pool.submit(worker_run, tc, timeout), self._note)
                for tc in testcases]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def make_executor(program: InstrumentedProgram, config: CompiConfig,
                  runner: TestRunner) -> Executor:
    """Pick the executor for one campaign.

    Parallel execution requires ``workers > 1`` and no fault injection
    (fault streams are run-number-indexed; see :mod:`repro.faults.plan`).
    """
    if config.workers > 1 and not config.faults:
        return ParallelExecutor(program, config, runner, config.workers)
    return InlineExecutor(runner)
