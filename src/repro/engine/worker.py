"""Pool-worker side of the parallel executor.

Each spawned worker process re-instruments the target program once (in
:func:`worker_init`) and then serves :func:`worker_run` tasks.  The
instrumentation pass is deterministic for a fixed module list, so the
worker's site IDs, branch numbering and input marking are identical to
the parent's — coverage sets and traces shipped back merge cleanly.

Workers always run with fault injection disabled and ``workers = 1``
(the façade never routes fault campaigns here, and nested pools would be
pathological); the per-test timeout is pinned by the submitting batch.
"""

from __future__ import annotations

import sys
from typing import Optional

from ..core.config import CompiConfig
from ..core.runner import TestRunner
from ..core.testcase import TestCase
from .executor import ExecOutcome, outcome_from_record

#: per-process singleton runner, built by :func:`worker_init`
_RUNNER: Optional[TestRunner] = None


def worker_init(parent_sys_path: list[str], module_names: list[str],
                entry_module: str, entry_name: str, program_name: str,
                config_dict: dict) -> None:
    """Initializer: mirror the parent's import surface, then instrument."""
    global _RUNNER
    for p in reversed(parent_sys_path):
        if p not in sys.path:
            sys.path.insert(0, p)
    from ..instrument.loader import instrument_program
    program = instrument_program(module_names, entry_module=entry_module,
                                 entry_name=entry_name, name=program_name)
    _RUNNER = TestRunner(program, CompiConfig.from_dict(config_dict))


def worker_run(testcase: TestCase, timeout: float) -> ExecOutcome:
    """Run one candidate test case under the pinned batch timeout."""
    if _RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker_init was not called in this process")
    rec, retries = _RUNNER.run_with_retries(testcase, timeout=timeout)
    return outcome_from_record(rec, retries)
