"""Pool-worker side of the parallel executor.

Each spawned worker process re-instruments the target program once (in
:func:`worker_init`) and then serves :func:`worker_run` tasks.  The
instrumentation pass is deterministic for a fixed module list, so the
worker's site IDs, branch numbering and input marking are identical to
the parent's — coverage sets and traces shipped back merge cleanly.

Workers always run with fault injection disabled and ``workers = 1``
(the façade never routes fault campaigns here, and nested pools would be
pathological); the per-test timeout is pinned by the submitting batch.

Supervision hooks (both optional, see :mod:`repro.supervise`):

* resource caps — ``worker_init`` applies the configured rlimits and
  ``worker_run`` re-arms the CPU cap before every task (``RLIMIT_CPU``
  counts whole-process CPU, so a long-lived worker must keep moving the
  soft limit ahead of itself);
* heartbeats — ``worker_run`` touches a per-process heartbeat file
  before and after each task so the parent can tell a worker that is
  busy on a slow test from one that is wedged.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

from ..core.config import CompiConfig
from ..core.runner import TestRunner
from ..core.testcase import TestCase
from ..supervise.sandbox import (ResourceLimits, apply_rlimits, arm_cpu_limit,
                                 reclassify_resource)
from .executor import ExecOutcome, outcome_from_record

#: per-process singleton runner, built by :func:`worker_init`
_RUNNER: Optional[TestRunner] = None
#: per-process resource caps (re-armed per task)
_LIMITS: ResourceLimits = ResourceLimits()
#: this worker's heartbeat file, when the parent monitors heartbeats
_HEARTBEAT: Optional[str] = None


def worker_init(parent_sys_path: list[str], module_names: list[str],
                entry_module: str, entry_name: str, program_name: str,
                config_dict: dict,
                heartbeat_dir: Optional[str] = None) -> None:
    """Initializer: mirror the parent's import surface, then instrument."""
    global _RUNNER, _LIMITS, _HEARTBEAT
    for p in reversed(parent_sys_path):
        if p not in sys.path:
            sys.path.insert(0, p)
    from ..instrument.loader import instrument_program
    program = instrument_program(module_names, entry_module=entry_module,
                                 entry_name=entry_name, name=program_name)
    config = CompiConfig.from_dict(config_dict)
    _RUNNER = TestRunner(program, config)
    _LIMITS = ResourceLimits.from_config(config)
    apply_rlimits(_LIMITS)
    if heartbeat_dir is not None:
        _HEARTBEAT = os.path.join(heartbeat_dir, f"hb-{os.getpid()}")
        _touch_heartbeat()


def _touch_heartbeat() -> None:
    if _HEARTBEAT is None:
        return
    try:
        from ..supervise.pool import HeartbeatMonitor
        HeartbeatMonitor.touch(_HEARTBEAT)
    except OSError:  # pragma: no cover - heartbeat dir vanished
        pass


def worker_run(testcase: TestCase, timeout: float) -> ExecOutcome:
    """Run one candidate test case under the pinned batch timeout."""
    if _RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker_init was not called in this process")
    _touch_heartbeat()
    arm_cpu_limit(_LIMITS)
    try:
        rec, retries = _RUNNER.run_with_retries(testcase, timeout=timeout)
        return reclassify_resource(outcome_from_record(rec, retries), _LIMITS)
    finally:
        _touch_heartbeat()
