"""Scheduler stage: search strategy + incremental solver → candidates.

The scheduler owns everything that decides *what to run next*: the
search strategy and its execution tree, the campaign RNG, the solve
session, discovered input caps, the restart counter, and the pending
(next serial) candidate.  One step produces:

* the **serial candidate** (:meth:`advance`) — exactly what the classic
  loop's ``_derive_next`` would run next, with identical state mutation
  (infeasible marks, restart draws, solver-fault draws, RNG stream);
* up to ``width - 1`` **speculative candidates** (:meth:`speculate`) —
  further ranked negations of the *same* path, solved against a forked
  solve session so neither the solver RNG nor the execution tree is
  perturbed.  Speculation is a pure prediction: the engine verifies each
  one against the authoritative serial derivation before committing its
  result, and squashes mispredictions.

Restart candidates are never speculated past: a restart draws from the
campaign RNG, so everything after it depends on state only the committed
stream may advance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..concolic.coverage import CoverageMap
from ..concolic.trace import TraceResult
from ..core.config import CompiConfig
from ..core.conflicts import TestSetup, resolve_setup
from ..core.semantics import (capping_constraints, clamp_to_caps,
                              mpi_semantic_constraints, solver_domains)
from ..core.testcase import InputSpec, TestCase, random_testcase
from ..faults import FAULT_SOLVER_TIMEOUT
from ..schedules import ScheduleExplorer
from ..search.base import SearchStrategy, StrategyContext
from ..solver.incremental import SolveSession

#: extra ranked positions speculate() may examine beyond the requested
#: width (some will be the serial position or solver-infeasible)
_SPECULATION_PROBE_SLACK = 4


@dataclass
class Candidate:
    """One schedulable test case.

    ``expect`` is the divergence-detection expectation — the (path,
    position) whose flip this candidate should realise — consumed by
    :meth:`Scheduler.observe` when the candidate's execution commits.

    ``arm`` names the portfolio arm whose strategy produced this
    candidate ("" for single-strategy campaigns); the collector copies
    it onto the committed iteration record, giving every iteration its
    commit-order arm attribution.
    """

    testcase: TestCase
    expect: Optional[tuple[list, int]] = None
    speculative: bool = False
    arm: str = ""


class Scheduler:
    """Proposes candidate test cases; owns search + solving state."""

    def __init__(self, config: CompiConfig, specs: dict[str, InputSpec],
                 strategy: SearchStrategy, session: SolveSession,
                 rng: np.random.Generator, initial_setup: TestSetup,
                 fault_plan=None):
        self.config = config
        self.specs = specs
        self.strategy = strategy
        self.session = session
        self.rng = rng
        self.initial_setup = initial_setup
        self.caps: dict[str, int] = {}
        self.restarts = 0
        # solver-timeout fault: a dedicated picklable stream, seeded the
        # same way the injector seeds its pseudo-rank -2 stream
        self._solver_fault_spec = (fault_plan.spec_for(FAULT_SOLVER_TIMEOUT)
                                   if fault_plan is not None else None)
        self.solver_fault_rng: Optional[random.Random] = None
        if self._solver_fault_spec is not None:
            self.solver_fault_rng = random.Random(
                (fault_plan.seed * 2_654_435_761 - 2 * 97) & 0x7FFFFFFF)
        #: schedule-space frontier (None unless ``explore_schedules``):
        #: alternatives discovered by committed runs, drained depth-first
        #: ahead of input-space derivation
        self.schedules: Optional[ScheduleExplorer] = (
            ScheduleExplorer(config.schedule_budget, config.schedule_depth)
            if config.explore_schedules else None)
        #: the next serial candidate (what a checkpoint must capture)
        self.pending = Candidate(
            random_testcase(self.specs, initial_setup, self.rng))

    # ------------------------------------------------------------------
    @property
    def solver_stats(self):
        """Cumulative telemetry of the committed solve stream (the
        authoritative session; speculative forks keep throwaway stats)."""
        return self.session.stats

    # ------------------------------------------------------------------
    # observation: fold one committed execution into search state
    # ------------------------------------------------------------------
    def observe(self, expect: Optional[tuple[list, int]],
                trace: Optional[TraceResult]) -> None:
        """Record a committed execution: caps, divergence, tree insert."""
        if trace is None:
            return
        for var in trace.vars:
            if var.kind == "input" and var.cap is not None:
                self.caps[var.name] = var.cap
        self._check_divergence(expect, trace)
        self.strategy.register_execution(trace.path)

    def note_schedule(self, testcase: TestCase, outcome) -> None:
        """Fold one committed execution's match decisions into the
        schedule frontier (no-op outside ``--explore-schedules``)."""
        if self.schedules is None:
            return
        self.schedules.note(testcase, outcome.schedule_decisions,
                            divergences=outcome.schedule_divergences,
                            fallbacks=outcome.schedule_fallbacks)

    def _check_divergence(self, expect: Optional[tuple[list, int]],
                          trace: TraceResult) -> None:
        """Did the last negation actually flip the predicted branch?

        CREST calls a mismatch a *divergence*.  We mark the attempted
        flip as tried (infeasible-for-now) so the systematic strategies
        move on — without this, negating a reduction-collapsed loop-exit
        constraint reproduces an identical-looking path forever.
        """
        if expect is None:
            return
        if not self.config.divergence_detection:
            return
        old_path, pos = expect
        actual = trace.path
        flipped = (
            len(actual) > pos
            and all(a.site == e.site and a.outcome == e.outcome
                    for a, e in zip(actual[:pos], old_path[:pos]))
            and actual[pos].site == old_path[pos].site
            and actual[pos].outcome == (not old_path[pos].outcome)
        )
        if not flipped:
            self.strategy.tree.note_divergence()
            self.strategy.mark_infeasible(old_path, pos)

    # ------------------------------------------------------------------
    # serial derivation (exact classic-loop semantics)
    # ------------------------------------------------------------------
    def advance(self, tc: TestCase, trace: Optional[TraceResult],
                error_kind: Optional[str], coverage: CoverageMap,
                iteration: int) -> Candidate:
        """The next serial candidate after ``tc`` executed with ``trace``.

        Mutates scheduler state exactly as the classic loop would:
        infeasible marks for rejected positions, restart bookkeeping,
        one solver-fault draw, RNG draws for restart inputs.
        """
        cfg = self.config
        # one fault draw per iteration, before any data-dependent exit,
        # so the stream position is a pure function of the iteration count
        solver_fault = self._solver_timed_out()
        # drain the schedule frontier ahead of input-space derivation:
        # scheduled candidates replay known inputs under a forced match
        # prefix and consume no RNG/solver state, so interleaving them
        # keeps every stream position a pure function of commit order
        if self.schedules is not None:
            scheduled = self.schedules.next_testcase()
            if scheduled is not None:
                return Candidate(scheduled)
        if trace is None or not trace.path:
            return self._restart_candidate()
        if solver_fault:
            # the "solver timed out" failure mode: no negation this
            # iteration; fall back to a restart exactly as if every
            # candidate had come back infeasible
            return self._restart_candidate()
        if (error_kind is not None
                and len(trace.path) <= cfg.trivial_path_threshold):
            # early crash before meaningful symbolic work: redo with
            # random inputs (the paper's SUSY-HMC workflow)
            return self._restart_candidate()

        path = trace.path
        semantics, caps_cons, domains = self._solve_context(trace)
        # persistent solving: install (or reuse) the trace's invariant
        # stem once, then solve every negation through its prefix ladder
        frame = (self.session.stem(semantics + caps_cons)
                 if cfg.persistent_solver else None)
        ctx = StrategyContext(path=path, coverage=coverage,
                              iteration=iteration)
        for pos in self.strategy.propose(ctx):
            built = self._solve_position(tc, trace, pos, semantics,
                                         caps_cons, domains, self.session,
                                         frame)
            if built is None:
                self.strategy.mark_infeasible(path, pos)
                continue
            return built
        return self._restart_candidate()

    # ------------------------------------------------------------------
    # speculative derivation (pure: no shared-state mutation)
    # ------------------------------------------------------------------
    def speculate(self, tc: TestCase, trace: Optional[TraceResult],
                  serial: Candidate, width: int, coverage: CoverageMap,
                  iteration: int,
                  avoid: Optional[list[TestCase]] = None) -> list[Candidate]:
        """Up to ``width`` speculative siblings of the serial candidate.

        Solved against a forked solve session; infeasibility here is
        *not* recorded (the committed stream must discover it itself), so
        the campaign stays bit-for-bit serial regardless of speculation.

        ``avoid`` lists test cases already in flight (the depth-k
        speculation tree refills the pool mid-batch); candidates equal
        to one of them are skipped so the pool never runs duplicates.
        """
        if width <= 0 or trace is None or not trace.path:
            return []
        if serial.expect is None:
            return []  # restart next: RNG-chained, nothing to predict
        serial_pos = serial.expect[1]
        path = trace.path
        semantics, caps_cons, domains = self._solve_context(trace)
        ctx = StrategyContext(path=path, coverage=coverage,
                              iteration=iteration)
        session = self.session.fork()
        # the fork shares the committed stream's stem frame, so the
        # ladder warmed here is the one advance() extends next step
        frame = (session.stem(semantics + caps_cons)
                 if self.config.persistent_solver else None)
        out: list[Candidate] = []
        probe = width + _SPECULATION_PROBE_SLACK
        # the random/CFG strategies draw from their RNG while proposing;
        # speculation must leave the committed stream's strategy RNG
        # exactly where the serial derivation left it
        rng_state = self.strategy.rng.bit_generator.state
        try:
            for pos in self.strategy.propose_many(ctx, probe + 1):
                if pos == serial_pos:
                    continue
                built = self._solve_position(tc, trace, pos, semantics,
                                             caps_cons, domains, session,
                                             frame)
                if built is None:
                    continue
                built.speculative = True
                if avoid is not None and any(
                        built.testcase == a for a in avoid):
                    continue   # already in flight: don't relaunch it
                out.append(built)
                if len(out) >= width:
                    break
        finally:
            self.strategy.rng.bit_generator.state = rng_state
        return out

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _solve_context(self, trace: TraceResult):
        cfg = self.config
        semantics = mpi_semantic_constraints(trace, cfg)
        caps_cons = capping_constraints(trace)
        bounds = {n: (s.lo, s.hi) for n, s in self.specs.items()}
        domains = solver_domains(trace, cfg, input_bounds=bounds)
        return semantics, caps_cons, domains

    def _solve_position(self, tc: TestCase, trace: TraceResult, pos: int,
                        semantics, caps_cons, domains,
                        session: SolveSession,
                        frame=None) -> Optional[Candidate]:
        """Solve one negation; build its candidate (None = infeasible).

        The invariant context (MPI semantics + caps) leads and the
        position-dependent path prefix trails, so the session's
        simplify memo sees consecutive contexts as extensions of a
        shared stem instead of always-different lists.  With a stem
        ``frame`` (``persistent_solver``), the same query goes through
        :meth:`~repro.solver.incremental.SolveSession.solve_at` and the
        frame's prefix ladder — bit-for-bit the same result.
        """
        path = trace.path
        prefix = [pe.constraint for pe in path[:pos]]
        negated = path[pos].constraint.negated()
        if frame is not None:
            res = session.solve_at(frame, prefix, negated, domains,
                                   previous=dict(trace.values))
        else:
            res = session.solve(semantics + caps_cons + prefix, negated,
                                domains, previous=dict(trace.values))
        if res is None:
            return None
        new_inputs = {name: int(res.assignment[vid])
                      for name, vid in trace.input_vids.items()}
        inputs = clamp_to_caps({**tc.inputs, **new_inputs}, self.caps)
        setup = resolve_setup(trace, res.assignment, res.changed,
                              tc.setup, self.config)
        return Candidate(
            TestCase(inputs=inputs, setup=setup, origin="negation",
                     negated_site=path[pos].site),
            expect=(path, pos))

    def _restart_candidate(self) -> Candidate:
        # concolic-simplification verdicts are stale after a restart
        self.strategy.tree.clear_infeasible()
        self.restarts += 1
        if self.config.restart_with_defaults and self.restarts % 2 == 1:
            inputs = {n: s.default for n, s in self.specs.items()}
            return Candidate(TestCase(inputs=inputs,
                                      setup=self.initial_setup,
                                      origin="restart"))
        return Candidate(random_testcase(self.specs, self.initial_setup,
                                         self.rng, caps=self.caps,
                                         origin="restart"))

    def resume_candidate(self) -> Candidate:
        """Continuation test case for a JSONL-only (degraded) resume.

        Unlike a restart this does **not** bump the restart counter or
        clear infeasible verdicts — nothing has executed yet, the
        campaign is merely picking up where the log left off.
        """
        return Candidate(random_testcase(self.specs, self.initial_setup,
                                         self.rng, caps=self.caps,
                                         origin="resume"))

    def _solver_timed_out(self) -> bool:
        """Simulated solver timeout (fault injection), one draw per call."""
        if self.solver_fault_rng is None:
            return False
        return (self.solver_fault_rng.random()
                < self._solver_fault_spec.probability)
