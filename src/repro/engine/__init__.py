"""Staged campaign engine: scheduler / executor / collector.

The classic monolithic testing loop (``repro.core.compi.Compi``) is now
a thin façade over this package.  See ``docs/ARCHITECTURE.md`` for the
stage contracts and the determinism model (speculate → verify → squash).
"""

from .collector import Collector
from .engine import CampaignEngine
from .executor import (ExecOutcome, Executor, InlineExecutor,
                       ParallelExecutor, PendingRun, make_executor,
                       outcome_from_record)
from .scheduler import Candidate, Scheduler

__all__ = [
    "CampaignEngine", "Candidate", "Collector", "ExecOutcome", "Executor",
    "InlineExecutor", "ParallelExecutor", "PendingRun", "Scheduler",
    "make_executor", "outcome_from_record",
]
