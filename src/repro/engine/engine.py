"""The staged campaign engine: scheduler → executor → collector.

One engine step:

1. the **scheduler** supplies the pending serial candidate plus up to
   ``width - 1`` speculative siblings (further ranked negations of the
   same path, pre-solved against a forked solve session);
2. the **executor** runs the batch — lazily in-process (inline) or
   concurrently in a worker pool (parallel);
3. results are consumed strictly in **submission order**.  Committing a
   result folds it into the collector (coverage, bugs, record, log,
   checkpoint) and into the scheduler (caps, divergence, tree), then
   derives the authoritative next serial candidate.  If the next pending
   batch entry *predicted it exactly* (test-case equality), its
   already-running execution is adopted — with the authoritative
   candidate's expectation, since execution is a pure function of the
   test case; otherwise the remaining batch is **squashed** (cancelled /
   discarded) and a fresh batch is launched.

On an adoption the pipeline has a free slot, and the paper's point
about solver latency applies in reverse: idle workers are wasted
executions.  The **depth-k speculation tree**
(``CompiConfig.speculation_depth``) refills those slots with a fresh
generation of siblings speculated from the *latest committed* trace,
chaining up to ``speculation_depth`` generations onto one pipeline
before forcing a fresh batch.  Refilled candidates are ordinary
speculations — verified against the serial derivation before adoption,
squashed on mispredict — so the committed stream stays bit-for-bit
serial; ``speculation_depth=1`` reproduces the single-generation
behaviour exactly.

Because only verified predictions commit, the committed iteration stream
— coverage deltas, bug set, per-iteration telemetry, RNG/solver/search
state — is bit-for-bit identical under every executor and width.  That
is the determinism contract the CI smoke enforces: ``--workers N`` must
reproduce the serial engine's final covered-branch set and unique-bug
set for a fixed seed.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..core.compi import CampaignResult
from ..core.config import CompiConfig
from ..core.runner import TestRunner
from ..instrument.loader import InstrumentedProgram
from .collector import Collector
from .executor import Executor, PendingRun
from .scheduler import Candidate, Scheduler


class CampaignEngine:
    """Drives one campaign through the three pluggable stages."""

    def __init__(self, program: InstrumentedProgram, config: CompiConfig,
                 scheduler: Scheduler, executor: Executor,
                 collector: Collector, runner: TestRunner):
        self.program = program
        self.config = config
        self.scheduler = scheduler
        self.executor = executor
        self.collector = collector
        self.runner = runner
        self.iteration = 0
        #: campaign wall-time accumulated by previous (resumed) sessions
        self.elapsed_prior = 0.0
        #: speculative executions adopted without re-running (telemetry)
        self.speculation_hits = 0
        #: speculative executions squashed as mispredicted (telemetry)
        self.speculation_squashes = 0
        #: mid-batch refill generations launched by the speculation tree
        self.speculation_refills = 0
        #: pool-saturation telemetry: in-flight executions sampled at
        #: each commit (average = _inflight_total / _inflight_samples)
        self._inflight_total = 0
        self._inflight_samples = 0

    @property
    def avg_inflight(self) -> float:
        """Mean in-flight executions observed at commit time — the
        pool-saturation metric BENCH_engine.json reports."""
        if not self._inflight_samples:
            return 0.0
        return self._inflight_total / self._inflight_samples

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Candidates per step: 1 unless the executor truly runs them
        concurrently (inline evaluates lazily, so speculation would only
        waste solver work)."""
        if not self.executor.parallel:
            return 1
        return self.config.effective_speculation_width()

    # ------------------------------------------------------------------
    def run(self, iterations: Optional[int] = None,
            time_budget: Optional[float] = None,
            log: Optional[Any] = None) -> CampaignResult:
        """Run until the iteration count or wall-clock budget is spent."""
        if iterations is None and time_budget is None:
            raise ValueError("give an iteration or time budget")
        start = time.monotonic() - self.elapsed_prior
        col = self.collector
        col.log = log
        if log is not None and self.iteration == 0:
            log.write_meta(self.program.name, self.config,
                           self.program.registry.total_branches)
        done = 0

        def budget_left() -> bool:
            if iterations is not None and done >= iterations:
                return False
            if (time_budget is not None
                    and time.monotonic() - start >= time_budget):
                return False
            return True

        batch: list[tuple[Candidate, PendingRun]] = []
        #: generations chained onto the current pipeline (speculation tree)
        spec_gen = 1
        try:
            while budget_left():
                if not batch:
                    batch = self._launch([self.scheduler.pending])
                    spec_gen = 1
                self._inflight_total += len(batch)
                self._inflight_samples += 1
                cand, pending = batch.pop(0)
                outcome = pending.result()
                self._commit(cand, outcome, start)
                done += 1
                nxt = self.scheduler.pending
                if batch and batch[0][0].testcase == nxt.testcase:
                    # prediction verified: adopt the running execution,
                    # but carry the authoritative serial expectation
                    batch[0] = (nxt, batch[0][1])
                    self.speculation_hits += 1
                    room = self.width - len(batch)
                    if (room > 0 and budget_left()
                            and spec_gen < self.config.speculation_depth):
                        # speculation tree: refill the freed slots with a
                        # new generation speculated from the trace that
                        # just committed, skipping in-flight test cases
                        extra = self.scheduler.speculate(
                            cand.testcase, outcome.trace, nxt, room,
                            col.coverage, self.iteration,
                            avoid=[c.testcase for c, _ in batch])
                        if extra:
                            batch.extend(self._launch(extra))
                            self.speculation_refills += 1
                            spec_gen += 1
                    continue
                self._squash(batch)
                batch = []
                if budget_left():
                    spec = self.scheduler.speculate(
                        cand.testcase, outcome.trace, nxt, self.width - 1,
                        col.coverage, self.iteration)
                    batch = self._launch([nxt] + spec)
                    spec_gen = 1
        finally:
            self._squash(batch)

        result = CampaignResult(
            program_name=self.program.name,
            coverage=col.coverage,
            total_branches=self.program.registry.total_branches,
            branches_per_function=self.program.registry.branches_per_function(),
            bugs=col.bugs,
            iterations=col.records,
            wall_time=time.monotonic() - start,
            divergences=self.scheduler.strategy.tree.divergences,
            stragglers=sum(r.stragglers for r in col.records),
            degraded_iterations=sum(1 for r in col.records if r.degraded),
            retries=sum(r.retries for r in col.records),
            # snapshot: the report must not alias the live session counters
            solver=self.scheduler.session.stats.snapshot(),
            supervision=self._supervision_snapshot(),
            portfolio=self._portfolio_snapshot(),
            schedules=self._schedules_snapshot(),
        )
        if log is not None:
            log.write_solver(result.solver)
            log.write_supervision(result.supervision)
            if result.portfolio is not None:
                log.write_portfolio(result.portfolio)
            log.write_coverage(result)
            log.sync()
        return result

    def _portfolio_snapshot(self) -> Optional[dict]:
        """Per-arm telemetry when the scheduler is a portfolio (duck-typed
        so the engine never imports :mod:`repro.portfolio`)."""
        snap = getattr(self.scheduler, "portfolio_snapshot", None)
        return snap() if snap is not None else None

    def _schedules_snapshot(self) -> Optional[dict]:
        """Schedule-space exploration telemetry (None outside
        ``--explore-schedules``; duck-typed for portfolio schedulers)."""
        explorer = getattr(self.scheduler, "schedules", None)
        return explorer.telemetry() if explorer is not None else None

    def _supervision_snapshot(self) -> Optional[dict]:
        """Supervision + triage telemetry for the final report (None when
        the collector carries neither — e.g. hand-built engines)."""
        sup = getattr(self.collector, "supervisor", None)
        tri = getattr(self.collector, "triage", None)
        if sup is None and tri is None:
            return None
        snapshot: dict = {}
        if sup is not None:
            snapshot.update(sup.stats_snapshot().as_dict())
        if tri is not None:
            snapshot.update({
                "unique_signatures": len(tri.seen),
                "minimized_crashes": tri.minimized,
                "minimize_probes": tri.probes_spent,
            })
        return snapshot

    # ------------------------------------------------------------------
    def _launch(self,
                candidates: list[Candidate]) -> list[tuple[Candidate,
                                                           PendingRun]]:
        pendings = self.executor.submit_batch(
            [c.testcase for c in candidates])
        return list(zip(candidates, pendings))

    def _squash(self, batch: list[tuple[Candidate, PendingRun]]) -> None:
        for cand, pending in batch:
            if cand.speculative:
                self.speculation_squashes += 1
            pending.cancel()

    def _commit(self, cand: Candidate, outcome, start: float) -> None:
        """Fold one executed candidate into every stage, in serial order."""
        sched, col = self.scheduler, self.collector
        new_branches, bug = col.absorb(cand, outcome, self.iteration)
        sched.observe(cand.expect, outcome.trace)
        # schedule-space frontier: committed decisions feed the tree
        # *before* advance(), so the alternatives a run discovered are
        # drainable on the very next iteration (duck-typed: portfolio
        # schedulers without the hook simply skip schedule exploration)
        note_schedule = getattr(sched, "note_schedule", None)
        if note_schedule is not None:
            note_schedule(cand.testcase, outcome)
        nxt = sched.advance(cand.testcase, outcome.trace,
                            outcome.error.kind if outcome.error else None,
                            col.coverage, self.iteration)
        sched.pending = nxt
        it_rec = col.build_record(
            cand, outcome, self.iteration,
            elapsed=time.monotonic() - start,
            negated_site=nxt.testcase.negated_site)
        self.iteration += 1
        col.record(it_rec, new_branches, bug)
