"""Collector stage: coverage merge, bug dedup, records, persistence.

The collector owns the campaign's *accumulated* state — the merged
coverage map, the bug list, the per-iteration telemetry — and the
persistence side effects: streaming each committed iteration to the
campaign log and refreshing the crash-safe checkpoint through a hook.

The checkpoint hook is how resume stays executor-agnostic: the engine
commits results strictly in submission order under every executor, so
the checkpoint written after iteration *n* is identical whether the
execution happened inline or speculatively in a pool worker.  Killing a
campaign mid-batch therefore loses at most the uncommitted tail, and a
resume reproduces the uninterrupted run exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..concolic.coverage import CoverageMap
from ..core.compi import BugRecord, IterationRecord
from ..supervise.triage import crash_signature
from .executor import ExecOutcome
from .scheduler import Candidate

#: hook signature: (log_path, elapsed_seconds) -> None
CheckpointHook = Callable[[Any, float], None]


class Collector:
    """Accumulates committed outcomes; streams them to the log.

    ``supervisor``/``triage`` (see :mod:`repro.supervise`) hook the
    committed stream: newly quarantined inputs are persisted with the
    iteration that confirmed the kill, and every committed bug feeds
    signature dedup + reproducer minimization.  Both run at commit time,
    in commit order — which is exactly what keeps their state identical
    under the inline and pool executors.
    """

    def __init__(self, checkpoint: Optional[CheckpointHook] = None,
                 supervisor: Optional[Any] = None,
                 triage: Optional[Any] = None):
        self.coverage = CoverageMap()
        self.bugs: list[BugRecord] = []
        self.records: list[IterationRecord] = []
        self.checkpoint = checkpoint
        self.supervisor = supervisor
        self.triage = triage
        self.log: Optional[Any] = None  # an *entered* CampaignLog

    # ------------------------------------------------------------------
    def absorb(self, candidate: Candidate, outcome: ExecOutcome,
               iteration: int) -> tuple[set, Optional[BugRecord]]:
        """Merge one committed outcome; returns (new branches, bug)."""
        new_branches = outcome.coverage.branches - self.coverage.branches
        self.coverage.merge(outcome.coverage)
        bug: Optional[BugRecord] = None
        if outcome.error is not None:
            err = outcome.error
            bug = BugRecord(kind=err.kind, message=err.message,
                            global_rank=err.global_rank,
                            testcase=candidate.testcase,
                            iteration=iteration, location=err.location,
                            signature=crash_signature(err),
                            schedule=outcome.schedule,
                            pending_ops=getattr(err, "pending", ()))
            self.bugs.append(bug)
        return new_branches, bug

    def build_record(self, candidate: Candidate, outcome: ExecOutcome,
                     iteration: int, elapsed: float,
                     negated_site: Optional[int]) -> IterationRecord:
        tc = candidate.testcase
        trace = outcome.trace
        nonfocus = outcome.nonfocus_log_sizes
        nonfocus_avg = sum(nonfocus) / len(nonfocus) if nonfocus else 0.0
        return IterationRecord(
            iteration=iteration, origin=tc.origin,
            nprocs=tc.setup.nprocs, focus=tc.setup.focus,
            path_len=len(trace.path) if trace else 0,
            event_count=trace.event_count if trace else 0,
            covered_after=self.coverage.covered_branches,
            error_kind=outcome.error.kind if outcome.error else None,
            wall_time=outcome.wall_time,
            elapsed=elapsed,
            negated_site=negated_site,
            focus_log_size=outcome.focus_log_size,
            nonfocus_log_avg=nonfocus_avg,
            stragglers=outcome.stragglers,
            degraded=outcome.degraded,
            retries=outcome.retries,
            harvest_error=outcome.harvest_error,
            arm=candidate.arm,
            schedule=outcome.schedule,
        )

    def record(self, it_rec: IterationRecord, new_branches: set,
               bug: Optional[BugRecord]) -> None:
        """Append + persist one committed iteration (log, delta, ckpt)."""
        self.records.append(it_rec)
        if bug is not None and self.triage is not None:
            # dedup + (first occurrence of a signature) minimize and
            # emit a reproducer artifact next to the log
            self.triage.on_bug(
                bug, self.log.path if self.log is not None else None)
        if self.log is not None:
            self.log.write_iteration(it_rec)
            self.log.write_cov_delta(it_rec.iteration, sorted(new_branches))
            if bug is not None:
                self.log.write_bug(bug)
            if self.supervisor is not None:
                for entry in self.supervisor.drain_new_quarantines():
                    self.log.write_quarantine(entry)
            if self.checkpoint is not None:
                self.checkpoint(self.log.path, it_rec.elapsed)
