"""Execution recorders (sinks): the heavy concolic trace and the light
coverage-only recorder.

COMPI's two-way instrumentation (§IV-B) generates two program variants:

* ``ex1`` — *heavy*: full symbolic execution.  Here: inputs and MPI
  rank/size queries come back as :class:`~repro.concolic.sym.SymInt`
  proxies, every branch probe records coverage **and** (subject to
  constraint-set reduction) the path constraint, every raw branch event is
  logged (that log is the I/O the paper measures in Table IV).
* ``ex2`` — *light*: branch probes only record the set of covered branch
  IDs; inputs stay plain ``int`` so no symbolic work happens at all.

Both variants poll the job's stop event from the probe stream so that
runaway loops in instrumented code can be cancelled by the watchdog.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from ..mpi.errors import MpiShutdown
from .coverage import CoverageMap
from .expr import (KIND_INPUT, KIND_RC, KIND_RW, KIND_SC, KIND_SW,
                   Constraint, LinearExpr, Var)
from .reduction import ReductionFilter
from .sym import SymInt

#: probe calls between stop-event polls (keeps the common path cheap)
_STOP_POLL_PERIOD = 256


@dataclass(frozen=True)
class PathEntry:
    """One symbolic branch on the executed path (CREST's path element)."""

    site: int
    outcome: bool
    constraint: Constraint  # oriented to HOLD under this execution


@dataclass
class TraceResult:
    """Everything COMPI reads back from the focus process after one run."""

    vars: list[Var]
    values: dict[int, int]                 # vid → concrete value this run
    path: list[PathEntry]                  # constrained branches, in order
    coverage: CoverageMap
    mapping_rows: list[tuple[int, ...]]    # comm_index → global ranks by local rank
    event_count: int = 0                   # raw branch evaluations (incl. reduced)
    suppressed: int = 0                    # constraints dropped by reduction
    input_vids: dict[str, int] = field(default_factory=dict)

    @property
    def constraint_set_size(self) -> int:
        return len(self.path)

    def vars_by_kind(self, kind: str) -> list[Var]:
        return [v for v in self.vars if v.kind == kind]


class LightSink:
    """Coverage-only recorder for non-focus ranks (the ``ex2`` behaviour)."""

    heavy = False

    def __init__(self, global_rank: int = -1):
        self.global_rank = global_rank
        self.coverage = CoverageMap()
        self._stop: Optional[threading.Event] = None
        self._probe_calls = 0
        #: batched-probe hit arrays (``None`` = per-call recording).
        #: ``branch_hits[2*sid + outcome]`` is set by the probe fast path
        #: for concrete-only evaluations; :meth:`flush` folds both arrays
        #: into the coverage map.  See docs/PERFORMANCE.md.
        self.branch_hits: Optional[bytearray] = None
        self.func_hits: Optional[bytearray] = None

    # -- runtime wiring -------------------------------------------------
    def bind_stop_event(self, event: threading.Event) -> None:
        self._stop = event

    def preallocate(self, n_sites: int, n_functions: int) -> None:
        """Enable batched probes: one byte per static branch direction
        and per function.  Site/function IDs are deterministic and dense
        (see :class:`~repro.instrument.sites.SiteRegistry`), so the probe
        fast path indexes with ``2*sid + outcome`` / ``fid`` directly.
        Implicit sites (negative IDs) never take the fast path."""
        self.branch_hits = bytearray(2 * n_sites)
        self.func_hits = bytearray(n_functions)

    def flush(self) -> None:
        """Fold the batched hit arrays into the coverage map.

        Called once per run by the harvest (and by :meth:`serialize` /
        :meth:`result`); idempotent, and a no-op for per-call sinks.
        The resulting coverage map is identical to what per-call
        recording would have produced — the arrays only change *when*
        branches are recorded, never *what*.
        """
        hits = self.branch_hits
        if hits is not None:
            add = self.coverage.branches.add
            for idx in range(len(hits)):
                if hits[idx]:
                    add((idx >> 1, bool(idx & 1)))
        fhits = self.func_hits
        if fhits is not None:
            fadd = self.coverage.functions.add
            for fid in range(len(fhits)):
                if fhits[fid]:
                    fadd(fid)

    def _poll_stop(self) -> None:
        self._probe_calls += 1
        if (self._probe_calls % _STOP_POLL_PERIOD == 0
                and self._stop is not None and self._stop.is_set()):
            raise MpiShutdown(f"rank {self.global_rank} cancelled in probe")

    # -- probes ----------------------------------------------------------
    def on_branch(self, site: int, outcome: bool,
                  constraint: Optional[Constraint] = None) -> None:
        self._poll_stop()
        self.coverage.add_branch(site, outcome)

    def on_function(self, fid: int) -> None:
        self.coverage.add_function(fid)

    # -- marking: everything stays concrete ------------------------------
    def mark_input(self, name: str, value: int, cap: Optional[int] = None,
                   floor: Optional[int] = None) -> int:
        return int(value)

    def on_comm_rank(self, comm: Any, value: int) -> int:
        return value

    def on_comm_size(self, comm: Any, value: int) -> int:
        return value

    # -- log accounting ---------------------------------------------------
    def serialize(self) -> bytes:
        """The bytes this rank would write for the driver (Table IV)."""
        self.flush()
        lines = [f"{s},{int(d)}" for (s, d) in sorted(self.coverage.branches)]
        lines += [f"f{fid}" for fid in sorted(self.coverage.functions)]
        return ("\n".join(lines) + "\n").encode()


class HeavySink(LightSink):
    """Full concolic recorder for the focus rank (the ``ex1`` behaviour)."""

    heavy = True

    def __init__(self, global_rank: int = -1, reduction: bool = True,
                 log_events: bool = True, mark_mpi: bool = True,
                 mark_comm_sizes: bool = False):
        super().__init__(global_rank)
        #: when False, rank/size stay concrete — "standard concolic
        #: testing" without MPI semantics (the paper's No_Fwk baseline)
        self.mark_mpi = mark_mpi
        #: extension: also mark non-default communicator sizes (the paper
        #: explicitly leaves these unmarked, §III-A)
        self.mark_comm_sizes = mark_comm_sizes
        self.reduction = ReductionFilter(enabled=reduction)
        self.vars: list[Var] = []
        self.values: dict[int, int] = {}
        self.path: list[PathEntry] = []
        self.mapping_rows: list[tuple[int, ...]] = []
        self._comm_index: dict[int, int] = {}   # comm_id → mapping row index
        self._input_vars: dict[str, Var] = {}   # inputs reuse one var per name
        self._implicit_sites: dict[tuple, int] = {}
        self._implicit_next = -1                # implicit sites get negative ids
        self.event_count = 0
        self.log_events = log_events
        self._event_log: list[tuple[int, bool]] = []

    # -- variable creation ------------------------------------------------
    def _new_var(self, name: str, kind: str, value: int,
                 cap: Optional[int] = None, floor: Optional[int] = None,
                 comm_index: Optional[int] = None,
                 comm_size: Optional[int] = None) -> Var:
        var = Var(vid=len(self.vars), name=name, kind=kind, cap=cap,
                  floor=floor, comm_index=comm_index, comm_size=comm_size)
        self.vars.append(var)
        self.values[var.vid] = int(value)
        return var

    def mark_input(self, name: str, value: int, cap: Optional[int] = None,
                   floor: Optional[int] = None) -> SymInt:
        """Developer marking (``COMPI_int`` / ``COMPI_int_with_limit`` /
        the ranged width-typed variants)."""
        var = self._input_vars.get(name)
        if var is None:
            var = self._new_var(name, KIND_INPUT, value, cap=cap, floor=floor)
            self._input_vars[name] = var
        return SymInt.from_var(var, int(value))

    def on_comm_rank(self, comm: Any, value: int) -> Any:
        if not self.mark_mpi:
            return value
        if comm.is_world:
            var = self._new_var("rank_world", KIND_RW, value)
        else:
            idx = self._register_comm(comm)
            var = self._new_var(f"rank_comm{idx}", KIND_RC, value,
                                comm_index=idx, comm_size=comm.Get_size())
        return SymInt.from_var(var, value)

    def on_comm_size(self, comm: Any, value: int) -> Any:
        if not self.mark_mpi:
            return value
        if comm.is_world:
            var = self._new_var("size_world", KIND_SW, value)
            return SymInt.from_var(var, value)
        idx = self._register_comm(comm)
        if self.mark_comm_sizes:
            # extension beyond the paper: local sizes become symbolic too
            var = self._new_var(f"size_comm{idx}", KIND_SC, value,
                                comm_index=idx, comm_size=value)
            return SymInt.from_var(var, value)
        # paper behaviour (§III-A): non-default sizes stay concrete
        return value

    def _register_comm(self, comm: Any) -> int:
        idx = self._comm_index.get(comm.comm_id)
        if idx is None:
            idx = len(self.mapping_rows)
            self._comm_index[comm.comm_id] = idx
            # the local-rank → global-rank mapping row (§III-D, Table II):
            # comm.group is already ordered by local rank
            self.mapping_rows.append(tuple(comm.group))
        return idx

    # -- probes ------------------------------------------------------------
    def on_branch(self, site: int, outcome: bool,
                  constraint: Optional[Constraint] = None) -> None:
        self._poll_stop()
        outcome = bool(outcome)
        self.event_count += 1
        self.coverage.add_branch(site, outcome)
        if self.log_events:
            self._event_log.append((site, outcome))
        if constraint is not None and self.reduction.should_record(site, outcome):
            self.path.append(PathEntry(site, outcome, constraint))

    def on_implicit_branch(self, key: tuple, outcome: bool,
                           constraint: Constraint) -> None:
        """A SymBool forced outside a probe (short-circuit &&/|| analog)."""
        sid = self._implicit_sites.get(key)
        if sid is None:
            sid = self._implicit_next
            self._implicit_next -= 1
            self._implicit_sites[key] = sid
        self.on_branch(sid, outcome, constraint)

    # -- results -------------------------------------------------------------
    def result(self) -> TraceResult:
        self.flush()
        return TraceResult(
            vars=list(self.vars),
            values=dict(self.values),
            path=list(self.path),
            coverage=self.coverage,
            mapping_rows=list(self.mapping_rows),
            event_count=self.event_count,
            suppressed=self.reduction.suppressed,
            input_vids={n: v.vid for n, v in self._input_vars.items()},
        )

    def serialize(self) -> bytes:
        parts = [super().serialize()]
        for var in self.vars:
            parts.append(
                f"var {var.vid} {var.name} {var.kind} = "
                f"{self.values[var.vid]}\n".encode())
        for pe in self.path:
            parts.append(f"pc {pe.site} {int(pe.outcome)} {pe.constraint!r}\n".encode())
        if self.log_events:
            for s, d in self._event_log:
                parts.append(f"ev {s} {int(d)}\n".encode())
        return b"".join(parts)
