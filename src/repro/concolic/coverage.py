"""Branch coverage accounting across executions and across ranks.

The paper's metric: a *branch* is one direction of one conditional —
``[condition_id][T/F]`` — and coverage is the number of distinct branches
executed at least once over the whole testing campaign, merged across
**all** processes of every test (the "all recorders" half of COMPI's
framework).

"Reachable branches" (Table III) are estimated the way CREST's FAQ
suggests: sum the static branches of every *function encountered during
testing*; function entries are recorded by the instrumentation alongside
branch outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

Branch = tuple[int, bool]  # (site id, outcome)


@dataclass
class CoverageMap:
    """A merged set of covered branches and entered functions."""

    branches: set[Branch] = field(default_factory=set)
    functions: set[int] = field(default_factory=set)

    def add_branch(self, site: int, outcome: bool) -> None:
        self.branches.add((site, bool(outcome)))

    def add_function(self, fid: int) -> None:
        self.functions.add(fid)

    def merge(self, other: "CoverageMap") -> None:
        self.branches |= other.branches
        self.functions |= other.functions

    def merged_with(self, other: "CoverageMap") -> "CoverageMap":
        out = CoverageMap(set(self.branches), set(self.functions))
        out.merge(other)
        return out

    def copy(self) -> "CoverageMap":
        return CoverageMap(set(self.branches), set(self.functions))

    @property
    def covered_branches(self) -> int:
        return len(self.branches)

    @property
    def covered_static(self) -> int:
        """Covered branches at *static* sites only (sid >= 0).

        Implicit sites (negative ids, from symbolic bools forced outside
        probes) have no static counterpart, so any rate against a static
        total must exclude them or it can exceed 100%.
        """
        return sum(1 for (s, _d) in self.branches if s >= 0)

    def covered_sites(self) -> set[int]:
        return {s for (s, _d) in self.branches}

    def rate(self, total_branches: int) -> float:
        """Static-site coverage as a fraction of ``total_branches``."""
        if total_branches <= 0:
            return 0.0
        return self.covered_static / total_branches

    def reachable_branches(self, branches_per_function: Mapping[int, int]) -> int:
        """CREST-FAQ reachable estimate: 2 × (branch sites of every
        function entered at least once during testing)."""
        return sum(branches_per_function.get(fid, 0) for fid in self.functions)

    def __len__(self) -> int:
        return len(self.branches)

    def __contains__(self, branch: Branch) -> bool:
        return branch in self.branches


def merge_all(maps: Iterable[CoverageMap]) -> CoverageMap:
    """Union of many coverage maps (the all-recorders merge)."""
    out = CoverageMap()
    for m in maps:
        out.merge(m)
    return out
