"""Concolic proxy values: concrete execution with a symbolic shadow.

A :class:`SymInt` carries a concrete Python ``int`` (driving real
execution) plus a :class:`~repro.concolic.expr.LinearExpr` shadow.
Linear operations propagate the shadow exactly; non-linear operations
apply *concolic simplification* — the rule CREST/CUTE use — replacing
enough operands by their concrete values to stay linear:

* ``sym * sym``    → the right operand's concrete value becomes the
  coefficient of the left (stays symbolic in the left operand);
* ``sym // any``, ``sym % any``, ``sym ** any``, float mixes
  → the result is fully concretized (linear arithmetic cannot express
  them), matching CREST's behaviour for unsupported operators.

A :class:`SymBool` carries a concrete ``bool`` plus an optional
:class:`~repro.concolic.expr.Constraint`.  Forcing it with ``bool(...)``
*outside* an instrumented branch probe records an **implicit branch** at
the forcing source location — the analog of CIL normalizing short-circuit
``&&``/``||`` into nested ``if`` statements.
"""

from __future__ import annotations

import sys
from typing import Any, Optional, Union

from .context import current_sink
from .expr import Constraint, LinearExpr, Var, make_comparison

IntLike = Union[int, "SymInt"]


def _as_linear(value: Any) -> Optional[LinearExpr]:
    """Linear shadow of an operand, or ``None`` if it has none (float...)."""
    if isinstance(value, SymInt):
        return value.lin
    if isinstance(value, bool):  # bool before int: True/False are ints too
        return LinearExpr.constant(int(value))
    if isinstance(value, int):
        return LinearExpr.constant(value)
    return None


def concrete(value: Any) -> Any:
    """Strip the symbolic shadow off a value (deep for SymInt/SymBool)."""
    if isinstance(value, SymInt):
        return value.concrete
    if isinstance(value, SymBool):
        return value.concrete
    return value


class SymInt:
    """Concolic integer: concrete value + linear symbolic shadow."""

    __slots__ = ("concrete", "lin")

    def __init__(self, concrete_value: int, lin: Optional[LinearExpr] = None):
        self.concrete = int(concrete_value)
        self.lin = lin if lin is not None else LinearExpr.constant(self.concrete)

    @staticmethod
    def from_var(var: Var, value: int) -> "SymInt":
        return SymInt(value, LinearExpr.variable(var.vid))

    @property
    def is_symbolic(self) -> bool:
        return not self.lin.is_const

    # ------------------------------------------------------------------
    # linear arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> Any:
        lin = _as_linear(other)
        if lin is None:
            return self.concrete + other  # float etc: drop shadow
        return SymInt(self.concrete + concrete(other), self.lin.add(lin))

    __radd__ = __add__

    def __sub__(self, other: Any) -> Any:
        lin = _as_linear(other)
        if lin is None:
            return self.concrete - other
        return SymInt(self.concrete - concrete(other), self.lin.sub(lin))

    def __rsub__(self, other: Any) -> Any:
        lin = _as_linear(other)
        if lin is None:
            return other - self.concrete
        return SymInt(concrete(other) - self.concrete, lin.sub(self.lin))

    def __mul__(self, other: Any) -> Any:
        lin = _as_linear(other)
        if lin is None:
            return self.concrete * other
        oc = concrete(other)
        if lin.is_const:
            return SymInt(self.concrete * oc, self.lin.scale(oc))
        if self.lin.is_const:
            return SymInt(self.concrete * oc, lin.scale(self.concrete))
        # sym * sym: concolic simplification — concretize the right operand
        return SymInt(self.concrete * oc, self.lin.scale(oc))

    __rmul__ = __mul__

    def __neg__(self) -> "SymInt":
        return SymInt(-self.concrete, self.lin.scale(-1))

    def __pos__(self) -> "SymInt":
        return self

    # ------------------------------------------------------------------
    # non-linear: concretize (CREST drops symbolic info for these)
    # ------------------------------------------------------------------
    def __floordiv__(self, other: Any) -> Any:
        return self.concrete // concrete(other)

    def __rfloordiv__(self, other: Any) -> Any:
        return concrete(other) // self.concrete

    def __mod__(self, other: Any) -> Any:
        return self.concrete % concrete(other)

    def __rmod__(self, other: Any) -> Any:
        return concrete(other) % self.concrete

    def __truediv__(self, other: Any) -> Any:
        return self.concrete / concrete(other)

    def __rtruediv__(self, other: Any) -> Any:
        return concrete(other) / self.concrete

    def __pow__(self, other: Any) -> Any:
        return self.concrete ** concrete(other)

    def __rpow__(self, other: Any) -> Any:
        return concrete(other) ** self.concrete

    def __abs__(self) -> int:
        return abs(self.concrete)

    def __lshift__(self, other: Any) -> Any:
        return self.concrete << concrete(other)

    def __rshift__(self, other: Any) -> Any:
        return self.concrete >> concrete(other)

    def __and__(self, other: Any) -> Any:
        return self.concrete & concrete(other)

    __rand__ = __and__

    def __or__(self, other: Any) -> Any:
        return self.concrete | concrete(other)

    __ror__ = __or__

    def __xor__(self, other: Any) -> Any:
        return self.concrete ^ concrete(other)

    __rxor__ = __xor__

    # ------------------------------------------------------------------
    # comparisons → SymBool
    # ------------------------------------------------------------------
    def _compare(self, other: Any, op: str, concrete_result: bool) -> "SymBool":
        lin = _as_linear(other)
        if lin is None:
            return SymBool(concrete_result, None)
        c = make_comparison(self.lin, op, lin)
        return SymBool(concrete_result, None if c.is_trivial else c)

    def __lt__(self, other: Any) -> "SymBool":
        return self._compare(other, "<", self.concrete < concrete(other))

    def __le__(self, other: Any) -> "SymBool":
        return self._compare(other, "<=", self.concrete <= concrete(other))

    def __gt__(self, other: Any) -> "SymBool":
        return self._compare(other, ">", self.concrete > concrete(other))

    def __ge__(self, other: Any) -> "SymBool":
        return self._compare(other, ">=", self.concrete >= concrete(other))

    def __eq__(self, other: Any) -> Any:  # type: ignore[override]
        if not isinstance(other, (int, SymInt)):
            return NotImplemented
        return self._compare(other, "==", self.concrete == concrete(other))

    def __ne__(self, other: Any) -> Any:  # type: ignore[override]
        if not isinstance(other, (int, SymInt)):
            return NotImplemented
        return self._compare(other, "!=", self.concrete != concrete(other))

    # ------------------------------------------------------------------
    # coercions
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        # C's `if (x)` is `x != 0`: record it as an implicit branch.
        if self.is_symbolic:
            sb = self._compare(0, "!=", self.concrete != 0)
            return bool(sb)
        return self.concrete != 0

    def __index__(self) -> int:
        # range(), indexing, slicing: use the concrete value silently.
        return self.concrete

    def __int__(self) -> int:
        return self.concrete

    def __float__(self) -> float:
        return float(self.concrete)

    def __hash__(self) -> int:
        return hash(self.concrete)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_symbolic:
            return f"SymInt({self.concrete}, {self.lin!r})"
        return f"SymInt({self.concrete})"


class SymBool:
    """Concolic boolean: concrete outcome + the constraint it witnessed."""

    __slots__ = ("concrete", "constraint")

    def __init__(self, concrete_value: bool, constraint: Optional[Constraint]):
        self.concrete = bool(concrete_value)
        #: the constraint satisfied by the current execution, oriented so
        #: that it *holds* (i.e. already negated when concrete is False)
        self.constraint = None
        if constraint is not None:
            self.constraint = constraint if self.concrete else constraint.negated()

    @property
    def is_symbolic(self) -> bool:
        return self.constraint is not None

    def observe(self, site: int) -> bool:
        """Record this evaluation against branch ``site`` (probe entry)."""
        sink = current_sink()
        if sink is not None and hasattr(sink, "on_branch"):
            sink.on_branch(site, self.concrete, self.constraint)
        return self.concrete

    def __bool__(self) -> bool:
        # Forced outside a probe (short-circuit and/or, assert, plain
        # assignment use): record an implicit branch at the caller.
        if self.constraint is not None:
            sink = current_sink()
            if sink is not None and hasattr(sink, "on_implicit_branch"):
                # Site identity is (file, function, line).  Deliberately no
                # bytecode offset: CPython 3.11 compiles a while-loop's test
                # at two offsets (entry check + loop-back check) and those
                # must count as ONE conditional for constraint-set reduction.
                f = sys._getframe(1)
                sink.on_implicit_branch(
                    (f.f_code.co_filename, f.f_code.co_name, f.f_lineno),
                    self.concrete, self.constraint)
        return self.concrete

    def __invert__(self) -> "SymBool":
        # The inverted condition is witnessed by the *same* execution, so
        # the held constraint is unchanged; only the concrete flips.
        inv = SymBool(not self.concrete, None)
        inv.constraint = self.constraint
        return inv

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymBool({self.concrete}, {self.constraint!r})"
