"""Developer marking interface (the ``CREST_int`` / ``COMPI_int_with_limit``
analog, §II-A and §IV-A).

Target programs mark their execution-path-dominant input variables::

    n = compi_int(args["n"], "n")
    nb = compi_int_with_limit(args["nb"], "nb", cap=300)

On the focus rank (heavy sink installed) the value comes back wrapped in a
:class:`~repro.concolic.sym.SymInt`, and the cap is registered with the
variable so COMPI feeds ``x <= cap`` to the solver alongside the path
condition.  On non-focus ranks (light or no sink) the plain integer comes
back — marking costs nothing there, which is the point of two-way
instrumentation.

COMPI does not handle floating-point variables (§VI); targets take float
parameters as unmarked constants.
"""

from __future__ import annotations

from typing import Any, Union

from .context import current_sink
from .sym import SymInt


def compi_int(value: Any, name: str) -> Union[int, SymInt]:
    """Mark ``value`` (an input read by the program) as symbolic."""
    sink = current_sink()
    if sink is not None and hasattr(sink, "mark_input"):
        return sink.mark_input(name, int(value))
    return int(value)


def compi_int_with_limit(value: Any, name: str, cap: int) -> Union[int, SymInt]:
    """Mark ``value`` symbolic with an input cap (``value`` may exceed the
    cap concretely — the cap constrains *future generated* inputs)."""
    sink = current_sink()
    if sink is not None and hasattr(sink, "mark_input"):
        return sink.mark_input(name, int(value), cap=int(cap))
    return int(value)


def compi_int_with_range(value: Any, name: str, lo: int,
                         hi: int) -> Union[int, SymInt]:
    """Mark with a two-sided bound — generated inputs stay in [lo, hi]."""
    if int(lo) > int(hi):
        raise ValueError(f"{name}: empty range [{lo}, {hi}]")
    sink = current_sink()
    if sink is not None and hasattr(sink, "mark_input"):
        return sink.mark_input(name, int(value), cap=int(hi), floor=int(lo))
    return int(value)


def compi_char(value: Any, name: str) -> Union[int, SymInt]:
    """CREST_char analog: a signed 8-bit input."""
    return compi_int_with_range(value, name, -128, 127)


def compi_uchar(value: Any, name: str) -> Union[int, SymInt]:
    """CREST_unsigned_char analog: an unsigned 8-bit input."""
    return compi_int_with_range(value, name, 0, 255)


def compi_short(value: Any, name: str) -> Union[int, SymInt]:
    """CREST_short analog: a signed 16-bit input."""
    return compi_int_with_range(value, name, -(2 ** 15), 2 ** 15 - 1)


def compi_ushort(value: Any, name: str) -> Union[int, SymInt]:
    """CREST_unsigned_short analog: an unsigned 16-bit input."""
    return compi_int_with_range(value, name, 0, 2 ** 16 - 1)
