"""Concolic execution core: symbolic proxies, traces, coverage, reduction."""

from .context import current_sink, set_sink, sink_scope
from .coverage import CoverageMap, merge_all
from .expr import (KIND_INPUT, KIND_RC, KIND_RW, KIND_SC, KIND_SW,
                   Constraint, LinearExpr, Var, constraint_vars,
                   make_comparison)
from .marking import (compi_char, compi_int, compi_int_with_limit,
                      compi_int_with_range, compi_short, compi_uchar,
                      compi_ushort)
from .reduction import ReductionFilter
from .sym import SymBool, SymInt, concrete
from .trace import HeavySink, LightSink, PathEntry, TraceResult

__all__ = [
    "Constraint", "CoverageMap", "HeavySink", "KIND_INPUT", "KIND_RC",
    "KIND_RW", "KIND_SC", "KIND_SW", "LightSink", "LinearExpr", "PathEntry",
    "ReductionFilter", "SymBool", "SymInt", "TraceResult", "Var",
    "compi_char", "compi_int", "compi_int_with_limit",
    "compi_int_with_range", "compi_short", "compi_uchar", "compi_ushort",
    "concrete", "constraint_vars", "current_sink", "make_comparison",
    "merge_all", "set_sink", "sink_scope",
]
