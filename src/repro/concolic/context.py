"""Thread-local recorder ("sink") context.

Each simulated rank runs in its own thread; the rank's recorder — a heavy
concolic trace on the focus process, a light coverage recorder elsewhere —
is installed in thread-local storage for the duration of the rank's entry
point.  Symbolic proxies and instrumentation probes look it up here, which
is what lets one in-process job mix heavily- and lightly-instrumented
ranks (the paper's two-way instrumentation).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

_tls = threading.local()

#: The thread-local store itself.  The instrumented-probe fast paths
#: (:func:`repro.instrument.loader.make_probes`) read ``tls.sink``
#: directly — one ``getattr`` instead of a function call — because they
#: run once per branch evaluation of every instrumented target.  All
#: other code should go through the functions below.
tls = _tls


def current_sink() -> Optional[Any]:
    """The recorder attached to the calling thread, or ``None``."""
    return getattr(_tls, "sink", None)


def set_sink(sink: Optional[Any]) -> None:
    """Install (or clear, with None) the calling thread's recorder."""
    _tls.sink = sink


@contextmanager
def sink_scope(sink: Optional[Any]) -> Iterator[None]:
    """Install ``sink`` for the duration of a ``with`` block."""
    prev = current_sink()
    set_sink(sink)
    try:
        yield
    finally:
        set_sink(prev)
