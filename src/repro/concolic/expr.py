"""Symbolic expression layer: variables, linear expressions, constraints.

COMPI (via CREST) reasons in *linear integer arithmetic*: every symbolic
value is a linear combination of marked variables, and every branch
condition contributes a constraint ``linear-expression ⋈ 0``.  Non-linear
operations are *concolically simplified* — one operand is replaced by its
concrete value — which is the defining trade-off of concolic testing.

The classes here are immutable values; the mutable recording state lives
in :mod:`repro.concolic.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

# Variable kinds (paper, Table I)
KIND_INPUT = "input"   # developer-marked input variable
KIND_RW = "rw"         # global rank in MPI_COMM_WORLD
KIND_RC = "rc"         # local rank in a non-default communicator
KIND_SW = "sw"         # size of MPI_COMM_WORLD
#: extension beyond the paper (§III-A: "So far COMPI does not mark
#: variables representing the size of communicators other than the
#: default"): local communicator sizes, enabled by config flag
KIND_SC = "sc"


@dataclass(frozen=True)
class Var:
    """One symbolic variable instance within a single execution."""

    vid: int
    name: str
    kind: str = KIND_INPUT
    #: input capping bound (inclusive), if marked with a limit
    cap: Optional[int] = None
    #: lower bound (inclusive) for range/width-typed markings — the
    #: CREST_char/CREST_short analog (caps bound only from above)
    floor: Optional[int] = None
    #: index of the non-default communicator (for ``rc`` variables)
    comm_index: Optional[int] = None
    #: concrete size of that communicator at marking time (``s_i``)
    comm_size: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}#{self.vid}({self.kind})"


class LinearExpr:
    """Immutable linear form ``sum(coeffs[v] * v) + const`` over var ids."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Mapping[int, int]] = None, const: int = 0):
        # drop zero coefficients for canonicity
        self.coeffs: dict[int, int] = {v: c for v, c in (coeffs or {}).items() if c != 0}
        self.const = int(const)

    # -- constructors --------------------------------------------------
    @staticmethod
    def constant(c: int) -> "LinearExpr":
        return LinearExpr({}, c)

    @staticmethod
    def variable(vid: int) -> "LinearExpr":
        return LinearExpr({vid: 1}, 0)

    # -- predicates ----------------------------------------------------
    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def vars(self) -> frozenset[int]:
        return frozenset(self.coeffs)

    # -- arithmetic ----------------------------------------------------
    def add(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return LinearExpr(coeffs, self.const + other.const)

    def sub(self, other: "LinearExpr") -> "LinearExpr":
        return self.add(other.scale(-1))

    def scale(self, k: int) -> "LinearExpr":
        if k == 0:
            return LinearExpr.constant(0)
        return LinearExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)

    def shift(self, k: int) -> "LinearExpr":
        return LinearExpr(self.coeffs, self.const + k)

    # -- evaluation ----------------------------------------------------
    def evaluate(self, assignment: Mapping[int, int]) -> int:
        return self.const + sum(c * assignment[v] for v, c in self.coeffs.items())

    # -- plumbing --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, LinearExpr)
                and self.coeffs == other.coeffs and self.const == other.const)

    def __hash__(self) -> int:
        return hash((frozenset(self.coeffs.items()), self.const))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = [f"{c:+d}*v{v}" for v, c in sorted(self.coeffs.items())]
        terms.append(f"{self.const:+d}")
        return "".join(terms) or "0"


# Comparison operators and their negations / swaps.
OPS = ("<", "<=", ">", ">=", "==", "!=")
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_EVAL = {
    "<": lambda v: v < 0,
    "<=": lambda v: v <= 0,
    ">": lambda v: v > 0,
    ">=": lambda v: v >= 0,
    "==": lambda v: v == 0,
    "!=": lambda v: v != 0,
}


@dataclass(frozen=True)
class Constraint:
    """``lhs ⋈ 0`` over integer variables."""

    lhs: LinearExpr
    op: str

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")

    def negated(self) -> "Constraint":
        return Constraint(self.lhs, _NEGATE[self.op])

    def vars(self) -> frozenset[int]:
        return self.lhs.vars()

    def evaluate(self, assignment: Mapping[int, int]) -> bool:
        return _EVAL[self.op](self.lhs.evaluate(assignment))

    @property
    def is_trivial(self) -> bool:
        """Constraint with no variables (always true or always false)."""
        return self.lhs.is_const

    def normalized(self) -> list["Constraint"]:
        """Rewrite into the solver's canonical ops {<=, ==, !=}.

        Integer-only: strict inequalities absorb into the constant.
        ``a < 0``  → ``a + 1 <= 0``;  ``a > 0`` → ``-a + 1 <= 0``;
        ``a >= 0`` → ``-a <= 0``.
        """
        lhs, op = self.lhs, self.op
        if op == "<":
            return [Constraint(lhs.shift(1), "<=")]
        if op == ">":
            return [Constraint(lhs.scale(-1).shift(1), "<=")]
        if op == ">=":
            return [Constraint(lhs.scale(-1), "<=")]
        return [self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lhs!r} {self.op} 0)"


def make_comparison(lhs: LinearExpr, op: str, rhs: LinearExpr) -> Constraint:
    """Build the constraint for ``lhs ⋈ rhs`` as ``(lhs - rhs) ⋈ 0``."""
    return Constraint(lhs.sub(rhs), op)


def constraint_vars(constraints: Iterable[Constraint]) -> frozenset[int]:
    """Union of the variable ids referenced by the constraints."""
    out: set[int] = set()
    for c in constraints:
        out |= c.vars()
    return frozenset(out)
