"""Plain-text reporting for campaigns (what the benchmarks print)."""

from __future__ import annotations

from typing import Iterable, Sequence

from .compi import CampaignResult


def campaign_summary(result: CampaignResult) -> str:
    """Human-readable multi-line summary of one campaign."""
    lines = [
        f"program            : {result.program_name}",
        f"iterations         : {len(result.iterations)}",
        f"wall time          : {result.wall_time:.2f}s",
        f"covered branches   : {result.covered}",
        f"total branches     : {result.total_branches}",
        f"reachable branches : {result.reachable_branches}",
        f"coverage rate      : {100 * result.coverage_rate:.1f}% of reachable",
        f"unique bugs        : {len(result.unique_bugs())}",
        f"divergences        : {result.divergences}",
        f"stragglers         : {result.stragglers}",
    ]
    s = result.solver
    if s is not None and s.solves:
        lines += [
            f"solver             : {s.solves} solves, "
            f"{s.nodes} nodes, {s.propagations} propagations, "
            f"{s.exhaustions} exhaustions",
            f"solver cache       : {s.cache_hits} hits, "
            f"{s.unsat_hits} unsat-hits, {s.cache_misses} misses "
            f"({100 * s.hit_rate:.1f}% hit rate)",
            f"solver latency     : {1000 * s.latency_ewma:.2f} ms EWMA, "
            f"avg slice {s.avg_slice:.1f} (max {s.max_slice})",
        ]
        if s.stale_hits:
            lines.append(f"stale cache hits   : {s.stale_hits} "
                         f"(model failed re-check; solved fresh)")
    sup = result.supervision
    if sup:
        if sup.get("sandboxed_runs") or sup.get("worker_kills"):
            lines.append(
                f"supervision        : {sup.get('sandboxed_runs', 0)} "
                f"sandboxed runs, {sup.get('worker_kills', 0)} worker kills, "
                f"{sup.get('pool_rebuilds', 0)} pool rebuilds"
                + (" (breaker OPEN)" if sup.get("breaker_open") else ""))
        if sup.get("quarantined"):
            lines.append(
                f"quarantine         : {sup['quarantined']} input(s) "
                f"quarantined, {sup.get('quarantine_skips', 0)} skips")
        if sup.get("unique_signatures"):
            lines.append(
                f"crash triage       : {sup['unique_signatures']} unique "
                f"signature(s), {sup.get('minimized_crashes', 0)} minimized "
                f"({sup.get('minimize_probes', 0)} probes)")
    pf = result.portfolio
    if pf and pf.get("arms"):
        lines.append(f"portfolio          : "
                     f"{len(pf['arms'])} arms, active={pf.get('active', '?')}"
                     f", exploration={pf.get('exploration', 0)}")
        for a in pf["arms"]:
            score = a.get("ucb_score")
            lines.append(
                f"  arm[{a['name']}]: {a['pulls']} iterations "
                f"({100 * a.get('share', 0):.1f}% share), "
                f"+{a['coverage_gained']} branches, "
                f"{a.get('solver_time', 0):.2f}s solver "
                f"({a.get('solver_solves', 0)} solves), "
                f"ucb={'—' if score is None else f'{score:.3f}'}")
    sch = result.schedules
    if sch:
        lines.append(
            f"schedules          : {sch.get('explored', 0)} explored "
            f"({sch.get('schedules_seen', 0)} distinct), "
            f"frontier {sch.get('frontier', 0)}, "
            f"{sch.get('decision_nodes', 0)} decision node(s)")
        if sch.get("divergences") or sch.get("fallbacks"):
            lines.append(
                f"  replay fidelity  : {sch.get('divergences', 0)} "
                f"divergence(s), {sch.get('fallbacks', 0)} quiesce "
                f"fallback(s)")
    if result.degraded_iterations:
        lines.append(f"degraded iterations: {result.degraded_iterations} "
                     f"(coverage-only; trace harvest failed)")
    if result.retries:
        lines.append(f"transient retries  : {result.retries}")
    if result.stragglers:
        lines.append(f"WARNING: {result.stragglers} hung rank thread(s) were "
                     f"abandoned and still hold an OS thread each; a long "
                     f"campaign accumulating these may exhaust thread limits")
    for b in result.unique_bugs():
        lines.append(f"  bug[{b.kind}] rank {b.global_rank}: {b.message[:90]}")
        lines.append(f"    inputs: {b.testcase.describe()}")
        if b.schedule:
            lines.append(f"    schedule: {b.schedule}")
        if b.pending_ops:
            lines.append("    pending: " + ", ".join(
                f"rank {r} in {op}" for r, op in b.pending_ops))
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table used by every benchmark's output."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def size_histogram(sizes: Sequence[int],
                   edges: Sequence[int] = (0, 100, 300, 500, 1000, 2000, 5000,
                                           10 ** 9)) -> list[tuple[str, int]]:
    """Bucket constraint-set sizes for the Fig. 9 distribution."""
    out = []
    for lo, hi in zip(edges, edges[1:]):
        label = f"[{lo},{hi})" if hi < 10 ** 9 else f">={lo}"
        out.append((label, sum(1 for s in sizes if lo <= s < hi)))
    return out
