"""Conflict resolution and next-test setup derivation (§III-C, §III-D).

After an incremental solve, the rank-typed variables (``rw``, ``rc``) may
disagree about which process the next focus should be: the solver only
re-solved the dependency slice, so stale variables keep old values while
the variable in the negated constraint moved.  The paper's rule: trust
the **most up-to-date value** — precisely the variables reported as
*changed* by the incremental solver.

* an ``rw`` change *is* the new focus's global rank;
* an ``rc`` change is a *local* rank and is translated through the
  mapping table the focus recorded at runtime (Table II): row =
  communicator index, column = local rank, cell = global rank;
* no rank change → the focus stays.

The derived world-size value (``sw``) becomes the next test's process
count, and the focus is clamped into it (guards around mapping-table
misses keep the tool robust where the paper assumes well-formed data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..concolic.expr import KIND_RC, KIND_RW, KIND_SW
from ..concolic.trace import TraceResult
from .config import CompiConfig


@dataclass(frozen=True)
class TestSetup:
    """The launch-time half of a test case (§III-D)."""

    #: not a pytest class, despite the name
    __test__ = False

    nprocs: int
    focus: int

    def __post_init__(self) -> None:
        if not (0 <= self.focus < self.nprocs):
            raise ValueError(f"focus {self.focus} outside 0..{self.nprocs - 1}")


def resolve_setup(trace: TraceResult, assignment: dict[int, int],
                  changed: set[int], current: TestSetup,
                  config: CompiConfig) -> TestSetup:
    """Derive the next (nprocs, focus) from a solved assignment."""
    # --- number of processes: the derived sw value ---------------------
    nprocs = current.nprocs
    for var in trace.vars_by_kind(KIND_SW):
        if var.vid in assignment:
            nprocs = int(assignment[var.vid])
            break
    nprocs = max(1, min(nprocs, config.nprocs_cap))

    # --- focus: most up-to-date rank value ------------------------------
    focus = current.focus
    rw_changed = [v for v in trace.vars_by_kind(KIND_RW) if v.vid in changed]
    rc_changed = [v for v in trace.vars_by_kind(KIND_RC) if v.vid in changed]
    if rw_changed:
        focus = int(assignment[rw_changed[0].vid])
    elif rc_changed:
        var = rc_changed[0]
        local_rank = int(assignment[var.vid])
        row = (trace.mapping_rows[var.comm_index]
               if var.comm_index is not None and
               var.comm_index < len(trace.mapping_rows) else ())
        if 0 <= local_rank < len(row):
            focus = int(row[local_rank])
        # else: mapping miss — the communicator layout will differ in the
        # next run anyway; keep the current focus (robustness guard)

    focus = max(0, min(focus, nprocs - 1))
    return TestSetup(nprocs=nprocs, focus=focus)
