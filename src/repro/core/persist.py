"""Campaign persistence: JSONL logs of iterations, bugs, and coverage.

The paper's work flow logs symbolic execution history "in a file" after
each execution and reads it back to drive the next test (§I-A); the tool
also "logs the derived error-inducing input for further analysis" (§V).
This module provides the durable form of both: a streaming JSONL log a
campaign can write as it runs, and a loader that reconstructs enough
state to analyse or resume a campaign offline.

Crash safety:

* the log opens in ``"x"`` mode by default — it refuses to clobber an
  existing file (pass ``mode="w"`` to overwrite, ``mode="a"`` to append
  for a resumed campaign);
* writes are flushed per record and ``fsync``'d every ``fsync_every``
  records and on close, so a killed campaign loses at most the tail;
* the reader tolerates a truncated *final* line (the one a crash can cut
  mid-record); a corrupt line anywhere else is still an error.

Format: one JSON object per line, discriminated by ``"type"``:

* ``meta``      — program name, config snapshot, totals
* ``iteration`` — one IterationRecord
* ``bug``       — one BugRecord with its error-inducing inputs
* ``cov``        — newly covered branches this iteration (resume delta)
* ``solver``     — cumulative solver/cache telemetry (end of campaign)
* ``quarantine`` — one input quarantined after repeated worker kills
  (written with the iteration that confirmed the kill; honored by every
  subsequent resume)
* ``supervision``— supervision/triage telemetry (end of campaign)
* ``portfolio``  — per-arm portfolio telemetry: pulls, budget share,
  coverage gained, solver time, UCB score (end of campaign; only
  written by portfolio campaigns)
* ``coverage``   — final covered branch list (written once at the end)

Exact-state resume additionally uses a pickle checkpoint *sidecar*
(``<log>.ckpt``, written atomically): the JSONL log is the durable,
human-readable record, while the checkpoint carries the full mutable
campaign state (search tree, solver, RNG streams) that JSONL cannot.

The staged engine (:mod:`repro.engine`) drives both through a collector
hook: iterations commit strictly in serial order under every executor,
so the log and the checkpoint written after iteration *n* are identical
whether the test ran inline or speculatively in a worker pool — killing
a parallel campaign mid-batch and resuming reproduces the uninterrupted
serial run exactly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from pathlib import Path
from typing import Any, Iterator, Optional, TextIO, Union

from .atomicio import atomic_write_bytes, fsync_dir, read_jsonl
from .compi import BugRecord, CampaignResult, IterationRecord
from .config import CompiConfig
from .conflicts import TestSetup
from .testcase import TestCase


class CampaignLog:
    """Streaming writer for campaign telemetry.

    ``mode`` is ``"x"`` (create, refuse to overwrite — the default),
    ``"w"`` (explicit overwrite) or ``"a"`` (append, for resume).
    """

    def __init__(self, path: Union[str, Path], mode: str = "x",
                 fsync_every: int = 32):
        if mode not in ("x", "w", "a"):
            raise ValueError(f"mode must be 'x', 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.fsync_every = max(1, int(fsync_every))
        self._fh: Optional[TextIO] = None
        self._since_sync = 0

    def __enter__(self) -> "CampaignLog":
        if self.mode == "x" and self.path.exists():
            raise FileExistsError(
                f"campaign log {self.path} already exists; pass mode='w' to "
                f"overwrite or mode='a' to append (resume)")
        open_mode = "a" if self.mode == "a" else "w"
        existed = self.path.exists()
        self._fh = self.path.open(open_mode, encoding="utf-8")
        if not existed:
            # make the new log's directory entry durable up front: a crash
            # right after open must not leave records in an unnamed file
            fsync_dir(self.path.parent)
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def sync(self) -> None:
        """Force the log to disk (flush + fsync)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._since_sync = 0

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            raise RuntimeError("CampaignLog used outside its context")
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()

    def write_meta(self, program_name: str, config: CompiConfig,
                   total_branches: int) -> None:
        self._write({"type": "meta", "program": program_name,
                     "config": dataclasses.asdict(config),
                     "total_branches": total_branches})

    def write_iteration(self, rec: IterationRecord) -> None:
        self._write({"type": "iteration", **dataclasses.asdict(rec)})

    def write_bug(self, bug: BugRecord) -> None:
        self._write({
            "type": "bug", "kind": bug.kind, "message": bug.message,
            "global_rank": bug.global_rank, "iteration": bug.iteration,
            "location": bug.location,
            "signature": bug.signature,
            "inputs": dict(bug.testcase.inputs),
            "nprocs": bug.testcase.setup.nprocs,
            "focus": bug.testcase.setup.focus,
            "schedule": bug.schedule,
            "pending_ops": [list(p) for p in bug.pending_ops],
        })

    def write_quarantine(self, entry) -> None:
        """One newly quarantined input (a supervise.pool.QuarantineEntry)."""
        self._write({"type": "quarantine", **entry.as_dict()})

    def write_supervision(self, supervision: Optional[dict]) -> None:
        """Supervision/triage telemetry (a plain dict, or None)."""
        if supervision is not None:
            self._write({"type": "supervision", **supervision})

    def write_portfolio(self, portfolio: Optional[dict]) -> None:
        """Per-arm portfolio telemetry (a plain dict, or None)."""
        if portfolio is not None:
            self._write({"type": "portfolio", **portfolio})

    def write_cov_delta(self, iteration: int,
                        new_branches: list[tuple[int, bool]]) -> None:
        """Branches first covered this iteration (resume without ckpt)."""
        if new_branches:
            self._write({"type": "cov", "iteration": iteration,
                         "branches": sorted([s, int(d)]
                                            for (s, d) in new_branches)})

    def write_solver(self, stats) -> None:
        """Cumulative solver/cache telemetry (a SolverStats, or None)."""
        if stats is not None:
            self._write({"type": "solver", **stats.as_dict()})

    def write_coverage(self, result: CampaignResult) -> None:
        self._write({
            "type": "coverage",
            "branches": sorted([s, int(d)] for (s, d) in
                               result.coverage.branches),
            "functions": sorted(result.coverage.functions),
            "covered_static": result.coverage.covered_static,
            "reachable": result.reachable_branches,
            "wall_time": result.wall_time,
        })

    def write_result(self, result: CampaignResult,
                     config: Optional[CompiConfig] = None) -> None:
        """Dump a finished campaign in one call."""
        self.write_meta(result.program_name, config or CompiConfig(),
                        result.total_branches)
        for rec in result.iterations:
            self.write_iteration(rec)
        for bug in result.bugs:
            self.write_bug(bug)
        self.write_solver(result.solver)
        self.write_supervision(result.supervision)
        self.write_portfolio(result.portfolio)
        self.write_coverage(result)


def save_campaign(result: CampaignResult, path: Union[str, Path],
                  config: Optional[CompiConfig] = None,
                  overwrite: bool = True) -> Path:
    """Write a finished campaign to ``path`` as a JSONL log."""
    path = Path(path)
    with CampaignLog(path, mode="w" if overwrite else "x") as log:
        log.write_result(result, config)
    return path


def read_records(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the raw JSON objects of a campaign log, line by line.

    A truncated *final* line (a crash cutting a record in half) is
    skipped silently; a malformed line anywhere else raises, since that
    means real corruption rather than an interrupted write.  (The shared
    implementation lives in :mod:`repro.core.atomicio`; the fleet
    manifest reads its records through the same tolerance rules.)
    """
    yield from read_jsonl(path, tolerate_torn_tail=True)


def _filtered_kwargs(cls, obj: dict) -> dict:
    """Keep only the dataclass's known fields (older/newer log tolerance)."""
    known = {f.name for f in dataclasses.fields(cls)}
    return {k: v for k, v in obj.items() if k in known}


def load_campaign(path: Union[str, Path]) -> dict:
    """Reconstruct a campaign summary from a JSONL log.

    Returns a dict with ``meta``, ``iterations`` (IterationRecord list),
    ``bugs`` (BugRecord list), ``coverage`` (raw final dict, if the
    campaign finished), ``solver`` (raw solver/cache telemetry dict, if
    recorded), ``quarantine`` (raw quarantine-entry dicts, in log order),
    ``supervision`` (raw telemetry dict, if recorded), ``portfolio``
    (raw per-arm telemetry dict, if recorded) and
    ``cov_branches`` (set of (site, outcome) branch pairs accumulated
    from per-iteration deltas — available even for a log cut off
    mid-campaign).
    """
    meta: Optional[dict] = None
    iterations: list[IterationRecord] = []
    bugs: list[BugRecord] = []
    coverage: Optional[dict] = None
    solver: Optional[dict] = None
    supervision: Optional[dict] = None
    portfolio: Optional[dict] = None
    quarantine: list[dict] = []
    cov_branches: set[tuple[int, bool]] = set()
    for obj in read_records(path):
        kind = obj.pop("type")
        if kind == "meta":
            meta = obj
        elif kind == "iteration":
            iterations.append(IterationRecord(
                **_filtered_kwargs(IterationRecord, obj)))
        elif kind == "bug":
            # re-pin the testcase to the bug's schedule (when one was
            # logged) so replaying it reproduces the interleaving
            sched_id = obj.get("schedule", "")
            schedule: tuple = ()
            if sched_id:
                from ..schedules import decode_schedule
                schedule = decode_schedule(sched_id)
            tc = TestCase(inputs=obj["inputs"],
                          setup=TestSetup(obj["nprocs"], obj["focus"]),
                          schedule=schedule)
            bugs.append(BugRecord(
                kind=obj["kind"], message=obj["message"],
                global_rank=obj["global_rank"],
                testcase=tc, iteration=obj["iteration"],
                location=obj.get("location", ""),
                signature=obj.get("signature", ""),
                schedule=sched_id,
                pending_ops=tuple(tuple(p) for p in
                                  obj.get("pending_ops", ()))))
        elif kind == "cov":
            cov_branches.update((s, bool(d)) for s, d in obj["branches"])
        elif kind == "solver":
            solver = obj
        elif kind == "quarantine":
            quarantine.append(obj)
        elif kind == "supervision":
            supervision = obj
        elif kind == "portfolio":
            portfolio = obj
        elif kind == "coverage":
            coverage = obj
            cov_branches.update((s, bool(d)) for s, d in obj["branches"])
        else:  # pragma: no cover - forward compatibility
            continue
    return {"meta": meta, "iterations": iterations, "bugs": bugs,
            "coverage": coverage, "solver": solver,
            "quarantine": quarantine, "supervision": supervision,
            "portfolio": portfolio, "cov_branches": cov_branches}


# ----------------------------------------------------------------------
# checkpoint sidecar (exact-state resume)

def checkpoint_path(log_path: Union[str, Path]) -> Path:
    """The checkpoint sidecar next to a campaign log."""
    p = Path(log_path)
    return p.with_name(p.name + ".ckpt")


def write_checkpoint(log_path: Union[str, Path], state: dict) -> Path:
    """Atomically persist campaign state next to the log.

    Written to a temp file then ``os.replace``'d (with a parent-directory
    fsync — see :mod:`repro.core.atomicio`), so a crash mid-write leaves
    the previous checkpoint intact and a crash right after the rename
    cannot lose the new one.
    """
    return atomic_write_bytes(
        checkpoint_path(log_path),
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


def load_checkpoint(log_path: Union[str, Path]) -> Optional[dict]:
    """Load the checkpoint sidecar; ``None`` if absent or unreadable."""
    target = checkpoint_path(log_path)
    if not target.exists():
        return None
    try:
        with target.open("rb") as fh:
            return pickle.load(fh)
    except Exception:
        return None  # damaged sidecar: fall back to the JSONL log
