"""Campaign persistence: JSONL logs of iterations, bugs, and coverage.

The paper's work flow logs symbolic execution history "in a file" after
each execution and reads it back to drive the next test (§I-A); the tool
also "logs the derived error-inducing input for further analysis" (§V).
This module provides the durable form of both: a streaming JSONL log a
campaign can write as it runs, and a loader that reconstructs enough
state to analyse or resume reporting offline.

Format: one JSON object per line, discriminated by ``"type"``:

* ``meta``      — program name, config snapshot, totals
* ``iteration`` — one IterationRecord
* ``bug``       — one BugRecord with its error-inducing inputs
* ``coverage``  — final covered branch list (written once at the end)
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from .compi import BugRecord, CampaignResult, IterationRecord
from .config import CompiConfig
from .conflicts import TestSetup
from .testcase import TestCase


class CampaignLog:
    """Streaming writer for campaign telemetry."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    def __enter__(self) -> "CampaignLog":
        self._fh = self.path.open("w", encoding="utf-8")
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            raise RuntimeError("CampaignLog used outside its context")
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()

    def write_meta(self, program_name: str, config: CompiConfig,
                   total_branches: int) -> None:
        self._write({"type": "meta", "program": program_name,
                     "config": dataclasses.asdict(config),
                     "total_branches": total_branches})

    def write_iteration(self, rec: IterationRecord) -> None:
        self._write({"type": "iteration", **dataclasses.asdict(rec)})

    def write_bug(self, bug: BugRecord) -> None:
        self._write({
            "type": "bug", "kind": bug.kind, "message": bug.message,
            "global_rank": bug.global_rank, "iteration": bug.iteration,
            "location": bug.location,
            "inputs": dict(bug.testcase.inputs),
            "nprocs": bug.testcase.setup.nprocs,
            "focus": bug.testcase.setup.focus,
        })

    def write_coverage(self, result: CampaignResult) -> None:
        self._write({
            "type": "coverage",
            "branches": sorted([s, int(d)] for (s, d) in
                               result.coverage.branches),
            "functions": sorted(result.coverage.functions),
            "covered_static": result.coverage.covered_static,
            "reachable": result.reachable_branches,
            "wall_time": result.wall_time,
        })

    def write_result(self, result: CampaignResult,
                     config: Optional[CompiConfig] = None) -> None:
        """Dump a finished campaign in one call."""
        self.write_meta(result.program_name, config or CompiConfig(),
                        result.total_branches)
        for rec in result.iterations:
            self.write_iteration(rec)
        for bug in result.bugs:
            self.write_bug(bug)
        self.write_coverage(result)


def save_campaign(result: CampaignResult, path: Union[str, Path],
                  config: Optional[CompiConfig] = None) -> Path:
    """Write a finished campaign to ``path`` as a JSONL log."""
    path = Path(path)
    with CampaignLog(path) as log:
        log.write_result(result, config)
    return path


def read_records(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the raw JSON objects of a campaign log, line by line."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_campaign(path: Union[str, Path]) -> dict:
    """Reconstruct a campaign summary from a JSONL log.

    Returns a dict with ``meta``, ``iterations`` (IterationRecord list),
    ``bugs`` (BugRecord list) and ``coverage`` (raw dict).
    """
    meta: Optional[dict] = None
    iterations: list[IterationRecord] = []
    bugs: list[BugRecord] = []
    coverage: Optional[dict] = None
    for obj in read_records(path):
        kind = obj.pop("type")
        if kind == "meta":
            meta = obj
        elif kind == "iteration":
            iterations.append(IterationRecord(**obj))
        elif kind == "bug":
            tc = TestCase(inputs=obj["inputs"],
                          setup=TestSetup(obj["nprocs"], obj["focus"]))
            bugs.append(BugRecord(kind=obj["kind"], message=obj["message"],
                                  global_rank=obj["global_rank"],
                                  testcase=tc, iteration=obj["iteration"],
                                  location=obj.get("location", "")))
        elif kind == "coverage":
            coverage = obj
        else:  # pragma: no cover - forward compatibility
            continue
    return {"meta": meta, "iterations": iterations, "bugs": bugs,
            "coverage": coverage}
