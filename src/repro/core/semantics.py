"""MPI-semantics constraint insertion (§III-B) and solver domains.

Before solving, COMPI adds the inherent relations among the auto-marked
variables so the solver cannot produce invalid launches (e.g. a global
rank not smaller than the world size).  With ``x_i`` the ``rw`` variables,
``z_i`` the ``sw`` variables and ``y_i`` the ``rc`` variables (local size
``s_i`` is a concrete runtime value), the inserted set is the union of::

    { x0 - xi = 0 }            all global-rank marks agree
    { z0 - zi = 0 }            all world-size marks agree
    { x0 - z0 < 0 }            rank < size
    { yi - si < 0 }            local rank < its communicator's size
    { yi >= 0 }  { x0 >= 0 }  { z0 > 0 }

plus the input-capping constraints ``x <= cap`` (§IV-A) and the process
cap ``z0 <= nprocs_cap`` (how the evaluation keeps jobs under 16 ranks).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..concolic.expr import (KIND_INPUT, KIND_RC, KIND_RW, KIND_SC, KIND_SW,
                             Constraint, LinearExpr, Var)
from ..concolic.trace import TraceResult
from ..solver.intervals import Box
from .config import CompiConfig


def mpi_semantic_constraints(trace: TraceResult,
                             config: CompiConfig) -> list[Constraint]:
    """The inherent MPI constraints for one execution's variable set."""
    out: list[Constraint] = []
    rws = trace.vars_by_kind(KIND_RW)
    sws = trace.vars_by_kind(KIND_SW)
    rcs = trace.vars_by_kind(KIND_RC)

    def v(var: Var) -> LinearExpr:
        return LinearExpr.variable(var.vid)

    if rws:
        x0 = rws[0]
        for xi in rws[1:]:
            out.append(Constraint(v(x0).sub(v(xi)), "=="))
        out.append(Constraint(v(x0).scale(-1), "<="))                # x0 >= 0
    if sws:
        z0 = sws[0]
        for zi in sws[1:]:
            out.append(Constraint(v(z0).sub(v(zi)), "=="))
        out.append(Constraint(v(z0).scale(-1).shift(1), "<="))       # z0 >= 1
        out.append(Constraint(v(z0).shift(-config.nprocs_cap), "<="))  # z0 <= cap
    if rws and sws:
        out.append(Constraint(v(rws[0]).sub(v(sws[0])), "<"))        # x0 < z0
    scs = trace.vars_by_kind(KIND_SC)
    sc_by_comm: dict[int, Var] = {}
    for s in scs:
        # extension (the paper leaves local sizes unmarked): 1 <= s_i and
        # s_i <= z0 — a communicator is never larger than the world
        out.append(Constraint(v(s).scale(-1).shift(1), "<="))        # s_i >= 1
        if sws:
            out.append(Constraint(v(s).sub(v(sws[0])), "<="))        # s_i <= z0
        if s.comm_index is not None and s.comm_index not in sc_by_comm:
            sc_by_comm[s.comm_index] = s
    for y in rcs:
        out.append(Constraint(v(y).scale(-1), "<="))                 # y >= 0
        sc = sc_by_comm.get(y.comm_index) if y.comm_index is not None else None
        if sc is not None:
            # symbolic local bound: y_i < s_i (replaces the concrete s_i)
            out.append(Constraint(v(y).sub(v(sc)), "<"))
        elif y.comm_size is not None:
            out.append(Constraint(v(y).shift(-y.comm_size), "<"))    # y < s_i
    return out


def clamp_to_caps(inputs: Mapping[str, int],
                  caps: Mapping[str, int]) -> dict[str, int]:
    """Clamp solved inputs back under their discovered caps (§IV-A).

    A full-context incremental solver (Yices) would keep every cap
    constraint in scope; our dependency slice can drop a capped variable,
    letting a stale over-cap value survive.  Clamping restores the paper's
    input-capping semantics.  Used by both the engine scheduler and the
    legacy serial derivation.
    """
    return {name: min(value, caps[name]) if name in caps else value
            for name, value in inputs.items()}


def capping_constraints(trace: TraceResult) -> list[Constraint]:
    """``x <= cap`` for every input marked with ``compi_int_with_limit``
    (plus ``x >= floor`` for the ranged/width-typed markings)."""
    out: list[Constraint] = []
    for var in trace.vars:
        if var.kind != KIND_INPUT:
            continue
        if var.cap is not None:
            out.append(Constraint(LinearExpr.variable(var.vid).shift(-var.cap),
                                  "<="))
        if var.floor is not None:
            out.append(Constraint(
                LinearExpr.variable(var.vid).scale(-1).shift(var.floor), "<="))
    return out


def solver_domains(trace: TraceResult, config: CompiConfig,
                   input_bounds: Optional[dict[str, tuple[int, int]]] = None) -> Box:
    """Finite box domains per variable kind (the solver needs bounds)."""
    box: Box = {}
    input_bounds = input_bounds or {}
    for var in trace.vars:
        if var.kind == KIND_INPUT:
            lo, hi = input_bounds.get(var.name, (config.input_min, config.input_max))
            if var.cap is not None:
                hi = min(hi, var.cap)
            if var.floor is not None:
                lo = max(lo, var.floor)
            box[var.vid] = (min(lo, hi), max(lo, hi))
        elif var.kind == KIND_RW:
            box[var.vid] = (0, config.nprocs_cap - 1)
        elif var.kind == KIND_SW:
            box[var.vid] = (1, config.nprocs_cap)
        elif var.kind == KIND_RC:
            hi = (var.comm_size - 1) if var.comm_size else config.nprocs_cap - 1
            box[var.vid] = (0, max(0, hi))
        elif var.kind == KIND_SC:
            box[var.vid] = (1, config.nprocs_cap)
        else:  # pragma: no cover - future kinds
            box[var.vid] = (config.input_min, config.input_max)
    return box
