"""Test cases and target input specifications.

A target program declares its input surface in a module-level
``INPUT_SPEC`` mapping (the analog of knowing the program's input-file
format, e.g. ``HPL.dat``)::

    INPUT_SPEC = {
        "n":  {"default": 100, "lo": -1000, "hi": 5000},
        "nb": {"default": 8,   "lo": -100,  "hi": 512},
    }

COMPI reads the spec to generate the first (random) test and to bound the
solver's default domains; the *caps* from ``compi_int_with_limit`` are
discovered at runtime from the trace and tighten these further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .conflicts import TestSetup


@dataclass(frozen=True)
class InputSpec:
    """Declared range of one marked input variable."""

    name: str
    default: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"{self.name}: lo {self.lo} > hi {self.hi}")


def specs_from_module(module: Any) -> dict[str, InputSpec]:
    """Read ``INPUT_SPEC`` from a (possibly instrumented) target module."""
    raw = getattr(module, "INPUT_SPEC", None)
    if raw is None:
        raise AttributeError(
            f"target module {module.__name__} declares no INPUT_SPEC")
    out: dict[str, InputSpec] = {}
    for name, d in raw.items():
        out[name] = InputSpec(name=name, default=int(d["default"]),
                              lo=int(d["lo"]), hi=int(d["hi"]))
    return out


@dataclass(frozen=True)
class TestCase:
    """One complete test: runtime inputs + launch-time setup."""

    #: not a pytest class, despite the name
    __test__ = False

    inputs: dict[str, int]
    setup: TestSetup
    origin: str = "initial"  # 'initial' | 'negation' | 'restart' | 'resume'
    #:                         | 'schedule' (a schedule-space candidate)
    negated_site: Optional[int] = None
    #: schedule prescription: ``(rank, index, source, tag)`` entries the
    #: match controller must force (empty = free/canonical schedule).
    #: Rides on the test case so triage probes and replay inherit the
    #: pinned interleaving along with the inputs.
    schedule: tuple = ()

    def describe(self) -> str:
        kv = ", ".join(f"{k}={v}" for k, v in sorted(self.inputs.items()))
        sched = f" sched[{len(self.schedule)}]" if self.schedule else ""
        return (f"np={self.setup.nprocs} focus={self.setup.focus} "
                f"[{self.origin}]{sched} {kv}")


def default_testcase(specs: dict[str, InputSpec], setup: TestSetup) -> TestCase:
    """The target's declared default inputs as a test case."""
    return TestCase(inputs={n: s.default for n, s in specs.items()},
                    setup=setup, origin="initial")


def random_testcase(specs: dict[str, InputSpec], setup: TestSetup,
                    rng: np.random.Generator,
                    caps: Optional[dict[str, int]] = None,
                    origin: str = "initial") -> TestCase:
    """Random inputs within spec bounds (and under any known caps)."""
    caps = caps or {}
    inputs: dict[str, int] = {}
    for name, spec in specs.items():
        hi = min(spec.hi, caps.get(name, spec.hi))
        lo = min(spec.lo, hi)
        inputs[name] = int(rng.integers(lo, hi + 1))
    return TestCase(inputs=inputs, setup=setup, origin=origin)
